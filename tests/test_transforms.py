"""Tests for SE(2)/SE(3) transforms and angle utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    angular_difference,
    rot2d,
    rot3d_euler,
    transform_points_se2,
    transform_points_se3,
    wrap_angle,
)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(1.0) == pytest.approx(1.0)

    def test_wraps_past_pi(self):
        assert wrap_angle(np.pi + 0.5) == pytest.approx(-np.pi + 0.5)

    def test_pi_maps_to_pi(self):
        assert wrap_angle(np.pi) == pytest.approx(np.pi)
        assert wrap_angle(-np.pi) == pytest.approx(np.pi)

    def test_array_input(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi, -2 * np.pi]))
        assert np.allclose(out, [0.0, 0.0, 0.0])

    @settings(max_examples=100, deadline=None)
    @given(theta=st.floats(-50, 50))
    def test_wrap_angle_range_property(self, theta):
        w = wrap_angle(theta)
        assert -np.pi < w <= np.pi
        # Same angle modulo 2*pi (residue may land near 0 or near 2*pi).
        r = abs(theta - w) % (2 * np.pi)
        assert min(r, 2 * np.pi - r) == pytest.approx(0.0, abs=1e-6)


class TestAngularDifference:
    def test_shortest_path(self):
        assert angular_difference(0.1, -0.1) == pytest.approx(-0.2)
        assert angular_difference(np.pi - 0.1, -np.pi + 0.1) == pytest.approx(0.2)

    def test_antisymmetry(self):
        d1 = angular_difference(0.3, 2.0)
        d2 = angular_difference(2.0, 0.3)
        assert d1 == pytest.approx(-d2)


class TestRotations:
    def test_rot2d_orthonormal(self):
        R = rot2d(0.7)
        assert np.allclose(R @ R.T, np.eye(2))
        assert np.linalg.det(R) == pytest.approx(1.0)

    def test_rot2d_quarter_turn(self):
        R = rot2d(np.pi / 2)
        assert np.allclose(R @ np.array([1.0, 0.0]), [0.0, 1.0], atol=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        rx=st.floats(-np.pi, np.pi),
        ry=st.floats(-np.pi, np.pi),
        rz=st.floats(-np.pi, np.pi),
    )
    def test_rot3d_orthonormal_property(self, rx, ry, rz):
        R = rot3d_euler(rx, ry, rz)
        assert np.allclose(R @ R.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(R) == pytest.approx(1.0)


class TestTransforms:
    def test_se2_translation_only(self):
        pts = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = transform_points_se2(pts, np.array([2.0, 3.0, 0.0]))
        assert np.allclose(out, [[3.0, 3.0], [2.0, 4.0]])

    def test_se2_rotation(self):
        pts = np.array([[1.0, 0.0]])
        out = transform_points_se2(pts, np.array([0.0, 0.0, np.pi / 2]))
        assert np.allclose(out, [[0.0, 1.0]], atol=1e-12)

    def test_se3_preserves_distances(self):
        rng = np.random.default_rng(3)
        pts = rng.normal(size=(10, 3))
        cfg = np.array([1.0, -2.0, 0.5, 0.3, -0.7, 1.1])
        out = transform_points_se3(pts, cfg)
        d_in = np.linalg.norm(pts[0] - pts[5])
        d_out = np.linalg.norm(out[0] - out[5])
        assert d_in == pytest.approx(d_out)
