"""Simulated distributed-memory runtime (the STAPL stand-in)."""

from .faults import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_RAISE,
    Fault,
    FaultInjector,
    InjectedFault,
    TaskFailedError,
    WorkerCrash,
)
from .local_pool import FAILURE_POLICIES, PoolResult, run_tasks_parallel
from .pgraph import AccessStats, PGraphView
from .simulator import StealPolicy, WorkStealingSimulator, run_static_phase
from .stats import PEStats, SimResult
from .termination import TokenRingDetector, detection_delay, detection_delay_tree
from .topology import ClusterTopology, mesh_shape_for

__all__ = [
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_RAISE",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "TaskFailedError",
    "WorkerCrash",
    "FAILURE_POLICIES",
    "PoolResult",
    "run_tasks_parallel",
    "AccessStats",
    "PGraphView",
    "StealPolicy",
    "WorkStealingSimulator",
    "run_static_phase",
    "PEStats",
    "SimResult",
    "TokenRingDetector",
    "detection_delay",
    "detection_delay_tree",
    "ClusterTopology",
    "mesh_shape_for",
]
