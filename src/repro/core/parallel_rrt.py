"""Uniform radial subdivision parallel RRT with load balancing (Alg. 2, 3).

Phases mirror the parallel PRM driver:

1. **Region construction** — sample ``Nr`` points on the hypersphere,
   build the conical region graph (Alg. 2 lines 1-9).
2. **Branch growth** — grow a biased, cone-constrained sequential RRT per
   region (line 11).  This is the imbalanced phase: cones blocked by
   obstacles burn iterations on failed extensions while open cones grow
   smoothly.  Work stealing applies here; repartitioning may too, but its
   only available weight — the k-random-rays free-space probe — is both
   costly and inaccurate (Sec. III-B), which Fig. 10b shows can make it a
   net loss.
3. **Branch connection** — connect branches of adjacent regions; an edge
   that would create a cycle triggers a prune (we rewire the child to the
   shorter parent, preserving the tree property).

As with PRM, real planning happens once in :func:`build_rrt_workload`;
per-strategy machine behaviour is replayed by :func:`simulate_rrt`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..obs.events import (
    EV_REMOTE_ACCESS,
    PHASE_CONNECT,
    PHASE_CONSTRUCT,
    PHASE_REPARTITION,
    PHASE_SUBDIVIDE,
    PHASE_TERMINATE,
    PHASE_WEIGH,
)
from ..obs.tracer import active
from ..planners.roadmap import Roadmap
from ..planners.rrt import RRT
from ..planners.stats import PlannerStats, WorkModel
from ..runtime.faults import FaultInjector
from ..runtime.simulator import WorkStealingSimulator, run_static_phase
from ..runtime.stats import SimResult
from ..runtime.termination import detection_delay_tree
from ..runtime.topology import ClusterTopology
from ..subdivision.radial import RadialSubdivision
from .metrics import emit_phase_spans
from .repartition import RepartitionResult, repartition
from .weights import rrt_k_rays_weights
from .work_stealing import policy_by_name

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "BranchWork",
    "BranchAdjacencyWork",
    "RRTWorkload",
    "RRTPhaseTimes",
    "RRTRunResult",
    "build_rrt_workload",
    "simulate_rrt",
]

ID_SHIFT = 20


@dataclass
class BranchWork:
    """Measured work of growing one conical region's RRT branch."""

    rid: int
    grow_cost: float
    num_nodes: int
    stats: PlannerStats


@dataclass
class BranchAdjacencyWork:
    """Measured work of connecting two adjacent branches."""

    a: int
    b: int
    cost: float
    vertex_reads: int
    edges_added: int
    cycles_pruned: int


@dataclass
class RRTWorkload:
    """Per-problem measured work, reused across strategies and PE counts."""

    cspace: ConfigurationSpace
    radial: RadialSubdivision
    branch_work: "dict[int, BranchWork]"
    adjacency_work: "list[BranchAdjacencyWork]"
    tree: Roadmap
    parents: "dict[int, int]"
    root_config: np.ndarray
    work_model: WorkModel
    seed: int

    @property
    def num_regions(self) -> int:
        return self.radial.num_regions

    @property
    def roadmap(self) -> Roadmap:
        """Uniform alias: the grown tree, named as the PRM workload names
        its merged roadmap (lets ``plan()`` report either planner)."""
        return self.tree

    def total_grow_work(self) -> float:
        return sum(w.grow_cost for w in self.branch_work.values())


@dataclass
class RRTPhaseTimes:
    """Virtual seconds per phase; implements the shared
    :class:`repro.core.metrics.PhaseBreakdown` protocol."""

    region_construction: float = 0.0
    branch_growth: float = 0.0
    branch_connection: float = 0.0
    #: k-rays free-space probe time (the costly part of RRT weighing).
    weigh: float = 0.0
    lb_overhead: float = 0.0
    termination: float = 0.0

    @property
    def other(self) -> float:
        return (
            self.region_construction + self.weigh + self.lb_overhead + self.termination
        )

    @property
    def total(self) -> float:
        return self.other + self.branch_growth + self.branch_connection

    def phase_items(self) -> "list[tuple[str, float]]":
        """Canonical (name, duration) pairs in timeline order; RRT has no
        ``generate`` phase (branch growth subsumes sampling)."""
        return [
            (PHASE_SUBDIVIDE, self.region_construction),
            (PHASE_WEIGH, self.weigh),
            (PHASE_REPARTITION, self.lb_overhead),
            (PHASE_CONSTRUCT, self.branch_growth),
            (PHASE_TERMINATE, self.termination),
            (PHASE_CONNECT, self.branch_connection),
        ]


@dataclass
class RRTRunResult:
    strategy: str
    num_pes: int
    phases: RRTPhaseTimes
    growth_loads: np.ndarray
    nodes_per_pe: np.ndarray
    growth_sim: SimResult
    repartition_info: "RepartitionResult | None" = None

    @property
    def total_time(self) -> float:
        return self.phases.total

    # -- PlannerRunResult protocol (uniform across PRM / RRT) --------------
    @property
    def sim(self) -> SimResult:
        """Simulator output of the load-balanced phase (branch growth)."""
        return self.growth_sim

    @property
    def loads(self) -> np.ndarray:
        """Per-PE virtual work in the load-balanced phase."""
        return self.growth_loads


# ---------------------------------------------------------------------------
# Workload construction
# ---------------------------------------------------------------------------

def _lift_position(cspace: ConfigurationSpace, position: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Embed a positional point into a full configuration, copying the
    non-positional coordinates from ``template``."""
    cfg = np.asarray(template, dtype=float).copy()
    cfg[list(cspace.positional_dims)] = position
    return cfg


def build_rrt_workload(
    cspace: ConfigurationSpace,
    root: np.ndarray,
    num_regions: int,
    nodes_per_region: int = 12,
    radius: float | None = None,
    k_adjacent: int = 3,
    k_inter: int = 1,
    overlap_angle: float = 0.1,
    step_size: float = 0.6,
    goal_bias: float = 0.3,
    iteration_factor: int = 40,
    connect_sources: int = 3,
    seed: int = 0,
    work_model: WorkModel | None = None,
    lp_resolution: float = 0.5,
    batched: bool = True,
    nn_factory=None,
) -> RRTWorkload:
    """Grow every conical branch once against the real geometry.

    ``radius`` defaults to the largest sphere around the root's position
    that fits the workspace bounds.  ``batched`` selects the vectorised
    predict-validate-replay growth path (identical trees and stats; see
    :class:`repro.planners.rrt.RRT`); False forces the one-extension-at-a-
    time reference loop.  ``nn_factory`` (``dim -> NeighborFinder``,
    default brute force) is used both for branch growth and for the
    branch-connection nearest-neighbour lookups; all finders share the
    canonical (distance, insertion order) tie-break, so the workload is
    identical whichever backend is chosen.
    """
    work_model = work_model if work_model is not None else WorkModel()
    root = np.asarray(root, dtype=float)
    if not cspace.valid_single(root):
        raise ValueError("RRT root configuration is invalid")
    pos_dims = list(cspace.positional_dims)
    root_pos = root[pos_dims]
    if radius is None:
        radius = float(
            min(
                np.min(root_pos - cspace.bounds.lo[pos_dims]),
                np.min(cspace.bounds.hi[pos_dims] - root_pos),
            )
        )
    radial = RadialSubdivision(
        root_pos,
        radius,
        num_regions,
        k=k_adjacent,
        overlap=overlap_angle,
        rng=np.random.default_rng(seed),
    )
    planner = RRT(
        cspace,
        step_size=step_size,
        local_planner=StraightLinePlanner(resolution=lp_resolution),
        goal_bias=goal_bias,
        nn_factory=nn_factory,
        batched=batched,
    )

    tree = Roadmap(cspace.dim)
    parents: "dict[int, int]" = {}
    branch_work: "dict[int, BranchWork]" = {}
    branch_nodes: "dict[int, np.ndarray]" = {}

    for rid in radial.graph.region_ids():
        region = radial.region_of(rid)
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
        bias_cfg = _lift_position(cspace, region.target, root)
        result = planner.grow(
            root,
            nodes_per_region,
            rng,
            bias_target=bias_cfg,
            region_predicate=lambda q, region=region, dims=pos_dims: region.contains(
                np.asarray(q)[dims]
            ),
            max_iterations=iteration_factor * nodes_per_region,
            id_base=rid << ID_SHIFT,
            region_predicate_batch=lambda qs, region=region, dims=pos_dims: region.contains_many(
                np.atleast_2d(np.asarray(qs))[:, dims]
            ),
        )
        st = result.stats
        cost = work_model.time_of(st)
        branch_work[rid] = BranchWork(rid, cost, result.tree.num_vertices, st)
        tree.merge(result.tree)
        parents.update(result.parents)
        ids, _cfgs = result.tree.configs_array()
        branch_nodes[rid] = ids

    # Identify the duplicated per-branch roots: path costs to the shared
    # root treat every branch root as cost 0.
    cost_to_root: "dict[int, float]" = {}

    def root_cost(vid: int) -> float:
        chain = []
        v = vid
        while v not in cost_to_root and parents[v] != v:
            chain.append(v)
            v = parents[v]
        base = cost_to_root.get(v, 0.0)
        for u in reversed(chain):
            base += tree.neighbors(u)[parents[u]]
            cost_to_root[u] = base
        if parents[vid] == vid:
            cost_to_root[vid] = 0.0
        return cost_to_root.get(vid, base)

    # Branch connection phase: for each adjacency, try linking branch a's
    # nodes to branch b's; a valid link rewires (prunes) when it shortens
    # b-node's path to the root, otherwise counts as a pruned cycle.
    lp = planner.local_planner
    adjacency_work: "list[BranchAdjacencyWork]" = []
    for a, b in sorted(radial.graph.edges()):
        ids_a, ids_b = branch_nodes[a], branch_nodes[b]
        st = PlannerStats()
        edges_added = 0
        cycles = 0
        reads = 0
        if ids_a.size and ids_b.size:
            nn = planner.nn_factory(cspace.dim)
            nn.add_batch(ids_b, tree.configs_of(int(i) for i in ids_b))
            reads += int(ids_b.size)
            # Use the outermost nodes of a (deepest in the branch) as
            # connection sources: they are the ones near region borders.
            sources = ids_a[-min(connect_sources, ids_a.size):]
            for u in sources:
                u = int(u)
                st.nn_queries += 1
                for v, _d in nn.knn(tree.config(u), k_inter, exclude=u):
                    res = lp(cspace, tree.config(u), tree.config(v))
                    st.lp_calls += 1
                    st.lp_checks += res.checks
                    reads += 1
                    if not res.valid:
                        continue
                    st.lp_successes += 1
                    if tree.has_edge(u, v):
                        continue
                    new_cost = root_cost(u) + res.length
                    if new_cost < root_cost(v) and parents[v] != v:
                        # Rewire: prune the old parent edge, adopt the new.
                        tree.remove_edge(v, parents[v])
                        tree.add_edge(u, v, res.length)
                        parents[v] = u
                        cost_to_root[v] = new_cost
                        edges_added += 1
                        cycles += 1
                    else:
                        cycles += 1
            st.nn_distance_evals += nn.stats.distance_evals
        cost = work_model.time_of(st)
        adjacency_work.append(BranchAdjacencyWork(a, b, cost, reads, edges_added, cycles))

    return RRTWorkload(
        cspace=cspace,
        radial=radial,
        branch_work=branch_work,
        adjacency_work=adjacency_work,
        tree=tree,
        parents=parents,
        root_config=root,
        work_model=work_model,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Machine simulation
# ---------------------------------------------------------------------------

REGION_CREATE_COST = 0.05


def simulate_rrt(
    workload: RRTWorkload,
    num_pes: int,
    strategy: str = "none",
    topology: ClusterTopology | None = None,
    k_rays: int = 8,
    steal_chunk: "str | int" = "half",
    rng_seed: int = 54321,
    tracer: "Tracer | None" = None,
    initial_partitioner: "str | None" = None,
    fault_injector: "FaultInjector | None" = None,
    max_retries: int = 2,
) -> RRTRunResult:
    """Replay the RRT workload on a virtual machine.

    ``strategy``: ``"none"``, ``"rand-8"``, ``"diffusive"``, ``"hybrid"``,
    or ``"repartition"`` (k-rays weights; expect it to disappoint, per the
    paper).

    ``tracer`` and ``initial_partitioner`` behave as in
    :func:`repro.core.parallel_prm.simulate_prm`.
    """
    from ..partition.naive import partition_block

    topology = topology if topology is not None else ClusterTopology(num_pes)
    if topology.num_pes != num_pes:
        raise ValueError("topology PE count mismatch")
    tr = active(tracer)
    phases = RRTPhaseTimes()
    graph = workload.radial.graph
    region_ids = graph.region_ids()
    if initial_partitioner in (None, "block"):
        naive = partition_block(graph, num_pes)
    else:
        from ..partition import partition_by_name

        naive = partition_by_name(graph, num_pes, initial_partitioner)

    per_pe_regions = np.zeros(num_pes)
    for rid in region_ids:
        per_pe_regions[naive[rid]] += 1
    phases.region_construction = float(per_pe_regions.max()) * REGION_CREATE_COST

    repart_info: RepartitionResult | None = None
    grow_assignment = naive
    steal_policy = None
    if strategy == "repartition":
        # Probe cost: each PE casts rays for its regions; makespan term is
        # the per-PE maximum.  This is the "weigh" phase — the part of RRT
        # load balancing the paper shows can be a net loss (Fig. 10b).
        weights, casts = rrt_k_rays_weights(
            workload.radial,
            workload.cspace.env,
            k_rays=k_rays,
            rng=np.random.default_rng(rng_seed),
        )
        probe_loads = np.zeros(num_pes)
        cost_per_cast = workload.work_model.cost_lp_check * k_rays
        for rid in region_ids:
            probe_loads[naive[rid]] += cost_per_cast
        phases.weigh = float(probe_loads.max())
        t_lb = phases.region_construction + phases.weigh
        repart_info = repartition(
            graph,
            weights,
            naive,
            topology,
            tracer=tr.offset(t_lb) if tr is not None else None,
        )
        grow_assignment = repart_info.assignment
        phases.lb_overhead = repart_info.overhead
    elif strategy != "none":
        steal_policy = policy_by_name(strategy)

    t_construct = phases.region_construction + phases.weigh + phases.lb_overhead
    sim_tracer = tr.offset(t_construct) if tr is not None else None
    grow_costs = {rid: workload.branch_work[rid].grow_cost for rid in region_ids}

    def executor(task: int, pe: int) -> float:
        return grow_costs[task]

    if steal_policy is None:
        sim = run_static_phase(
            topology,
            executor,
            grow_assignment,
            tracer=sim_tracer,
            fault_injector=fault_injector,
            max_retries=max_retries,
        )
    else:
        simulator = WorkStealingSimulator(
            topology,
            executor,
            steal_policy=steal_policy,
            steal_chunk=steal_chunk,
            rng=np.random.default_rng(rng_seed),
            tracer=sim_tracer,
            fault_injector=fault_injector,
            max_retries=max_retries,
        )
        sim = simulator.run(grow_assignment)
        phases.termination = detection_delay_tree(topology)
    phases.branch_growth = sim.makespan

    # Abandoned branches (fault injection) keep their pre-phase owner.
    final_owner = {**grow_assignment, **sim.executed_by}
    conn_loads = np.zeros(num_pes)
    remote_reads = 0
    for adj in workload.adjacency_work:
        owner_a = final_owner[adj.a]
        latency = 0.0
        if final_owner[adj.b] != owner_a and adj.vertex_reads:
            # Branch vertex reads ship as one aggregated message.
            latency = topology.latency(owner_a, final_owner[adj.b], payload=adj.vertex_reads)
            remote_reads += adj.vertex_reads
        conn_loads[owner_a] += adj.cost + latency
    phases.branch_connection = float(conn_loads.max()) if conn_loads.size else 0.0

    nodes_per_pe = np.zeros(num_pes)
    for rid in region_ids:
        nodes_per_pe[final_owner[rid]] += workload.branch_work[rid].num_nodes

    if tr is not None:
        emit_phase_spans(tr, phases)
        t_connect = t_construct + phases.branch_growth + phases.termination
        tr.point(EV_REMOTE_ACCESS, ts=t_connect, count=remote_reads)
        tr.metrics.counter("remote_accesses").inc(remote_reads)
        tr.metrics.counter("regions").inc(len(region_ids))

    return RRTRunResult(
        strategy=strategy,
        num_pes=num_pes,
        phases=phases,
        growth_loads=sim.work_times(),
        nodes_per_pe=nodes_per_pe,
        growth_sim=sim,
        repartition_info=repart_info,
    )
