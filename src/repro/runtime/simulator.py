"""Event-driven simulator of a distributed-memory work-stealing machine.

This is the repository's stand-in for the STAPL runtime on the paper's
Cray XE6 / Opteron clusters.  Each processing element (PE) owns a deque of
tasks (regions) and a virtual clock.  Executing a task charges its cost —
obtained from the *real* sequential planner's operation counts — to the
PE's clock.  When a PE's deque runs dry it issues steal requests according
to a pluggable victim-selection policy; requests, replies and task
transfers pay topology-dependent latency (ownership transfer, Sec. II-A).

The simulation is deterministic: events are ordered by ``(time, seq)``
where ``seq`` is a monotone tie-breaker, and all randomness flows from an
explicit generator.

Protocol summary
----------------
* A PE executes tasks from the *front* of its deque.
* A thief sends one steal request per victim per round; a victim services
  requests at arrival (communication is offloaded, as in an RDMA-capable
  runtime) by handing over the *back* half of its deque (configurable),
  keeping at least ``min_keep`` tasks.
* Failed rounds retry with exponential backoff until global work is
  exhausted; retries model the "few processors are able to find work"
  behaviour at scale (Fig. 9b).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from ..obs.events import (
    EV_STEAL_FAIL,
    EV_STEAL_REPLY,
    EV_STEAL_REQUEST,
    EV_STEAL_TRANSFER,
    EV_TASK_ABANDONED,
    EV_TASK_END,
    EV_TASK_RETRY,
    EV_TASK_START,
    EV_WORKER_DEATH,
)
from ..obs.tracer import active
from .faults import FAULT_CRASH, FAULT_HANG, FaultInjector
from .stats import PEStats, SimResult
from .topology import ClusterTopology

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["StealPolicy", "WorkStealingSimulator", "run_static_phase"]


class StealPolicy(Protocol):
    """Victim-selection strategy (RAND-K / DIFFUSIVE / HYBRID live in
    :mod:`repro.core.work_stealing`)."""

    name: str

    def select_victims(
        self,
        thief: int,
        round_index: int,
        topology: ClusterTopology,
        rng: np.random.Generator,
    ) -> "list[int]":
        """PEs to request work from in this round (may be empty)."""
        ...


@dataclass
class _Event:
    time: float
    seq: int
    kind: str
    pe: int
    payload: object = None

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class WorkStealingSimulator:
    """Simulate one bulk phase of task execution with optional stealing.

    Parameters
    ----------
    topology:
        Machine model (latencies, mesh, nodes).
    executor:
        ``executor(task_id, pe) -> float`` returns the virtual cost of the
        task; side effects (building the actual roadmap) happen inside.
    steal_policy:
        ``None`` disables stealing (static execution).
    steal_chunk:
        ``"half"`` (default) transfers half the victim's stealable deque;
        an int transfers at most that many tasks.
    min_keep:
        Victim never gives away its last ``min_keep`` queued tasks.
    transfer_cost:
        Extra latency per transferred task (ownership-transfer overhead).
    max_idle_rounds:
        Backoff cap; a thief never stops retrying before global
        exhaustion, but waits at most ``backoff_base * 2**cap`` between
        rounds.
    offload_service:
        When True, steal requests are serviced the instant they arrive
        (an RDMA-style communication thread).  The default (False) is the
        non-preemptive model: a busy victim replies only between tasks,
        which is how a single-threaded SPMD runtime behaves.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Emits ``task_start`` /
        ``task_end`` and the steal protocol (``steal_request`` /
        ``steal_transfer`` / ``steal_fail`` / ``steal_reply``) as point
        events stamped with the simulator's virtual clock, and tallies
        steal/migration counters plus per-PE busy/idle histograms.  The
        default ``None`` emits nothing (zero overhead).
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector`, polled
        with ``(task, attempt, worker=pe)`` each time a PE starts a task.
        ``"raise"`` burns the task's cost as ``wasted_time`` and retries
        it (back of the same deque, so it stays stealable); ``"hang"``
        adds ``fault.hang`` virtual seconds of cost; ``"crash"`` kills
        the PE — its queued regions are re-dispatched round-robin to the
        surviving PEs, paying per-task transfer latency, the exact
        failure analogue of steal-driven ownership transfer.  Tasks
        exceeding ``max_retries`` are abandoned (the simulator always
        degrades — it exists to *study* failures, not to die of them)
        and reported in ``SimResult.abandoned``.  Dead PEs answer steal
        requests with an immediate failure reply.  ``None`` (default)
        costs nothing.
    max_retries:
        Per-task retry budget when ``fault_injector`` is set.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        executor: Callable[[int, int], float],
        steal_policy: "StealPolicy | None" = None,
        steal_chunk: "str | int" = "half",
        min_keep: int = 1,
        transfer_cost: float = 2.0,
        backoff_base: float = 1.0,
        max_idle_rounds: int = 6,
        offload_service: bool = False,
        rng: np.random.Generator | None = None,
        tracer: "Tracer | None" = None,
        fault_injector: "FaultInjector | None" = None,
        max_retries: int = 2,
    ):
        if isinstance(steal_chunk, int) and steal_chunk < 1:
            raise ValueError("integer steal_chunk must be >= 1")
        if min_keep < 0:
            raise ValueError("min_keep must be >= 0")
        self.topology = topology
        self.executor = executor
        self.steal_policy = steal_policy
        self.steal_chunk = steal_chunk
        self.min_keep = min_keep
        self.transfer_cost = transfer_cost
        self.backoff_base = backoff_base
        self.max_idle_rounds = max_idle_rounds
        self.offload_service = offload_service
        self.rng = rng if rng is not None else np.random.default_rng(0)
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.fault_injector = fault_injector
        self.max_retries = max_retries
        #: normalised once: ``None`` means every emission site is one branch.
        self._tr = active(tracer)

    # -- public API ---------------------------------------------------------
    def run(self, assignment: "dict[int, int]") -> SimResult:
        """Execute all tasks given the initial ``task -> PE`` assignment."""
        P = self.topology.num_pes
        for task, pe in assignment.items():
            if not 0 <= pe < P:
                raise ValueError(f"task {task} assigned to invalid PE {pe}")

        self._deques: "list[deque[int]]" = [deque() for _ in range(P)]
        # Stable initial order: sorted task ids per PE.
        for task in sorted(assignment):
            self._deques[assignment[task]].append(task)

        self._stats = [PEStats(pe=p) for p in range(P)]
        self._clock = np.zeros(P)
        self._busy = np.zeros(P, dtype=bool)
        self._stolen_marks: "set[int]" = set()
        self._executed_by: "dict[int, int]" = {}
        self._task_costs: "dict[int, float]" = {}
        self._remaining = len(assignment)
        self._queued_requests: "list[list[int]]" = [[] for _ in range(P)]
        self._pending_replies = np.zeros(P, dtype=int)
        self._round_found = np.zeros(P, dtype=bool)
        self._idle_rounds = np.zeros(P, dtype=int)
        self._events: "list[_Event]" = []
        self._seq = 0
        self._makespan = 0.0
        self._end_time = 0.0
        self._messages = 0
        self._dead = np.zeros(P, dtype=bool)
        self._deaths = 0
        self._attempts: "dict[int, int]" = {}
        self._abandoned: "list[int]" = []

        for p in range(P):
            self._activate(p, 0.0)

        while self._events:
            ev = heapq.heappop(self._events)
            self._end_time = max(self._end_time, ev.time)
            getattr(self, f"_on_{ev.kind}")(ev)

        if self._tr is not None:
            self._record_metrics()
        return SimResult(
            pe_stats=self._stats,
            executed_by=self._executed_by,
            task_costs=self._task_costs,
            makespan=self._makespan,
            end_time=self._end_time,
            total_messages=self._messages,
            task_attempts=self._attempts,
            abandoned=sorted(self._abandoned),
            worker_deaths=self._deaths,
        )

    # -- internals ---------------------------------------------------------
    def _record_metrics(self) -> None:
        m = self._tr.metrics
        m.counter("steals_attempted").inc(
            sum(s.steal_requests_sent for s in self._stats)
        )
        m.counter("steals_succeeded").inc(sum(s.steals_serviced for s in self._stats))
        m.counter("steals_failed").inc(sum(s.steals_failed for s in self._stats))
        m.counter("tasks_migrated").inc(sum(s.tasks_lost for s in self._stats))
        busy = m.histogram("pe_busy_time")
        idle = m.histogram("pe_idle_time")
        for s in self._stats:
            busy.observe(s.work_time)
            idle.observe(max(self._makespan - s.work_time, 0.0))
        if self.fault_injector is not None:
            failed = sum(s.attempts_failed for s in self._stats)
            if failed:
                m.counter("task_attempts_failed").inc(failed)
            if self._abandoned:
                m.counter("tasks_abandoned").inc(len(self._abandoned))
            if self._deaths:
                m.counter("worker_deaths").inc(self._deaths)

    def _push_event(self, time: float, kind: str, pe: int, payload: object = None) -> None:
        self._seq += 1
        heapq.heappush(self._events, _Event(time, self._seq, kind, pe, payload))

    def _activate(self, pe: int, now: float) -> None:
        """Give PE its next unit of work, or start stealing, or go idle."""
        if self._busy[pe] or self._dead[pe]:
            return
        dq = self._deques[pe]
        if dq:
            task = dq.popleft()
            fault = None
            if self.fault_injector is not None:
                attempt = self._attempts.get(task, 0)
                self._attempts[task] = attempt + 1
                fault = self.fault_injector.poll(task, attempt, worker=pe)
                if fault is not None and fault.kind == FAULT_CRASH:
                    self._kill_pe(pe, now, task)
                    return
            cost = float(self.executor(task, pe))
            if cost < 0:
                raise ValueError(f"executor returned negative cost for task {task}")
            if fault is not None and fault.kind == FAULT_HANG:
                cost += fault.hang
            elif fault is not None:  # "raise": burn the cost, then fail
                st = self._stats[pe]
                st.wasted_time += cost
                st.attempts_failed += 1
                self._busy[pe] = True
                self._clock[pe] = now + cost
                self._push_event(now + cost, "task_failed", pe, payload=task)
                return
            self._busy[pe] = True
            self._executed_by[task] = pe
            self._task_costs[task] = cost
            st = self._stats[pe]
            st.tasks_executed += 1
            st.work_time += cost
            if task in self._stolen_marks:
                st.tasks_stolen_executed += 1
            self._clock[pe] = now + cost
            if self._tr is not None:
                self._tr.point(
                    EV_TASK_START,
                    ts=now,
                    pe=pe,
                    task=task,
                    cost=cost,
                    stolen=task in self._stolen_marks,
                )
            self._push_event(now + cost, "task_done", pe, payload=task)
            return
        if self.steal_policy is not None and self._remaining > 0 and self._pending_replies[pe] == 0:
            self._start_steal_round(pe, now)
        # Otherwise: idle; will be woken by a steal reply or stay idle at end.

    def _on_task_done(self, ev: _Event) -> None:
        pe = ev.pe
        self._busy[pe] = False
        self._remaining -= 1
        self._makespan = max(self._makespan, ev.time)
        self._stats[pe].finish_time = ev.time
        if self._tr is not None:
            task = ev.payload
            self._tr.point(
                EV_TASK_END,
                ts=ev.time,
                pe=pe,
                task=task,
                cost=self._task_costs[task],
                stolen=task in self._stolen_marks,
            )
        # Non-preemptive service: reply to thieves that knocked while we
        # were executing, before picking up the next task.
        while self._queued_requests[pe]:
            thief = self._queued_requests[pe].pop(0)
            self._service_steal(pe, thief, ev.time)
        self._activate(pe, ev.time)

    # -- fault handling -----------------------------------------------------
    def _on_task_failed(self, ev: _Event) -> None:
        """A ``"raise"`` fault fired: the attempt burned its cost for
        nothing.  Retry goes to the *back* of the PE's own deque — natural
        backoff behind its queued work, and still stealable by others."""
        pe, task = ev.pe, ev.payload
        self._busy[pe] = False
        if self._attempts[task] <= self.max_retries:
            if self._tr is not None:
                self._tr.point(
                    EV_TASK_RETRY,
                    ts=ev.time,
                    pe=pe,
                    task=task,
                    attempt=self._attempts[task],
                    reason="fault",
                )
            self._deques[pe].append(task)
        else:
            self._abandon(task, ev.time, "retries_exhausted")
        while self._queued_requests[pe]:
            thief = self._queued_requests[pe].pop(0)
            self._service_steal(pe, thief, ev.time)
        self._activate(pe, ev.time)

    def _kill_pe(self, pe: int, now: float, pending_task: int) -> None:
        """Crash fault: the PE dies as it picks up ``pending_task``.

        Its queued regions move to the surviving PEs round-robin, paying
        per-task transfer latency — involuntary ownership transfer, the
        failure analogue of a steal.  The in-flight task consumed its
        attempt; queued tasks migrate attempt-intact.
        """
        self._dead[pe] = True
        self._deaths += 1
        st = self._stats[pe]
        if self._tr is not None:
            self._tr.point(EV_WORKER_DEATH, ts=now, pe=pe, task=pending_task)
        lost = list(self._deques[pe])
        self._deques[pe].clear()
        if self._attempts[pending_task] <= self.max_retries:
            if self._tr is not None:
                self._tr.point(
                    EV_TASK_RETRY,
                    ts=now,
                    pe=pe,
                    task=pending_task,
                    attempt=self._attempts[pending_task],
                    reason="worker_death",
                )
            lost.append(pending_task)
        else:
            self._abandon(pending_task, now, "worker_death")
        # Thieves queued at the dead PE get an immediate failure reply
        # (death detection), so their rounds complete instead of hanging.
        while self._queued_requests[pe]:
            thief = self._queued_requests[pe].pop(0)
            self._reply_fail(pe, thief, now)
        st.tasks_lost += len(lost)
        st.messages_sent += len(lost)
        self._redispatch_tasks(lost, pe, now)

    def _redispatch_tasks(self, tasks: "list[int]", from_pe: int, now: float) -> None:
        """Round-robin tasks over surviving PEs, paying transfer latency."""
        survivors = [p for p in range(self.topology.num_pes) if not self._dead[p]]
        if not survivors:
            for t in tasks:
                self._abandon(t, now, "no_survivors")
            return
        for i, t in enumerate(tasks):
            target = survivors[i % len(survivors)]
            self._messages += 1
            delay = self.topology.latency(from_pe, target, payload=1) + self.transfer_cost
            self._push_event(now + delay, "redispatch", target, payload=t)

    def _on_redispatch(self, ev: _Event) -> None:
        pe, task = ev.pe, ev.payload
        if self._dead[pe]:
            # The chosen survivor died in transit; bounce onward.
            self._redispatch_tasks([task], pe, ev.time)
            return
        self._stolen_marks.add(task)
        self._deques[pe].append(task)
        self._activate(pe, ev.time)

    def _abandon(self, task: int, now: float, reason: str) -> None:
        self._abandoned.append(task)
        self._remaining -= 1
        if self._tr is not None:
            self._tr.point(
                EV_TASK_ABANDONED,
                ts=now,
                task=task,
                attempts=self._attempts.get(task, 0),
                reason=reason,
            )

    def _start_steal_round(self, pe: int, now: float) -> None:
        victims = self.steal_policy.select_victims(
            pe, int(self._idle_rounds[pe]), self.topology, self.rng
        )
        victims = [v for v in victims if v != pe]
        if not victims:
            self._schedule_retry(pe, now)
            return
        self._round_found[pe] = False
        self._pending_replies[pe] = len(victims)
        st = self._stats[pe]
        for v in victims:
            st.steal_requests_sent += 1
            st.messages_sent += 1
            self._messages += 1
            if self._tr is not None:
                self._tr.point(EV_STEAL_REQUEST, ts=now, pe=pe, victim=v)
            self._push_event(
                now + self.topology.latency(pe, v), "steal_request", v, payload=pe
            )

    def _on_steal_request(self, ev: _Event) -> None:
        victim, thief = ev.pe, ev.payload
        self._stats[victim].steal_requests_received += 1
        if self._dead[victim]:
            self._reply_fail(victim, thief, ev.time)
            return
        if self._busy[victim] and not self.offload_service:
            self._queued_requests[victim].append(thief)
            return
        self._service_steal(victim, thief, ev.time)

    def _service_steal(self, victim: int, thief: int, now: float) -> None:
        vst = self._stats[victim]
        dq = self._deques[victim]
        stealable = len(dq) - self.min_keep
        if stealable > 0:
            if self.steal_chunk == "half":
                n = max(stealable // 2, 1)
            else:
                n = min(int(self.steal_chunk), stealable)
            tasks = [dq.pop() for _ in range(n)]  # steal from the back
            vst.steals_serviced += 1
            vst.tasks_lost += n
            vst.messages_sent += 1
            self._messages += 1
            if self._tr is not None:
                self._tr.point(
                    EV_STEAL_TRANSFER, ts=now, pe=victim, thief=thief, tasks=n
                )
            delay = self.topology.latency(victim, thief, payload=n) + self.transfer_cost * n
            self._push_event(now + delay, "steal_reply", thief, payload=tasks)
        else:
            self._reply_fail(victim, thief, now)

    def _reply_fail(self, victim: int, thief: int, now: float) -> None:
        vst = self._stats[victim]
        vst.steals_failed += 1
        vst.messages_sent += 1
        self._messages += 1
        if self._tr is not None:
            self._tr.point(EV_STEAL_FAIL, ts=now, pe=victim, thief=thief)
        self._push_event(
            now + self.topology.latency(victim, thief), "steal_reply", thief, payload=[]
        )

    def _on_steal_reply(self, ev: _Event) -> None:
        thief = ev.pe
        tasks: "list[int]" = ev.payload
        now = ev.time
        self._pending_replies[thief] -= 1
        if self._tr is not None:
            self._tr.point(EV_STEAL_REPLY, ts=now, pe=thief, tasks=len(tasks))
        if self._dead[thief]:
            # The thief died while its request was in flight; the runtime
            # reclaims the transfer instead of stranding the tasks.
            if tasks:
                self._redispatch_tasks(tasks, thief, now)
            return
        if tasks:
            self._round_found[thief] = True
            self._idle_rounds[thief] = 0
            for t in tasks:
                self._stolen_marks.add(t)
                self._deques[thief].append(t)
            self._activate(thief, now)
        elif self._pending_replies[thief] == 0 and not self._round_found[thief]:
            # Whole round failed: back off and retry while work remains.
            self._idle_rounds[thief] += 1
            self._schedule_retry(thief, now)

    def _schedule_retry(self, pe: int, now: float) -> None:
        if self._remaining <= 0:
            return
        wait = self.backoff_base * (2.0 ** min(int(self._idle_rounds[pe]), self.max_idle_rounds))
        self._push_event(now + wait, "retry", pe)

    def _on_retry(self, ev: _Event) -> None:
        pe = ev.pe
        if self._busy[pe] or self._deques[pe]:
            self._activate(pe, ev.time)
            return
        if self._remaining > 0 and self._pending_replies[pe] == 0:
            self._start_steal_round(pe, ev.time)


def run_static_phase(
    topology: ClusterTopology,
    executor: Callable[[int, int], float],
    assignment: "dict[int, int]",
    tracer: "Tracer | None" = None,
    fault_injector: "FaultInjector | None" = None,
    max_retries: int = 2,
) -> SimResult:
    """Execute a phase with no load balancing (the paper's baseline)."""
    sim = WorkStealingSimulator(
        topology,
        executor,
        steal_policy=None,
        tracer=tracer,
        fault_injector=fault_injector,
        max_retries=max_retries,
    )
    return sim.run(assignment)
