"""repro.kernels — pluggable compute-kernel backends for the hot primitives.

The ROADMAP's "pluggable compute-kernel backend" item: every layer of the
planner stack (``Environment`` collision queries, ``BruteForceNN``
distance blocks, ``StraightLinePlanner`` batch validation, ``QueryEngine``
and ``PlanService``) bottoms out in the four primitives of
:class:`~repro.kernels.base.KernelBackend`, dispatched through this
registry:

* ``reference`` — today's float64 NumPy expressions, bit-exact with the
  historical inline code.  The default everywhere.
* ``fast32`` — float32 blocked/tiled kernels over the structure-of-arrays
  snapshot (:class:`~repro.kernels.data.EnvKernelData`); statistically
  equivalent, ~2x on medium scenes (see BENCH_perf.json).
* ``bvh`` — BVH-culled collision kernels for obstacle-heavy scenes
  (10³–10⁵ primitives, see ``repro.geometry.scenarios``); *bit-exact*
  with the reference (the tree culls, leaf tests are the reference
  expressions), distance primitives delegate to ``reference``.
* ``numba`` — compiled scalar loops with early exit; registered only when
  numba imports, silently absent otherwise.

Select a backend per plan request with
``ExecutionPolicy(kernel_backend="fast32")``, per environment with
``Environment.set_kernel_backend``, or per call via the ``kernels=``
parameter the hot-path entry points accept.

Adding a backend is ``register(name, factory)`` plus the four methods —
see the recipe in DESIGN.md.
"""

from __future__ import annotations

from .base import KernelBackend
from .bvh_backend import BVHKernels
from .data import EnvKernelData
from .fast32 import Fast32Kernels
from .reference import ReferenceKernels
from .select import select_canonical, select_canonical_rows

__all__ = [
    "KernelBackend",
    "EnvKernelData",
    "ReferenceKernels",
    "Fast32Kernels",
    "BVHKernels",
    "DEFAULT_BACKEND",
    "register",
    "get_backend",
    "available_backends",
    "numba_available",
    "select_canonical",
    "select_canonical_rows",
]

DEFAULT_BACKEND = "reference"

#: name -> zero-arg factory.  Instantiation is deferred (and cached) so
#: registering an expensive backend costs nothing until first use.
_FACTORIES: "dict[str, type[KernelBackend] | object]" = {}
_INSTANCES: "dict[str, KernelBackend]" = {}


def register(name: str, factory) -> None:
    """Register a backend factory (a ``KernelBackend`` subclass or any
    zero-arg callable returning one) under ``name``.  Re-registering a
    name replaces the factory and drops the cached instance."""
    if not name or not isinstance(name, str):
        raise ValueError("backend name must be a non-empty string")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> "list[str]":
    """Registered backend names, sorted (``numba`` appears only when the
    import succeeded)."""
    return sorted(_FACTORIES)


def get_backend(name: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend by name (cached singleton per name).

    ``None`` resolves to :data:`DEFAULT_BACKEND`; an already-constructed
    :class:`KernelBackend` passes through unchanged, so call sites accept
    either form.  Unknown names raise ``ValueError`` listing what is
    registered.
    """
    if name is None:
        name = DEFAULT_BACKEND
    if isinstance(name, KernelBackend):
        return name
    try:
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = _INSTANCES[name] = _FACTORIES[name]()
        return inst
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        ) from None


def numba_available() -> bool:
    """True when the numba backend registered at import time."""
    return "numba" in _FACTORIES


register("reference", ReferenceKernels)
register("fast32", Fast32Kernels)
register("bvh", BVHKernels)

try:  # numba is optional: absent => the backend simply isn't listed.
    from .numba_backend import NumbaKernels
except ImportError:  # pragma: no cover - exercised on the no-numba CI leg
    pass
else:  # pragma: no cover - exercised on the numba CI leg
    register("numba", NumbaKernels)
