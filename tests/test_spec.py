"""Tests for the layered request API (repro.spec) and the flat-kwarg shim."""

import warnings
from dataclasses import FrozenInstanceError

import numpy as np
import pytest

from repro import (
    ExecutionPolicy,
    FaultPolicy,
    ObsConfig,
    PlanRequest,
    WorkloadSpec,
    plan,
)
from repro.geometry import environments
from repro.spec import _FLAT_MAP, _environment_fingerprint


class TestSpecObjects:
    def test_specs_are_frozen(self):
        with pytest.raises(FrozenInstanceError):
            WorkloadSpec().num_regions = 5
        with pytest.raises(FrozenInstanceError):
            ExecutionPolicy().workers = 5

    def test_workload_validate_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            WorkloadSpec(planner="astar").validate()
        with pytest.raises(ValueError):
            WorkloadSpec(num_regions=0).validate()

    def test_execution_validate_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="cloud").validate()
        with pytest.raises(ValueError):
            ExecutionPolicy(strategy="telepathy").validate()
        with pytest.raises(ValueError):
            ExecutionPolicy(backend="gpu").validate()

    def test_fault_policy_pool_kwargs_round_trip(self):
        fp = FaultPolicy(policy="retry", max_retries=5, task_timeout=1.5)
        kw = fp.pool_kwargs(retry_seed=7)
        assert kw == {
            "failure_policy": "retry",
            "max_retries": 5,
            "task_timeout": 1.5,
            "fault_injector": None,
            "retry_seed": 7,
        }


class TestCacheKey:
    def test_equal_specs_share_a_key(self):
        a = WorkloadSpec(environment="med-cube", num_regions=32, seed=4)
        b = WorkloadSpec(environment="med-cube", num_regions=32, seed=4)
        assert a.cache_key() == b.cache_key()

    def test_different_seed_changes_the_key(self):
        a = WorkloadSpec(seed=0)
        b = WorkloadSpec(seed=1)
        assert a.cache_key() != b.cache_key()

    @pytest.mark.parametrize(
        "changes",
        [
            {"planner": "rrt"},
            {"num_regions": 57},
            {"samples_per_region": 9},
            {"nodes_per_region": 13},
            {"environment": "maze-2d"},
            {"options": {"k_closest": 4}},
        ],
    )
    def test_every_roadmap_shaping_field_participates(self, changes):
        base = WorkloadSpec()
        assert WorkloadSpec(**changes).cache_key() != base.cache_key()

    def test_environment_instances_hash_by_content(self):
        e1 = environments.by_name("med-cube")
        e2 = environments.by_name("med-cube")
        assert e1 is not e2
        assert _environment_fingerprint(e1) == _environment_fingerprint(e2)
        k1 = WorkloadSpec(environment=e1).cache_key()
        k2 = WorkloadSpec(environment=e2).cache_key()
        assert k1 == k2

    def test_name_and_instance_keys_differ(self):
        # A catalog name and a materialised instance are different
        # identities on purpose: the name is the stable cross-process key.
        by_name = WorkloadSpec(environment="med-cube").cache_key()
        by_inst = WorkloadSpec(
            environment=environments.by_name("med-cube")
        ).cache_key()
        assert by_name != by_inst


class TestPlanRequestAggregate:
    def test_defaults(self):
        req = PlanRequest()
        assert req.workload == WorkloadSpec()
        assert req.execution == ExecutionPolicy()
        assert req.faults == FaultPolicy()
        assert req.obs == ObsConfig()
        req.validate()

    def test_frozen(self):
        req = PlanRequest()
        with pytest.raises(AttributeError, match="frozen"):
            req.workload = WorkloadSpec()

    def test_wrong_spec_type_raises(self):
        with pytest.raises(TypeError, match="WorkloadSpec"):
            PlanRequest(workload=ExecutionPolicy())
        with pytest.raises(TypeError, match="FaultPolicy"):
            PlanRequest(faults={"policy": "retry"})

    def test_unknown_flat_kwarg_raises(self):
        with pytest.raises(TypeError, match="unknown PlanRequest field"):
            PlanRequest(n_workers=4)

    def test_mixing_flat_with_same_spec_raises(self):
        with pytest.raises(TypeError, match="cannot mix"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                PlanRequest(workload=WorkloadSpec(), num_regions=32)

    def test_flat_kwarg_with_other_spec_is_fine(self):
        with pytest.warns(DeprecationWarning):
            req = PlanRequest(workload=WorkloadSpec(num_regions=8), num_pes=4)
        assert req.workload.num_regions == 8
        assert req.execution.num_pes == 4

    def test_replace_derives_a_new_request(self):
        req = PlanRequest()
        other = req.replace(execution=ExecutionPolicy(num_pes=99))
        assert other.execution.num_pes == 99
        assert req.execution.num_pes == ExecutionPolicy().num_pes
        assert other != req
        with pytest.raises(TypeError, match="unknown spec field"):
            req.replace(num_pes=3)

    def test_equality(self):
        assert PlanRequest() == PlanRequest()
        assert PlanRequest(workload=WorkloadSpec(seed=1)) != PlanRequest()


class TestFlatShim:
    def test_flat_kwargs_warn_once(self):
        with pytest.warns(DeprecationWarning, match="flat PlanRequest kwargs"):
            PlanRequest(num_regions=32, strategy="hybrid", num_pes=4)

    def test_spec_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            PlanRequest(workload=WorkloadSpec(num_regions=32))

    def test_every_flat_kwarg_routes_to_its_canonical_field(self):
        flat = {
            "environment": "maze-2d",
            "planner": "rrt",
            "num_regions": 7,
            "samples_per_region": 3,
            "nodes_per_region": 5,
            "seed": 11,
            "workload_options": {"k_closest": 2},
            "execution": "local",
            "strategy": "hybrid",
            "partitioner": "greedy",
            "num_pes": 3,
            "steal_chunk": 2,
            "workers": 2,
            "backend": "thread",
            "chunksize": 4,
            "failure_policy": "degrade",
            "max_retries": 9,
            "task_timeout": 2.0,
        }
        with pytest.warns(DeprecationWarning):
            req = PlanRequest(**flat)
        # Legacy property reads give back exactly what went in...
        for key, value in flat.items():
            if key == "execution":
                assert req.execution.mode == "local"
            elif key == "workload_options":
                assert req.workload_options == value
            else:
                assert getattr(req, key) == value
        # ...and the canonical homes hold the same values.
        assert req.workload.planner == "rrt"
        assert req.execution.strategy == "hybrid"
        assert req.faults.policy == "degrade"

    def test_legacy_execution_string_still_validates(self):
        with pytest.warns(DeprecationWarning):
            req = PlanRequest(execution="cloud")
        with pytest.raises(ValueError):
            req.validate()

    def test_flat_map_covers_only_real_spec_fields(self):
        from dataclasses import fields
        from repro.spec import _SPEC_TYPES

        for spec_name, spec_field in _FLAT_MAP.values():
            assert spec_field in {f.name for f in fields(_SPEC_TYPES[spec_name])}


class TestShimParity:
    """Old flat construction and new spec construction must produce
    bit-identical plans."""

    FLAT = dict(
        environment="med-cube",
        planner="prm",
        num_regions=32,
        samples_per_region=4,
        strategy="hybrid",
        num_pes=4,
        seed=3,
    )

    def spec_request(self):
        return PlanRequest(
            workload=WorkloadSpec(
                environment="med-cube",
                planner="prm",
                num_regions=32,
                samples_per_region=4,
                seed=3,
            ),
            execution=ExecutionPolicy(strategy="hybrid", num_pes=4),
        )

    def test_requests_compare_equal(self):
        with pytest.warns(DeprecationWarning):
            flat = PlanRequest(**self.FLAT)
        assert flat == self.spec_request()

    def test_reports_bit_identical(self):
        with pytest.warns(DeprecationWarning):
            old = plan(PlanRequest(**self.FLAT))
        new = plan(self.spec_request())
        assert old.total_time == new.total_time
        assert sorted(old.roadmap.edges()) == sorted(new.roadmap.edges())
        old_ids, old_cfg = old.roadmap.configs_array()
        new_ids, new_cfg = new.roadmap.configs_array()
        assert np.array_equal(old_ids, new_ids)
        assert np.array_equal(old_cfg, new_cfg)
        assert old.summary() == new.summary()


class TestUnifiedEntryPoints:
    def test_plan_accepts_bare_workload_spec(self):
        wl = WorkloadSpec(num_regions=16, samples_per_region=2, seed=5)
        report = plan(wl, execution=ExecutionPolicy(num_pes=2))
        assert report.request.workload == wl
        assert report.request.execution.num_pes == 2

    def test_plan_rejects_overrides_on_full_request(self):
        with pytest.raises(TypeError, match="overrides"):
            plan(PlanRequest(), execution=ExecutionPolicy())

    def test_bare_spec_equals_wrapped_request(self):
        wl = WorkloadSpec(num_regions=16, samples_per_region=2, seed=5)
        a = plan(wl)
        b = plan(PlanRequest(workload=wl))
        assert sorted(a.roadmap.edges()) == sorted(b.roadmap.edges())

    def test_solve_queries_accepts_specs(self):
        wl = WorkloadSpec(num_regions=16, samples_per_region=4, seed=5)
        report = plan(wl)
        cs = wl.resolve_cspace()
        rng = np.random.default_rng(0)
        lo, hi = cs.bounds.lo, cs.bounds.hi
        queries = [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(4)]
        flat = report.solve_queries(queries, workers=2, failure_policy="retry")
        spec = report.solve_queries(
            queries,
            execution=ExecutionPolicy(workers=2),
            faults=FaultPolicy(policy="retry"),
        )
        assert flat.solved == spec.solved
        for a, b in zip(flat.results, spec.results):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.path_vertices == b.path_vertices
                assert np.array_equal(a.path_configs, b.path_configs)


class TestKernelBackendPolicy:
    def test_default_is_inherit(self):
        ex = ExecutionPolicy()
        assert ex.kernel_backend is None
        ex.validate()  # None is always valid

    def test_known_backends_validate(self):
        from repro.kernels import available_backends

        for name in available_backends():
            ExecutionPolicy(kernel_backend=name).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            ExecutionPolicy(kernel_backend="fortran77").validate()
