"""Fig. 5(a): PRM execution time with load balancing on med-cube."""

from repro.bench import fig5a_prm_medcube_time


def test_fig5a_prm_medcube_time(once):
    rows = once(fig5a_prm_medcube_time)
    by_pe = {}
    for r in rows:
        by_pe.setdefault(r.num_pes, {})[r.strategy] = r
    for P, strat in by_pe.items():
        # Every load balancing technique beats the baseline on med-cube.
        for name in ("repartition", "hybrid", "rand-8"):
            assert strat[name].speedup_vs_none > 1.2, (P, name)
    # Strong scaling: the baseline itself gets faster with more PEs.
    pes = sorted(by_pe)
    for a, b in zip(pes, pes[1:]):
        assert by_pe[b]["none"].total_time < by_pe[a]["none"].total_time
