"""The narrow kernel interface every compute backend implements.

A backend supplies exactly four primitives — the hot inner loops every
layer of the planner stack bottoms out in:

* :meth:`KernelBackend.points_free` — point-set collision masks,
* :meth:`KernelBackend.segments_free` — batched exact segment tests,
* :meth:`KernelBackend.pairwise_accumulate` — blocked k-NN distance
  accumulation, and
* :meth:`KernelBackend.knn_block_min` — top-k selection over a stored
  point block.

Everything above (``Environment``, ``BruteForceNN``,
``StraightLinePlanner``, ``QueryEngine``, ``PlanService``) is written
against this interface, so adding a backend (CuPy, multi-node, ...) never
touches planner logic.  Contracts:

* Inputs are float64 arrays; obstacle data arrives as an
  :class:`~repro.kernels.data.EnvKernelData` snapshot.
* Outputs are float64 / bool / int64 regardless of the backend's internal
  compute dtype (``dtype`` advertises the latter).
* The ``reference`` backend is bit-exact with the historical inline NumPy
  expressions; fast backends guarantee *statistical* equivalence only —
  identical verdicts away from decision boundaries, distances within
  float32 rounding (see the equivalence gates in ``tests/test_kernels.py``
  and ``repro.bench.perf``).  The ``bvh`` backend is the exception among
  the accelerated backends: it culls with a conservative tree but decides
  with the reference expressions, so it is held to *bit-exact* gates
  (``tests/test_bvh.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .data import EnvKernelData

__all__ = ["KernelBackend"]


class KernelBackend(ABC):
    """Interchangeable implementation of the planner's hot primitives."""

    #: Registry name (``"reference"``, ``"fast32"``, ``"numba"``, ...).
    name: str = "abstract"
    #: Internal compute dtype (outputs are always float64/bool/int64).
    dtype = np.float64

    # -- collision ---------------------------------------------------------
    @abstractmethod
    def points_free(self, data: EnvKernelData, points: np.ndarray) -> np.ndarray:
        """``(n,)`` bool: point is inside the workspace bounds and outside
        every obstacle.  ``points`` has shape ``(n, d)``."""

    @abstractmethod
    def segments_free(self, data: EnvKernelData, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """``(n,)`` bool: both endpoints are in bounds and the swept
        segment ``p[i] -> q[i]`` intersects no obstacle (exact test, not
        sampled).  ``p``/``q`` have shape ``(n, d)``."""

    # -- distances ---------------------------------------------------------
    @abstractmethod
    def pairwise_accumulate(self, stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        """Write ``||stored[j] - queries[i]||`` into ``out[i, j]``.

        ``stored`` is ``(n, d)``, ``queries`` is ``(m, d)``, ``out`` is a
        preallocated float64 ``(m, n)`` buffer.  ``n == 0`` is a no-op.
        """

    @abstractmethod
    def knn_block_min(
        self, stored: np.ndarray, queries: np.ndarray, k: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Positional indices and distances of the ``k`` nearest stored
        points per query: ``(idx (m, k) int64, dist (m, k) float64)``.

        Rows are sorted ascending by (distance, stored index); when fewer
        than ``k`` points are stored the tail is padded with index ``-1``
        and distance ``+inf`` (test validity with ``np.isfinite(dist)``).
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
