"""Uniform grid subdivision of C-space (Algorithm 1, lines 1-6).

The positional dimensions of C-space are cut into an axis-aligned grid of
``Nr`` box regions.  Adjacency connects regions sharing a face (or,
optionally, an edge/corner).  A configurable fractional *overlap* grows
each region's sampling box so that samples near boundaries can seed the
inter-region connection phase, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.primitives import AABB
from .region import Region, RegionGraph

__all__ = ["BoxRegion", "UniformSubdivision", "grid_shape_for"]


@dataclass
class BoxRegion(Region):
    """A grid cell: the exclusive core box plus an overlapped sampling box."""

    bounds: AABB = None  # type: ignore[assignment]
    sample_bounds: AABB = None  # type: ignore[assignment]
    grid_index: "tuple[int, ...]" = ()

    def contains(self, config: np.ndarray) -> bool:
        pos = np.asarray(config, dtype=float)[: self.bounds.dim]
        return bool(self.bounds.contains(pos))

    def volume(self) -> float:
        return self.bounds.volume()


def grid_shape_for(num_regions: int, dim: int, extents: np.ndarray) -> "tuple[int, ...]":
    """Pick a grid shape with ~``num_regions`` cells, proportionate to the
    workspace extents so cells are near-cubical."""
    if num_regions < 1:
        raise ValueError("num_regions must be >= 1")
    extents = np.asarray(extents, dtype=float)
    if np.any(extents <= 0):
        raise ValueError("extents must be positive")
    # Ideal continuous cell count per axis: n_i ∝ extents_i, prod = num_regions.
    scale = (num_regions / np.prod(extents)) ** (1.0 / dim)
    shape = np.maximum(np.rint(extents * scale).astype(int), 1)
    # Nudge the largest axes until the product is close to the target.
    while np.prod(shape) < num_regions:
        shape[np.argmin(shape * 1.0 / extents)] += 1
    return tuple(int(s) for s in shape)


class UniformSubdivision:
    """Axis-aligned grid subdivision of the positional C-space box.

    Parameters
    ----------
    bounds:
        Box to subdivide (typically the positional slice of C-space).
    num_regions:
        Target region count; the actual grid has the nearest achievable
        cell count (``shape`` exposes it).
    overlap:
        Fraction of a cell's half-extent by which sampling boxes extend
        beyond the exclusive core (paper: "some user-defined overlap").
    include_diagonal:
        When True, regions sharing only an edge/corner are also adjacent.
    """

    def __init__(
        self,
        bounds: AABB,
        num_regions: int,
        overlap: float = 0.1,
        include_diagonal: bool = False,
        shape: "tuple[int, ...] | None" = None,
    ):
        if overlap < 0:
            raise ValueError("overlap must be non-negative")
        self.bounds = bounds
        self.overlap = overlap
        self.include_diagonal = include_diagonal
        self.shape = (
            shape if shape is not None
            else grid_shape_for(num_regions, bounds.dim, bounds.extents)
        )
        if len(self.shape) != bounds.dim:
            raise ValueError("shape dimensionality mismatch")
        self._cell = bounds.extents / np.asarray(self.shape, dtype=float)
        self.graph = self._build()

    # -- construction ----------------------------------------------------------
    def _index_to_id(self, idx: "tuple[int, ...]") -> int:
        rid = 0
        for i, n in zip(idx, self.shape):
            rid = rid * n + i
        return rid

    def _id_to_index(self, rid: int) -> "tuple[int, ...]":
        idx = []
        for n in reversed(self.shape):
            idx.append(rid % n)
            rid //= n
        return tuple(reversed(idx))

    def _build(self) -> RegionGraph:
        graph = RegionGraph()
        dim = self.bounds.dim
        margin = 0.5 * self.overlap * self._cell
        for flat in range(int(np.prod(self.shape))):
            idx = self._id_to_index(flat)
            lo = self.bounds.lo + np.asarray(idx) * self._cell
            hi = lo + self._cell
            core = AABB(lo, hi)
            sample = AABB(
                np.maximum(lo - margin, self.bounds.lo),
                np.minimum(hi + margin, self.bounds.hi),
            )
            graph.add_region(BoxRegion(id=flat, bounds=core, sample_bounds=sample, grid_index=idx))
        # Face adjacencies.
        for flat in range(int(np.prod(self.shape))):
            idx = self._id_to_index(flat)
            for d in range(dim):
                if idx[d] + 1 < self.shape[d]:
                    nbr = list(idx)
                    nbr[d] += 1
                    graph.add_adjacency(flat, self._index_to_id(tuple(nbr)))
            if self.include_diagonal:
                for offset in np.ndindex(*(3,) * dim):
                    delta = np.asarray(offset) - 1
                    if np.all(delta == 0) or np.sum(np.abs(delta)) < 2:
                        continue
                    nbr = np.asarray(idx) + delta
                    if np.all(nbr >= 0) and np.all(nbr < self.shape):
                        nbr_id = self._index_to_id(tuple(int(x) for x in nbr))
                        if nbr_id > flat:
                            graph.add_adjacency(flat, nbr_id)
        return graph

    # -- queries ------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        return self.graph.num_regions

    def locate(self, position: np.ndarray) -> int:
        """O(1) region lookup for a positional point (clamped to bounds)."""
        pos = np.asarray(position, dtype=float)[: self.bounds.dim]
        rel = (pos - self.bounds.lo) / self._cell
        idx = np.clip(np.floor(rel).astype(int), 0, np.asarray(self.shape) - 1)
        return self._index_to_id(tuple(int(i) for i in idx))

    def locate_batch(self, positions: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(positions, dtype=float))[:, : self.bounds.dim]
        rel = (pts - self.bounds.lo) / self._cell
        idx = np.clip(rel.astype(int), 0, np.asarray(self.shape) - 1)
        flat = np.zeros(idx.shape[0], dtype=np.int64)
        for i, n in enumerate(self.shape):
            flat = flat * n + idx[:, i]
        return flat

    def region_of(self, rid: int) -> BoxRegion:
        return self.graph.region(rid)  # type: ignore[return-value]
