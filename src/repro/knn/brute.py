"""Vectorised brute-force nearest neighbours.

O(n) per query but with NumPy constants small enough that it beats the
tree structures below a few thousand points — the regime of regional
roadmaps under heavy over-decomposition.
"""

from __future__ import annotations

import numpy as np

from ..kernels import get_backend, select_canonical, select_canonical_rows
from ..kernels.reference import pairwise_accumulate_exact
from .base import NeighborFinder

__all__ = ["BruteForceNN"]

_INITIAL_CAPACITY = 64


class BruteForceNN(NeighborFinder):
    """Amortised-growth array of points; queries are one broadcast each.

    ``kernels`` optionally selects the :mod:`repro.kernels` backend used
    for the batched distance blocks; the default (``reference``) is
    bit-exact with the historical inline accumulation.  The per-query
    scalar paths stay float64 regardless of backend.
    """

    def __init__(self, dim: int, kernels=None):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._kernels = get_backend(kernels)
        self._points = np.empty((_INITIAL_CAPACITY, dim))
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n = 0

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        cap = self._points.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        # Explicit alloc+copy of the live prefix: np.resize would fill the
        # new space by tiling the old buffer (wasted copying of garbage).
        points = np.empty((new_cap, self.dim))
        points[: self._n] = self._points[: self._n]
        ids = np.empty(new_cap, dtype=np.int64)
        ids[: self._n] = self._ids[: self._n]
        self._points, self._ids = points, ids

    def add(self, point_id: int, point: np.ndarray) -> None:
        self._ensure_capacity(1)
        self._points[self._n] = point
        self._ids[self._n] = point_id
        self._n += 1

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        self._ensure_capacity(points.shape[0])
        self._points[self._n : self._n + points.shape[0]] = points
        self._ids[self._n : self._n + points.shape[0]] = ids
        self._n += points.shape[0]

    @staticmethod
    def _dist_block(stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        """Write ``||stored[j] - queries[i]||`` into ``out[i, j]`` using
        per-dimension 2-D accumulation (see :meth:`knn_block_growing`).

        Static and always bit-exact float64 — the batched RRT calls it
        directly for its frozen-tree distances.  Instance query paths go
        through the configured kernel backend instead.
        """
        pairwise_accumulate_exact(stored, queries, out)

    def _distances(self, query: np.ndarray) -> np.ndarray:
        pts = self._points[: self._n]
        self.stats.queries += 1
        self.stats.distance_evals += self._n
        return np.linalg.norm(pts - np.asarray(query, dtype=float)[None, :], axis=1)

    # Canonical (distance, insertion order) top-k selection — shared with
    # the kernel backends so cross-backend tests compare results exactly
    # (kept as aliases for the historical internal names).
    _select_canonical = staticmethod(select_canonical)
    _select_canonical_rows = staticmethod(select_canonical_rows)

    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0 or k <= 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        if exclude is not None:
            mask = ids != exclude
            d, ids = d[mask], ids[mask]
        if d.size == 0:
            return []
        order = self._select_canonical(d, min(k, d.size))
        return [(int(ids[i]), float(d[i])) for i in order]

    def knn_batch_arrays(self, queries: np.ndarray, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """Canonical k-NN for every row of ``queries`` in one distance
        broadcast, returned as padded ``(ids, dists)`` arrays — same
        results, ordering, and stats charges as a :meth:`knn` loop without
        the per-query tuple lists."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m = queries.shape[0]
        kk = max(k, 0)
        ids = np.full((m, kk), -1, dtype=np.int64)
        dists = np.full((m, kk), np.inf)
        if m == 0 or self._n == 0 or kk == 0:
            return ids, dists
        D = np.empty((m, self._n))
        self._kernels.pairwise_accumulate(self._points[: self._n], queries, D)
        self.stats.queries += m
        self.stats.distance_evals += m * self._n
        k_eff = min(kk, self._n)
        sel, dvals = self._select_canonical_rows(D, k_eff)
        stored_ids = self._ids[: self._n]
        for i, (srow, drow) in enumerate(zip(sel, dvals)):
            ids[i, :k_eff] = stored_ids[srow]
            dists[i, :k_eff] = drow
        return ids, dists

    def knn_batch(self, queries: np.ndarray, k: int) -> "list[list[tuple[int, float]]]":
        """Tuple-list view of :meth:`knn_batch_arrays` (compatibility)."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m = queries.shape[0]
        if m == 0:
            return []
        if self._n == 0 or k <= 0:
            return [[] for _ in range(m)]
        ids, dists = self.knn_batch_arrays(queries, k)
        return [
            [(int(i), float(d)) for i, d in zip(irow, drow) if np.isfinite(d)]
            for irow, drow in zip(ids, dists)
        ]

    def knn_block_growing(
        self, ids: np.ndarray, points: np.ndarray, k: int
    ) -> "list[list[tuple[int, float]]]":
        """k-NN for a block of points as if queried/inserted one at a time.

        Query ``i`` searches the stored points plus ``points[:i]``, and all
        block points are inserted afterwards — exactly equivalent (same
        results, same :class:`KnnStats` charges) to the interleaved
        ``knn(points[i], k); add(ids[i], points[i])`` sequence the PRM
        build loop performs, but with all distance work done in two
        broadcasts instead of one per query.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        m = points.shape[0]
        if ids.shape[0] != m:
            raise ValueError("ids and points length mismatch")
        n0 = self._n
        out: "list[list[tuple[int, float]]]" = []
        if m == 0:
            return out
        # Row i of D holds query i's distances: stored points in columns
        # [0, n0), earlier block points in columns [n0, n0+i); later block
        # points (and self) are masked to +inf so one row-wise selection
        # covers the whole block.
        D = np.empty((m, n0 + m))
        # Distances are accumulated per dimension in 2-D planes instead of
        # reducing a (m, n, dim) broadcast: np.add.reduce over the last
        # axis sums left to right, so `s = dx0²; s += dx1²; ...; sqrt(s)`
        # produces bit-identical values to np.linalg.norm(diff, axis=2)
        # (and to the per-query `knn` path) while never materialising the
        # 3-D temporary — about a third of the memory traffic on the
        # O(n²) floor of roadmap construction.
        self._kernels.pairwise_accumulate(self._points[:n0], points, D[:, :n0])
        if m > 1:
            self._kernels.pairwise_accumulate(points, points, D[:, n0:])
            # Mask self-distances and not-yet-visible later block points.
            D[:, n0:][np.arange(m)[None, :] >= np.arange(m)[:, None]] = np.inf
        else:
            D[:, n0:] = np.inf
        # Charge exactly what the interleaved loop would: a query against
        # an empty structure (or with k<=0) returns early uncharged.
        if k > 0:
            charged = m if n0 else m - 1
            self.stats.queries += max(charged, 0)
            self.stats.distance_evals += m * n0 + m * (m - 1) // 2
        all_ids = np.concatenate((self._ids[:n0], ids))
        # Rows with fewer than k visible points (only the first k-n0 rows
        # of a fresh structure) take per-row selection; the rest batch.
        i0 = min(max(k - n0, 0), m) if k > 0 else m
        for i in range(i0):
            n = n0 + i
            if n == 0 or k <= 0:
                out.append([])
                continue
            d = D[i, :n]
            order = self._select_canonical(d, min(k, n))
            out.append([(int(all_ids[j]), float(d[j])) for j in order])
        if i0 < m:
            # Every row past i0 sees at least k finite (visible) distances,
            # so the +inf mask never leaks into a selection.
            sel, dists = self._select_canonical_rows(D[i0:], k)
            for srow, drow in zip(sel, dists):
                out.append([(int(all_ids[j]), float(dj)) for j, dj in zip(srow, drow)])
        self.add_batch(ids, points)
        return out

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        mask = d <= r
        if exclude is not None:
            mask &= ids != exclude
        sel = np.nonzero(mask)[0]
        sel = sel[np.argsort(d[sel], kind="stable")]
        return [(int(ids[i]), float(d[i])) for i in sel]

    def __len__(self) -> int:
        return self._n
