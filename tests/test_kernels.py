"""Kernel-backend suite: registry behaviour, the SoA snapshot and its
caching on ``Environment``, and the reference-vs-fast equivalence battery.

The equivalence contract is two-tier (mirroring the bench gates):

* ``reference`` is bit-exact with the historical inline expressions —
  covered implicitly by the rest of the test suite running on the
  default backend, and explicitly by the ``_dist_block`` parity test.
* fast backends (``fast32``, and ``numba`` when installed) must agree
  with the reference on every *stable* query: one whose reference
  verdict survives inflating/shrinking all obstacle faces by eps
  (:meth:`EnvKernelData.inflated`).  Queries inside the eps boundary
  band may flip under float32 rounding; nothing else may.

Property generation follows the ``test_properties`` pattern: hypothesis
drives when installed, otherwise a seeded stdlib-``random`` sweep runs
the same bodies.
"""

import random

import numpy as np
import pytest

from repro.cspace import EuclideanCSpace
from repro.geometry import AABB, Environment
from repro.kernels import (
    DEFAULT_BACKEND,
    EnvKernelData,
    available_backends,
    get_backend,
    numba_available,
    register,
)
from repro.kernels.base import KernelBackend
from repro.knn.brute import BruteForceNN

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

FALLBACK_EXAMPLES = 25

#: Decision-boundary guard width for the stable-query contract.
EPS = 1e-6

#: Every fast backend present in this environment.
FAST_BACKENDS = ["fast32"] + (["numba"] if numba_available() else [])


def property_test(strategy_builder, fallback_gen, examples=50):
    """Run ``fn(value)`` over generated values (hypothesis or seeded sweep)."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return settings(max_examples=examples, deadline=None)(
                given(strategy_builder())(fn)
            )

        def runner():
            for seed in range(min(examples, FALLBACK_EXAMPLES)):
                fn(fallback_gen(random.Random(seed)))

        runner.__name__ = fn.__name__
        runner.__doc__ = fn.__doc__
        return runner

    return deco


def _seed_strategy():
    return st.integers(min_value=0, max_value=2**20)


def _seed_fallback(r: random.Random):
    return r.randrange(2**20)


# -- registry ----------------------------------------------------------------


def test_default_backend_is_reference():
    assert DEFAULT_BACKEND == "reference"
    assert get_backend(None).name == "reference"
    assert get_backend().name == "reference"


def test_available_backends_lists_builtins():
    names = available_backends()
    assert "reference" in names and "fast32" in names
    # numba appears iff its import succeeded — no silent half-registration.
    assert ("numba" in names) == numba_available()


def test_unknown_backend_raises_with_listing():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        get_backend("no-such-backend")
    with pytest.raises(ValueError, match="available"):
        get_backend("no-such-backend")


def test_get_backend_caches_singletons_and_passes_instances_through():
    a = get_backend("reference")
    assert get_backend("reference") is a
    assert get_backend(a) is a


def test_register_replaces_and_drops_cached_instance():
    class Dummy(KernelBackend):
        name = "dummy-test"
        dtype = np.float64

        def points_free(self, data, points):  # pragma: no cover - stub
            raise NotImplementedError

        def segments_free(self, data, p, q):  # pragma: no cover - stub
            raise NotImplementedError

        def pairwise_accumulate(self, stored, queries, out):  # pragma: no cover
            raise NotImplementedError

        def knn_block_min(self, stored, queries, k):  # pragma: no cover - stub
            raise NotImplementedError

    register("dummy-test", Dummy)
    try:
        first = get_backend("dummy-test")
        register("dummy-test", Dummy)  # re-register drops the cached instance
        assert get_backend("dummy-test") is not first
    finally:
        from repro import kernels as _k

        _k._FACTORIES.pop("dummy-test", None)
        _k._INSTANCES.pop("dummy-test", None)


def test_numba_absence_degrades_cleanly():
    """Without numba the name is simply unregistered: selection raises the
    ordinary unknown-backend error and nothing else changes."""
    if numba_available():
        assert get_backend("numba").name == "numba"
    else:
        assert "numba" not in available_backends()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("numba")


# -- EnvKernelData -----------------------------------------------------------


def _small_env():
    return Environment(
        AABB(np.zeros(3), 10.0 * np.ones(3)),
        [AABB(np.array([4.0, 4.0, 4.0]), np.array([6.0, 6.0, 6.0]))],
    )


def test_kernel_data_snapshot_shapes_and_mirrors():
    env = _small_env()
    data = env.kernel_data()
    assert data.dim == 3 and data.num_boxes == 1 and data.num_spheres == 0
    assert data.box_lo.dtype == np.float64 and data.box_lo32.dtype == np.float32
    np.testing.assert_allclose(data.box_center, [[5.0, 5.0, 5.0]])
    np.testing.assert_allclose(data.box_half, [[1.0, 1.0, 1.0]])
    assert data.nbytes > 0


def test_kernel_data_is_cached_and_invalidated_on_mutation():
    env = _small_env()
    first = env.kernel_data()
    assert env.kernel_data() is first  # cached until the world changes
    env.add_obstacle(AABB(np.array([1.0, 1.0, 1.0]), np.array([2.0, 2.0, 2.0])))
    second = env.kernel_data()
    assert second is not first
    assert second.num_boxes == 2


def test_inflated_grows_obstacles_and_shrinks_bounds():
    env = _small_env()
    data = env.kernel_data()
    up = data.inflated(0.5)
    np.testing.assert_allclose(up.box_half, data.box_half + 0.5)
    np.testing.assert_allclose(up.bounds_lo, data.bounds_lo + 0.5)
    np.testing.assert_allclose(up.bounds_hi, data.bounds_hi - 0.5)
    # Shrinking past the half-extent collapses the box to its center.
    down = data.inflated(-5.0)
    np.testing.assert_allclose(down.box_half, 0.0)
    np.testing.assert_allclose(down.box_lo, data.box_center)


def test_from_primitives_accepts_spheres():
    class Ball:
        def __init__(self, center, radius):
            self.center = center
            self.radius = radius

    bounds = AABB(np.zeros(2), np.ones(2) * 10.0)
    data = EnvKernelData.from_primitives(
        bounds, [AABB(np.zeros(2), np.ones(2)), Ball(np.array([5.0, 5.0]), 1.0)]
    )
    assert data.num_boxes == 1 and data.num_spheres == 1
    ref = get_backend("reference")
    free = ref.points_free(data, np.array([[5.0, 5.0], [8.0, 8.0]]))
    assert not free[0] and free[1]  # inside the ball vs open space


# -- property battery: reference vs fast backends ----------------------------


def _make_world(seed: int):
    """A fuzzed mixed box/sphere world plus query points and segments.

    Points and segment endpoints are drawn slightly *outside* the bounds
    too, so the bounds test is part of the contract under fuzz.
    """
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 4))
    nb = int(rng.integers(0, 6))
    ns = int(rng.integers(0, 4))
    box_lo = rng.uniform(-8.0, 6.0, size=(nb, d))
    box_hi = box_lo + rng.uniform(0.5, 4.0, size=(nb, d))
    data = EnvKernelData(
        bounds_lo=-10.0 * np.ones(d),
        bounds_hi=10.0 * np.ones(d),
        box_lo=box_lo,
        box_hi=box_hi,
        sph_center=rng.uniform(-8.0, 8.0, size=(ns, d)),
        sph_radius=rng.uniform(0.3, 2.5, size=ns),
    )
    pts = rng.uniform(-11.0, 11.0, size=(64, d))
    p = rng.uniform(-11.0, 11.0, size=(32, d))
    q = p + rng.uniform(-4.0, 4.0, size=(32, d))
    return data, pts, p, q


@property_test(_seed_strategy, _seed_fallback)
def test_points_free_matches_reference_on_stable_queries(seed):
    """Fast backends agree with the reference on every point at least eps
    from all decision boundaries (box faces, sphere surfaces, bounds)."""
    data, pts, _p, _q = _make_world(seed)
    ref = get_backend("reference")
    stable = ref.points_free(data.inflated(EPS), pts) == ref.points_free(
        data.inflated(-EPS), pts
    )
    expected = ref.points_free(data, pts)
    for name in FAST_BACKENDS:
        got = get_backend(name).points_free(data, pts)
        assert got.dtype == np.bool_ and got.shape == expected.shape
        assert np.array_equal(got[stable], expected[stable]), name


@property_test(_seed_strategy, _seed_fallback)
def test_segments_free_matches_reference_on_stable_queries(seed):
    data, _pts, p, q = _make_world(seed)
    ref = get_backend("reference")
    stable = ref.segments_free(data.inflated(EPS), p, q) == ref.segments_free(
        data.inflated(-EPS), p, q
    )
    expected = ref.segments_free(data, p, q)
    for name in FAST_BACKENDS:
        got = get_backend(name).segments_free(data, p, q)
        assert got.dtype == np.bool_ and got.shape == expected.shape
        assert np.array_equal(got[stable], expected[stable]), name


@property_test(_seed_strategy, _seed_fallback)
def test_pairwise_accumulate_close_across_backends(seed):
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 5))
    stored = rng.uniform(-10.0, 10.0, size=(int(rng.integers(1, 40)), d))
    queries = rng.uniform(-10.0, 10.0, size=(int(rng.integers(1, 16)), d))
    expected = np.linalg.norm(queries[:, None, :] - stored[None, :, :], axis=2)
    for name in ["reference"] + FAST_BACKENDS:
        out = np.empty((queries.shape[0], stored.shape[0]))
        get_backend(name).pairwise_accumulate(stored, queries, out)
        rtol = 1e-12 if name in ("reference", "numba") else 1e-4
        np.testing.assert_allclose(out, expected, rtol=rtol, atol=1e-9)


@property_test(_seed_strategy, _seed_fallback)
def test_knn_block_min_matches_reference(seed):
    """Distances within 1e-4 relative; ids identical wherever the
    reference k-th/(k+1)-th gap is clear of float32 rounding."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 4))
    n = int(rng.integers(1, 60))
    m = int(rng.integers(1, 12))
    k = int(rng.integers(1, 10))
    stored = rng.uniform(0.0, 10.0, size=(n, d))
    queries = rng.uniform(0.0, 10.0, size=(m, d))
    ref = get_backend("reference")
    ri, rd = ref.knn_block_min(stored, queries, k)
    assert ri.shape == (m, k) and rd.shape == (m, k)  # padded to k columns
    kk = min(k, n)
    assert np.all(np.isfinite(rd[:, :kk])) and np.all(np.isinf(rd[:, kk:]))
    assert np.all(ri[:, kk:] == -1)
    for name in FAST_BACKENDS:
        fi, fd = get_backend(name).knn_block_min(stored, queries, k)
        assert fi.shape == ri.shape and fd.shape == rd.shape
        valid = np.isfinite(rd)
        assert np.array_equal(valid, np.isfinite(fd))
        np.testing.assert_allclose(fd[valid], rd[valid], rtol=1e-4, atol=1e-9)
        if kk < n:
            _ri1, rd1 = ref.knn_block_min(stored, queries, kk + 1)
            gap = rd1[:, kk] - rd1[:, kk - 1]
            tiefree = gap > 1e-4 * np.maximum(rd1[:, kk], 1.0)
        else:
            tiefree = np.ones(m, dtype=bool)  # all points returned: same set
        if name == "numba":  # float64 scalar loops: ids exact everywhere
            assert np.array_equal(fi, ri)
        else:
            assert np.array_equal(np.sort(fi[tiefree]), np.sort(ri[tiefree]))


def test_knn_block_min_pads_when_k_exceeds_store():
    stored = np.array([[0.0, 0.0], [3.0, 4.0]])
    queries = np.array([[0.0, 0.0]])
    for name in ["reference"] + FAST_BACKENDS:
        ids, dists = get_backend(name).knn_block_min(stored, queries, 5)
        assert ids.shape == (1, 5) and dists.shape == (1, 5)
        assert np.all(np.isfinite(dists[0, :2]))
        np.testing.assert_allclose(sorted(dists[0, :2]), [0.0, 5.0], atol=1e-6)
        assert np.all(np.isinf(dists[0, 2:])) and np.all(ids[0, 2:] == -1)


def test_dist_block_static_delegate_is_exact():
    """``BruteForceNN._dist_block`` stays callable as a staticmethod (the
    RRT hot path does so) and stays bit-identical to the norm expression
    it replaced."""
    rng = np.random.default_rng(7)
    stored = rng.uniform(-5.0, 5.0, size=(30, 3))
    queries = rng.uniform(-5.0, 5.0, size=(8, 3))
    out = np.empty((8, 30))
    BruteForceNN._dist_block(stored, queries, out)
    acc = np.zeros((8, 30))
    for j in range(3):
        dd = queries[:, j][:, None] - stored[:, j][None, :]
        acc += dd * dd
    np.testing.assert_array_equal(out, np.sqrt(acc))


# -- Environment / cspace dispatch ------------------------------------------


def test_environment_per_call_kernel_override():
    env = _small_env()
    pts = np.array([[5.0, 5.0, 5.0], [1.0, 1.0, 1.0], [20.0, 0.0, 0.0]])
    expected = env.points_in_collision(pts)
    np.testing.assert_array_equal(expected, [True, False, True])
    for name in FAST_BACKENDS:
        np.testing.assert_array_equal(env.points_in_collision(pts, kernels=name), expected)
        got = env.segments_in_collision(pts[:2], pts[1:], kernels=name)
        np.testing.assert_array_equal(got, env.segments_in_collision(pts[:2], pts[1:]))


def test_environment_set_kernel_backend_changes_default():
    env = _small_env()
    assert env.kernel_backend.name == "reference"
    env.set_kernel_backend("fast32")
    assert env.kernel_backend.name == "fast32"
    pts = np.array([[5.0, 5.0, 5.0], [1.0, 1.0, 1.0]])
    np.testing.assert_array_equal(env.points_in_collision(pts), [True, False])


def test_cspace_kernel_dispatch_and_counters_unchanged():
    """Backend dispatch must not change what the counters charge."""
    env_ref = _small_env()
    env_f32 = _small_env()
    env_f32.set_kernel_backend("fast32")
    cs_ref = EuclideanCSpace(env_ref)
    cs_f32 = EuclideanCSpace(env_f32)
    assert cs_ref.supports_kernels
    pts = np.random.default_rng(3).uniform(0.0, 10.0, size=(40, 3))
    v_ref = cs_ref.valid(pts)
    v_f32 = cs_f32.valid(pts)
    np.testing.assert_array_equal(v_ref, v_f32)
    assert env_ref.counters.point_checks == env_f32.counters.point_checks
