"""Local planners: validity checking of the path between two configurations.

Local planning is the dominant cost of roadmap construction ("the most time
consuming phase of the entire computation", Sec. III-B), so the planner
reports how many intermediate validity checks it performed; the simulated
runtime charges virtual time per check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .space import ConfigurationSpace

__all__ = ["LocalPlanResult", "StraightLinePlanner", "BinaryLocalPlanner"]


@dataclass(frozen=True)
class LocalPlanResult:
    """Outcome of a local-plan attempt.

    ``checks`` counts intermediate configuration validity tests — the unit
    of work the virtual-time model charges for.
    """

    valid: bool
    checks: int
    length: float


class StraightLinePlanner:
    """Check the straight segment between configurations at a fixed
    resolution (C-space step length).

    ``kernels`` optionally names a :mod:`repro.kernels` backend; validity
    checks are routed through it on spaces advertising
    ``supports_kernels`` (without mutating the — possibly shared —
    space's own default backend).  Step counts and interpolation stay
    float64 regardless, so a fast backend changes verdicts only within
    its documented statistical tolerance, never the check budget.
    """

    name = "straight-line"

    def __init__(self, resolution: float = 0.1, kernels=None):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution
        self.kernels = kernels

    def _valid(self, cspace: ConfigurationSpace, pts: np.ndarray) -> np.ndarray:
        if self.kernels is not None and getattr(cspace, "supports_kernels", False):
            return cspace.valid(pts, kernels=self.kernels)
        return cspace.valid(pts)

    def steps_for(self, cspace: ConfigurationSpace, a: np.ndarray, b: np.ndarray) -> int:
        dist = float(cspace.distance(a, b))
        return max(int(np.ceil(dist / self.resolution)) - 1, 0)

    def __call__(self, cspace: ConfigurationSpace, a: np.ndarray, b: np.ndarray) -> LocalPlanResult:
        dist = float(cspace.distance(a, b))
        n_steps = max(int(np.ceil(dist / self.resolution)) - 1, 0)
        if n_steps == 0:
            return LocalPlanResult(True, 0, dist)
        ts = np.linspace(0.0, 1.0, n_steps + 2)[1:-1]
        pts = cspace.interpolate(a, b, ts)
        ok = self._valid(cspace, pts)
        return LocalPlanResult(bool(np.all(ok)), n_steps, dist)

    def batch_pairs(
        self, cspace: ConfigurationSpace, starts: np.ndarray, ends: np.ndarray
    ) -> "tuple[np.ndarray, int, np.ndarray]":
        """Validate many segments in one vectorised validity call.

        ``starts``/``ends`` are ``(m, dof)``.  Returns
        ``(valid_mask, total_checks, lengths)``, with identical semantics
        to calling the planner ``m`` times (same check counts), but with
        per-point collision work batched into a single NumPy broadcast —
        the hot-path optimisation the HPC guides call for.
        """
        ok, steps, lengths = self.batch_pairs_counted(cspace, starts, ends)
        return ok, int(steps.sum()), lengths

    def batch_pairs_counted(
        self, cspace: ConfigurationSpace, starts: np.ndarray, ends: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Like :meth:`batch_pairs` but returns *per-segment* check counts.

        Returns ``(valid_mask, checks_per_segment, lengths)``; consumers
        that interleave validation with other bookkeeping (the PRM's
        speculate-then-replay connection loop) need per-segment
        attribution of the check budget.
        """
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        m = starts.shape[0]
        lengths = cspace.distance_pairs(starts, ends)
        steps = np.maximum(np.ceil(lengths / self.resolution).astype(int) - 1, 0)
        total = int(steps.sum())
        if total == 0:
            return np.ones(m, dtype=bool), steps, lengths
        # For segment i the check parameters are j/(n_i+1), j = 1..n_i;
        # build them all at once with repeat/cumsum indexing.
        seg = np.repeat(np.arange(m), steps)
        offsets = np.concatenate(([0], np.cumsum(steps)))
        j = np.arange(total) - offsets[seg] + 1
        t = j / (steps[seg] + 1)
        pts = cspace.interpolate_pairs(starts[seg], ends[seg], t)
        ok = self._valid(cspace, pts)
        bad_counts = np.bincount(seg[~ok], minlength=m)
        return bad_counts == 0, steps, lengths

    def batch_pairs_exact(
        self, cspace: ConfigurationSpace, starts: np.ndarray, ends: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Bit-exact batched twin of ``m`` sequential planner calls.

        Returns ``(valid_mask, checks_per_segment, lengths)`` where every
        field is bit-identical to looping ``__call__`` over the segments:
        lengths come from the scalar ``cspace.distance`` and check
        parameters from the same ``linspace`` the scalar path uses, so
        step counts agree even when a segment length sits exactly on a
        ``ceil(dist / resolution)`` boundary — the common case for RRT
        extensions, whose length is the planner's fixed step size.
        :meth:`batch_pairs_counted` computes lengths with the vectorised
        norm, which may differ in the last ulp and flip the ceiling there.
        Only the per-point collision work — the dominant cost — is
        batched, into a single validity call.
        """
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        m = starts.shape[0]
        lengths = np.empty(m)
        for i in range(m):
            lengths[i] = float(cspace.distance(starts[i], ends[i]))
        steps = np.maximum(np.ceil(lengths / self.resolution).astype(np.int64) - 1, 0)
        total = int(steps.sum())
        if total == 0:
            return np.ones(m, dtype=bool), steps, lengths
        # The scalar path takes its check parameters from
        # ``linspace(0, 1, n+2)[1:-1]``, which numpy evaluates as
        # ``i * step`` with ``step = 1/(n+1)`` — reproduced here exactly
        # for all segments at once (asserted by the parity tests).
        seg = np.repeat(np.arange(m), steps)
        offsets = np.concatenate(([0], np.cumsum(steps)))
        j = np.arange(total) - offsets[seg] + 1
        t = j * (1.0 / (steps[seg] + 1))
        pts = cspace.interpolate_pairs(starts[seg], ends[seg], t)
        ok = self._valid(cspace, pts)
        bad_counts = np.bincount(seg[~ok], minlength=m)
        return bad_counts == 0, steps, lengths

    def batch_pairs_chunked(
        self,
        cspace: ConfigurationSpace,
        starts: np.ndarray,
        ends: np.ndarray,
        chunk: int = 8,
    ) -> "tuple[np.ndarray, int, np.ndarray]":
        """Fail-fast variant of :meth:`batch_pairs`.

        Checks proceed in waves of up to ``chunk`` intermediate points per
        segment; a segment that collides in one wave drops out of the
        later ones, so long invalid segments stop early (the spirit of
        :class:`BinaryLocalPlanner`, kept batched).  ``checks`` therefore
        counts only the points actually evaluated — typically far fewer
        than :meth:`batch_pairs` on failures, identical on success — so
        this trades exact check-count parity with the sequential planner
        for speed.
        """
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        m = starts.shape[0]
        lengths = cspace.distance_pairs(starts, ends)
        steps = np.maximum(np.ceil(lengths / self.resolution).astype(int) - 1, 0)
        valid = np.ones(m, dtype=bool)
        checks = 0
        max_steps = int(steps.max()) if m else 0
        for wave_start in range(0, max_steps, chunk):
            # Segments still alive with checks remaining in this wave.
            remaining = steps - wave_start
            alive = valid & (remaining > 0)
            if not alive.any():
                break
            wave = np.minimum(remaining[alive], chunk)
            seg_local = np.repeat(np.nonzero(alive)[0], wave)
            offsets = np.concatenate(([0], np.cumsum(wave)))
            j = np.arange(int(wave.sum())) - offsets[np.repeat(np.arange(wave.size), wave)]
            j = j + wave_start + 1
            t = j / (steps[seg_local] + 1)
            pts = cspace.interpolate_pairs(starts[seg_local], ends[seg_local], t)
            ok = self._valid(cspace, pts)
            checks += int(seg_local.size)
            if not ok.all():
                valid[np.unique(seg_local[~ok])] = False
        return valid, checks, lengths


class BinaryLocalPlanner:
    """Binary-subdivision local planner: checks the midpoint first and
    recurses, failing fast on blocked segments.  Performs the same number
    of checks as :class:`StraightLinePlanner` on success but typically far
    fewer on failure."""

    name = "binary"

    def __init__(self, resolution: float = 0.1):
        if resolution <= 0:
            raise ValueError("resolution must be positive")
        self.resolution = resolution

    def __call__(self, cspace: ConfigurationSpace, a: np.ndarray, b: np.ndarray) -> LocalPlanResult:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        dist = float(cspace.distance(a, b))
        checks = 0
        stack = [(a, b, dist)]
        while stack:
            lo_cfg, hi_cfg, seg_len = stack.pop()
            if seg_len <= self.resolution:
                continue
            mid = cspace.interpolate(lo_cfg, hi_cfg, 0.5)
            checks += 1
            if not cspace.valid_single(mid):
                return LocalPlanResult(False, checks, dist)
            half = 0.5 * seg_len
            stack.append((lo_cfg, mid, half))
            stack.append((mid, hi_cfg, half))
        return LocalPlanResult(True, checks, dist)
