"""Load-generator benchmark for the :class:`~repro.service.PlanService`.

Drives the serving stack the way the paper's evaluation drives the
planners — fixed seeds, explicit baselines, parity asserted — and writes
``serve_throughput`` / ``serve_latency`` rows into the shared
``BENCH_perf.json`` regression file:

* **baseline** — the un-amortised serving loop: one
  :meth:`RoadmapQuery.solve` per request against a pre-built roadmap
  (fresh NN index and roadmap mutation per query).
* **closed loop** — N client threads, each submitting one request and
  waiting for its answer before the next, against a warm-cache
  :class:`PlanService`; throughput shows what snapshot reuse plus
  coalesced :meth:`QueryEngine.solve_many` batches buy.
* **open loop** — requests arrive at a fixed rate regardless of
  completions (the tail-latency-honest discipline); p50/p99/p999
  request sojourn times bound the coalescer's linger budget in practice.

Every served answer — warm cache *and* cache disabled — is compared
bit-for-bit against the direct ``RoadmapQuery.solve`` reference; the
``parity_cached`` / ``parity_uncached`` booleans land in the JSON and
``--check`` fails on any ``false``.

Usage::

    python -m repro.bench serve                    # medium -> merge into BENCH_perf.json
    python -m repro.bench serve --scale smoke      # CI-sized (~10 s)
    python -m repro.bench serve --trace trace.jsonl  # dump closed-loop events
    python -m repro.bench serve --check out.json   # validate an existing file
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

import numpy as np

from ..obs.sinks import JsonlSink
from ..obs.tracer import Tracer
from ..planners.query import RoadmapQuery
from ..service import PlanService, ServiceConfig, ServiceOverloadError
from ..spec import WorkloadSpec
from .perf import _query_results_equal

__all__ = ["run_suite", "main", "validate", "SCALES"]

#: Load shapes.  "medium" is the checked-in baseline; "smoke" is CI-sized.
SCALES = {
    "smoke": {
        "tenants": 2, "num_regions": 32, "samples_per_region": 8,
        "queries_per_tenant": 25, "baseline_requests": 64,
        "closed_clients": 32, "closed_requests": 256,
        "open_requests": 256, "open_rate": 1500.0,
        "max_batch": 16, "max_linger": 0.002, "repeats": 2,
    },
    "medium": {
        "tenants": 3, "num_regions": 64, "samples_per_region": 8,
        "queries_per_tenant": 50, "baseline_requests": 256,
        "closed_clients": 32, "closed_requests": 1024,
        "open_requests": 1024, "open_rate": 1200.0,
        "max_batch": 32, "max_linger": 0.005, "repeats": 3,
    },
}

_SEED = 42

#: Fields the serve rows must carry for a result file to be well-formed.
_SERVE_REQUIRED = {
    "serve_throughput": (
        "baseline_qps", "serve_qps", "speedup", "open_qps",
        "cache_hit_rate", "parity_cached", "parity_uncached",
    ),
    "serve_latency": (
        "closed_p50_ms", "closed_p99_ms", "closed_p999_ms",
        "open_p50_ms", "open_p99_ms", "open_p999_ms",
    ),
}


def _workloads(params: dict) -> "list[WorkloadSpec]":
    """One tenant per seed: identical geometry, distinct roadmaps."""
    return [
        WorkloadSpec(
            environment="med-cube",
            planner="prm",
            num_regions=params["num_regions"],
            samples_per_region=params["samples_per_region"],
            seed=_SEED + t,
        )
        for t in range(params["tenants"])
    ]


def _tenant_queries(params: dict) -> "list[list[tuple]]":
    """Fixed per-tenant (start, goal) pools drawn from the tenant's rng."""
    out = []
    for t in range(params["tenants"]):
        spec_rng = np.random.default_rng(1000 + t)
        cs = WorkloadSpec(environment="med-cube").resolve_cspace()
        lo, hi = cs.bounds.lo, cs.bounds.hi
        out.append(
            [
                (spec_rng.uniform(lo, hi), spec_rng.uniform(lo, hi))
                for _ in range(params["queries_per_tenant"])
            ]
        )
    return out


def _request_mix(params: dict, n: int) -> "list[tuple[int, int]]":
    """A deterministic request stream: (tenant, query index) pairs that
    round-robin tenants and cycle each tenant's query pool."""
    tenants = params["tenants"]
    per = params["queries_per_tenant"]
    return [(i % tenants, (i // tenants) % per) for i in range(n)]


def _closed_loop(svc, specs, queries, mix, clients: int):
    """Fixed-concurrency load: each of ``clients`` threads submits its
    share of ``mix`` one request at a time, waiting for each answer."""
    results: "list" = [None] * len(mix)
    barrier = threading.Barrier(clients + 1)

    def client(ci: int):
        """One closed-loop client (its requests are a stride of the mix)."""
        barrier.wait()
        for j in range(ci, len(mix), clients):
            t, qi = mix[j]
            results[j] = svc.submit(specs[t], queries[t][qi]).result()

    threads = [threading.Thread(target=client, args=(ci,)) for ci in range(clients)]
    for th in threads:
        th.start()
    barrier.wait()
    t0 = time.perf_counter()
    for th in threads:
        th.join()
    return time.perf_counter() - t0, results


def _open_loop(svc, specs, queries, mix, rate: float):
    """Fixed-arrival-rate load: submissions are paced at ``rate`` req/s
    independent of completions; rejected requests are counted, answered
    ones are awaited at the end."""
    futures: "list" = []
    rejected = 0
    t0 = time.perf_counter()
    for i, (t, qi) in enumerate(mix):
        target = t0 + i / rate
        now = time.perf_counter()
        if target > now:
            time.sleep(target - now)
        try:
            futures.append((i, svc.submit(specs[t], queries[t][qi], block=False)))
        except ServiceOverloadError:
            rejected += 1
    answered = [(i, fut.result()) for i, fut in futures]
    return time.perf_counter() - t0, answered, rejected


def run_suite(scale: str = "medium", trace_path: "str | None" = None) -> dict:
    """Run the serving benchmark at ``scale``; returns the two JSON rows.

    Raises ``AssertionError`` if any served answer diverges from the
    direct ``RoadmapQuery.solve`` reference.
    """
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    params = SCALES[scale]
    specs = _workloads(params)
    queries = _tenant_queries(params)

    # Reference: direct, un-amortised solves on pre-built roadmaps.  The
    # truth table doubles as the parity oracle for every served answer.
    from ..core.parallel_prm import build_prm_workload

    roadmaps = []
    truth: "dict[tuple[int, int], object]" = {}
    for t, spec in enumerate(specs):
        cs = spec.resolve_cspace()
        rmap = build_prm_workload(
            cs,
            num_regions=spec.num_regions,
            samples_per_region=spec.samples_per_region,
            seed=spec.seed,
        ).roadmap
        rq = RoadmapQuery(cs, k=8)
        for qi, (s, g) in enumerate(queries[t]):
            truth[(t, qi)] = rq.solve(rmap, s, g)
        roadmaps.append(rmap)

    # Baseline throughput: the naive serving loop over the same mix
    # (best of ``repeats`` — minimum wall time is the low-noise estimator).
    base_mix = _request_mix(params, params["baseline_requests"])
    rq_by_tenant = [RoadmapQuery(spec.resolve_cspace(), k=8) for spec in specs]
    baseline_wall = float("inf")
    for _ in range(params["repeats"]):
        t0 = time.perf_counter()
        for t, qi in base_mix:
            s, g = queries[t][qi]
            rq_by_tenant[t].solve(roadmaps[t], s, g)
        baseline_wall = min(baseline_wall, time.perf_counter() - t0)
    baseline_qps = len(base_mix) / baseline_wall

    cfg = ServiceConfig(
        max_batch=params["max_batch"],
        max_linger=params["max_linger"],
        serve_workers=2,
    )

    # Closed loop against a warm cache (first pass of misses pre-paid);
    # best of ``repeats`` fresh services, parity asserted on every repeat.
    closed_mix = _request_mix(params, params["closed_requests"])
    closed_wall = float("inf")
    closed_stats = None
    parity_cached = True
    closed_truth = [truth[m] for m in closed_mix]
    for rep in range(params["repeats"]):
        sink = None
        tracer = None
        if trace_path and rep == 0:
            sink = JsonlSink(trace_path)
            tracer = Tracer(sinks=[sink])
        with PlanService(cfg, tracer=tracer) as svc:
            for spec in specs:
                svc.cache.get(spec)
            wall, results = _closed_loop(
                svc, specs, queries, closed_mix, params["closed_clients"]
            )
            stats = svc.stats()
        if sink is not None:
            sink.close()
        parity_cached = parity_cached and _query_results_equal(closed_truth, results)
        if wall < closed_wall:
            closed_wall, closed_stats = wall, stats
    serve_qps = len(closed_mix) / closed_wall

    # Cache-disabled parity control: identical answers, rebuild per batch.
    uncached_cfg = ServiceConfig(
        max_batch=params["max_batch"],
        max_linger=params["max_linger"],
        cache_enabled=False,
        serve_workers=2,
    )
    with PlanService(uncached_cfg) as svc:
        uncached_results = []
        expect = []
        for t, spec in enumerate(specs):
            uncached_results.extend(svc.solve_many(spec, queries[t]))
            expect.extend(truth[(t, qi)] for qi in range(len(queries[t])))
    parity_uncached = _query_results_equal(expect, uncached_results)

    if not (parity_cached and parity_uncached):
        raise AssertionError(
            "served answers diverged from the direct RoadmapQuery reference: "
            f"parity_cached={parity_cached} parity_uncached={parity_uncached}"
        )

    # Open loop at a fixed arrival rate against a fresh warm service.
    open_mix = _request_mix(params, params["open_requests"])
    with PlanService(cfg) as svc:
        for spec in specs:
            svc.cache.get(spec)
        open_wall, answered, rejected = _open_loop(
            svc, specs, queries, open_mix, params["open_rate"]
        )
        open_stats = svc.stats()
    parity_open = _query_results_equal(
        [truth[open_mix[i]] for i, _r in answered], [r for _i, r in answered]
    )
    if not parity_open:
        raise AssertionError("open-loop served answers diverged from the reference")
    open_qps = len(answered) / open_wall

    throughput_row = {
        "n_workloads": len(specs),
        "closed_requests": len(closed_mix),
        "closed_clients": params["closed_clients"],
        "baseline_qps": baseline_qps,
        "serve_qps": serve_qps,
        "speedup": serve_qps / baseline_qps,
        "open_requests": len(open_mix),
        "open_rate_target": params["open_rate"],
        "open_qps": float(open_qps),
        "rejected": rejected,
        "cache_hit_rate": closed_stats.cache.hit_rate,
        "mean_batch_size": closed_stats.mean_batch_size,
        "parity_cached": parity_cached,
        "parity_uncached": parity_uncached,
    }
    latency_row = {
        "max_linger_ms": params["max_linger"] * 1e3,
        "closed_p50_ms": closed_stats.latency_percentile(50) * 1e3,
        "closed_p99_ms": closed_stats.latency_percentile(99) * 1e3,
        "closed_p999_ms": closed_stats.latency_percentile(99.9) * 1e3,
        "open_p50_ms": open_stats.latency_percentile(50) * 1e3,
        "open_p99_ms": open_stats.latency_percentile(99) * 1e3,
        "open_p999_ms": open_stats.latency_percentile(99.9) * 1e3,
        "closed_batches": closed_stats.batches,
        "open_batches": open_stats.batches,
    }
    return {"serve_throughput": throughput_row, "serve_latency": latency_row}


def validate_serve_rows(benches: dict) -> "list[str]":
    """Problems with the serve rows of a benchmarks dict (empty when the
    rows are absent — they are optional in a perf-only file — or valid)."""
    problems = []
    present = [n for n in _SERVE_REQUIRED if n in benches]
    if not present:
        return []
    for name, fields in _SERVE_REQUIRED.items():
        entry = benches.get(name)
        if not isinstance(entry, dict):
            problems.append(f"benchmark {name!r} missing")
            continue
        for f in fields:
            if f not in entry:
                problems.append(f"benchmark {name!r} missing field {f!r}")
    tput = benches.get("serve_throughput", {})
    for f in ("baseline_qps", "serve_qps", "open_qps"):
        v = tput.get(f)
        if v is not None and not (isinstance(v, (int, float)) and v > 0):
            problems.append(f"serve_throughput field {f!r} is not a positive number")
    for f in ("parity_cached", "parity_uncached"):
        if tput.get(f) is False:
            problems.append(f"serve_throughput reports {f}=false")
    hr = tput.get("cache_hit_rate")
    if hr is not None and not (isinstance(hr, (int, float)) and 0.0 <= hr <= 1.0):
        problems.append("serve_throughput cache_hit_rate is not in [0, 1]")
    return problems


def validate(payload: object) -> "list[str]":
    """Structural validation of a serve result file; the serve rows are
    **required** here (unlike in ``perf --check``, where they are
    optional extras)."""
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    problems = []
    if payload.get("suite") != "repro-perf":
        problems.append("missing or wrong 'suite' marker")
    benches = payload.get("benchmarks")
    if not isinstance(benches, dict):
        return problems + ["'benchmarks' missing or not an object"]
    for name in _SERVE_REQUIRED:
        if name not in benches:
            problems.append(f"benchmark {name!r} missing")
    problems.extend(validate_serve_rows(benches))
    return problems


def main(argv: "list[str]") -> int:
    """CLI entry point: run the load generator or ``--check`` a file.

    Results are **merged** into ``--output`` when it already holds a
    perf payload, so one ``BENCH_perf.json`` carries both suites.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--scale", choices=sorted(SCALES), default="medium")
    parser.add_argument("--output", default="BENCH_perf.json")
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write the closed-loop run's trace events to a JSONL file",
    )
    parser.add_argument(
        "--check",
        metavar="FILE",
        help="validate an existing result file instead of running the bench",
    )
    args = parser.parse_args(argv)

    if args.check:
        try:
            with open(args.check) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"serve check: cannot read {args.check}: {exc}", file=sys.stderr)
            return 2
        problems = validate(payload)
        if problems:
            for p in problems:
                print(f"serve check: {p}", file=sys.stderr)
            return 1
        print(f"serve check: {args.check} OK")
        return 0

    t0 = time.perf_counter()
    rows = run_suite(args.scale, trace_path=args.trace)
    print(f"[serve] suite: {time.perf_counter() - t0:.1f}s", file=sys.stderr)

    try:
        with open(args.output) as fh:
            payload = json.load(fh)
        if not isinstance(payload, dict) or not isinstance(
            payload.get("benchmarks"), dict
        ):
            raise ValueError("not a perf payload")
    except (OSError, json.JSONDecodeError, ValueError):
        payload = {"suite": "repro-perf", "scale": args.scale, "benchmarks": {}}
    payload["benchmarks"].update(rows)
    payload["serve_scale"] = args.scale
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    tput = rows["serve_throughput"]
    lat = rows["serve_latency"]
    print(
        f"wrote {args.output}: serve {tput['serve_qps']:.0f} q/s vs baseline "
        f"{tput['baseline_qps']:.0f} q/s ({tput['speedup']:.2f}x), hit rate "
        f"{tput['cache_hit_rate']:.0%}, mean batch {tput['mean_batch_size']:.1f}, "
        f"closed p50/p99/p999 {lat['closed_p50_ms']:.2f}/{lat['closed_p99_ms']:.2f}/"
        f"{lat['closed_p999_ms']:.2f} ms, open {lat['open_p50_ms']:.2f}/"
        f"{lat['open_p99_ms']:.2f}/{lat['open_p999_ms']:.2f} ms, parity OK"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
