"""Tests for solve_many retry/abandonment accounting (satellite fix:
pool-dispatched queries must surface attempts the same way plan() does)."""

import numpy as np
import pytest

from repro import WorkloadSpec
from repro.planners.engine import BatchQueryResult
from repro.runtime import Fault, FaultInjector
from repro.service.cache import build_engine


def _engine_and_queries(n=6):
    spec = WorkloadSpec(
        environment="med-cube",
        planner="prm",
        num_regions=16,
        samples_per_region=4,
        seed=3,
    )
    engine = build_engine(spec)
    cs = spec.resolve_cspace()
    lo, hi = cs.bounds.lo, cs.bounds.hi
    rng = np.random.default_rng(1)
    queries = [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]
    return engine, queries


class TestAttemptsAccounting:
    def test_inline_path_counts_one_attempt_each(self):
        engine, queries = _engine_and_queries()
        res = engine.solve_many(queries, workers=1)
        assert res.attempts == {i: 1 for i in range(len(queries))}

    def test_pool_path_surfaces_attempts(self):
        engine, queries = _engine_and_queries()
        res = engine.solve_many(queries, workers=2, failure_policy="retry")
        assert set(res.attempts) == set(range(len(queries)))
        assert all(v >= 1 for v in res.attempts.values())

    def test_retried_query_counts_extra_attempts(self):
        engine, queries = _engine_and_queries()
        res = engine.solve_many(
            queries,
            workers=2,
            failure_policy="retry",
            max_retries=2,
            fault_injector=FaultInjector([Fault("raise", task=1, attempt=0)]),
        )
        assert res.attempts[1] == 2  # first attempt failed, second served
        assert res.retries == 1
        assert res.abandoned == []

    def test_abandoned_queries_keep_their_attempt_count(self):
        engine, queries = _engine_and_queries()
        res = engine.solve_many(
            queries,
            workers=2,
            failure_policy="degrade",
            max_retries=1,
            fault_injector=FaultInjector(
                [Fault("raise", task=2, attempt=0), Fault("raise", task=2, attempt=1)]
            ),
        )
        assert res.abandoned == [2]
        assert res.results[2] is None
        # The abandoned query appears in attempts with its full failed
        # count instead of silently vanishing from per-task accounting.
        assert res.attempts[2] == 2
        assert set(res.attempts) == set(range(len(queries)))


class TestPercentilesExcludeAbandoned:
    def test_abandoned_latencies_do_not_dilute_percentiles(self):
        res = BatchQueryResult(
            results=[object(), None, object(), None],
            wall_time=1.0,
            setup_time=0.1,
            latencies=[0.5, 0.001, 0.7, 0.002],  # abandoned carry setup only
            solved=2,
            abandoned=[1, 3],
        )
        # Only the two real latencies participate.
        assert res.latency_percentile(0) == 0.5
        assert res.latency_percentile(100) == 0.7
        assert res.latency_percentile(50) in (0.5, 0.7)

    def test_all_abandoned_reports_zero(self):
        res = BatchQueryResult(
            results=[None, None],
            wall_time=1.0,
            setup_time=0.1,
            latencies=[0.1, 0.2],
            solved=0,
            abandoned=[0, 1],
        )
        assert res.latency_percentile(50) == 0.0

    def test_end_to_end_degrade_excludes_abandoned(self):
        engine, queries = _engine_and_queries()
        clean = engine.solve_many(queries, workers=2)
        degraded = engine.solve_many(
            queries,
            workers=2,
            failure_policy="degrade",
            max_retries=0,
            fault_injector=FaultInjector([Fault("raise", task=0, attempt=0)]),
        )
        assert degraded.abandoned == [0]
        # p100 over the surviving queries only (no artificially low or
        # stale entry from the abandoned one).
        survivors = [
            lat for i, lat in enumerate(degraded.latencies) if i != 0
        ]
        assert degraded.latency_percentile(100) == pytest.approx(max(survivors))
        assert clean.latency_percentile(100) > 0
