#!/usr/bin/env python
"""CI chaos smoke: one chaotic plan() on the process backend.

Runs the acceptance scenario end to end — one worker crash plus two
transient region failures under ``failure_policy="retry"`` — on the real
``ProcessPoolExecutor`` backend, verifies parity with the fault-free
run, and writes the JSON-lines trace to the given path so CI can keep
it as the failure-story artifact.

Run:  python tools/chaos_smoke.py chaos-trace.jsonl
"""

import sys

from repro import (
    ExecutionPolicy,
    Fault,
    FaultInjector,
    FaultPolicy,
    JsonlSink,
    ObsConfig,
    Tracer,
    WorkloadSpec,
    plan,
)

_WORKLOAD = WorkloadSpec(planner="prm", num_regions=12, samples_per_region=4, seed=7)
_EXECUTION = ExecutionPolicy(mode="local", backend="process", workers=3)


def _signature(report):
    rm = report.roadmap
    ids, cfgs = rm.configs_array()
    edges = sorted((min(u, v), max(u, v), round(w, 12)) for u, v, w in rm.edges())
    return list(ids), cfgs.tolist(), edges


def main(trace_path: str) -> int:
    clean = plan(_WORKLOAD, execution=_EXECUTION)
    region_ids = sorted(clean.pool.results)
    injector = FaultInjector(
        [
            Fault("crash", task=region_ids[1], attempt=0),
            Fault("raise", task=region_ids[4], attempt=0),
            Fault("raise", task=region_ids[8], attempt=0),
        ]
    )
    tracer = Tracer(sinks=[JsonlSink(trace_path)])
    try:
        chaotic = plan(
            _WORKLOAD,
            execution=_EXECUTION,
            faults=FaultPolicy(policy="retry", injector=injector),
            obs=ObsConfig(tracer=tracer),
        )
    finally:
        tracer.close()

    problems = []
    if _signature(chaotic) != _signature(clean):
        problems.append("chaotic roadmap diverged from the fault-free run")
    if chaotic.abandoned_regions:
        problems.append(f"abandoned regions: {chaotic.abandoned_regions}")
    if chaotic.retries < 2:
        problems.append(f"expected >=2 retries, saw {chaotic.retries}")
    if chaotic.worker_deaths < 1:
        problems.append("expected at least one worker death")

    print(chaotic.summary())
    if problems:
        print("CHAOS SMOKE FAILED:", "; ".join(problems), file=sys.stderr)
        return 1
    print(f"chaos smoke OK — trace written to {trace_path}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(main(sys.argv[1]))
