"""Victim-selection policies for work-stealing parallel motion planning.

Section III-A of the paper defines three strategies:

* ``RAND-K`` — "a thief requests additional regions from k random
  processors, but not necessarily the same k processors for each
  request"; the paper fixes ``k = 8``.
* ``DIFFUSIVE`` — "processors are assumed to be arranged in a 2D mesh and
  underloaded processors will request neighboring processors for work".
* ``HYBRID`` — "first execute DIFFUSIVE stealing and in the event that no
  request could be serviced, requests are sent to random processors".

Policies plug into
:class:`~repro.runtime.simulator.WorkStealingSimulator`; the round index
it passes distinguishes a first attempt from retries after a fully
failed round, which is what HYBRID keys its fallback on.

Policies are fault-oblivious by design: under fault injection the
simulator lets a thief pick a dead PE as victim and answers with an
immediate failure reply (death detection), so selection statistics stay
comparable between healthy and degraded machines — DIFFUSIVE pays for a
dead mesh neighbour every round, while RAND-K merely wastes one of its
``k`` probes, which is exactly the policy difference worth studying.
"""

from __future__ import annotations

import numpy as np

from ..runtime.topology import ClusterTopology

__all__ = [
    "POLICY_NAMES",
    "RandKPolicy",
    "DiffusivePolicy",
    "HybridPolicy",
    "policy_by_name",
]

#: Canonical strategy names accepted by :func:`policy_by_name`, in the
#: paper's order — the iteration set for policy-comparison studies.
POLICY_NAMES = ("rand-k", "rand-8", "diffusive", "hybrid")


class RandKPolicy:
    """Steal from ``k`` uniformly random distinct victims each round."""

    def __init__(self, k: int = 8):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.name = f"rand-{k}"

    def select_victims(
        self,
        thief: int,
        round_index: int,
        topology: ClusterTopology,
        rng: np.random.Generator,
    ) -> "list[int]":
        P = topology.num_pes
        if P <= 1:
            return []
        others = np.delete(np.arange(P), thief)
        k = min(self.k, others.size)
        return [int(v) for v in rng.choice(others, size=k, replace=False)]


class DiffusivePolicy:
    """Steal only from 2D-mesh neighbours, every round."""

    name = "diffusive"

    def select_victims(
        self,
        thief: int,
        round_index: int,
        topology: ClusterTopology,
        rng: np.random.Generator,
    ) -> "list[int]":
        return topology.mesh_neighbors(thief)


class HybridPolicy:
    """Diffusive first; random fallback once a whole round fails."""

    def __init__(self, k: int = 8):
        self.k = k
        self.name = f"hybrid(rand-{k})"
        self._diffusive = DiffusivePolicy()
        self._random = RandKPolicy(k)

    def select_victims(
        self,
        thief: int,
        round_index: int,
        topology: ClusterTopology,
        rng: np.random.Generator,
    ) -> "list[int]":
        if round_index == 0:
            return self._diffusive.select_victims(thief, round_index, topology, rng)
        return self._random.select_victims(thief, round_index, topology, rng)


def policy_by_name(name: str, k: int = 8):
    """Factory used by the benchmark drivers; names follow the paper."""
    table = {
        "rand-k": lambda: RandKPolicy(k),
        "rand-8": lambda: RandKPolicy(8),
        "diffusive": DiffusivePolicy,
        "hybrid": lambda: HybridPolicy(k),
    }
    try:
        return table[name]()
    except KeyError:
        raise KeyError(f"unknown steal policy {name!r}; known: {sorted(table)}") from None
