"""Interchangeable k-nearest-neighbour backends.

Every backend implements the same :class:`NeighborFinder` interface with
the canonical ``(distance, insertion order)`` tie-break and bit-identical
float64 distances, so swapping one for another never changes a planner's
output — only its latency.  Like :mod:`repro.kernels`, backends are
addressable by name through a small registry so the selection can travel
through :class:`~repro.spec.ExecutionPolicy` (``nn_backend``) and the
serving layer:

* ``"brute"`` — vectorised flat scan (:class:`BruteForceNN`), fastest
  below a few thousand points.
* ``"kdtree"`` — incremental-insert kd-tree (:class:`KDTreeNN`), best
  for static sets queried many times.
* ``"incremental"`` — logarithmic-rebuild kd-tree forest
  (:class:`IncrementalNN`), built for interleaved insert/query streams
  (growing RRT trees).

:class:`GridNN` is not registered: its ``cell_size`` is geometry-
dependent, so it has no parameter-free ``dim -> finder`` form.
"""

from typing import Callable

from .base import KnnStats, NeighborFinder
from .brute import BruteForceNN
from .grid import GridNN
from .incremental import IncrementalNN
from .kdtree import KDTreeNN

__all__ = [
    "KnnStats",
    "NeighborFinder",
    "BruteForceNN",
    "GridNN",
    "KDTreeNN",
    "IncrementalNN",
    "register_nn_factory",
    "get_nn_factory",
    "available_nn_factories",
]

#: name -> ``dim -> NeighborFinder`` factory.
_NN_FACTORIES: "dict[str, Callable]" = {}


def register_nn_factory(name: str, factory: Callable) -> None:
    """Register a ``dim -> NeighborFinder`` factory under ``name``."""
    if not name:
        raise ValueError("nn factory name must be non-empty")
    _NN_FACTORIES[name] = factory


def available_nn_factories() -> "tuple[str, ...]":
    """Registered factory names, sorted."""
    return tuple(sorted(_NN_FACTORIES))


def get_nn_factory(name):
    """Resolve an NN backend selection to a ``dim -> NeighborFinder``
    factory.

    ``None`` returns ``None`` (caller keeps its default); a non-string
    callable passes through unchanged (custom factories); a registered
    name resolves through the registry; anything else raises
    ``ValueError`` listing what is available.
    """
    if name is None or not isinstance(name, str):
        return name
    try:
        return _NN_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown nn backend {name!r}; available: {available_nn_factories()}"
        ) from None


register_nn_factory("brute", BruteForceNN)
register_nn_factory("kdtree", KDTreeNN)
register_nn_factory("incremental", IncrementalNN)
