"""Theoretical load-imbalance model (Sec. IV-B).

The model environment is a 2-D square workspace with one square obstacle
equidistant from the bounding box.  Every region's free volume ``V_free``
is computable exactly, and the paper takes region load to be proportional
to ``V_free``.  The model then compares:

* the **naive** mapping — a 1-D partition of the region mesh assigning a
  balanced number of region *columns* to each processor — against
* the **best** achievable mapping — a greedy global partition of region
  weights ignoring edge cuts (exact balance is NP-complete).

yielding (a) the coefficient of variation of per-PE load for each mapping
(Fig. 4a) and (b) the potential improvement: the reduction in the
most-loaded PE's share (Fig. 4b).  The same quantities recomputed from a
real sampling run (number of samples per region) validate the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cspace.space import EuclideanCSpace
from ..geometry.environment import Environment
from ..geometry.environments import model_2d
from ..partition.edge_cut import loads_of
from ..partition.greedy import partition_greedy_lpt
from ..partition.naive import partition_1d_columns, partition_block
from ..subdivision.uniform import UniformSubdivision
from .metrics import coefficient_of_variation, max_load_reduction
from .weights import prm_free_volume_weights, prm_sample_count_weights

__all__ = ["ModelPoint", "ModelEnvironmentAnalysis"]


@dataclass(frozen=True)
class ModelPoint:
    """Model predictions and experimental measurements at one PE count."""

    num_pes: int
    #: CoV of V_free-proportional load under the naive 1-D mapping.
    model_imbalance: float
    #: CoV of V_free-proportional load under the greedy best mapping.
    model_best: float
    #: CoV of measured sample counts under the naive mapping.
    experimental_imbalance: float
    #: CoV of measured sample counts after repartitioning.
    experimental_best: float
    #: % reduction of max V_free load achievable (theoretical improvement).
    model_improvement: float
    #: % reduction of max sample-count load achieved (experimental).
    experimental_improvement: float


class ModelEnvironmentAnalysis:
    """Analytic + experimental study of the model environment.

    Parameters
    ----------
    obstacle_fraction:
        Area fraction of the central square obstacle.
    num_regions:
        Total grid regions (kept constant across PE counts: strong scaling).
    total_samples:
        Sample budget for the experimental validation.
    """

    def __init__(
        self,
        obstacle_fraction: float = 0.25,
        num_regions: int = 4096,
        total_samples: int = 20000,
        seed: int = 0,
    ):
        self.env: Environment = model_2d(obstacle_fraction)
        self.num_regions = num_regions
        self.total_samples = total_samples
        self.seed = seed
        self.subdivision = UniformSubdivision(self.env.bounds, num_regions, overlap=0.0)
        #: analytic V_free per region.
        self.free_volumes = prm_free_volume_weights(self.subdivision, self.env)
        self._samples = self._draw_samples()
        self.sample_counts = prm_sample_count_weights(self.subdivision, self._samples)

    def _draw_samples(self) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        cspace = EuclideanCSpace(self.env)
        out = []
        need = self.total_samples
        while need > 0:
            cand = cspace.sample(rng, max(2 * need, 64))
            ok = cspace.valid(cand)
            got = cand[ok][:need]
            if got.size:
                out.append(got)
                need -= got.shape[0]
        return np.vstack(out)

    # -- load distributions ----------------------------------------------------
    def _loads(self, weights: "dict[int, float]", assignment: "dict[int, int]", num_pes: int) -> np.ndarray:
        graph = self.subdivision.graph
        for rid, w in weights.items():
            graph.set_weight(rid, w)
        return loads_of(graph, assignment, num_pes)

    def naive_assignment(self, num_pes: int) -> "dict[int, int]":
        """The naive 1-D mapping: balanced contiguous spans of the
        row-major region mesh (exactly balanced columns when the PE count
        divides the column count)."""
        if num_pes <= self.subdivision.shape[0] and self.subdivision.shape[0] % num_pes == 0:
            return partition_1d_columns(self.subdivision, num_pes)
        return partition_block(self.subdivision.graph, num_pes)

    def best_assignment(self, weights: "dict[int, float]", num_pes: int) -> "dict[int, int]":
        graph = self.subdivision.graph
        for rid, w in weights.items():
            graph.set_weight(rid, w)
        return partition_greedy_lpt(graph, num_pes)

    # -- headline quantities ----------------------------------------------------
    def analyze(self, num_pes: int) -> ModelPoint:
        """All Fig. 4 quantities at one processor count."""
        if num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        naive = self.naive_assignment(num_pes)
        best_model = self.best_assignment(self.free_volumes, num_pes)
        # The experimental repartition uses the measurable weight (samples).
        best_exp = self.best_assignment(self.sample_counts, num_pes)

        loads_naive_model = self._loads(self.free_volumes, naive, num_pes)
        loads_best_model = self._loads(self.free_volumes, best_model, num_pes)
        loads_naive_exp = self._loads(self.sample_counts, naive, num_pes)
        loads_best_exp = self._loads(self.sample_counts, best_exp, num_pes)

        return ModelPoint(
            num_pes=num_pes,
            model_imbalance=coefficient_of_variation(loads_naive_model),
            model_best=coefficient_of_variation(loads_best_model),
            experimental_imbalance=coefficient_of_variation(loads_naive_exp),
            experimental_best=coefficient_of_variation(loads_best_exp),
            model_improvement=max_load_reduction(loads_naive_model, loads_best_model),
            experimental_improvement=max_load_reduction(loads_naive_exp, loads_best_exp),
        )

    def sweep(self, pe_counts: "list[int]") -> "list[ModelPoint]":
        return [self.analyze(p) for p in pe_counts]
