"""repro.spec — the layered request vocabulary shared by every entry point.

Historically :class:`~repro.api.PlanRequest` was one flat record of 20+
fields mixing four unrelated concerns.  This module splits it into
composable specs with **one canonical name per knob**:

* :class:`WorkloadSpec` — *what to plan*: environment, planner, region
  and sample budgets, seed, extra workload options.  Also the unit of
  identity for the serving layer: :meth:`WorkloadSpec.cache_key` is the
  canonical content hash the :class:`~repro.service.RoadmapCache` keys
  snapshots by.
* :class:`ExecutionPolicy` — *where/how to run it*: execution ``mode``
  (canonical name for the old flat ``execution`` string), load-balancing
  strategy, partitioner, PE count, topology and steal granularity for the
  simulated machine; worker count, backend and chunk size for the local
  pool.
* :class:`FaultPolicy` — *what to do when it breaks*: failure ``policy``
  (canonical name for the old ``failure_policy``), retry budget, task
  timeout, and the deterministic ``injector`` (old ``fault_injector``).
* :class:`ObsConfig` — *what to record*: the tracer.

:class:`PlanRequest` remains the aggregate the :func:`repro.api.plan`
facade consumes, but is now a thin **frozen** wrapper over the four specs:

    >>> from repro import PlanRequest, WorkloadSpec, ExecutionPolicy, plan
    >>> report = plan(PlanRequest(
    ...     workload=WorkloadSpec(environment="med-cube", num_regions=512),
    ...     execution=ExecutionPolicy(strategy="hybrid", num_pes=96),
    ... ))

The old flat-kwarg construction keeps working through a compatibility
shim that routes every legacy spelling to its canonical field and emits a
single :class:`DeprecationWarning` per call:

    >>> PlanRequest(num_regions=512, strategy="hybrid", num_pes=96)  # doctest: +SKIP

Legacy flat *reads* (``request.num_pes`` …) remain available as plain
properties so existing callers and reports keep working unchanged.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Mapping

from .cspace.space import ConfigurationSpace, EuclideanCSpace
from .geometry import environments
from .runtime.local_pool import FAILURE_POLICIES

if TYPE_CHECKING:
    from .obs.tracer import Tracer
    from .runtime.faults import FaultInjector
    from .runtime.topology import ClusterTopology

__all__ = [
    "WorkloadSpec",
    "ExecutionPolicy",
    "FaultPolicy",
    "ObsConfig",
    "PlanRequest",
]

_PLANNERS = ("prm", "rrt")
_MODES = ("simulate", "local")
_STRATEGIES = ("none", "repartition", "rand-8", "rand-k", "diffusive", "hybrid")
_BACKENDS = ("thread", "process")
_DATA_PLANES = ("auto", "shm", "pickle")


def _environment_fingerprint(env: "str | object") -> bytes:
    """Stable content identity of an environment for cache keying.

    Catalog names hash by name; :class:`~repro.geometry.environment
    .Environment` instances hash by their exact bounds and obstacle
    arrays (content-addressed — two structurally identical environments
    share a key); anything else falls back to ``repr``, which is stable
    within a process.
    """
    if isinstance(env, str):
        return b"name:" + env.encode()
    bounds = getattr(env, "bounds", None)
    obstacles = getattr(env, "obstacles", None)
    if bounds is not None and obstacles is not None:
        h = hashlib.sha256()
        h.update(bounds.lo.tobytes())
        h.update(bounds.hi.tobytes())
        for obs in obstacles:
            h.update(obs.lo.tobytes())
            h.update(obs.hi.tobytes())
        return b"env:" + h.digest()
    return b"repr:" + repr(env).encode()


@dataclass(frozen=True)
class WorkloadSpec:
    """What to plan: the problem definition and its construction budget.

    This is the serving layer's unit of identity — two specs with equal
    :meth:`cache_key` build bit-identical roadmaps, so the
    :class:`~repro.service.RoadmapCache` may serve either from one frozen
    snapshot.
    """

    #: benchmark environment name (see ``repro.geometry.environments``)
    #: or an Environment instance.
    environment: "str | object" = "med-cube"
    planner: str = "prm"
    num_regions: int = 256
    #: PRM per-region sample budget (the paper's N / Nr).
    samples_per_region: int = 8
    #: RRT per-branch node budget.
    nodes_per_region: int = 12
    seed: int = 0
    #: extra keyword arguments forwarded to ``build_*_workload``.
    options: "Mapping[str, Any]" = field(default_factory=dict)

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field."""
        if self.planner not in _PLANNERS:
            raise ValueError(f"planner must be one of {_PLANNERS}, got {self.planner!r}")
        if self.num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if self.samples_per_region < 1:
            raise ValueError("samples_per_region must be >= 1")
        if self.nodes_per_region < 1:
            raise ValueError("nodes_per_region must be >= 1")

    def resolve_cspace(self) -> ConfigurationSpace:
        """Materialise the configuration space (looking the environment up
        by catalog name when given as a string)."""
        env = self.environment
        if isinstance(env, str):
            env = environments.by_name(env)
        return EuclideanCSpace(env)

    def cache_key(self) -> str:
        """Canonical content hash of (environment, planner params, seed).

        Every field that can change the built roadmap participates; two
        workloads differing only in a single option — the seed included —
        never collide.  ``options`` values without a JSON form hash by
        ``repr`` (stable within one process, which is the cache's scope).
        """
        h = hashlib.sha256()
        h.update(_environment_fingerprint(self.environment))
        payload = {
            "planner": self.planner,
            "num_regions": self.num_regions,
            "samples_per_region": self.samples_per_region,
            "nodes_per_region": self.nodes_per_region,
            "seed": self.seed,
            "options": dict(self.options),
        }
        h.update(json.dumps(payload, sort_keys=True, default=repr).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class ExecutionPolicy:
    """Where and how to run: simulated machine or local pool, one record.

    ``mode`` is the canonical name for what the flat API called
    ``execution``; ``workers`` is the one spelling for pool size (the
    ``n_workers`` / ``n_pes`` variants are gone — ``num_pes`` survives
    only as the *simulated* PE count, a genuinely different quantity).
    """

    #: "simulate" replays on the virtual machine; "local" runs the
    #: regional planners on this machine's cores.
    mode: str = "simulate"
    #: load-balancing strategy: "none", "repartition", "rand-8",
    #: "diffusive" or "hybrid" (simulate mode).
    strategy: str = "none"
    #: initial region->PE distribution: "block", "greedy" or "rcb".
    partitioner: str = "block"
    #: simulated machine size.
    num_pes: int = 16
    topology: "ClusterTopology | None" = None
    steal_chunk: "str | int" = "half"
    #: local pool size (also QueryEngine batch dispatch width); ``None``
    #: resolves to ``os.cpu_count()`` at dispatch time.
    workers: "int | None" = None
    backend: str = "thread"
    #: tasks per submission: an int (>1 amortises dispatch for tiny
    #: regions) or a :mod:`repro.runtime.chunking` policy name —
    #: ``"guided"`` (self-scheduling decay) or ``"weighted"`` (equal
    #: estimated cost per chunk).
    chunksize: "int | str" = 1
    #: how the planning context crosses the process boundary:
    #: ``"auto"`` (shared memory when the backend is ``"process"`` and
    #: the platform supports it, else pickle), ``"shm"``, or
    #: ``"pickle"`` (explicitly serialize the context once per worker).
    #: Results are bit-identical across planes; only transport differs.
    data_plane: str = "auto"
    #: compute-kernel backend for the collision/distance hot paths (a
    #: :mod:`repro.kernels` registry name — ``"fast32"`` for float32
    #: blocked compute, ``"bvh"`` for tree-culled queries on
    #: obstacle-heavy scenes, bit-exact with reference).  ``None`` keeps
    #: whatever the environment is configured with — ``"reference"``
    #: (bit-exact) unless explicitly changed, so the default is
    #: reference everywhere.
    kernel_backend: "str | None" = None
    #: nearest-neighbour backend for the planners' growing structures (a
    #: :mod:`repro.knn` registry name — ``"incremental"`` for the
    #: logarithmic-rebuild kd-tree forest that makes large RRT builds
    #: sublinear per query, ``"brute"`` / ``"kdtree"`` for the flat
    #: backends).  All backends share the canonical (distance, insertion
    #: order) tie-break, so the choice never changes planner output.
    #: ``None`` keeps each planner's default (brute force).
    nn_backend: "str | None" = None

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field."""
        if self.mode not in _MODES:
            raise ValueError(f"execution must be one of {_MODES}, got {self.mode!r}")
        if self.strategy not in _STRATEGIES:
            raise ValueError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}"
            )
        if self.num_pes < 1:
            raise ValueError("num_pes must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 (or None for os.cpu_count())")
        if self.backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {self.backend!r}")
        from .runtime.chunking import validate_chunksize

        validate_chunksize(self.chunksize)
        if self.data_plane not in _DATA_PLANES:
            raise ValueError(
                f"data_plane must be one of {_DATA_PLANES}, got {self.data_plane!r}"
            )
        if self.kernel_backend is not None:
            from .kernels import available_backends
            from .knn import available_nn_factories

            if self.kernel_backend not in available_backends():
                hint = (
                    " (this is an NN backend — did you mean nn_backend"
                    f"={self.kernel_backend!r}?)"
                    if self.kernel_backend in available_nn_factories()
                    else ""
                )
                raise ValueError(
                    f"kernel_backend must be one of {available_backends()} "
                    f"(or None), got {self.kernel_backend!r}{hint}"
                )
        if self.nn_backend is not None:
            from .kernels import available_backends
            from .knn import available_nn_factories

            if self.nn_backend not in available_nn_factories():
                hint = (
                    " (this is a compute-kernel backend — did you mean "
                    f"kernel_backend={self.nn_backend!r}?)"
                    if self.nn_backend in available_backends()
                    else ""
                )
                raise ValueError(
                    f"nn_backend must be one of {available_nn_factories()} "
                    f"(or None), got {self.nn_backend!r}{hint}"
                )


@dataclass(frozen=True)
class FaultPolicy:
    """What to do when tasks fail: policy, budget, timeout, chaos plan.

    ``policy`` is the canonical name for the flat ``failure_policy``;
    ``injector`` for ``fault_injector``.
    """

    #: "fail_fast" (default), "retry" (bounded retries with backoff), or
    #: "degrade" (abandon exhausted tasks and return a partial result).
    policy: str = "fail_fast"
    max_retries: int = 2
    #: seconds allowed per task before the attempt counts as failed
    #: (local execution; None disables timeouts).
    task_timeout: "float | None" = None
    #: deterministic chaos plan (see ``repro.runtime.faults``); None
    #: injects nothing and costs nothing.
    injector: "FaultInjector | None" = None

    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field."""
        if self.policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, got {self.policy!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")

    def pool_kwargs(self, retry_seed: int = 0) -> "dict[str, Any]":
        """This policy as :func:`repro.runtime.run_tasks_parallel` kwargs."""
        return {
            "failure_policy": self.policy,
            "max_retries": self.max_retries,
            "task_timeout": self.task_timeout,
            "fault_injector": self.injector,
            "retry_seed": retry_seed,
        }


@dataclass(frozen=True)
class ObsConfig:
    """What to record: the observability hook."""

    #: None (default) records nothing at zero overhead.
    tracer: "Tracer | None" = None

    def validate(self) -> None:
        """Nothing to range-check; present for protocol symmetry."""


# -- the aggregate -----------------------------------------------------------

#: legacy flat kwarg -> (aggregate field, spec field).  ``execution`` is
#: special-cased in ``__init__`` (a string is the legacy mode spelling).
_FLAT_MAP = {
    "environment": ("workload", "environment"),
    "planner": ("workload", "planner"),
    "num_regions": ("workload", "num_regions"),
    "samples_per_region": ("workload", "samples_per_region"),
    "nodes_per_region": ("workload", "nodes_per_region"),
    "seed": ("workload", "seed"),
    "workload_options": ("workload", "options"),
    "execution": ("execution", "mode"),
    "strategy": ("execution", "strategy"),
    "partitioner": ("execution", "partitioner"),
    "num_pes": ("execution", "num_pes"),
    "topology": ("execution", "topology"),
    "steal_chunk": ("execution", "steal_chunk"),
    "workers": ("execution", "workers"),
    "backend": ("execution", "backend"),
    "chunksize": ("execution", "chunksize"),
    "failure_policy": ("faults", "policy"),
    "max_retries": ("faults", "max_retries"),
    "task_timeout": ("faults", "task_timeout"),
    "fault_injector": ("faults", "injector"),
    "tracer": ("obs", "tracer"),
}

_SPEC_TYPES = {
    "workload": WorkloadSpec,
    "execution": ExecutionPolicy,
    "faults": FaultPolicy,
    "obs": ObsConfig,
}


class PlanRequest:
    """Everything :func:`repro.api.plan` needs: a frozen aggregate of
    :class:`WorkloadSpec`, :class:`ExecutionPolicy`, :class:`FaultPolicy`
    and :class:`ObsConfig`.

    Construct it from spec objects (canonical), or from the legacy flat
    kwargs (deprecated — a :class:`DeprecationWarning` is emitted and the
    values are routed into the spec fields).  Mixing a spec object with
    flat kwargs that belong to the same spec is an error: there must be
    exactly one place each knob comes from.
    """

    __slots__ = ("workload", "execution", "faults", "obs")

    def __init__(
        self,
        workload: "WorkloadSpec | None" = None,
        execution: "ExecutionPolicy | str | None" = None,
        faults: "FaultPolicy | None" = None,
        obs: "ObsConfig | None" = None,
        **flat,
    ):
        if isinstance(execution, str):  # legacy: execution="local"
            flat["execution"] = execution
            execution = None
        specs: "dict[str, Any]" = {
            "workload": workload, "execution": execution, "faults": faults, "obs": obs,
        }
        for name, value in specs.items():
            if value is not None and not isinstance(value, _SPEC_TYPES[name]):
                raise TypeError(
                    f"{name} must be a {_SPEC_TYPES[name].__name__}, "
                    f"got {type(value).__name__}"
                )
        if flat:
            unknown = set(flat) - set(_FLAT_MAP)
            if unknown:
                raise TypeError(
                    f"unknown PlanRequest field(s): {sorted(unknown)}"
                )
            warnings.warn(
                "flat PlanRequest kwargs are deprecated; pass WorkloadSpec / "
                "ExecutionPolicy / FaultPolicy / ObsConfig spec objects "
                f"(got flat: {sorted(flat)})",
                DeprecationWarning,
                stacklevel=2,
            )
            overrides: "dict[str, dict[str, Any]]" = {}
            for key, value in flat.items():
                spec_name, spec_field = _FLAT_MAP[key]
                if specs[spec_name] is not None:
                    raise TypeError(
                        f"cannot mix flat kwarg {key!r} with an explicit "
                        f"{spec_name} spec"
                    )
                overrides.setdefault(spec_name, {})[spec_field] = value
            for spec_name, kwargs in overrides.items():
                specs[spec_name] = _SPEC_TYPES[spec_name](**kwargs)
        for name, value in specs.items():
            if value is None:
                value = _SPEC_TYPES[name]()
            object.__setattr__(self, name, value)

    # -- immutability --------------------------------------------------------
    def __setattr__(self, name, value):
        raise AttributeError(
            f"PlanRequest is frozen; use replace({name}=...) to derive a new one"
        )

    def replace(self, **changes) -> "PlanRequest":
        """A copy with the given spec fields replaced (canonical names)."""
        unknown = set(changes) - set(_SPEC_TYPES)
        if unknown:
            raise TypeError(f"unknown spec field(s): {sorted(unknown)}")
        kwargs = {name: getattr(self, name) for name in _SPEC_TYPES}
        kwargs.update(changes)
        return PlanRequest(**kwargs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PlanRequest):
            return NotImplemented
        return all(getattr(self, n) == getattr(other, n) for n in _SPEC_TYPES)

    def __repr__(self) -> str:
        return (
            f"PlanRequest(workload={self.workload!r}, execution={self.execution!r}, "
            f"faults={self.faults!r}, obs={self.obs!r})"
        )

    # -- protocol ------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any out-of-range or unknown field."""
        self.workload.validate()
        self.execution.validate()
        self.faults.validate()
        self.obs.validate()

    def resolve_cspace(self) -> ConfigurationSpace:
        """Materialise the workload's configuration space."""
        return self.workload.resolve_cspace()

    # -- legacy flat reads ---------------------------------------------------
    # One property per pre-redesign field so existing callers (and the
    # report accessors) keep reading the names they always did.  The one
    # intentional change: ``request.execution`` is now the ExecutionPolicy
    # spec — read ``request.execution.mode`` for the old string.

    @property
    def environment(self):
        """Legacy read of ``workload.environment``."""
        return self.workload.environment

    @property
    def planner(self) -> str:
        """Legacy read of ``workload.planner``."""
        return self.workload.planner

    @property
    def num_regions(self) -> int:
        """Legacy read of ``workload.num_regions``."""
        return self.workload.num_regions

    @property
    def samples_per_region(self) -> int:
        """Legacy read of ``workload.samples_per_region``."""
        return self.workload.samples_per_region

    @property
    def nodes_per_region(self) -> int:
        """Legacy read of ``workload.nodes_per_region``."""
        return self.workload.nodes_per_region

    @property
    def seed(self) -> int:
        """Legacy read of ``workload.seed``."""
        return self.workload.seed

    @property
    def workload_options(self) -> "Mapping[str, Any]":
        """Legacy read of ``workload.options``."""
        return self.workload.options

    @property
    def strategy(self) -> str:
        """Legacy read of ``execution.strategy``."""
        return self.execution.strategy

    @property
    def partitioner(self) -> str:
        """Legacy read of ``execution.partitioner``."""
        return self.execution.partitioner

    @property
    def num_pes(self) -> int:
        """Legacy read of ``execution.num_pes``."""
        return self.execution.num_pes

    @property
    def topology(self):
        """Legacy read of ``execution.topology``."""
        return self.execution.topology

    @property
    def steal_chunk(self):
        """Legacy read of ``execution.steal_chunk``."""
        return self.execution.steal_chunk

    @property
    def workers(self) -> int:
        """Legacy read of ``execution.workers``."""
        return self.execution.workers

    @property
    def backend(self) -> str:
        """Legacy read of ``execution.backend``."""
        return self.execution.backend

    @property
    def chunksize(self) -> int:
        """Legacy read of ``execution.chunksize``."""
        return self.execution.chunksize

    @property
    def failure_policy(self) -> str:
        """Legacy read of ``faults.policy``."""
        return self.faults.policy

    @property
    def max_retries(self) -> int:
        """Legacy read of ``faults.max_retries``."""
        return self.faults.max_retries

    @property
    def task_timeout(self) -> "float | None":
        """Legacy read of ``faults.task_timeout``."""
        return self.faults.task_timeout

    @property
    def fault_injector(self):
        """Legacy read of ``faults.injector``."""
        return self.faults.injector

    @property
    def tracer(self):
        """Legacy read of ``obs.tracer``."""
        return self.obs.tracer


def _spec_field_names() -> "set[str]":
    """Every canonical field name across the four specs (for docs/tests)."""
    names: "set[str]" = set()
    for spec in _SPEC_TYPES.values():
        names.update(f.name for f in fields(spec))
    return names
