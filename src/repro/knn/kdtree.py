"""A from-scratch kd-tree with incremental insertion.

Supports the same interface as :class:`~repro.knn.brute.BruteForceNN` and
is cross-validated against it property-style in the tests.  Insertion uses
median-less splitting (cycle through axes at the insertion point), which
keeps the tree adequately balanced for randomly ordered points — exactly
what samplers produce.

Two properties make it a drop-in replacement for the brute-force backend
on the query-serving hot path:

* **Canonical tie-breaking** — neighbours are ordered by
  ``(distance, insertion order)``, the same rule BruteForceNN and GridNN
  follow, so swapping backends never changes a planner's output.
* **Bit-identical distances** — per-node distances accumulate squared
  per-axis differences left to right in Python floats, the same order
  NumPy's row-wise ``linalg.norm`` reduces small-``dim`` rows, so the
  reported distances match the brute-force values bit for bit.

Nodes live in parallel Python lists (points as tuples) rather than
heap-allocated node objects: traversal touches plain list slots with no
attribute lookups or NumPy scalar boxing, which is what lets the tree
beat the vectorised brute-force scan beyond a few thousand points.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from .base import NeighborFinder

__all__ = ["KDTreeNN"]


class KDTreeNN(NeighborFinder):
    """Incremental kd-tree over ``dim``-dimensional points.

    ``kernels`` is accepted for factory-signature uniformity with
    :class:`~repro.knn.brute.BruteForceNN`; the scalar tree descent is
    always exact float64, so the backend is stored but unused.
    """

    def __init__(self, dim: int, kernels=None):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.kernels = kernels
        # Parallel arrays: point tuple, external id, split axis, child slots
        # (-1 = absent).  Slot index doubles as insertion sequence number.
        self._pts: "list[tuple[float, ...]]" = []
        self._ids: list[int] = []
        self._axis: list[int] = []
        self._left: list[int] = []
        self._right: list[int] = []

    # -- construction -------------------------------------------------------
    def _insert(self, point_id: int, pt: "tuple[float, ...]") -> None:
        i = len(self._pts)
        self._pts.append(pt)
        self._ids.append(int(point_id))
        self._left.append(-1)
        self._right.append(-1)
        if i == 0:
            self._axis.append(0)
            return
        pts, axes, left, right = self._pts, self._axis, self._left, self._right
        node = 0
        while True:
            ax = axes[node]
            if pt[ax] < pts[node][ax]:
                nxt = left[node]
                if nxt < 0:
                    left[node] = i
                    break
            else:
                nxt = right[node]
                if nxt < 0:
                    right[node] = i
                    break
            node = nxt
        self._axis.append((ax + 1) % self.dim)

    def add(self, point_id: int, point: np.ndarray) -> None:
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {pt.shape}")
        self._insert(point_id, tuple(pt.tolist()))

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        if points.shape[1] != self.dim:
            raise ValueError(f"points must have shape (m, {self.dim}), got {points.shape}")
        for pid, row in zip(ids.tolist(), points.tolist()):
            self._insert(pid, tuple(row))

    # -- queries -----------------------------------------------------------
    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if not self._pts or k <= 0:
            return []
        q = tuple(np.asarray(query, dtype=float).tolist())
        self.stats.queries += 1
        pts, ids_, axes = self._pts, self._ids, self._axis
        left, right = self._left, self._right
        # Max-heap of (-d, -seq, id): heap[0] is the worst kept neighbour
        # under the canonical (distance, insertion order) key.
        heap: "list[tuple[float, int, int]]" = []
        evals = 0
        # Explicit stack of (node, plane) where plane >= 0 marks a deferred
        # far-subtree visit carrying its splitting-plane distance.  The
        # prune test runs at *pop* time — after the near subtree tightened
        # the heap — matching the recursive formulation's pruning power.
        stack: "list[tuple[int, float]]" = [(0, -1.0)]
        while stack:
            node, plane = stack.pop()
            if plane >= 0.0 and len(heap) == k and plane > -heap[0][0]:
                continue
            pt = pts[node]
            evals += 1
            s = 0.0
            for a, b in zip(pt, q):
                t = a - b
                s += t * t
            d = math.sqrt(s)
            if ids_[node] != exclude:
                entry = (-d, -node, ids_[node])
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)
            ax = axes[node]
            delta = q[ax] - pt[ax]
            if delta < 0.0:
                near, far = left[node], right[node]
            else:
                near, far = right[node], left[node]
            if far >= 0:
                stack.append((far, -delta if delta < 0.0 else delta))
            if near >= 0:
                stack.append((near, -1.0))
        self.stats.distance_evals += evals
        out = sorted((-nd, -nseq, pid) for nd, nseq, pid in heap)
        return [(pid, d) for d, _seq, pid in out]

    def nn1(self, query: np.ndarray, bound: float = math.inf) -> "tuple[int, float]":
        """The single nearest stored point as ``(id, distance)`` — the
        same answer as ``knn(query, 1)[0]`` (canonical tie-break
        included) with a flat scalar descent instead of the heap.

        ``bound`` is an optional prune radius from the caller: subtrees
        whose splitting plane is *strictly* farther than
        ``min(bound, best so far)`` are skipped, so any point at distance
        ``<= bound`` is still found exactly (ties at the bound survive
        the strict comparison).  When every point is farther than
        ``bound`` the returned pair is the nearest *visited* point — the
        caller already holds a candidate at ``<= bound``, so the result
        merges away.  Returns ``(-1, inf)`` on an empty tree.
        """
        if not self._pts:
            return (-1, math.inf)
        q = tuple(np.asarray(query, dtype=float).tolist())
        self.stats.queries += 1
        pts, ids_, axes = self._pts, self._ids, self._axis
        left, right = self._left, self._right
        best_d = math.inf
        best_seq = -1
        lim = bound
        evals = 0
        stack: "list[tuple[int, float]]" = [(0, -1.0)]
        while stack:
            node, plane = stack.pop()
            if plane >= 0.0 and plane > lim:
                continue
            pt = pts[node]
            evals += 1
            s = 0.0
            for a, b in zip(pt, q):
                t = a - b
                s += t * t
            d = math.sqrt(s)
            if d < best_d or (d == best_d and node < best_seq):
                best_d = d
                best_seq = node
                if best_d < lim:
                    lim = best_d
            ax = axes[node]
            delta = q[ax] - pt[ax]
            if delta < 0.0:
                near, far = left[node], right[node]
            else:
                near, far = right[node], left[node]
            if far >= 0:
                stack.append((far, -delta if delta < 0.0 else delta))
            if near >= 0:
                stack.append((near, -1.0))
        self.stats.distance_evals += evals
        return (ids_[best_seq], best_d)

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if not self._pts:
            return []
        q = tuple(np.asarray(query, dtype=float).tolist())
        self.stats.queries += 1
        pts, ids_, axes = self._pts, self._ids, self._axis
        left, right = self._left, self._right
        found: "list[tuple[float, int, int]]" = []
        evals = 0
        stack = [0]
        while stack:
            node = stack.pop()
            pt = pts[node]
            evals += 1
            s = 0.0
            for a, b in zip(pt, q):
                t = a - b
                s += t * t
            d = math.sqrt(s)
            if d <= r and ids_[node] != exclude:
                found.append((d, node, ids_[node]))
            ax = axes[node]
            delta = q[ax] - pt[ax]
            if delta < 0.0:
                near, far = left[node], right[node]
            else:
                near, far = right[node], left[node]
            # The radius bound is static, so the far side prunes at push time.
            if far >= 0 and (-delta if delta < 0.0 else delta) <= r:
                stack.append(far)
            if near >= 0:
                stack.append(near)
        self.stats.distance_evals += evals
        found.sort()
        return [(pid, d) for d, _seq, pid in found]

    def __len__(self) -> int:
        return len(self._pts)

    # -- diagnostics --------------------------------------------------------
    def depth(self) -> int:
        """Tree height (for balance diagnostics in tests)."""
        if not self._pts:
            return 0
        best = 0
        stack = [(0, 1)]
        while stack:
            node, h = stack.pop()
            if h > best:
                best = h
            for child in (self._left[node], self._right[node]):
                if child >= 0:
                    stack.append((child, h + 1))
        return best
