#!/usr/bin/env python
"""High-DOF planning study, motivated by the paper's protein-folding use
case: sampling-based planners scale to many degrees of freedom, and
parallel decomposition makes the heavy runs tractable.

We model a simplified "folding" problem as a point robot in a
6-dimensional configuration space (three positional DOFs subdivided
spatially, three abstract internal DOFs), cluttered with forbidden zones
(steric clashes).  The study measures how load balancing behaves as the
clutter — and hence the workload heterogeneity — grows.

Run:  python examples/protein_folding_study.py
"""

import numpy as np

from repro.bench import format_table
from repro.core import build_prm_workload, simulate_prm
from repro.cspace import EuclideanCSpace
from repro.geometry import AABB, Environment


def make_conformation_space(blocked_fraction: float, seed: int = 0) -> Environment:
    """A 3-D workspace standing in for the positional slice of a
    conformation space; internal DOFs are handled by the C-space below."""
    rng = np.random.default_rng(seed)
    bounds = AABB(-10.0 * np.ones(3), 10.0 * np.ones(3))
    obstacles = []
    placed = 0.0
    target = blocked_fraction * bounds.volume()
    while placed < target:
        side = rng.uniform(1.0, 4.0, size=3)
        center = rng.uniform(bounds.lo + side / 2, bounds.hi - side / 2)
        # Steric clashes cluster around the partially-folded core.
        center *= 0.6
        cand = AABB(center - side / 2, center + side / 2)
        if any(cand.intersects(o) for o in obstacles):
            continue
        obstacles.append(cand)
        placed += cand.volume()
    return Environment(bounds, obstacles, name=f"conformation({blocked_fraction:.0%})")


def main() -> None:
    print("Protein-folding-style study: load balancing vs clutter level\n")
    header = ["clutter", "P", "no-LB", "repartition", "hybrid WS", "best speedup"]
    rows = []
    for blocked in (0.05, 0.15, 0.30):
        env = make_conformation_space(blocked)
        cspace = EuclideanCSpace(env)
        workload = build_prm_workload(
            cspace, num_regions=1000, samples_per_region=6, seed=3
        )
        for P in (64, 256):
            times = {}
            for strategy in ("none", "repartition", "hybrid"):
                times[strategy] = simulate_prm(workload, P, strategy).total_time
            best = min(times["repartition"], times["hybrid"])
            rows.append(
                [
                    f"{blocked:.0%}",
                    P,
                    f"{times['none']:.0f}",
                    f"{times['repartition']:.0f}",
                    f"{times['hybrid']:.0f}",
                    f"{times['none'] / best:.2f}x",
                ]
            )
    print(format_table(header, rows))
    print(
        "\nTakeaway: the more heterogeneous the conformation space, the more "
        "load balancing pays — matching the paper's motivation for studying "
        "larger proteins on more cores."
    )


if __name__ == "__main__":
    main()
