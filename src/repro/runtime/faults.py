"""Deterministic fault injection for the parallel runtime.

The paper's work-stealing protocol already treats regions as transferable
units of work whose ownership moves between processors; fault tolerance
is the same idea applied to *involuntary* transfers.  This module defines
the vocabulary shared by the local pool and the simulator:

* :class:`Fault` — one planned failure, keyed by task id, worker/PE id
  and attempt number.  Three kinds: ``"raise"`` (the task raises mid-
  execution, modelling a transient regional-planner failure), ``"hang"``
  (the task stalls past its timeout), and ``"crash"`` (the worker process
  / PE dies).
* :class:`FaultInjector` — a deterministic, seedable plan of faults.
  Explicit :class:`Fault` entries fire exactly when their key matches;
  an optional Bernoulli ``rate`` adds seeded pseudo-random transient
  failures that are a pure function of ``(seed, task, attempt)``, so two
  runs with the same injector see identical faults regardless of
  scheduling order.

Both executors take ``fault_injector=None`` and short-circuit every
injection site on the default path — the same zero-overhead contract as
``repro.obs`` tracers.  Injectors are picklable so the process backend
can ship them to workers through the pool initializer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "FAULT_RAISE",
    "FAULT_HANG",
    "FAULT_CRASH",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "WorkerCrash",
    "TaskFailedError",
]

FAULT_RAISE = "raise"
FAULT_HANG = "hang"
FAULT_CRASH = "crash"
FAULT_KINDS = (FAULT_RAISE, FAULT_HANG, FAULT_CRASH)


class InjectedFault(RuntimeError):
    """Raised inside a task when a ``"raise"`` fault fires."""


class WorkerCrash(RuntimeError):
    """A worker died (or simulated dying) while holding tasks.

    On the thread backend a ``"crash"`` fault raises this instead of
    killing the process — threads cannot be killed, so the crash is
    *modelled*: the dispatcher treats it exactly like a dead worker
    (attempt consumed for every task in the chunk, worker-death counted).
    """


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget (or failed under ``fail_fast``)."""

    def __init__(self, task: int, attempts: int, cause: "BaseException | str"):
        self.task = task
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"task {task} failed after {attempts} attempt(s): {cause!r}"
        )


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    ``task`` / ``worker`` of ``None`` act as wildcards; ``attempt`` is
    exact (0 = first execution), so a transient fault is expressed as
    ``Fault("raise", task=7, attempt=0)`` — attempt 1 then succeeds.
    ``hang`` is the stall duration: wall seconds in the local pool,
    virtual seconds of extra cost in the simulator.
    """

    kind: str
    task: "int | None" = None
    worker: "int | None" = None
    attempt: int = 0
    hang: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.attempt < 0:
            raise ValueError("attempt must be >= 0")
        if self.hang < 0:
            raise ValueError("hang must be >= 0")

    def matches(self, task: "int | None", attempt: int, worker: "int | None") -> bool:
        """True when this fault targets the given (task, attempt, worker)."""
        if self.attempt != attempt:
            return False
        if self.task is not None and self.task != task:
            return False
        if self.worker is not None and self.worker != worker:
            return False
        return True


class FaultInjector:
    """A deterministic fault plan both executors understand.

    Parameters
    ----------
    faults:
        Explicit :class:`Fault` entries; the first match wins.
    rate:
        Probability in ``[0, 1)`` of a seeded pseudo-random ``"raise"``
        fault on any ``(task, attempt)`` with ``attempt <= rate_attempts``.
        The draw is a pure function of ``(seed, task, attempt)`` — no
        shared RNG state, so outcomes are independent of execution order.
    rate_attempts:
        Highest attempt index the Bernoulli faults may hit (default 0:
        only first attempts fail, so a single retry always recovers).
    seed:
        Entropy for the Bernoulli draws.
    """

    def __init__(
        self,
        faults: "Iterable[Fault] | None" = None,
        rate: float = 0.0,
        rate_attempts: int = 0,
        seed: int = 0,
    ):
        self.faults = tuple(faults or ())
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = float(rate)
        self.rate_attempts = int(rate_attempts)
        self.seed = int(seed)

    def poll(
        self, task: "int | None", attempt: int, worker: "int | None" = None
    ) -> "Fault | None":
        """The fault (if any) that fires for this execution attempt."""
        for f in self.faults:
            if f.matches(task, attempt, worker):
                return f
        if self.rate > 0.0 and attempt <= self.rate_attempts and task is not None:
            u = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(task, attempt))
            ).random()
            if u < self.rate:
                return Fault(FAULT_RAISE, task=task, attempt=attempt)
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector({len(self.faults)} planned, rate={self.rate}, "
            f"seed={self.seed})"
        )
