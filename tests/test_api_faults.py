"""End-to-end fault tolerance through the plan() facade.

The acceptance scenario for the resilient runtime: a run that loses one
worker and transiently fails two regions, under ``failure_policy="retry"``,
must return a :class:`PlanReport` identical to the fault-free run in
every field except wall-clock and the retry accounting — and the trace
must tell the failure story via ``python -m repro.obs summarize``.
"""

import os
import subprocess
import sys

import pytest

from repro import (
    Fault,
    FaultInjector,
    JsonlSink,
    PlanRequest,
    Tracer,
    plan,
)
from repro.runtime import TaskFailedError

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _roadmap_signature(report):
    rm = report.roadmap
    ids, cfgs = rm.configs_array()
    edges = sorted((min(u, v), max(u, v), w) for u, v, w in rm.edges())
    return list(ids), cfgs.tolist(), edges


def _local_request(**kw):
    defaults = dict(
        planner="prm",
        num_regions=12,
        samples_per_region=4,
        execution="local",
        workers=3,
        seed=7,
    )
    defaults.update(kw)
    return PlanRequest(**defaults)


class TestPlanRetryParity:
    def test_one_crash_two_transients_full_parity(self, tmp_path):
        clean = plan(_local_request())

        region_ids = sorted(clean.pool.results)
        injector = FaultInjector(
            [
                Fault("crash", task=region_ids[1], attempt=0),
                Fault("raise", task=region_ids[4], attempt=0),
                Fault("raise", task=region_ids[8], attempt=0),
            ]
        )
        trace = tmp_path / "chaos.jsonl"
        tracer = Tracer(sinks=[JsonlSink(trace)])
        chaotic = plan(
            _local_request(
                failure_policy="retry", fault_injector=injector, tracer=tracer
            )
        )
        tracer.close()

        # Field-for-field parity, modulo wall-clock and retry accounting.
        assert _roadmap_signature(chaotic) == _roadmap_signature(clean)
        assert chaotic.pool.results.keys() == clean.pool.results.keys()
        assert chaotic.abandoned_regions == []
        assert chaotic.pool.complete

        # The accounting tells the injected story exactly.
        assert chaotic.retries == 3
        assert chaotic.worker_deaths == 1
        assert chaotic.pool.attempts[region_ids[4]] == 2
        assert chaotic.pool.attempts[region_ids[8]] == 2
        assert "failures: 3 retries, 0 abandoned regions, 1 worker deaths" in (
            chaotic.summary()
        )

        # And the trace is legible from the CLI.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs", "summarize", str(trace)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stderr
        assert "Failures" in proc.stdout
        assert "worker deaths" in proc.stdout
        assert "retry reasons" in proc.stdout

    def test_retry_parity_also_holds_for_rrt(self):
        clean = plan(_local_request(planner="rrt", nodes_per_region=5))
        rid = sorted(clean.pool.results)[2]
        chaotic = plan(
            _local_request(
                planner="rrt",
                nodes_per_region=5,
                failure_policy="retry",
                fault_injector=FaultInjector([Fault("raise", task=rid, attempt=0)]),
            )
        )
        assert _roadmap_signature(chaotic) == _roadmap_signature(clean)
        assert chaotic.retries == 1


class TestPlanDegrade:
    def test_abandoned_region_missing_from_merge(self):
        clean = plan(_local_request())
        doomed = sorted(clean.pool.results)[3]
        report = plan(
            _local_request(
                failure_policy="degrade",
                max_retries=1,
                fault_injector=FaultInjector(
                    [Fault("raise", task=doomed, attempt=a) for a in range(4)]
                ),
            )
        )
        assert report.abandoned_regions == [doomed]
        assert doomed not in report.pool.results
        # The surviving regions still stitch into a valid roadmap.
        assert report.roadmap.num_vertices < clean.roadmap.num_vertices
        assert report.roadmap.num_vertices > 0
        assert "failures:" in report.summary()

    def test_fail_fast_propagates(self):
        with pytest.raises(TaskFailedError):
            plan(
                _local_request(
                    fault_injector=FaultInjector([Fault("raise", attempt=0)])
                )
            )


class TestSimulateModeFaults:
    def test_simulate_mode_accepts_injector(self):
        report = plan(
            PlanRequest(
                num_regions=64,
                samples_per_region=4,
                strategy="rand-8",
                num_pes=8,
                seed=3,
                fault_injector=FaultInjector(rate=0.1, seed=5),
            )
        )
        assert report.sim is not None
        assert report.retries >= 0
        assert report.worker_deaths == 0  # rate faults are "raise" only

    def test_simulate_mode_crash_accounted(self):
        report = plan(
            PlanRequest(
                num_regions=32,
                samples_per_region=4,
                strategy="rand-8",
                num_pes=4,
                seed=3,
                fault_injector=FaultInjector([Fault("crash", worker=1, attempt=0)]),
            )
        )
        assert report.worker_deaths == 1
        assert report.abandoned_regions == []


class TestRequestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_policy": "panic"},
            {"max_retries": -1},
            {"task_timeout": 0.0},
        ],
    )
    def test_rejects_bad_fault_fields(self, kwargs):
        with pytest.raises(ValueError):
            PlanRequest(**kwargs).validate()
