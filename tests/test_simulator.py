"""Tests for the event-driven work-stealing simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DiffusivePolicy, HybridPolicy, RandKPolicy
from repro.runtime import ClusterTopology, WorkStealingSimulator, run_static_phase


def _uniform_executor(cost=10.0):
    return lambda task, pe: cost


class TestStaticExecution:
    def test_balanced_static(self):
        topo = ClusterTopology(4, cores_per_node=2)
        assignment = {t: t % 4 for t in range(16)}
        res = run_static_phase(topo, _uniform_executor(5.0), assignment)
        assert res.makespan == pytest.approx(20.0)
        assert res.total_work() == pytest.approx(80.0)
        assert res.efficiency() == pytest.approx(1.0)

    def test_imbalanced_static_makespan(self):
        topo = ClusterTopology(4)
        assignment = {t: 0 for t in range(8)}  # everything on PE 0
        res = run_static_phase(topo, _uniform_executor(3.0), assignment)
        assert res.makespan == pytest.approx(24.0)
        assert res.pe_stats[0].tasks_executed == 8
        assert res.pe_stats[1].tasks_executed == 0

    def test_executed_by_matches_assignment(self):
        topo = ClusterTopology(3)
        assignment = {t: t % 3 for t in range(9)}
        res = run_static_phase(topo, _uniform_executor(), assignment)
        assert res.executed_by == assignment

    def test_empty_assignment(self):
        topo = ClusterTopology(2)
        res = run_static_phase(topo, _uniform_executor(), {})
        assert res.makespan == 0.0

    def test_invalid_pe_rejected(self):
        topo = ClusterTopology(2)
        with pytest.raises(ValueError):
            run_static_phase(topo, _uniform_executor(), {0: 5})

    def test_negative_cost_rejected(self):
        topo = ClusterTopology(1)
        sim = WorkStealingSimulator(topo, lambda t, p: -1.0)
        with pytest.raises(ValueError):
            sim.run({0: 0})


class TestWorkStealing:
    def _run(self, policy, P=8, tasks_on_pe0=64, cost=10.0, **kw):
        topo = ClusterTopology(P, cores_per_node=4)
        sim = WorkStealingSimulator(
            topo, _uniform_executor(cost), steal_policy=policy,
            rng=np.random.default_rng(0), **kw
        )
        return sim.run({t: 0 for t in range(tasks_on_pe0)})

    def test_stealing_reduces_makespan(self):
        static = run_static_phase(
            ClusterTopology(8, cores_per_node=4), _uniform_executor(10.0),
            {t: 0 for t in range(64)},
        )
        stolen = self._run(RandKPolicy(4))
        assert stolen.makespan < static.makespan
        # Should be within a small factor of perfect balance (steal
        # latency, transfer cost and non-preemptive service all add up).
        assert stolen.makespan < 3.0 * (64 * 10.0 / 8)

    def test_all_tasks_execute_exactly_once(self):
        res = self._run(HybridPolicy())
        assert len(res.executed_by) == 64
        assert sum(s.tasks_executed for s in res.pe_stats) == 64

    def test_stolen_marks_consistent(self):
        res = self._run(RandKPolicy(4))
        for st in res.pe_stats:
            assert st.tasks_stolen_executed <= st.tasks_executed
        # Tasks left PE 0:
        assert res.pe_stats[0].tasks_lost > 0
        lost = sum(s.tasks_lost for s in res.pe_stats)
        stolen_exec = sum(s.tasks_stolen_executed for s in res.pe_stats)
        assert stolen_exec <= lost  # some stolen tasks may be re-stolen

    def test_work_conserved(self):
        res = self._run(DiffusivePolicy())
        assert res.total_work() == pytest.approx(64 * 10.0)

    def test_deterministic_given_seed(self):
        a = self._run(RandKPolicy(4))
        b = self._run(RandKPolicy(4))
        assert a.makespan == b.makespan
        assert a.executed_by == b.executed_by

    def test_chunk_one_slower_than_half(self):
        half = self._run(RandKPolicy(4), steal_chunk="half")
        one = self._run(RandKPolicy(4), steal_chunk=1)
        assert one.total_messages >= half.total_messages

    def test_min_keep_respected(self):
        res = self._run(RandKPolicy(4), min_keep=8, tasks_on_pe0=16)
        # Victim must keep at least 8 queued; at most 16-8 stolen overall
        # in the first service, so PE 0 executes at least 8.
        assert res.pe_stats[0].tasks_executed >= 8

    def test_single_pe_never_steals(self):
        topo = ClusterTopology(1)
        sim = WorkStealingSimulator(topo, _uniform_executor(), steal_policy=RandKPolicy(4))
        res = sim.run({t: 0 for t in range(5)})
        assert res.total_messages == 0
        assert res.makespan == pytest.approx(50.0)

    def test_offload_service_at_least_as_fast(self):
        slow = self._run(RandKPolicy(4), offload_service=False)
        fast = self._run(RandKPolicy(4), offload_service=True)
        assert fast.makespan <= slow.makespan + 1e-9

    def test_invalid_parameters(self):
        topo = ClusterTopology(2)
        with pytest.raises(ValueError):
            WorkStealingSimulator(topo, _uniform_executor(), steal_chunk=0)
        with pytest.raises(ValueError):
            WorkStealingSimulator(topo, _uniform_executor(), min_keep=-1)


class TestHeterogeneousCosts:
    def test_makespan_at_least_heaviest_task(self, rng):
        topo = ClusterTopology(8, cores_per_node=4)
        costs = {t: float(c) for t, c in enumerate(rng.uniform(1, 100, 40))}
        sim = WorkStealingSimulator(
            topo, lambda t, p: costs[t], steal_policy=HybridPolicy(),
            rng=np.random.default_rng(1),
        )
        res = sim.run({t: t % 2 for t in costs})
        assert res.makespan >= max(costs.values())
        assert res.total_work() == pytest.approx(sum(costs.values()))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    P=st.integers(2, 12),
    n_tasks=st.integers(1, 60),
)
def test_simulation_invariants_property(seed, P, n_tasks):
    """Property: every task executes once; makespan bounds hold."""
    rng = np.random.default_rng(seed)
    topo = ClusterTopology(P, cores_per_node=4)
    costs = rng.uniform(1, 20, n_tasks)
    assignment = {t: int(rng.integers(0, P)) for t in range(n_tasks)}
    sim = WorkStealingSimulator(
        topo, lambda t, p: float(costs[t]), steal_policy=RandKPolicy(3),
        rng=np.random.default_rng(seed + 1),
    )
    res = sim.run(assignment)
    assert sorted(res.executed_by) == list(range(n_tasks))
    total = float(costs.sum())
    assert res.makespan >= total / P - 1e-9  # cannot beat perfect balance
    assert res.makespan <= total + 1e-9  # cannot be worse than serial
    assert res.total_work() == pytest.approx(total)
