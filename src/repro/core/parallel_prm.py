"""Uniform-subdivision parallel PRM with load balancing (Algorithms 1, 3, 4).

The computation has four phases, mirroring the paper's breakdown (Fig. 7a):

1. **Region construction** — subdivide C-space, build the region graph.
2. **Node generation** — sample valid configurations per region (cheap).
3. **Node connection** — connect samples within each region via k-NN +
   local planning.  This is ~90% of the total time and the target of load
   balancing: *repartitioning* moves regions before the phase using
   sample-count weights; *work stealing* migrates regions during it.
4. **Region connection** — connect roadmaps of adjacent regions; pays
   remote accesses when adjacent regions live on different PEs.

The expensive part — actually running the sequential planner in every
region — is done once (:func:`build_prm_workload`) against the real
geometry; the per-strategy machine behaviour is then replayed through the
virtual-time simulator (:func:`simulate_prm`), so a whole strong-scaling
sweep reuses one workload.  Regional randomness is keyed on
``(seed, region id)``, making workloads reproducible and strategy
comparisons exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..geometry.primitives import AABB
from ..obs.events import (
    EV_REMOTE_ACCESS,
    PHASE_CONNECT,
    PHASE_CONSTRUCT,
    PHASE_GENERATE,
    PHASE_REPARTITION,
    PHASE_SUBDIVIDE,
    PHASE_TERMINATE,
    PHASE_WEIGH,
)
from ..obs.tracer import active
from ..planners.prm import PRM
from ..planners.roadmap import Roadmap
from ..planners.stats import PlannerStats, WorkModel
from ..runtime.faults import FaultInjector
from ..runtime.pgraph import PGraphView
from ..runtime.simulator import WorkStealingSimulator, run_static_phase
from ..runtime.stats import SimResult
from ..runtime.termination import detection_delay_tree
from ..runtime.topology import ClusterTopology
from ..subdivision.uniform import UniformSubdivision
from .metrics import emit_phase_spans
from .repartition import RepartitionResult, repartition
from .weights import prm_sample_count_weights
from .work_stealing import policy_by_name

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "RegionWork",
    "AdjacencyWork",
    "PRMWorkload",
    "PhaseTimes",
    "PRMRunResult",
    "build_prm_workload",
    "simulate_prm",
]

#: Vertex-id stride: region ``r`` owns ids ``[r << ID_SHIFT, (r+1) << ID_SHIFT)``.
ID_SHIFT = 20


@dataclass
class RegionWork:
    """Measured work of one region's sequential PRM invocation."""

    rid: int
    gen_cost: float
    connect_cost: float
    num_samples: int
    stats: PlannerStats


@dataclass
class AdjacencyWork:
    """Measured work of connecting one pair of adjacent regional roadmaps."""

    a: int
    b: int
    cost: float
    #: roadmap vertices of region ``b`` read while connecting (remote reads
    #: when ``b`` lives on another PE).
    vertex_reads: int
    edges_added: int


@dataclass
class PRMWorkload:
    """Everything :func:`simulate_prm` needs, computed once per problem."""

    cspace: ConfigurationSpace
    subdivision: UniformSubdivision
    region_work: "dict[int, RegionWork]"
    adjacency_work: "list[AdjacencyWork]"
    roadmap: Roadmap
    #: positional coordinates of every generated sample.
    sample_positions: np.ndarray
    work_model: WorkModel
    seed: int

    @property
    def num_regions(self) -> int:
        return self.subdivision.num_regions

    def total_connect_work(self) -> float:
        return sum(w.connect_cost for w in self.region_work.values())

    def sample_count_weights(self) -> "dict[int, float]":
        return prm_sample_count_weights(self.subdivision, self.sample_positions)


@dataclass
class PhaseTimes:
    """Virtual seconds per phase (the Fig. 7a breakdown).

    Implements the :class:`repro.core.metrics.PhaseBreakdown` protocol:
    :meth:`phase_items` exposes the same numbers under the canonical
    cross-planner phase names used by trace spans.
    """

    region_construction: float = 0.0
    node_generation: float = 0.0
    node_connection: float = 0.0
    region_connection: float = 0.0
    #: weight-probe time; 0 for PRM (sample counts fall out of generation).
    weigh: float = 0.0
    lb_overhead: float = 0.0
    termination: float = 0.0

    @property
    def other(self) -> float:
        return (
            self.region_construction
            + self.node_generation
            + self.weigh
            + self.lb_overhead
            + self.termination
        )

    @property
    def total(self) -> float:
        return self.other + self.node_connection + self.region_connection

    def phase_items(self) -> "list[tuple[str, float]]":
        """Canonical (name, duration) pairs in timeline order."""
        return [
            (PHASE_SUBDIVIDE, self.region_construction),
            (PHASE_GENERATE, self.node_generation),
            (PHASE_WEIGH, self.weigh),
            (PHASE_REPARTITION, self.lb_overhead),
            (PHASE_CONSTRUCT, self.node_connection),
            (PHASE_TERMINATE, self.termination),
            (PHASE_CONNECT, self.region_connection),
        ]


@dataclass
class PRMRunResult:
    """One (strategy, machine size) execution of parallel PRM."""

    strategy: str
    num_pes: int
    phases: PhaseTimes
    #: per-PE virtual work in the node-connection phase.
    connection_loads: np.ndarray
    #: roadmap nodes per PE under the ownership used for connection.
    nodes_per_pe: np.ndarray
    #: nodes per PE under the *initial* (pre-LB) ownership.
    nodes_per_pe_before: np.ndarray
    #: region-connection remote access tallies.
    region_graph_remote: int
    roadmap_graph_remote: int
    #: simulator output of the node-connection phase (steal stats etc.).
    connection_sim: SimResult
    repartition_info: "RepartitionResult | None" = None

    @property
    def total_time(self) -> float:
        return self.phases.total

    # -- PlannerRunResult protocol (uniform across PRM / RRT) --------------
    @property
    def sim(self) -> SimResult:
        """Simulator output of the load-balanced phase (node connection)."""
        return self.connection_sim

    @property
    def loads(self) -> np.ndarray:
        """Per-PE virtual work in the load-balanced phase."""
        return self.connection_loads


# ---------------------------------------------------------------------------
# Workload construction (real planning, done once)
# ---------------------------------------------------------------------------

def _positional_bounds(cspace: ConfigurationSpace) -> AABB:
    dims = list(cspace.positional_dims)
    return AABB(cspace.bounds.lo[dims], cspace.bounds.hi[dims])


def _region_sample_box(cspace: ConfigurationSpace, region_box: AABB) -> AABB:
    """Lift a positional region box to full C-space bounds (non-positional
    dimensions keep their full range)."""
    lo = cspace.bounds.lo.copy()
    hi = cspace.bounds.hi.copy()
    dims = list(cspace.positional_dims)
    lo[dims] = region_box.lo
    hi[dims] = region_box.hi
    return AABB(lo, hi)


def build_prm_workload(
    cspace: ConfigurationSpace,
    num_regions: int,
    samples_per_region: int = 8,
    k: int = 4,
    k_inter: int = 2,
    overlap: float = 0.2,
    seed: int = 0,
    work_model: WorkModel | None = None,
    lp_resolution: float = 0.1,
    sampler=None,
    narrow_passage_boost: float = 3.0,
    nn_factory=None,
) -> PRMWorkload:
    """Run the real regional planners once and record their work.

    ``samples_per_region`` is the per-region sample budget (the paper's
    strong-scaling experiments fix total samples ``N`` and regions ``Nr``,
    so ``N / Nr`` is this number).

    ``narrow_passage_boost`` controls adaptive refinement: a region that
    straddles an obstacle surface (a potential narrow passage) receives
    ``boost * samples_per_region`` *additional* samples.  This is the
    standard adaptive narrow-passage strategy and reproduces the paper's
    workload heterogeneity — its narrow-passage environments concentrate
    sampling and connection work in the boundary regions, which is
    precisely the load imbalance the paper's techniques attack.  Set it
    to 0 for uniform effort.

    ``nn_factory`` (``dim -> NeighborFinder``, default brute force) is the
    nearest-neighbour backend for regional construction and inter-region
    connection; every finder shares the canonical (distance, insertion
    order) tie-break, so the workload is backend-independent.
    """
    if narrow_passage_boost < 0:
        raise ValueError("narrow_passage_boost must be non-negative")
    work_model = work_model if work_model is not None else WorkModel()
    pos_bounds = _positional_bounds(cspace)
    subdivision = UniformSubdivision(pos_bounds, num_regions, overlap=overlap)
    planner = PRM(
        cspace,
        sampler=sampler,
        local_planner=StraightLinePlanner(resolution=lp_resolution),
        k=k,
        connect_same_component=False,
        nn_factory=nn_factory,
    )
    env = cspace.env
    boost_samples = int(round(narrow_passage_boost * samples_per_region))

    region_work: "dict[int, RegionWork]" = {}
    roadmap = Roadmap(cspace.dim)
    vertex_ids_of: "dict[int, np.ndarray]" = {}
    position_chunks: "list[np.ndarray]" = []

    for rid in subdivision.graph.region_ids():
        region = subdivision.region_of(rid)
        rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
        within = _region_sample_box(cspace, region.sample_bounds)
        # Each regional roadmap is built independently (the whole point of
        # uniform subdivision) and merged afterwards.
        result = planner.build(samples_per_region, rng, within=within, id_base=rid << ID_SHIFT)
        st = result.stats
        if boost_samples and env.box_obstacle_relation(region.bounds) == "boundary":
            refined = planner.build(
                boost_samples,
                rng,
                within=within,
                roadmap=result.roadmap,
                id_base=rid << ID_SHIFT,
            )
            st = st.merge(refined.stats)
        gen_cost = work_model.cost_sample_attempt * st.sample_attempts
        connect_cost = (
            work_model.cost_lp_check * st.lp_checks
            + work_model.cost_nn_eval * st.nn_distance_evals
            + work_model.cost_fixed_per_call * st.lp_calls
        )
        region_work[rid] = RegionWork(rid, gen_cost, connect_cost, st.samples_accepted, st)
        ids, cfgs = result.roadmap.configs_array()
        vertex_ids_of[rid] = ids
        if cfgs.size:
            position_chunks.append(cfgs[:, list(cspace.positional_dims)])
        roadmap.merge(result.roadmap)

    positions_arr = (
        np.vstack(position_chunks) if position_chunks else np.empty((0, pos_bounds.dim))
    )

    # Inter-region connections only involve vertices near the shared
    # boundary (that is what the sampling overlap exists for); attempting
    # all pairs would let region connection dwarf node connection,
    # inverting the paper's Fig. 7a profile.
    cell = subdivision.bounds.extents / np.asarray(subdivision.shape, dtype=float)
    boundary_reach = 0.5 * float(cell.max())
    pos_dims = list(cspace.positional_dims)
    positions_of = {
        rid: roadmap.configs_of(int(i) for i in vertex_ids_of[rid])[:, pos_dims]
        for rid in subdivision.graph.region_ids()
    }

    max_boundary_vertices = 2 * samples_per_region
    adjacency_work: "list[AdjacencyWork]" = []
    for a, b in sorted(subdivision.graph.edges()):
        box_a = subdivision.region_of(a).bounds
        box_b = subdivision.region_of(b).bounds
        dist_to_b = box_b.distance(positions_of[a])
        dist_to_a = box_a.distance(positions_of[b])
        near_b = vertex_ids_of[a][dist_to_b <= boundary_reach]
        near_a = vertex_ids_of[b][dist_to_a <= boundary_reach]
        # Cap boundary sets at the nearest few vertices so inter-region
        # connection stays the minor phase it is in the paper (Fig. 7a).
        if near_b.size > max_boundary_vertices:
            order = np.argsort(dist_to_b[dist_to_b <= boundary_reach], kind="stable")
            near_b = near_b[order[:max_boundary_vertices]]
        if near_a.size > max_boundary_vertices:
            order = np.argsort(dist_to_a[dist_to_a <= boundary_reach], kind="stable")
            near_a = near_a[order[:max_boundary_vertices]]
        if near_b.size == 0 or near_a.size == 0:
            adjacency_work.append(AdjacencyWork(a, b, 0.0, 0, 0))
            continue
        st = planner.connect_roadmaps(roadmap, near_b, near_a, k=k_inter)
        cost = (
            work_model.cost_lp_check * st.lp_checks
            + work_model.cost_nn_eval * st.nn_distance_evals
            + work_model.cost_fixed_per_call * st.lp_calls
        )
        # Each NN structure build + LP endpoint read touches b's vertices.
        vertex_reads = int(near_a.size + st.lp_calls)
        adjacency_work.append(AdjacencyWork(a, b, cost, vertex_reads, st.edges_added))

    return PRMWorkload(
        cspace=cspace,
        subdivision=subdivision,
        region_work=region_work,
        adjacency_work=adjacency_work,
        roadmap=roadmap,
        sample_positions=positions_arr,
        work_model=work_model,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Machine simulation (replayed per strategy / PE count)
# ---------------------------------------------------------------------------

#: Virtual cost of creating one region descriptor (phase 1 is trivially
#: parallel and tiny; this keeps it visible but small, as in Fig. 7a).
REGION_CREATE_COST = 0.05


def _naive_assignment(workload: PRMWorkload, num_pes: int) -> "dict[int, int]":
    """Balanced contiguous blocks of the row-major region mesh — the
    paper's naive 1-D mapping ("a balanced number of region columns"),
    generalised to PE counts exceeding the column count."""
    from ..partition.naive import partition_block

    return partition_block(workload.subdivision.graph, num_pes)


def simulate_prm(
    workload: PRMWorkload,
    num_pes: int,
    strategy: str = "none",
    topology: ClusterTopology | None = None,
    steal_chunk: "str | int" = "half",
    rng_seed: int = 12345,
    tracer: "Tracer | None" = None,
    initial_partitioner: "str | None" = None,
    fault_injector: "FaultInjector | None" = None,
    max_retries: int = 2,
) -> PRMRunResult:
    """Replay the workload on a virtual machine of ``num_pes`` PEs.

    ``strategy`` is one of ``"none"``, ``"repartition"``, ``"rand-8"``
    (or ``"rand-k"``), ``"diffusive"``, ``"hybrid"``.

    ``tracer`` (optional) records the run: one span per phase on the
    run's virtual timeline, the full steal protocol inside the
    ``construct`` span, and the repartition decision.

    ``initial_partitioner`` overrides the paper's naive block mapping for
    the *initial* distribution: ``"block"`` (default), ``"greedy"``
    (unweighted LPT) or ``"rcb"`` (recursive coordinate bisection).

    ``fault_injector`` (optional) injects deterministic failures into the
    connection phase — see :class:`repro.runtime.faults.FaultInjector`;
    abandoned regions keep their pre-phase owner for the downstream
    connection accounting.
    """
    topology = topology if topology is not None else ClusterTopology(num_pes)
    if topology.num_pes != num_pes:
        raise ValueError("topology PE count mismatch")
    tr = active(tracer)
    phases = PhaseTimes()
    if initial_partitioner in (None, "block"):
        naive = _naive_assignment(workload, num_pes)
    else:
        from ..partition import partition_by_name

        naive = partition_by_name(workload.subdivision.graph, num_pes, initial_partitioner)
    region_ids = workload.subdivision.graph.region_ids()

    # Phase 1: region construction (embarrassingly parallel, tiny).
    per_pe_regions = np.zeros(num_pes)
    for rid in region_ids:
        per_pe_regions[naive[rid]] += 1
    phases.region_construction = float(per_pe_regions.max()) * REGION_CREATE_COST

    # Phase 2: node generation under the naive distribution.
    gen_costs = {rid: workload.region_work[rid].gen_cost for rid in region_ids}
    gen_loads = np.zeros(num_pes)
    for rid in region_ids:
        gen_loads[naive[rid]] += gen_costs[rid]
    phases.node_generation = float(gen_loads.max())

    # Load balancing decision.  The repartition decision event lands at
    # the start of the repartition phase on the run's virtual timeline.
    t_lb = phases.region_construction + phases.node_generation + phases.weigh
    repart_info: RepartitionResult | None = None
    connect_assignment = naive
    steal_policy = None
    if strategy == "repartition":
        weights = workload.sample_count_weights()
        repart_info = repartition(
            workload.subdivision.graph,
            weights,
            naive,
            topology,
            tracer=tr.offset(t_lb) if tr is not None else None,
        )
        connect_assignment = repart_info.assignment
        phases.lb_overhead = repart_info.overhead
    elif strategy != "none":
        steal_policy = policy_by_name(strategy)

    # Phase 3: node connection (the load-balanced phase).  The simulator
    # runs on a phase-local clock; offsetting its tracer embeds the task
    # and steal events inside the ``construct`` span.
    t_construct = t_lb + phases.lb_overhead
    sim_tracer = tr.offset(t_construct) if tr is not None else None
    connect_costs = {rid: workload.region_work[rid].connect_cost for rid in region_ids}

    def executor(task: int, pe: int) -> float:
        return connect_costs[task]

    if steal_policy is None:
        sim = run_static_phase(
            topology,
            executor,
            connect_assignment,
            tracer=sim_tracer,
            fault_injector=fault_injector,
            max_retries=max_retries,
        )
    else:
        simulator = WorkStealingSimulator(
            topology,
            executor,
            steal_policy=steal_policy,
            steal_chunk=steal_chunk,
            rng=np.random.default_rng(rng_seed),
            tracer=sim_tracer,
            fault_injector=fault_injector,
            max_retries=max_retries,
        )
        sim = simulator.run(connect_assignment)
        phases.termination = detection_delay_tree(topology)
    phases.node_connection = sim.makespan

    # Final region ownership after the connection phase (stealing is an
    # ownership transfer, so stolen regions now live on the thief).
    # Abandoned regions (fault injection) keep their pre-phase owner.
    final_owner = {**connect_assignment, **sim.executed_by}

    # Phase 4: region connection with remote-access accounting.
    region_view = PGraphView("region graph", topology)
    roadmap_view = PGraphView("roadmap graph", topology)
    region_view.set_owners(final_owner)
    roadmap_view.set_owners(final_owner)

    conn_loads = np.zeros(num_pes)
    for adj in workload.adjacency_work:
        owner_a = final_owner[adj.a]
        # Region-graph adjacency metadata is replicated at construction
        # time, so its remote accesses are counted (Fig. 7b) but free;
        # roadmap vertex reads ship as one aggregated message.
        region_view.access(owner_a, adj.b)
        latency = roadmap_view.access_bulk(owner_a, adj.b, count=adj.vertex_reads)
        conn_loads[owner_a] += adj.cost + latency
    phases.region_connection = float(conn_loads.max()) if conn_loads.size else 0.0

    # Node ownership histograms (Fig. 5b/5c).
    nodes_before = np.zeros(num_pes)
    nodes_after = np.zeros(num_pes)
    for rid in region_ids:
        n = workload.region_work[rid].num_samples
        nodes_before[naive[rid]] += n
        nodes_after[final_owner[rid]] += n

    if tr is not None:
        emit_phase_spans(tr, phases)
        t_connect = t_construct + phases.node_connection + phases.termination
        remote = region_view.stats.remote + roadmap_view.stats.remote
        tr.point(EV_REMOTE_ACCESS, ts=t_connect, count=remote)
        tr.metrics.counter("remote_accesses").inc(remote)
        tr.metrics.counter("regions").inc(len(region_ids))

    return PRMRunResult(
        strategy=strategy,
        num_pes=num_pes,
        phases=phases,
        connection_loads=sim.work_times(),
        nodes_per_pe=nodes_after,
        nodes_per_pe_before=nodes_before,
        region_graph_remote=region_view.stats.remote,
        roadmap_graph_remote=roadmap_view.stats.remote,
        connection_sim=sim,
        repartition_info=repart_info,
    )
