"""True-parallel execution of regional planners on the local machine.

The simulator answers "how would this behave on 3,072 cores?"; this module
answers "make it actually faster on my laptop".  Regions are executed by a
``concurrent.futures`` pool, with a greedy dynamic dispatcher that is the
shared-memory analogue of work stealing: workers pull the next unstarted
chunk of regions as they finish, so imbalance is absorbed automatically.

On the ``"process"`` backend the task callable is shipped to each worker
exactly once, through the pool initializer, instead of being pickled into
every submission — the callable closes over the whole planning context
(configuration space, decomposition, samplers), so per-submit pickling
used to dominate dispatch for small regions.  Each submission then carries
only a tuple of integer task ids.  The callable must still be picklable
(a module-level function or a functools partial of one), but it crosses
the process boundary once per worker rather than once per task.

For convenience a threads backend is also provided — with NumPy doing the
heavy lifting inside collision checks, threads get real speedups despite
the GIL.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..obs.events import EV_TASK_END, EV_TASK_START
from ..obs.tracer import active

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["PoolResult", "run_tasks_parallel"]


@dataclass
class PoolResult:
    """Results plus wall-clock accounting of a parallel run."""

    results: "dict[int, object]"
    wall_time: float
    per_task_time: "dict[int, float]"
    workers: int

    def slowest_task(self) -> "tuple[int, float] | None":
        """The (task id, duration) that took longest; ``None`` if no tasks ran."""
        if not self.per_task_time:
            return None
        task = max(self.per_task_time, key=self.per_task_time.get)
        return task, self.per_task_time[task]


# The worker-side task callable, installed once per process by _pool_init.
_WORKER_FN: "Callable[[int], object] | None" = None


def _pool_init(fn: Callable[[int], object]) -> None:
    global _WORKER_FN
    _WORKER_FN = fn


def _run_chunk(
    fn: Callable[[int], object], task_ids: "tuple[int, ...]"
) -> "list[tuple[int, object, float]]":
    return [(tid, *_one(fn, tid)) for tid in task_ids]


def _one(fn: Callable[[int], object], tid: int) -> "tuple[object, float]":
    t0 = time.perf_counter()
    out = fn(tid)
    return out, time.perf_counter() - t0


def _run_chunk_shipped(task_ids: "tuple[int, ...]") -> "list[tuple[int, object, float]]":
    assert _WORKER_FN is not None, "worker initializer did not run"
    return _run_chunk(_WORKER_FN, task_ids)


def run_tasks_parallel(
    fn: Callable[[int], object],
    task_ids: "list[int]",
    workers: int = 4,
    backend: str = "thread",
    window: int | None = None,
    chunksize: int = 1,
    tracer: "Tracer | None" = None,
) -> PoolResult:
    """Execute ``fn(task_id)`` for every task with dynamic dispatch.

    Parameters
    ----------
    fn:
        The regional work; must be picklable for the ``"process"`` backend
        (it is shipped once per worker via the pool initializer).
    workers:
        Pool size.
    backend:
        ``"thread"`` (default; fine for NumPy-heavy work) or ``"process"``.
    window:
        Max in-flight submissions (default ``2 * workers``); bounds memory
        for huge task lists.
    chunksize:
        Tasks per submission (default 1).  Larger chunks amortise dispatch
        overhead when individual tasks are tiny, at the price of coarser
        load balancing — the same trade the paper's distributed schedulers
        make with region granularity.
    tracer:
        Optional :class:`repro.obs.Tracer`; emits wall-clock ``task_start``
        / ``task_end`` point events (timestamps relative to pool start) and
        a ``task_time`` histogram.  Starts are reconstructed from measured
        durations on the dispatcher thread — tasks within a chunk are
        assumed back-to-back.  ``None`` (default) emits nothing.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")
    if backend not in ("thread", "process"):
        raise ValueError("backend must be 'thread' or 'process'")
    window = window or 2 * workers
    tr = active(tracer)
    results: "dict[int, object]" = {}
    per_task: "dict[int, float]" = {}
    pending = set()

    tasks = list(task_ids)
    chunks = [tuple(tasks[i : i + chunksize]) for i in range(0, len(tasks), chunksize)]
    it = iter(chunks)

    if backend == "process":
        pool = ProcessPoolExecutor(max_workers=workers, initializer=_pool_init, initargs=(fn,))

        def submit(chunk):
            return pool.submit(_run_chunk_shipped, chunk)
    else:
        pool = ThreadPoolExecutor(max_workers=workers)

        def submit(chunk):
            return pool.submit(_run_chunk, fn, chunk)

    t0 = time.perf_counter()
    with pool:
        # Prime the window, then keep it full as chunks complete.
        for _ in range(window):
            chunk = next(it, None)
            if chunk is None:
                break
            pending.add(submit(chunk))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                chunk_out = fut.result()
                end_ts = time.perf_counter() - t0
                # Completion is observed here on the dispatcher thread;
                # per-task stamps are reconstructed from the durations,
                # walking the chunk backwards from its observed end.
                ts = end_ts
                stamps = []
                for task_id, out, dt in reversed(chunk_out):
                    stamps.append((task_id, max(ts - dt, 0.0), ts, dt))
                    ts -= dt
                for task_id, out, dt in chunk_out:
                    results[task_id] = out
                    per_task[task_id] = dt
                if tr is not None:
                    for task_id, start_ts, stop_ts, dt in reversed(stamps):
                        tr.point(EV_TASK_START, ts=start_ts, task=task_id, cost=dt)
                        tr.point(EV_TASK_END, ts=stop_ts, task=task_id, cost=dt)
                        tr.metrics.histogram("task_time").observe(dt)
                nxt = next(it, None)
                if nxt is not None:
                    pending.add(submit(nxt))
    wall = time.perf_counter() - t0
    if tr is not None:
        tr.metrics.gauge("pool_wall_time").set(wall)
        tr.metrics.counter("pool_tasks").inc(len(results))
    return PoolResult(results, wall, per_task, workers)
