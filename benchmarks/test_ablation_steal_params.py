"""Ablation: sensitivity of work stealing to chunk size and steal latency.

DESIGN.md calls out steal granularity and communication cost as the two
knobs behind work stealing's gap to repartitioning; this bench quantifies
both on the med-cube workload.
"""

import numpy as np

from repro.bench import format_table, prm_workload
from repro.core.parallel_prm import simulate_prm
from repro.core.work_stealing import HybridPolicy
from repro.runtime import ClusterTopology, WorkStealingSimulator


def _connection_makespan(wl, P, steal_chunk, latency_remote):
    topology = ClusterTopology(P, latency_remote=latency_remote)
    costs = {rid: wl.region_work[rid].connect_cost for rid in wl.region_work}
    from repro.partition.naive import partition_block

    assignment = partition_block(wl.subdivision.graph, P)
    sim = WorkStealingSimulator(
        topology,
        lambda t, p: costs[t],
        steal_policy=HybridPolicy(),
        steal_chunk=steal_chunk,
        rng=np.random.default_rng(0),
    )
    return sim.run(assignment).makespan


def run_ablation():
    wl = prm_workload("med-cube", num_regions=3000, samples_per_region=8)
    P = 192
    rows = []
    for chunk in (1, 2, 8, "half"):
        for lat in (5.0, 10.0, 50.0):
            rows.append([str(chunk), lat, f"{_connection_makespan(wl, P, chunk, lat):.0f}"])
    print("\nAblation — steal chunk x remote latency (node-connection makespan)")
    print(format_table(["chunk", "latency", "makespan"], rows))
    return rows


def test_ablation_steal_params(once):
    rows = once(run_ablation)
    makespans = {(r[0], r[1]): float(r[2]) for r in rows}
    # Chunk=half at low latency should beat chunk=1 at high latency.
    assert makespans[("half", 5.0)] <= makespans[("1", 50.0)]
    # Higher latency does not help materially for a fixed chunk (steal
    # timing is not perfectly monotone — a slower reply can perturb victim
    # choice — so allow slack).
    for chunk in ("1", "half"):
        assert makespans[(chunk, 5.0)] <= makespans[(chunk, 50.0)] * 1.15
