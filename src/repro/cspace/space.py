"""Configuration-space abstractions.

A :class:`ConfigurationSpace` bundles everything a sampling-based planner
needs to know about the planning problem:

* the dimension and bounds of the configuration vector,
* how to draw uniform samples,
* a distance metric,
* straight-line interpolation between configurations, and
* validity (collision) checking, delegated to a workspace
  :class:`~repro.geometry.environment.Environment`.

Two concrete spaces are provided: :class:`EuclideanCSpace` for point
robots (C-space == workspace, the setting of the paper's PRM evaluation
with a small rigid body, which we model conservatively by inflating
obstacles) and :class:`repro.cspace.rigid_body.RigidBodyCSpace` for
SE(2)/SE(3) rigid bodies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..geometry.environment import Environment
from ..geometry.primitives import AABB

__all__ = ["ConfigurationSpace", "EuclideanCSpace"]


class ConfigurationSpace(ABC):
    """Interface all configuration spaces implement."""

    #: The workspace environment collision queries are made against.
    env: Environment
    #: Bounds of the configuration vector (an AABB in C-space coordinates).
    bounds: AABB
    #: True when :meth:`valid` accepts a per-call ``kernels=`` override
    #: (the hot paths check this before threading a backend through).
    supports_kernels: bool = False

    def set_kernel_backend(self, backend) -> None:
        """Route this space's collision checks through a
        :mod:`repro.kernels` backend (registry name or instance)."""
        self.env.set_kernel_backend(backend)

    @property
    def dim(self) -> int:
        """Number of degrees of freedom."""
        return self.bounds.dim

    @property
    @abstractmethod
    def positional_dims(self) -> "tuple[int, ...]":
        """Indices of the configuration that are workspace positions.

        Uniform spatial subdivision partitions along these dimensions only
        (the paper subdivides using the positional DOFs, Sec. II-B1).
        """

    # -- sampling -----------------------------------------------------------
    def sample(self, rng: np.random.Generator, n: int | None = None, within: AABB | None = None) -> np.ndarray:
        """Uniform samples from the (sub-)space ``within`` (default: bounds)."""
        region = within if within is not None else self.bounds
        return region.sample(rng, n)

    # -- metric ---------------------------------------------------------------
    def distance(self, a: np.ndarray, b: np.ndarray) -> "float | np.ndarray":
        """Distance between configuration ``a`` (1-D) and ``b`` (1-D or 2-D).

        The default metric is Euclidean; subclasses override for angular
        components.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        diff = b - a
        if diff.ndim == 1:
            return float(np.linalg.norm(diff))
        return np.linalg.norm(diff, axis=1)

    def interpolate(self, a: np.ndarray, b: np.ndarray, t: "float | np.ndarray") -> np.ndarray:
        """Point(s) on the straight line from ``a`` to ``b`` at parameter ``t``."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        t_arr = np.asarray(t, dtype=float)
        if t_arr.ndim == 0:
            return a + t_arr * (b - a)
        return a[None, :] + t_arr[:, None] * (b - a)[None, :]

    def distance_pairs(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        """Vectorised pairwise distances ``d(starts[i], ends[i])``."""
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        return np.linalg.norm(ends - starts, axis=1)

    def interpolate_pairs(self, starts: np.ndarray, ends: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Vectorised per-pair interpolation: row ``i`` is the point at
        parameter ``t[i]`` on the segment ``starts[i] -> ends[i]``."""
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        t = np.asarray(t, dtype=float)
        return starts + t[:, None] * (ends - starts)

    # -- validity ---------------------------------------------------------------
    @abstractmethod
    def valid(self, configs: np.ndarray) -> np.ndarray:
        """Boolean mask of collision-free configurations (vectorised)."""

    def valid_single(self, config: np.ndarray) -> bool:
        return bool(np.atleast_1d(self.valid(np.atleast_2d(config)))[0])

    def position_of(self, configs: np.ndarray) -> np.ndarray:
        """Extract the workspace-position slice of configurations."""
        cfgs = np.atleast_2d(np.asarray(configs, dtype=float))
        pos = cfgs[:, list(self.positional_dims)]
        return pos[0] if np.asarray(configs).ndim == 1 else pos


class EuclideanCSpace(ConfigurationSpace):
    """Point-robot configuration space: C-space coincides with the workspace.

    A ``robot_radius`` may be given; obstacles are inflated by it so that a
    point check is a conservative rigid-body check (the standard
    Minkowski-sum reduction for disc/sphere robots).
    """

    def __init__(self, env: Environment, robot_radius: float = 0.0):
        if robot_radius < 0:
            raise ValueError("robot_radius must be non-negative")
        self.env = env
        self.robot_radius = robot_radius
        if robot_radius > 0.0:
            inflated = Environment(
                env.bounds.expanded(-robot_radius),
                [o.expanded(robot_radius) for o in env.obstacles],
                name=env.name + f"+r{robot_radius:g}",
            )
            # Share the counter object so planner work is visible on the
            # original environment too.
            inflated.counters = env.counters
            self._check_env = inflated
        else:
            self._check_env = env
        self.bounds = self._check_env.bounds

    supports_kernels = True

    @property
    def positional_dims(self) -> "tuple[int, ...]":
        return tuple(range(self.bounds.dim))

    def set_kernel_backend(self, backend) -> None:
        # The inflated check environment is a distinct object sharing only
        # the counters; both must dispatch to the same backend.
        self.env.set_kernel_backend(backend)
        if self._check_env is not self.env:
            self._check_env.set_kernel_backend(backend)

    def valid(self, configs: np.ndarray, kernels=None) -> np.ndarray:
        return ~self._check_env.points_in_collision(configs, kernels=kernels)

    def segment_valid(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Exact continuous validity of the straight segment (point robot)."""
        return not self._check_env.segment_in_collision(a, b)

    def segments_valid(self, a: np.ndarray, b: np.ndarray, kernels=None) -> np.ndarray:
        return ~self._check_env.segments_in_collision(a, b, kernels=kernels)
