"""Tests for the sequential PRM planner."""

import numpy as np
import pytest

from repro.cspace import StraightLinePlanner, UniformSampler
from repro.geometry import AABB
from repro.planners import PRM


class TestPRMBuild:
    def test_builds_requested_samples(self, box_cspace, rng):
        res = PRM(box_cspace, k=4).build(100, rng)
        assert res.roadmap.num_vertices == 100
        assert res.stats.samples_accepted == 100

    def test_all_vertices_valid(self, box_cspace, rng):
        res = PRM(box_cspace, k=4).build(80, rng)
        _ids, cfgs = res.roadmap.configs_array()
        assert box_cspace.valid(cfgs).all()

    def test_all_edges_collision_free(self, box_cspace, rng):
        """Edges are valid at the planner's resolution; the exact swept
        test may reject a few corner-sliver edges (resolution
        completeness, not exactness), so allow a small fraction."""
        res = PRM(box_cspace, k=4, connect_same_component=False).build(60, rng)
        exact_bad = 0
        for u, v, _w in res.roadmap.edges():
            a, b = res.roadmap.config(u), res.roadmap.config(v)
            if not box_cspace.segment_valid(a, b):
                exact_bad += 1
                # Any exact miss must be a thin sliver: both endpoints and
                # the midpoint are free.
                assert box_cspace.valid_single(0.5 * (a + b))
        assert exact_bad <= max(2, res.roadmap.num_edges // 25)

    def test_edge_weights_are_distances(self, box_cspace, rng):
        res = PRM(box_cspace, k=3).build(40, rng)
        for u, v, w in res.roadmap.edges():
            d = box_cspace.distance(res.roadmap.config(u), res.roadmap.config(v))
            assert w == pytest.approx(d)

    def test_id_base_offsets_ids(self, box_cspace, rng):
        res = PRM(box_cspace, k=2).build(10, rng, id_base=1 << 20)
        assert all(v >= (1 << 20) for v in res.roadmap.vertices())

    def test_within_restricts_sampling(self, box_cspace, rng):
        region = AABB([-5, -5], [-2, -2])
        res = PRM(box_cspace, k=3).build(30, rng, within=region)
        _ids, cfgs = res.roadmap.configs_array()
        assert region.contains(cfgs).all()

    def test_extends_existing_roadmap(self, box_cspace, rng):
        planner = PRM(box_cspace, k=3)
        first = planner.build(20, rng)
        second = planner.build(20, rng, roadmap=first.roadmap)
        assert second.roadmap.num_vertices == 40

    def test_same_component_skip_reduces_lp_calls(self, box_cspace):
        r1 = PRM(box_cspace, k=4, connect_same_component=False).build(
            60, np.random.default_rng(5)
        )
        r2 = PRM(box_cspace, k=4, connect_same_component=True).build(
            60, np.random.default_rng(5)
        )
        assert r2.stats.lp_calls <= r1.stats.lp_calls

    def test_deterministic_given_seed(self, box_cspace):
        r1 = PRM(box_cspace, k=4).build(50, np.random.default_rng(9))
        r2 = PRM(box_cspace, k=4).build(50, np.random.default_rng(9))
        ids1, c1 = r1.roadmap.configs_array()
        ids2, c2 = r2.roadmap.configs_array()
        assert np.array_equal(ids1, ids2)
        assert np.allclose(c1, c2)
        assert r1.roadmap.num_edges == r2.roadmap.num_edges

    def test_k_validation(self, box_cspace):
        with pytest.raises(ValueError):
            PRM(box_cspace, k=0)

    def test_stats_account_lp_work(self, box_cspace, rng):
        res = PRM(box_cspace, k=4, connect_same_component=False).build(50, rng)
        st = res.stats
        assert st.lp_calls > 0
        assert st.lp_successes <= st.lp_calls
        assert st.edges_added <= st.lp_successes
        assert st.nn_queries == 50


class TestConnectRoadmaps:
    def _two_regions(self, box_cspace, rng):
        planner = PRM(box_cspace, k=3, connect_same_component=False)
        left = planner.build(25, rng, within=AABB([-5, -5], [-2, 5]), id_base=0)
        right = planner.build(25, rng, within=AABB([2, -5], [5, 5]), id_base=1 << 20)
        left.roadmap.merge(right.roadmap)
        ids, _ = left.roadmap.configs_array()
        ids_a = ids[ids < (1 << 20)]
        ids_b = ids[ids >= (1 << 20)]
        return planner, left.roadmap, ids_a, ids_b

    def test_connects_two_regional_roadmaps(self, box_cspace, rng):
        planner, rmap, ids_a, ids_b = self._two_regions(box_cspace, rng)
        before = rmap.num_edges
        stats = planner.connect_roadmaps(rmap, ids_a, ids_b, k=3)
        assert stats.lp_calls > 0
        cross = [
            (u, v)
            for u, v, _w in rmap.edges()
            if (u < (1 << 20)) != (v < (1 << 20))
        ]
        assert rmap.num_edges >= before
        assert stats.edges_added == len(cross)

    def test_empty_sides_are_noop(self, box_cspace, rng):
        planner, rmap, ids_a, _ = self._two_regions(box_cspace, rng)
        stats = planner.connect_roadmaps(rmap, ids_a, np.empty(0, dtype=np.int64))
        assert stats.lp_calls == 0


class TestBatchedParity:
    """The batched connection paths must reproduce the sequential
    reference exactly: same PlannerStats field for field, same collision
    counters, same edge set — the virtual-time model charges for these."""

    def _build(self, cspace, batched, n=120, connect_same_component=True):
        planner = PRM(
            cspace, k=5, connect_same_component=connect_same_component, batched=batched
        )
        res = planner.build(n, np.random.default_rng(7))
        counters = cspace.env.counters
        edges = sorted((min(u, v), max(u, v)) for u, v, _w in res.roadmap.edges())
        return res.stats, (counters.point_checks, counters.segment_checks), edges

    @pytest.mark.parametrize("csc", [True, False])
    def test_build_matches_sequential(self, box_cspace, csc):
        from dataclasses import asdict

        from repro.cspace import EuclideanCSpace
        from repro.geometry import Environment

        env2 = Environment(
            box_cspace.env.bounds, list(box_cspace.env.obstacles), name="copy"
        )
        ref = self._build(box_cspace, batched=False, connect_same_component=csc)
        fast = self._build(
            EuclideanCSpace(env2), batched=True, connect_same_component=csc
        )
        assert asdict(ref[0]) == asdict(fast[0])
        assert ref[1] == fast[1]
        assert ref[2] == fast[2]

    @pytest.mark.parametrize("csc", [True, False])
    def test_build_matches_sequential_3d(self, medcube_cspace, csc):
        from dataclasses import asdict

        from repro.cspace import EuclideanCSpace
        from repro.geometry import med_cube

        ref = self._build(medcube_cspace, batched=False, connect_same_component=csc)
        fast = self._build(
            EuclideanCSpace(med_cube()), batched=True, connect_same_component=csc
        )
        assert asdict(ref[0]) == asdict(fast[0])
        assert ref[1] == fast[1]
        assert ref[2] == fast[2]

    @pytest.mark.parametrize("csc", [True, False])
    def test_connect_roadmaps_matches_sequential(self, box_cspace, csc):
        from dataclasses import asdict

        def run(batched):
            planner = PRM(
                box_cspace, k=3, connect_same_component=csc, batched=batched
            )
            rng = np.random.default_rng(3)
            left = planner.build(30, rng, within=AABB([-5, -5], [-1.5, 5]))
            right = planner.build(
                30, rng, within=AABB([1.5, -5], [5, 5]), id_base=1 << 20
            )
            left.roadmap.merge(right.roadmap)
            ids, _ = left.roadmap.configs_array()
            ids_a = ids[ids < (1 << 20)]
            ids_b = ids[ids >= (1 << 20)]
            stats = planner.connect_roadmaps(left.roadmap, ids_a, ids_b, k=3)
            edges = sorted(
                (min(u, v), max(u, v)) for u, v, _w in left.roadmap.edges()
            )
            return asdict(stats), edges

        ref_stats, ref_edges = run(False)
        fast_stats, fast_edges = run(True)
        assert ref_stats == fast_stats
        assert ref_edges == fast_edges

    def test_fail_fast_same_verdicts_fewer_checks(self, box_cspace):
        from dataclasses import asdict

        ref = PRM(box_cspace, k=5, batched=True, fail_fast=False).build(
            100, np.random.default_rng(11)
        )
        ff = PRM(box_cspace, k=5, batched=True, fail_fast=True).build(
            100, np.random.default_rng(11)
        )
        ref_edges = sorted(
            (min(u, v), max(u, v)) for u, v, _w in ref.roadmap.edges()
        )
        ff_edges = sorted((min(u, v), max(u, v)) for u, v, _w in ff.roadmap.edges())
        assert ref_edges == ff_edges
        r, f = asdict(ref.stats), asdict(ff.stats)
        assert f["lp_checks"] <= r["lp_checks"]
        for field in ("lp_calls", "lp_successes", "edges_added", "nn_queries"):
            assert r[field] == f[field]
