"""Amortised query-serving engine over a frozen roadmap.

:class:`~repro.planners.query.RoadmapQuery` pays the full setup cost on
every query: it rebuilds a brute-force NN index from scratch, mutates the
roadmap with temporary start/goal vertices, and walks dict-of-dict
adjacency.  :class:`QueryEngine` amortises all of it across the lifetime
of a built roadmap:

* the roadmap is compiled once into a
  :class:`~repro.planners.frozen.FrozenRoadmap` CSR snapshot;
* one reusable NN index (kd-tree by default — sublinear per query) is
  built once over the snapshot's configurations;
* searches run over the CSR arrays with *virtual* start/goal endpoints,
  so the roadmap is never mutated and queries are trivially independent;
* :meth:`QueryEngine.solve_many` batches start/goal validity checks,
  k-NN attachment, and local-planner validation across a whole request
  batch, then dispatches the per-query searches inline or across the
  :mod:`repro.runtime.local_pool` backends (inheriting its retry /
  degrade fault policies), emitting per-query ``EV_QUERY_*`` events.

Every query returns **exactly** what ``RoadmapQuery.solve`` returns on
the same roadmap — same ``path_vertices`` (including the temporary
``max_id+1`` / ``max_id+2`` endpoint ids), same configurations, same
length, bit for bit.  The parity levers: canonical (distance, insertion
order) k-NN tie-breaking shared by all backends, the bit-exact
``batch_pairs_exact`` local-planner twin, and the path-exact virtual A*
of the frozen snapshot.

The engine snapshots the roadmap at construction time: mutate the
roadmap afterwards and the engine keeps answering from the frozen copy —
build a new engine after changing the roadmap.
"""

from __future__ import annotations

import inspect
import time
import weakref
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..knn import get_nn_factory
from ..knn.brute import BruteForceNN
from ..knn.kdtree import KDTreeNN
from ..obs.events import EV_QUERY_END, EV_QUERY_START, PHASE_SERVE
from ..obs.tracer import active
from ..runtime import shm as _shm
from ..runtime.local_pool import DispatchStats, resolve_workers, run_tasks_parallel
from .frozen import FrozenRoadmap
from .query import QueryResult
from .roadmap import Roadmap

__all__ = ["QueryRequest", "BatchQueryResult", "QueryEngine"]

#: Auto backend crossover: below this vertex count the brute-force index's
#: one-matrix batch scan is faster than per-query kd-tree descents (the
#: ``knn_scaling`` benchmark tracks the large-n side of the trade).
_AUTO_KDTREE_MIN = 8192


@dataclass
class QueryRequest:
    """One planning request: find a path from ``start`` to ``goal``."""

    start: np.ndarray
    goal: np.ndarray

    def __post_init__(self):
        self.start = np.asarray(self.start, dtype=float)
        self.goal = np.asarray(self.goal, dtype=float)


@dataclass
class BatchQueryResult:
    """Results plus timing/failure accounting of one ``solve_many`` batch."""

    #: per-request :class:`~repro.planners.query.QueryResult` or None
    #: (invalid endpoints, no attachment, disconnected, or abandoned).
    results: "list[QueryResult | None]"
    wall_time: float
    #: batched setup (validity + k-NN + local planning) for the whole batch.
    setup_time: float
    #: per-query latency: search time plus an equal share of the setup.
    latencies: "list[float]"
    solved: int
    #: query indices given up on under the pool's ``"degrade"`` policy.
    abandoned: "list[int]" = field(default_factory=list)
    retries: int = 0
    worker_deaths: int = 0
    #: query index -> attempts consumed (1 = first try succeeded), the
    #: same accounting ``plan()`` surfaces via ``PoolResult.attempts`` —
    #: abandoned queries appear here with their full failed-attempt count
    #: instead of silently vanishing.
    attempts: "dict[int, int]" = field(default_factory=dict)
    #: pool dispatch accounting (chunk policy, bytes shipped, shm
    #: attaches) for pool-dispatched batches; ``None`` for inline runs.
    dispatch: "DispatchStats | None" = None

    @property
    def num_queries(self) -> int:
        return len(self.results)

    @property
    def queries_per_sec(self) -> float:
        """Batch throughput over wall time."""
        return self.num_queries / self.wall_time if self.wall_time > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank per-query latency percentile (``q`` in [0, 100]).

        Abandoned queries never produced an answer, so their entries
        (setup share only) are excluded — a degraded run must not report
        artificially low tail latencies for work it gave up on.
        """
        lost = set(self.abandoned)
        lats = sorted(
            lat for i, lat in enumerate(self.latencies) if i not in lost
        )
        if not lats:
            return 0.0
        i = min(int(q / 100 * (len(lats) - 1) + 0.5), len(lats) - 1)
        return lats[i]


def _solve_prepared(frozen: FrozenRoadmap, jobs, sid: int, gid: int, i: int):
    """Run the search for prepared query ``i`` (module-level so the
    process-pool backend can ship it via a partial)."""
    job = jobs[i]
    if job is None:
        return None
    start, goal, s_links, g_links = job
    found = frozen.astar_virtual(start, goal, s_links, g_links, sid, gid)
    if found is None:
        return None
    path, length = found
    configs = np.vstack([start[None, :], frozen.configs_of(path[1:-1]), goal[None, :]])
    return QueryResult(path, configs, length)


# Worker-side fingerprint -> rebuilt FrozenRoadmap: the CSR arrays are
# mapped from shared memory once per worker process and reused across
# tasks and batches (the snapshot is immutable, so the cache never stales;
# a different roadmap has a different fingerprint).
_SHM_FROZEN_CACHE: "dict[str, FrozenRoadmap]" = {}


def _frozen_from_manifest(manifest) -> FrozenRoadmap:
    """Attach a published CSR snapshot and rebuild the FrozenRoadmap.

    Reconstruction is deterministic from the six source arrays (the
    derived mirrors — row maps, adjacency, component labels — are pure
    functions of them), so answers are bit-identical to the publisher's.
    """
    fr = _SHM_FROZEN_CACHE.get(manifest.fingerprint)
    if fr is None:
        a = _shm.attach_arrays(manifest)
        fr = FrozenRoadmap(
            int(a["dim"][0]), a["ids"], a["configs"],
            a["indptr"], a["indices"], a["weights"],
        )
        _SHM_FROZEN_CACHE[manifest.fingerprint] = fr
    return fr


def _solve_prepared_shm(manifest, jobs, sid: int, gid: int, i: int):
    """``_solve_prepared`` over a shared-memory frozen snapshot: the
    partial ships a tiny manifest instead of the whole CSR pickle."""
    return _solve_prepared(_frozen_from_manifest(manifest), jobs, sid, gid, i)


class QueryEngine:
    """Serves many planning queries against one frozen roadmap.

    Parameters
    ----------
    cspace:
        The configuration space queries live in.
    roadmap:
        A built :class:`~repro.planners.roadmap.Roadmap` (frozen here) or
        an existing :class:`~repro.planners.frozen.FrozenRoadmap`.
    local_planner:
        Edge validator; defaults to the same straight-line planner
        ``RoadmapQuery`` uses.
    k:
        Attachment degree for start/goal connection (default 8, matching
        ``RoadmapQuery``).
    nn_factory:
        ``dim -> NeighborFinder`` for the reusable index.  Default is
        automatic: the vectorised :class:`~repro.knn.brute.BruteForceNN`
        batch scan below :data:`_AUTO_KDTREE_MIN` vertices, the sublinear
        :class:`~repro.knn.kdtree.KDTreeNN` above it.  Every backend
        shares the canonical (distance, insertion order) tie-break, so
        the choice never changes an answer, only its latency.
    kernels:
        Optional :mod:`repro.kernels` backend (name or instance) threaded
        through endpoint validity checks, the NN index's distance blocks,
        and the default local planner — without mutating the (possibly
        shared) ``cspace``.  ``None`` keeps the space's own configured
        backend (``reference`` unless changed), preserving the bit-exact
        ``RoadmapQuery`` parity contract.
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        roadmap: "Roadmap | FrozenRoadmap",
        local_planner=None,
        k: int = 8,
        nn_factory=None,
        kernels=None,
    ):
        self.cspace = cspace
        self.kernels = kernels
        if isinstance(roadmap, FrozenRoadmap):
            self.frozen = roadmap
        else:
            self.frozen = FrozenRoadmap.from_roadmap(roadmap)
        self.local_planner = (
            local_planner if local_planner is not None
            else StraightLinePlanner(resolution=0.25, kernels=kernels)
        )
        self.k = k
        n = self.frozen.num_vertices
        if nn_factory is None:
            # One flat distance matrix beats per-query tree descents until
            # the O(n) scan rows dominate; results are identical either way.
            nn_factory = BruteForceNN if n < _AUTO_KDTREE_MIN else KDTreeNN
        elif isinstance(nn_factory, str):
            # A repro.knn registry name ("brute" / "kdtree" /
            # "incremental") — unknown names raise ValueError here, at
            # construction, not on the first query.
            nn_factory = get_nn_factory(nn_factory)
        self.nn_factory = nn_factory
        self._nn = self._make_nn(cspace.dim)
        if n:
            # Point ids are dense rows: insertion order matches the frozen
            # row order, so canonical tie-breaking equals what a fresh
            # per-query BruteForceNN over configs_array() would produce.
            self._nn.add_batch(np.arange(n, dtype=np.int64), self.frozen.configs)
        self._sid = self.frozen.max_id + 1
        self._gid = self.frozen.max_id + 2
        # Lazily published shm manifest of the frozen CSR snapshot; lives
        # as long as the engine does (PlanService caches engines, so the
        # segment is reused across requests).
        self._shm_manifest = None

    def _publish_frozen(self, tracer=None):
        """Publish the frozen CSR blocks to shared memory, once.

        Returns the cached :class:`~repro.runtime.shm.SharedArrayManifest`;
        the publication is released when the engine is garbage-collected
        (or at interpreter exit, whichever comes first).
        """
        if self._shm_manifest is None:
            fr = self.frozen
            manifest = _shm.publish_arrays(
                {
                    "dim": np.array([fr.dim], dtype=np.int64),
                    "ids": np.asarray(fr.ids),
                    "configs": np.asarray(fr.configs),
                    "indptr": np.asarray(fr.indptr),
                    "indices": np.asarray(fr.indices),
                    "weights": np.asarray(fr.weights),
                },
                label="frozen_roadmap",
                tracer=tracer,
            )
            self._shm_manifest = manifest
            weakref.finalize(self, _shm.release, manifest)
        return self._shm_manifest

    def _make_nn(self, dim: int):
        """Build the NN index, forwarding ``kernels`` to factories that
        accept it (custom ``dim -> NeighborFinder`` lambdas need not)."""
        if self.kernels is not None:
            try:
                params = inspect.signature(self.nn_factory).parameters
            except (TypeError, ValueError):
                params = {}
            if "kernels" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            ):
                return self.nn_factory(dim, kernels=self.kernels)
        return self.nn_factory(dim)

    def _cspace_valid(self, configs: np.ndarray) -> np.ndarray:
        if self.kernels is not None and getattr(self.cspace, "supports_kernels", False):
            return self.cspace.valid(configs, kernels=self.kernels)
        return self.cspace.valid(configs)

    @property
    def nn_stats(self):
        """Accumulated :class:`~repro.knn.base.KnnStats` of the index."""
        return self._nn.stats

    # -- batched preparation -------------------------------------------------
    def _validate_pairs(self, starts: np.ndarray, ends: np.ndarray):
        """(valid_mask, lengths) for candidate segments, bit-identical to
        scalar local-planner calls."""
        lp = self.local_planner
        if hasattr(lp, "batch_pairs_exact"):
            valid, _checks, lengths = lp.batch_pairs_exact(self.cspace, starts, ends)
            return valid, lengths
        m = starts.shape[0]
        valid = np.zeros(m, dtype=bool)
        lengths = np.zeros(m)
        for i in range(m):
            res = lp(self.cspace, starts[i], ends[i])
            valid[i] = res.valid
            lengths[i] = res.length
        return valid, lengths

    def _prepare(self, starts: np.ndarray, goals: np.ndarray):
        """Vectorised per-batch setup: endpoint validity, k-NN attachment
        candidates, and one local-planner batch over every candidate edge.

        Returns per-query jobs ``(start, goal, start_links, goal_links)``
        (links as ``(row, weight)`` in candidate order) or None for
        queries that already failed (invalid endpoints).
        """
        q = starts.shape[0]
        jobs: "list[tuple | None]" = [None] * q
        if q == 0:
            return jobs
        vmask = np.asarray(self._cspace_valid(np.vstack([starts, goals])), dtype=bool)
        ok = vmask[:q] & vmask[q:]
        valid_idx = np.nonzero(ok)[0].tolist()
        if not valid_idx:
            return jobs
        n = self.frozen.num_vertices
        nv = len(valid_idx)
        cand_ids, cand_d = self._nn.knn_batch_arrays(
            np.vstack([starts[valid_idx], goals[valid_idx]]), self.k
        )
        # Collect every candidate edge of every query into one validation
        # batch; slices[j] records (query, candidate list with rows).
        pair_starts: "list[np.ndarray]" = []
        pair_ends: "list[np.ndarray]" = []
        slices: "list[tuple[int, list[tuple[int, float]], list[tuple[int, float]]]]" = []
        configs = self.frozen.configs
        for p, qi in enumerate(valid_idx):
            start, goal = starts[qi], goals[qi]
            # Padded rows (fewer than k stored) carry +inf distances.
            scand = [
                (float(d), int(r))
                for r, d in zip(cand_ids[p], cand_d[p])
                if np.isfinite(d)
            ]
            gcand = [
                (float(d), int(r))
                for r, d in zip(cand_ids[nv + p], cand_d[nv + p])
                if np.isfinite(d)
            ]
            # The per-query path attaches the goal *after* the start was
            # inserted, so the start is a goal candidate too — merge it in
            # at its canonical (distance, insertion order = n) position.
            d_sg = float(np.linalg.norm((start - goal)[None, :], axis=1)[0])
            lo, hi = 0, len(gcand)
            while lo < hi:
                mid = (lo + hi) // 2
                if gcand[mid] < (d_sg, n):
                    lo = mid + 1
                else:
                    hi = mid
            gcand.insert(lo, (d_sg, n))
            gcand = gcand[: self.k]
            for _d, r in scand:
                pair_starts.append(start)
                pair_ends.append(configs[r])
            for _d, r in gcand:
                pair_starts.append(goal)
                pair_ends.append(start if r == n else configs[r])
            slices.append((qi, scand, gcand))
        if not pair_starts:
            for qi, _s, _g in slices:
                jobs[qi] = (starts[qi], goals[qi], [], [])
            return jobs
        valid, lengths = self._validate_pairs(np.array(pair_starts), np.array(pair_ends))
        pos = 0
        for qi, scand, gcand in slices:
            s_links = []
            for _d, r in scand:
                if valid[pos]:
                    s_links.append((r, float(lengths[pos])))
                pos += 1
            g_links = []
            for _d, r in gcand:
                if valid[pos]:
                    g_links.append((r, float(lengths[pos])))
                pos += 1
            jobs[qi] = (starts[qi], goals[qi], s_links, g_links)
        return jobs

    # -- solving -------------------------------------------------------------
    def solve(self, start: np.ndarray, goal: np.ndarray) -> "QueryResult | None":
        """Solve one query; bit-identical to ``RoadmapQuery.solve`` on the
        source roadmap, without mutating anything."""
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        jobs = self._prepare(start[None, :], goal[None, :])
        return _solve_prepared(self.frozen, jobs, self._sid, self._gid, 0)

    def solve_many(
        self,
        requests,
        *,
        workers: "int | None" = 1,
        backend: str = "thread",
        tracer=None,
        failure_policy: str = "fail_fast",
        max_retries: int = 2,
        task_timeout: "float | None" = None,
        fault_injector=None,
        retry_seed: int = 0,
        execution=None,
        faults=None,
    ) -> BatchQueryResult:
        """Solve a batch of queries with amortised setup.

        ``requests`` is a sequence of :class:`QueryRequest` or
        ``(start, goal)`` pairs.  With ``workers > 1`` the independent
        per-query searches are dispatched across a
        :func:`~repro.runtime.local_pool.run_tasks_parallel` pool
        (``backend``, ``failure_policy``, ``task_timeout``,
        ``fault_injector`` pass straight through, so retry/degrade
        semantics match regional planning; abandoned queries surface as
        ``None`` results listed in ``abandoned``, with their consumed
        attempts in ``attempts`` — the same accounting ``plan()``
        surfaces).  An :class:`~repro.spec.ExecutionPolicy` /
        :class:`~repro.spec.FaultPolicy` pair may be passed instead of
        the loose kwargs (``execution`` supplies ``workers``/``backend``,
        ``faults`` supplies the failure knobs); specs win over the flat
        spellings.

        With a tracer, the batch runs inside a ``serve`` span and each
        query emits ``EV_QUERY_START`` / ``EV_QUERY_END`` (attrs:
        ``query``, ``latency``, ``solved``); pool-dispatched runs emit
        the per-query events after the pool drains, so their timestamps
        are post-hoc while latencies stay measured.
        """
        data_plane = "auto"
        chunksize: "int | str" = 1
        if execution is not None:
            workers = execution.workers
            backend = execution.backend
            data_plane = execution.data_plane
            chunksize = execution.chunksize
        workers = resolve_workers(workers)
        if faults is not None:
            failure_policy = faults.policy
            max_retries = faults.max_retries
            task_timeout = faults.task_timeout
            fault_injector = faults.injector
        t0 = time.perf_counter()
        starts_l: "list[np.ndarray]" = []
        goals_l: "list[np.ndarray]" = []
        for r in requests:
            if isinstance(r, QueryRequest):
                s, g = r.start, r.goal
            else:
                s, g = r
            starts_l.append(np.asarray(s, dtype=float))
            goals_l.append(np.asarray(g, dtype=float))
        q = len(starts_l)
        if q == 0:
            return BatchQueryResult(
                results=[], wall_time=time.perf_counter() - t0, setup_time=0.0,
                latencies=[], solved=0,
            )
        starts = np.vstack(starts_l)
        goals = np.vstack(goals_l)
        tr = active(tracer)
        results: "list[QueryResult | None]" = [None] * q
        latencies = [0.0] * q
        abandoned: "list[int]" = []
        attempts: "dict[int, int]" = {}
        retries = 0
        deaths = 0
        dispatch: "DispatchStats | None" = None
        if tr:
            tr.begin(PHASE_SERVE, queries=q)
        try:
            jobs = self._prepare(starts, goals)
            setup_time = time.perf_counter() - t0
            share = setup_time / q
            if workers > 1 and q > 1:
                # Data plane: on the process backend the frozen CSR
                # snapshot crosses once via shared memory (a manifest in
                # the partial instead of the arrays); "pickle" keeps the
                # legacy ship-with-the-callable plane.  Either way the
                # worker rebuilds an identical FrozenRoadmap, so answers
                # are bit-identical across planes.
                use_shm = (
                    backend == "process"
                    and data_plane in ("auto", "shm")
                    and _shm.shm_available()
                )
                if use_shm:
                    manifest = self._publish_frozen(tracer)
                    fn = partial(_solve_prepared_shm, manifest, jobs, self._sid, self._gid)
                else:
                    manifest = None
                    fn = partial(_solve_prepared, self.frozen, jobs, self._sid, self._gid)
                pool = run_tasks_parallel(
                    fn,
                    list(range(q)),
                    workers=workers,
                    backend=backend,
                    chunksize=chunksize,
                    tracer=tracer,
                    failure_policy=failure_policy,
                    max_retries=max_retries,
                    task_timeout=task_timeout,
                    fault_injector=fault_injector,
                    retry_seed=retry_seed,
                    measure_serde=(backend == "process"),
                )
                dispatch = pool.dispatch
                if manifest is not None:
                    dispatch.shm_segments += 1 if manifest.segment else 0
                    dispatch.shm_bytes += manifest.total_bytes
                for i in range(q):
                    results[i] = pool.results.get(i)
                    latencies[i] = share + pool.per_task_time.get(i, 0.0)
                abandoned = list(pool.abandoned)
                attempts = dict(pool.attempts)
                retries = pool.retries
                deaths = pool.worker_deaths
                if tr:
                    lost = set(abandoned)
                    for i in range(q):
                        tr.point(EV_QUERY_START, query=i)
                        tr.point(
                            EV_QUERY_END,
                            query=i,
                            latency=latencies[i],
                            solved=results[i] is not None,
                            abandoned=i in lost,
                        )
            else:
                for i in range(q):
                    if tr:
                        tr.point(EV_QUERY_START, query=i)
                    ts = time.perf_counter()
                    results[i] = _solve_prepared(self.frozen, jobs, self._sid, self._gid, i)
                    latencies[i] = share + (time.perf_counter() - ts)
                    attempts[i] = 1
                    if tr:
                        tr.point(
                            EV_QUERY_END,
                            query=i,
                            latency=latencies[i],
                            solved=results[i] is not None,
                        )
        finally:
            if tr:
                tr.end(PHASE_SERVE)
        return BatchQueryResult(
            results=results,
            wall_time=time.perf_counter() - t0,
            setup_time=setup_time,
            latencies=latencies,
            solved=sum(r is not None for r in results),
            abandoned=abandoned,
            retries=retries,
            worker_deaths=deaths,
            attempts=attempts,
            dispatch=dispatch,
        )
