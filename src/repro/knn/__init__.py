"""Interchangeable k-nearest-neighbour backends."""

from .base import KnnStats, NeighborFinder
from .brute import BruteForceNN
from .grid import GridNN
from .kdtree import KDTreeNN

__all__ = ["KnnStats", "NeighborFinder", "BruteForceNN", "GridNN", "KDTreeNN"]
