"""Trace sinks: where emitted events go.

Two sinks cover the repo's needs: :class:`MemorySink` (a bounded ring
buffer for tests and interactive inspection) and :class:`JsonlSink` (one
JSON object per line, the interchange format of the ``python -m repro.obs
summarize`` CLI).  Sinks are deliberately dumb — ordering, pairing of
span begin/end, and aggregation all live in :mod:`repro.obs.summary`.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Protocol, runtime_checkable

from .events import Event

__all__ = ["Sink", "MemorySink", "JsonlSink", "read_jsonl", "parse_jsonl"]


@runtime_checkable
class Sink(Protocol):
    """Structural interface every sink satisfies."""

    def emit(self, event: Event) -> None:
        """Accept one event."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resource."""
        ...


class MemorySink:
    """Keep the last ``capacity`` events in memory (all of them if None)."""

    def __init__(self, capacity: "int | None" = None):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._buf: "deque[Event]" = deque(maxlen=capacity)

    @property
    def events(self) -> "list[Event]":
        """Buffered events, oldest first."""
        return list(self._buf)

    def emit(self, event: Event) -> None:
        """Append, evicting the oldest event when at capacity."""
        self._buf.append(event)

    def clear(self) -> None:
        """Drop all buffered events."""
        self._buf.clear()

    def close(self) -> None:  # nothing to release
        """No-op: memory sinks hold no external resource."""

    def __len__(self) -> int:
        return len(self._buf)


class JsonlSink:
    """Append events to a JSON-lines file (or any open text handle).

    ``emit`` is thread-safe: the service layer traces from its dispatcher
    thread and pool workers concurrently, and ``TextIOWrapper`` offers no
    atomicity across writes, so each line is serialised under a lock.
    """

    def __init__(self, path_or_file: "str | Path | IO[str]"):
        if hasattr(path_or_file, "write"):
            self._fh: IO[str] = path_or_file  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(path_or_file, "w", encoding="utf-8")
            self._owns = True
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        """Write the event as one compact JSON line."""
        line = json.dumps(event.to_json(), separators=(",", ":")) + "\n"
        with self._lock:
            self._fh.write(line)

    def close(self) -> None:
        """Flush, and close the handle if this sink opened it."""
        with self._lock:
            self._fh.flush()
            if self._owns:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_jsonl(lines: "Iterable[str]") -> "list[Event]":
    """Decode an iterable of JSON lines into events (blank lines skipped)."""
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(Event.from_json(json.loads(line)))
        except (ValueError, KeyError) as exc:
            raise ValueError(f"bad trace record on line {lineno}: {exc}") from exc
    return events


def read_jsonl(path: "str | Path") -> "list[Event]":
    """Load a JSON-lines trace file written by :class:`JsonlSink`."""
    with open(path, encoding="utf-8") as fh:
        return parse_jsonl(fh)
