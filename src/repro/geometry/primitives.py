"""Geometric primitives used by the workspace model.

All primitives are axis-aligned-friendly and store their data in small
NumPy arrays so that batched queries (many points / many segments against
many obstacles) vectorise.  The workspace is ``d``-dimensional; motion
planning environments in this repository use ``d`` = 2 or 3, but nothing
here assumes a particular dimension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AABB", "Sphere", "aabb_union", "aabb_from_points"]


@dataclass(frozen=True)
class AABB:
    """Axis-aligned bounding box, ``lo[i] <= x[i] <= hi[i]``.

    Degenerate boxes (``lo == hi`` along some axis) are permitted and
    behave as lower-dimensional slabs.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=float)
        hi = np.asarray(self.hi, dtype=float)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"AABB bounds must be 1-D and equal shape, got {lo.shape} vs {hi.shape}")
        if np.any(lo > hi):
            raise ValueError(f"AABB has lo > hi: lo={lo}, hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    # -- basic measures -------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    @property
    def extents(self) -> np.ndarray:
        return self.hi - self.lo

    def volume(self) -> float:
        """Lebesgue measure of the box (0 for degenerate boxes)."""
        return float(np.prod(self.hi - self.lo))

    # -- point queries ---------------------------------------------------
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test.

        ``points`` has shape ``(n, d)`` or ``(d,)``; the result is a boolean
        array of shape ``(n,)`` (or a scalar bool for a single point).
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        inside = np.all((pts >= self.lo) & (pts <= self.hi), axis=1)
        return bool(inside[0]) if single else inside

    def clamp(self, points: np.ndarray) -> np.ndarray:
        """Project points onto the box (componentwise clamping)."""
        return np.clip(np.asarray(points, dtype=float), self.lo, self.hi)

    def distance(self, points: np.ndarray) -> np.ndarray:
        """Euclidean distance from each point to the box (0 if inside)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        delta = np.maximum(np.maximum(self.lo - pts, pts - self.hi), 0.0)
        d = np.linalg.norm(delta, axis=1)
        return d[0] if np.asarray(points).ndim == 1 else d

    # -- box-box queries --------------------------------------------------
    def intersects(self, other: "AABB") -> bool:
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def intersection(self, other: "AABB") -> "AABB | None":
        lo = np.maximum(self.lo, other.lo)
        hi = np.minimum(self.hi, other.hi)
        if np.any(lo > hi):
            return None
        return AABB(lo, hi)

    def intersection_volume(self, other: "AABB") -> float:
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.volume()

    def expanded(self, margin: float | np.ndarray) -> "AABB":
        """Return the box grown by ``margin`` on every side.

        Negative margins shrink the box; shrinking below a point collapses
        each axis to its midpoint rather than producing an invalid box.
        """
        m = np.broadcast_to(np.asarray(margin, dtype=float), self.lo.shape)
        lo, hi = self.lo - m, self.hi + m
        bad = lo > hi
        if np.any(bad):
            mid = self.center
            lo = np.where(bad, mid, lo)
            hi = np.where(bad, mid, hi)
        return AABB(lo, hi)

    def sample(self, rng: np.random.Generator, n: int | None = None) -> np.ndarray:
        """Draw uniform samples from the box interior."""
        if n is None:
            return rng.uniform(self.lo, self.hi)
        return rng.uniform(self.lo, self.hi, size=(n, self.dim))

    # -- segment queries --------------------------------------------------
    def segment_intersects(self, p: np.ndarray, q: np.ndarray) -> bool:
        """Slab test: does segment ``p->q`` touch the box?"""
        t0, t1 = _segment_slab_interval(np.asarray(p, float), np.asarray(q, float), self.lo, self.hi)
        return t0 <= t1

    def segments_intersect(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        """Vectorised slab test for segments ``p[i]->q[i]``; returns bools ``(n,)``."""
        p = np.atleast_2d(np.asarray(p, dtype=float))
        q = np.atleast_2d(np.asarray(q, dtype=float))
        d = q - p
        # Avoid division warnings: where d==0, the ray is parallel to the slab.
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(d != 0.0, 1.0 / d, np.inf)
        t_lo = (self.lo - p) * inv
        t_hi = (self.hi - p) * inv
        t_near = np.minimum(t_lo, t_hi)
        t_far = np.maximum(t_lo, t_hi)
        # Parallel axes: the segment misses unless p is within the slab.
        parallel = d == 0.0
        outside = parallel & ((p < self.lo) | (p > self.hi))
        t_near = np.where(parallel, -np.inf, t_near)
        t_far = np.where(parallel, np.inf, t_far)
        t0 = np.maximum(np.max(t_near, axis=1), 0.0)
        t1 = np.minimum(np.min(t_far, axis=1), 1.0)
        hit = (t0 <= t1) & ~np.any(outside, axis=1)
        return hit


def _segment_slab_interval(p, q, lo, hi):
    """Parametric entry/exit of segment p->q through box [lo,hi]; empty if t0>t1."""
    d = q - p
    t0, t1 = 0.0, 1.0
    for i in range(p.shape[0]):
        if d[i] == 0.0:
            if p[i] < lo[i] or p[i] > hi[i]:
                return 1.0, 0.0
        else:
            ta = (lo[i] - p[i]) / d[i]
            tb = (hi[i] - p[i]) / d[i]
            if ta > tb:
                ta, tb = tb, ta
            t0 = max(t0, ta)
            t1 = min(t1, tb)
            if t0 > t1:
                return 1.0, 0.0
    return t0, t1


@dataclass(frozen=True)
class Sphere:
    """A solid ball; used for robot bounding volumes and radial regions."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        c = np.asarray(self.center, dtype=float)
        if c.ndim != 1:
            raise ValueError("Sphere center must be a 1-D point")
        if self.radius < 0:
            raise ValueError(f"Sphere radius must be non-negative, got {self.radius}")
        object.__setattr__(self, "center", c)

    @property
    def dim(self) -> int:
        return self.center.shape[0]

    def volume(self) -> float:
        """Volume of a d-ball (gamma-function formula)."""
        from math import gamma, pi

        d = self.dim
        return float(pi ** (d / 2.0) / gamma(d / 2.0 + 1.0) * self.radius**d)

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        inside = np.einsum("ij,ij->i", pts - self.center, pts - self.center) <= self.radius**2
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> AABB:
        return AABB(self.center - self.radius, self.center + self.radius)

    def surface_sample(self, rng: np.random.Generator, n: int | None = None) -> np.ndarray:
        """Uniform samples on the sphere surface (Muller's Gaussian trick)."""
        m = 1 if n is None else n
        v = rng.normal(size=(m, self.dim))
        norms = np.linalg.norm(v, axis=1, keepdims=True)
        # A Gaussian draw landing exactly at the origin has probability 0;
        # fall back to a coordinate axis to stay safe anyway.
        norms[norms == 0.0] = 1.0
        pts = self.center + self.radius * v / norms
        return pts[0] if n is None else pts


def aabb_union(boxes: "list[AABB]") -> AABB:
    """Smallest AABB containing every box in ``boxes``."""
    if not boxes:
        raise ValueError("aabb_union of an empty list")
    lo = np.min(np.stack([b.lo for b in boxes]), axis=0)
    hi = np.max(np.stack([b.hi for b in boxes]), axis=0)
    return AABB(lo, hi)


def aabb_from_points(points: np.ndarray) -> AABB:
    """Smallest AABB containing all rows of ``points``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        raise ValueError("aabb_from_points of an empty point set")
    return AABB(pts.min(axis=0), pts.max(axis=0))
