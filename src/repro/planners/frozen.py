"""Frozen CSR snapshot of a built roadmap, for amortised query serving.

A :class:`~repro.planners.roadmap.Roadmap` is optimised for construction:
dict-of-dict adjacency, incremental union-find, amortised vertex storage.
Query serving has the opposite access pattern — the graph never changes
and thousands of shortest-path searches walk it — so
:class:`FrozenRoadmap` compiles the graph once into compressed sparse row
(CSR) arrays:

* ``indptr`` / ``indices`` / ``weights`` — adjacency in insertion order,
  vertex ids interned to dense rows;
* ``configs`` — one contiguous ``(n, dim)`` float array;
* exact component labels (BFS at freeze time, robust to prior edge
  removals) so disconnected queries fail in O(1) instead of exhausting
  a search.

The searches are **path-exact** versus the dict implementations in
:mod:`repro.planners.query`: heap keys carry the original vertex id (the
dict tie-break), neighbours relax in adjacency insertion order, and
arithmetic matches operation for operation, so the returned path and
length are bit-identical — swapping a query to the frozen path can never
change a result.

The snapshot is immutable by contract: mutating the source roadmap after
freezing (adding/removing vertices or edges) silently invalidates it, so
freeze once per built roadmap and re-freeze after any mutation.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from .roadmap import Roadmap

__all__ = ["FrozenRoadmap"]


class FrozenRoadmap:
    """Immutable CSR view of a roadmap with array-based shortest paths.

    Attributes
    ----------
    ids : np.ndarray
        ``(n,)`` original vertex ids in insertion (row) order.
    configs : np.ndarray
        ``(n, dim)`` configurations, row ``i`` belonging to ``ids[i]``.
    indptr, indices, weights : np.ndarray
        CSR adjacency over dense rows; neighbours of row ``i`` occupy
        ``indices[indptr[i]:indptr[i+1]]`` in insertion order.
    comp : np.ndarray
        ``(n,)`` dense component labels (exact, BFS-derived).
    max_id : int
        Largest vertex id (``-1`` when empty) — what
        :class:`~repro.planners.query.RoadmapQuery` derives temporary
        start/goal ids from.
    """

    def __init__(
        self,
        dim: int,
        ids: np.ndarray,
        configs: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
    ):
        self.dim = dim
        self.ids = ids
        self.configs = configs
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        n = ids.shape[0]
        self._row: "dict[int, int]" = {int(v): i for i, v in enumerate(ids.tolist())}
        self.max_id = int(ids.max()) if n else -1
        # Python-list mirrors: the search inner loops index these with
        # plain ints, which is several times faster than NumPy scalar
        # extraction for graphs of a few thousand vertices.
        self._ids_list: "list[int]" = ids.tolist()
        self._indptr_list: "list[int]" = indptr.tolist()
        self._indices_list: "list[int]" = indices.tolist()
        self._weights_list: "list[float]" = weights.tolist()
        # Per-row (neighbour, weight) tuples, prebuilt once so the search
        # inner loop is a single list index plus direct tuple unpacking —
        # no per-pop slicing.  Order is CSR order, i.e. relax order.
        ind, nb, wt = self._indptr_list, self._indices_list, self._weights_list
        self._adj: "list[list[tuple[int, float]]]" = [
            list(zip(nb[ind[i] : ind[i + 1]], wt[ind[i] : ind[i + 1]]))
            for i in range(n)
        ]
        self.comp = self._label_components()
        self._comp_list: "list[int]" = self.comp.tolist()
        self.num_components = int(self.comp.max()) + 1 if n else 0

    # -- construction -------------------------------------------------------
    @classmethod
    def from_roadmap(cls, rmap: Roadmap) -> "FrozenRoadmap":
        """Compile a built roadmap into a frozen snapshot."""
        ids_view, cfgs_view = rmap.configs_array()
        ids = ids_view.copy()
        configs = cfgs_view.copy()
        n = ids.shape[0]
        ids_list = ids.tolist()
        row = {v: i for i, v in enumerate(ids_list)}
        indptr = np.zeros(n + 1, dtype=np.int64)
        for i, vid in enumerate(ids_list):
            indptr[i + 1] = rmap.degree(vid)
        np.cumsum(indptr, out=indptr)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        weights = np.empty(nnz, dtype=np.float64)
        pos = 0
        # Rows are visited in row order, so filling is contiguous; within a
        # row, neighbours keep their adjacency-dict insertion order — the
        # order the dict searches relax in.
        for vid in ids_list:
            for v, w in rmap.neighbors(vid).items():
                indices[pos] = row[v]
                weights[pos] = w
                pos += 1
        return cls(rmap.dim, ids, configs, indptr, indices, weights)

    def _label_components(self) -> np.ndarray:
        """Exact dense component labels by BFS over the CSR arrays."""
        n = len(self._ids_list)
        comp = np.full(n, -1, dtype=np.int64)
        labels = comp.tolist()
        indptr, nbrs = self._indptr_list, self._indices_list
        c = 0
        for s in range(n):
            if labels[s] >= 0:
                continue
            labels[s] = c
            frontier = [s]
            while frontier:
                u = frontier.pop()
                for p in range(indptr[u], indptr[u + 1]):
                    v = nbrs[p]
                    if labels[v] < 0:
                        labels[v] = c
                        frontier.append(v)
            c += 1
        comp[:] = labels
        return comp

    # -- introspection ------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._ids_list)

    @property
    def num_edges(self) -> int:
        return len(self._indices_list) // 2

    def has_vertex(self, vid: int) -> bool:
        return vid in self._row

    def row_of(self, vid: int) -> int:
        """Dense row index of a vertex id."""
        return self._row[vid]

    def config(self, vid: int) -> np.ndarray:
        return self.configs[self._row[vid]]

    def configs_of(self, vids) -> np.ndarray:
        """Configurations of many vertices as one fancy-indexed gather."""
        row = self._row
        rows = [row[v] for v in vids]
        if not rows:
            return np.empty((0, self.dim))
        return self.configs[rows]

    def same_component(self, u: int, v: int) -> bool:
        return self._comp_list[self._row[u]] == self._comp_list[self._row[v]]

    # -- searches -----------------------------------------------------------
    def dijkstra(self, source: int, target: int) -> "tuple[list[int], float] | None":
        """Shortest path by edge weight; None when disconnected.

        Path-exact versus :func:`repro.planners.query.dijkstra` on the
        source roadmap (same relax order, same heap tie-breaking by
        vertex id, same float operations).
        """
        src = self._row.get(source)
        dst = self._row.get(target)
        if src is None or dst is None:
            raise KeyError("source or target vertex missing from roadmap")
        comp = self._comp_list
        if comp[src] != comp[dst]:
            return None
        n = len(comp)
        inf = math.inf
        dist = [inf] * n
        prev = [-1] * n
        done = bytearray(n)
        ids = self._ids_list
        adj = self._adj
        dist[src] = 0.0
        heap: "list[tuple[float, int, int]]" = [(0.0, source, src)]
        pop, push = heapq.heappop, heapq.heappush
        while heap:
            d, _uvid, u = pop(heap)
            if done[u]:
                continue
            if u == dst:
                break
            done[u] = 1
            for v, w in adj[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    prev[v] = u
                    push(heap, (nd, ids[v], v))
        if dist[dst] == inf:
            return None
        path_rows = [dst]
        while path_rows[-1] != src:
            path_rows.append(prev[path_rows[-1]])
        path_rows.reverse()
        return [ids[r] for r in path_rows], dist[dst]

    def astar(
        self, source: int, target: int, heuristic=None
    ) -> "tuple[list[int], float] | None":
        """A* with an admissible heuristic (default: Euclidean distance of
        configurations) — path-exact versus
        :func:`repro.planners.query.astar`."""
        src = self._row.get(source)
        dst = self._row.get(target)
        if src is None or dst is None:
            raise KeyError("source or target vertex missing from roadmap")
        comp = self._comp_list
        if comp[src] != comp[dst]:
            return None
        n = len(comp)
        ids = self._ids_list
        if heuristic is None:
            # One vectorised broadcast; row-wise reduction is bit-identical
            # to the per-vertex scalar the dict implementation computes.
            h: "list[float]" = np.linalg.norm(
                self.configs - self.configs[dst][None, :], axis=1
            ).tolist()
        else:
            h = [heuristic(vid) for vid in ids]
        inf = math.inf
        g = [inf] * n
        prev = [-1] * n
        done = bytearray(n)
        adj = self._adj
        g[src] = 0.0
        heap: "list[tuple[float, int, int]]" = [(h[src], source, src)]
        pop, push = heapq.heappop, heapq.heappush
        while heap:
            _f, _uvid, u = pop(heap)
            if u == dst:
                path_rows = [dst]
                while path_rows[-1] != src:
                    path_rows.append(prev[path_rows[-1]])
                path_rows.reverse()
                return [ids[r] for r in path_rows], g[dst]
            if done[u]:
                continue
            done[u] = 1
            gu = g[u]
            for v, w in adj[u]:
                ng = gu + w
                if ng < g[v]:
                    g[v] = ng
                    prev[v] = u
                    push(heap, (ng + h[v], ids[v], v))
        return None

    def astar_virtual(
        self,
        start_cfg: np.ndarray,
        goal_cfg: np.ndarray,
        start_links: "list[tuple[int, float]]",
        goal_links: "list[tuple[int, float]]",
        sid: int,
        gid: int,
    ) -> "tuple[list[int], float] | None":
        """A* between two virtual endpoints attached by explicit links.

        ``start_links`` / ``goal_links`` are ``(row, weight)`` pairs in
        attachment order; a goal link whose row equals ``num_vertices``
        targets the virtual start itself (the direct start—goal edge).
        Replays exactly what :meth:`RoadmapQuery.solve` produces when it
        temporarily inserts start/goal vertices ``sid``/``gid`` into the
        roadmap and runs the dict A*: identical relax order (CSR row,
        then the start link, then the goal link — adjacency append
        order), identical heap tie-breaking, identical floats.
        """
        if not start_links or not goal_links:
            return None
        n = len(self._ids_list)
        srow, grow = n, n + 1
        s_back: "dict[int, float]" = {}
        g_back: "dict[int, float]" = {}
        sg_w: "float | None" = None
        for r, w in start_links:
            s_back[r] = w
        for r, w in goal_links:
            if r == srow:
                sg_w = w
            else:
                g_back[r] = w
        comp = self._comp_list
        if sg_w is None and not (
            {comp[r] for r in s_back} & {comp[r] for r in g_back}
        ):
            return None
        start_cfg = np.asarray(start_cfg, dtype=float)
        goal_cfg = np.asarray(goal_cfg, dtype=float)
        h: "list[float]" = (
            np.linalg.norm(self.configs - goal_cfg[None, :], axis=1).tolist() if n else []
        )
        h.append(float(np.linalg.norm((start_cfg - goal_cfg)[None, :], axis=1)[0]))
        h.append(0.0)
        ids = self._ids_list
        adj = self._adj
        inf = math.inf
        g = [inf] * (n + 2)
        prev = [-1] * (n + 2)
        done = bytearray(n + 2)
        g[srow] = 0.0
        heap: "list[tuple[float, int, int]]" = [(h[srow], sid, srow)]
        pop, push = heapq.heappop, heapq.heappush
        g_get = g_back.get
        h_g = h[grow]
        while heap:
            _f, _uvid, u = pop(heap)
            if u == grow:
                path = [gid]
                node = grow
                while node != srow:
                    node = prev[node]
                    path.append(sid if node == srow else ids[node])
                path.reverse()
                return path, g[grow]
            if done[u]:
                continue
            done[u] = 1
            gu = g[u]
            if u == srow:
                for v, w in start_links:
                    ng = gu + w
                    if ng < g[v]:
                        g[v] = ng
                        prev[v] = u
                        push(heap, (ng + h[v], ids[v], v))
                if sg_w is not None:
                    ng = gu + sg_w
                    if ng < g[grow]:
                        g[grow] = ng
                        prev[grow] = u
                        push(heap, (ng + h_g, gid, grow))
                continue
            for v, w in adj[u]:
                ng = gu + w
                if ng < g[v]:
                    g[v] = ng
                    prev[v] = u
                    push(heap, (ng + h[v], ids[v], v))
            # The start's back-links are provably dead: the virtual start
            # pops first with g = 0, so no relaxation can ever improve it
            # — the dict search relaxes them to the same no-op.
            w = g_get(u)
            if w is not None:
                ng = gu + w
                if ng < g[grow]:
                    g[grow] = ng
                    prev[grow] = u
                    push(heap, (ng + h_g, gid, grow))
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrozenRoadmap(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"components={self.num_components})"
        )
