"""Workspace model: a bounded box populated with axis-aligned obstacles.

The environment is the *workspace* the robot moves in.  Obstacles are AABBs
stored in two stacked arrays (``obs_lo``, ``obs_hi``) so collision queries
against *batches* of points or segments are single vectorised NumPy
expressions — the dominant cost of sampling-based planning is collision
checking, so this is the hot path (see the profiling guidance in the
project's HPC notes).

The environment also counts collision-detection calls.  The simulated
distributed runtime charges virtual time per CD call, so these counters are
the bridge between "real planner work" and "virtual machine time".

Since the kernels refactor the actual collision arithmetic lives in
:mod:`repro.kernels`: queries snapshot the obstacle set into a
structure-of-arrays :class:`~repro.kernels.data.EnvKernelData` (cached,
invalidated on mutation) and dispatch to the environment's configured
:class:`~repro.kernels.base.KernelBackend` — ``reference`` by default,
which is bit-exact with the historical inline expressions.  Callers on
shared environments can override per call with ``kernels=`` instead of
mutating the environment's default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import EnvKernelData, get_backend
from .primitives import AABB

__all__ = ["Environment", "CollisionCounters"]


@dataclass
class CollisionCounters:
    """Tally of collision-detection work performed against an environment."""

    point_checks: int = 0
    segment_checks: int = 0

    def reset(self) -> None:
        self.point_checks = 0
        self.segment_checks = 0

    def snapshot(self) -> "CollisionCounters":
        return CollisionCounters(self.point_checks, self.segment_checks)

    def delta(self, earlier: "CollisionCounters") -> "CollisionCounters":
        return CollisionCounters(
            self.point_checks - earlier.point_checks,
            self.segment_checks - earlier.segment_checks,
        )

    @property
    def total(self) -> int:
        return self.point_checks + self.segment_checks


class Environment:
    """A ``d``-dimensional bounded workspace with axis-aligned box obstacles.

    Parameters
    ----------
    bounds:
        The workspace bounding box.
    obstacles:
        A list of :class:`AABB` obstacles.  Obstacles may overlap each other
        and may extend beyond ``bounds`` (only the part inside the bounds
        matters for free-volume computations).
    name:
        Human-readable identifier used in benchmark output.
    kernel_backend:
        Name (or instance) of the :mod:`repro.kernels` backend collision
        queries dispatch to by default.  ``"reference"`` is bit-exact with
        the pre-kernels inline expressions.
    """

    def __init__(
        self,
        bounds: AABB,
        obstacles: "list[AABB] | None" = None,
        name: str = "env",
        kernel_backend: str = "reference",
    ):
        self.bounds = bounds
        self._obstacles: "list[AABB] | None" = list(obstacles or [])
        self.name = name
        self.counters = CollisionCounters()
        self._kernels = get_backend(kernel_backend)
        self._kernel_backend_name = kernel_backend if isinstance(kernel_backend, str) else None
        self._kernel_data: "EnvKernelData | None" = None
        self._rebuild_arrays()

    @classmethod
    def from_arrays(
        cls,
        bounds: AABB,
        obs_lo: np.ndarray,
        obs_hi: np.ndarray,
        name: str = "env",
        kernel_backend: str = "reference",
    ) -> "Environment":
        """Build an environment directly from stacked obstacle arrays.

        The zero-copy constructor behind the shared-memory data plane:
        ``obs_lo`` / ``obs_hi`` (shape ``(n, d)``) are adopted as the
        collision arrays without materialising ``n`` Python :class:`AABB`
        objects or re-stacking them — for 10k+ obstacle scenes that is
        the dominant context-deserialisation cost.  The ``obstacles``
        list is built lazily on first access (collision queries never
        need it).  Arrays may be read-only views (e.g. shared-memory
        attachments); they are never written to.
        """
        obs_lo = np.ascontiguousarray(np.asarray(obs_lo, dtype=float))
        obs_hi = np.ascontiguousarray(np.asarray(obs_hi, dtype=float))
        if obs_lo.ndim != 2 or obs_lo.shape != obs_hi.shape:
            raise ValueError(
                f"obs_lo/obs_hi must be matching (n, d) arrays, got "
                f"{obs_lo.shape} and {obs_hi.shape}"
            )
        if obs_lo.shape[1] != bounds.dim:
            raise ValueError(
                f"obstacle dim {obs_lo.shape[1]} != workspace dim {bounds.dim}"
            )
        env = cls.__new__(cls)
        env.bounds = bounds
        env._obstacles = None  # materialised lazily from the arrays
        env.name = name
        env.counters = CollisionCounters()
        env._kernels = get_backend(kernel_backend)
        env._kernel_backend_name = (
            kernel_backend if isinstance(kernel_backend, str) else None
        )
        env._kernel_data = None
        env._obs_lo = obs_lo
        env._obs_hi = obs_hi
        return env

    @property
    def obstacles(self) -> "list[AABB]":
        """The obstacle list; materialised from the arrays on demand for
        environments built via :meth:`from_arrays`."""
        if self._obstacles is None:
            self._obstacles = [
                AABB(lo, hi) for lo, hi in zip(self._obs_lo, self._obs_hi)
            ]
        return self._obstacles

    def _rebuild_arrays(self) -> None:
        d = self.bounds.dim
        for obs in self.obstacles:
            if obs.dim != d:
                raise ValueError(f"obstacle dim {obs.dim} != workspace dim {d}")
        if self.obstacles:
            self._obs_lo = np.stack([o.lo for o in self.obstacles])
            self._obs_hi = np.stack([o.hi for o in self.obstacles])
        else:
            self._obs_lo = np.empty((0, d))
            self._obs_hi = np.empty((0, d))
        self._kernel_data = None  # SoA snapshot is stale after any mutation

    # -- mutation ---------------------------------------------------------
    def add_obstacle(self, obstacle: AABB) -> None:
        self.obstacles.append(obstacle)
        self._rebuild_arrays()

    # -- kernel dispatch ---------------------------------------------------
    @property
    def kernel_backend(self):
        """The backend collision queries use when no override is given."""
        return self._kernels

    def set_kernel_backend(self, backend) -> None:
        """Set the default backend (a registry name or an instance)."""
        self._kernels = get_backend(backend)
        self._kernel_backend_name = backend if isinstance(backend, str) else None

    def kernel_data(self) -> EnvKernelData:
        """The cached SoA obstacle snapshot, rebuilt lazily after mutation.

        Repeated collision calls in batched PRM/RRT replay share this one
        snapshot instead of re-walking the Python obstacle list.
        """
        if self._kernel_data is None:
            self._kernel_data = EnvKernelData(
                bounds_lo=self.bounds.lo,
                bounds_hi=self.bounds.hi,
                box_lo=self._obs_lo,
                box_hi=self._obs_hi,
            )
        return self._kernel_data

    def _resolve_kernels(self, kernels):
        return self._kernels if kernels is None else get_backend(kernels)

    # -- basic properties ---------------------------------------------------
    @property
    def dim(self) -> int:
        return self.bounds.dim

    @property
    def num_obstacles(self) -> int:
        # From the arrays, not the list: lazy ``from_arrays`` environments
        # must not materialise obstacles just to be counted.
        return int(self._obs_lo.shape[0])

    def obstacle_volume(self, within: AABB | None = None) -> float:
        """Total obstacle volume inside ``within`` (default: whole workspace).

        Overlapping obstacles are handled by inclusion-exclusion up to
        pairwise terms for speed; the procedural builders in
        :mod:`repro.geometry.environments` generate non-overlapping
        obstacles, for which this is exact.
        """
        region = within if within is not None else self.bounds
        vols = [o.intersection_volume(region) for o in self.obstacles]
        total = float(sum(vols))
        # Pairwise overlap correction.
        for i in range(len(self.obstacles)):
            oi = self.obstacles[i].intersection(region)
            if oi is None:
                continue
            for j in range(i + 1, len(self.obstacles)):
                total -= oi.intersection_volume(self.obstacles[j])
        return max(total, 0.0)

    def box_obstacle_relation(self, box: AABB) -> str:
        """Classify ``box`` against the obstacle set.

        Returns ``"free"`` (touches no obstacle), ``"blocked"`` (entirely
        inside one obstacle), or ``"boundary"`` (straddles at least one
        obstacle surface).  Used to identify narrow-passage regions.
        """
        inside_any = False
        touches_any = False
        for obs in self.obstacles:
            if obs.intersects(box):
                touches_any = True
                if np.all(obs.lo <= box.lo) and np.all(box.hi <= obs.hi):
                    inside_any = True
                    break
        if inside_any:
            return "blocked"
        return "boundary" if touches_any else "free"

    def free_volume(self, within: AABB | None = None) -> float:
        region = within if within is not None else self.bounds
        clipped = region.intersection(self.bounds)
        if clipped is None:
            return 0.0
        return max(clipped.volume() - self.obstacle_volume(clipped), 0.0)

    def blocked_fraction(self) -> float:
        v = self.bounds.volume()
        return 0.0 if v == 0 else self.obstacle_volume() / v

    # -- collision queries ---------------------------------------------------
    def points_in_collision(self, points: np.ndarray, kernels=None) -> np.ndarray:
        """Boolean mask: True where the point hits an obstacle or exits bounds.

        ``points`` has shape ``(n, d)`` or ``(d,)``.  ``kernels`` (a
        registry name or backend instance) overrides the environment's
        default backend for this call.
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        pts = np.atleast_2d(pts)
        self.counters.point_checks += pts.shape[0] * max(1, self._obs_lo.shape[0])
        hit = ~self._resolve_kernels(kernels).points_free(self.kernel_data(), pts)
        return bool(hit[0]) if single else hit

    def point_free(self, point: np.ndarray) -> bool:
        return not bool(self.points_in_collision(point))

    def segment_in_collision(
        self, p: np.ndarray, q: np.ndarray, resolution: float = 0.0, kernels=None
    ) -> bool:
        """Exact swept test of the segment ``p->q`` against all obstacles.

        ``resolution`` is accepted for interface parity with sampled local
        planners but the slab test here is exact for point robots, so it is
        unused.
        """
        del resolution
        p = np.asarray(p, dtype=float)
        q = np.asarray(q, dtype=float)
        self.counters.segment_checks += max(1, self._obs_lo.shape[0])
        backend = self._resolve_kernels(kernels)
        return not bool(backend.segments_free(self.kernel_data(), p[None, :], q[None, :])[0])

    def segments_in_collision(self, p: np.ndarray, q: np.ndarray, kernels=None) -> np.ndarray:
        """Vectorised swept test for segments ``p[i]->q[i]``."""
        p = np.atleast_2d(np.asarray(p, dtype=float))
        q = np.atleast_2d(np.asarray(q, dtype=float))
        self.counters.segment_checks += p.shape[0] * max(1, self._obs_lo.shape[0])
        return ~self._resolve_kernels(kernels).segments_free(self.kernel_data(), p, q)

    # -- ray probes (used by the k-rays RRT weight estimator) ----------------
    def ray_free_distance(self, origin: np.ndarray, direction: np.ndarray, max_dist: float) -> float:
        """Distance travelled from ``origin`` along ``direction`` before
        hitting an obstacle or the workspace boundary, capped at ``max_dist``.
        """
        origin = np.asarray(origin, dtype=float)
        direction = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(direction)
        if norm == 0.0:
            raise ValueError("ray direction must be non-zero")
        u = direction / norm
        self.counters.segment_checks += max(1, self._obs_lo.shape[0])

        # Exit parameter through the workspace bounds.
        t_exit = _ray_box_exit(origin, u, self.bounds.lo, self.bounds.hi)
        best = min(max_dist, t_exit)
        for lo, hi in zip(self._obs_lo, self._obs_hi):
            t_enter = _ray_box_enter(origin, u, lo, hi)
            if t_enter is not None and 0.0 <= t_enter < best:
                best = t_enter
        return max(best, 0.0)

    # -- sampling helpers -----------------------------------------------------
    def sample_free(self, rng: np.random.Generator, n: int, within: AABB | None = None, max_tries: int = 64) -> np.ndarray:
        """Rejection-sample ``n`` collision-free points (may return fewer if
        the region is heavily blocked after ``max_tries`` rounds)."""
        region = within if within is not None else self.bounds
        out: list[np.ndarray] = []
        need = n
        for _ in range(max_tries):
            if need <= 0:
                break
            cand = region.sample(rng, max(need * 2, 8))
            free = ~self.points_in_collision(cand)
            got = cand[free][:need]
            if got.size:
                out.append(got)
                need -= got.shape[0]
        if not out:
            return np.empty((0, self.dim))
        return np.vstack(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # blocked_fraction's pairwise overlap correction is O(n^2); on the
        # 10^4-10^5-obstacle scenario environments a repr must stay cheap.
        if self.num_obstacles <= 2000:
            blocked = f"{self.blocked_fraction():.2%}"
        else:
            blocked = "n/a"
        return (
            f"Environment(name={self.name!r}, dim={self.dim}, "
            f"obstacles={self.num_obstacles}, blocked={blocked})"
        )


def _ray_box_enter(origin, u, lo, hi):
    """Parameter t >= 0 where ray origin+t*u first enters [lo,hi]; None if it misses."""
    t0, t1 = -np.inf, np.inf
    for i in range(origin.shape[0]):
        if u[i] == 0.0:
            if origin[i] < lo[i] or origin[i] > hi[i]:
                return None
        else:
            ta = (lo[i] - origin[i]) / u[i]
            tb = (hi[i] - origin[i]) / u[i]
            if ta > tb:
                ta, tb = tb, ta
            t0 = max(t0, ta)
            t1 = min(t1, tb)
            if t0 > t1:
                return None
    if t1 < 0.0:
        return None
    return max(t0, 0.0)


def _ray_box_exit(origin, u, lo, hi) -> float:
    """Parameter t >= 0 where a ray starting inside [lo,hi] exits it."""
    t1 = np.inf
    for i in range(origin.shape[0]):
        if u[i] > 0.0:
            t1 = min(t1, (hi[i] - origin[i]) / u[i])
        elif u[i] < 0.0:
            t1 = min(t1, (lo[i] - origin[i]) / u[i])
    return max(t1, 0.0)
