"""Tests for the nearest-neighbour backends, cross-validated."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knn import BruteForceNN, GridNN, KDTreeNN


def _backends(dim):
    return [BruteForceNN(dim), KDTreeNN(dim), GridNN(dim, cell_size=0.5)]


class TestBasics:
    @pytest.mark.parametrize("cls", [BruteForceNN, KDTreeNN])
    def test_invalid_dim(self, cls):
        with pytest.raises(ValueError):
            cls(0)

    def test_grid_invalid_cell(self):
        with pytest.raises(ValueError):
            GridNN(2, cell_size=0.0)

    def test_len_tracks_insertions(self, rng):
        for nn in _backends(3):
            assert len(nn) == 0
            nn.add(0, rng.normal(size=3))
            nn.add_batch(np.array([1, 2]), rng.normal(size=(2, 3)))
            assert len(nn) == 3

    def test_empty_queries(self):
        for nn in _backends(2):
            assert nn.knn(np.zeros(2), 3) == []
            assert nn.radius(np.zeros(2), 1.0) == []

    def test_mismatched_batch_raises(self, rng):
        for nn in _backends(2):
            with pytest.raises(ValueError):
                nn.add_batch(np.array([0]), rng.normal(size=(2, 2)))


class TestKnnCorrectness:
    def test_single_point(self):
        for nn in _backends(2):
            nn.add(7, np.array([1.0, 1.0]))
            out = nn.knn(np.zeros(2), 1)
            assert out == [(7, pytest.approx(np.sqrt(2.0)))]

    def test_exclude(self):
        for nn in _backends(2):
            nn.add(1, np.array([0.0, 0.0]))
            nn.add(2, np.array([1.0, 0.0]))
            out = nn.knn(np.zeros(2), 1, exclude=1)
            assert out[0][0] == 2

    def test_k_larger_than_population(self, rng):
        for nn in _backends(2):
            nn.add_batch(np.arange(3), rng.normal(size=(3, 2)))
            assert len(nn.knn(np.zeros(2), 10)) == 3

    def test_sorted_by_distance(self, rng):
        pts = rng.normal(size=(50, 3))
        for nn in _backends(3):
            nn.add_batch(np.arange(50), pts)
            out = nn.knn(np.zeros(3), 10)
            dists = [d for _i, d in out]
            assert dists == sorted(dists)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 12))
    def test_backends_agree_with_brute_force(self, seed, k):
        """Property: kd-tree and grid return exactly the brute-force ids."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-3, 3, size=(60, 2))
        query = rng.uniform(-3, 3, 2)
        brute = BruteForceNN(2)
        kd = KDTreeNN(2)
        grid = GridNN(2, cell_size=0.75)
        for nn in (brute, kd, grid):
            nn.add_batch(np.arange(60), pts)
        expected = {i for i, _d in brute.knn(query, k)}
        assert {i for i, _d in kd.knn(query, k)} == expected
        assert {i for i, _d in grid.knn(query, k)} == expected


class TestCanonicalTieBreak:
    """All backends must agree on the exact ordered (id, distance) lists,
    including ties — the contract that makes ``nn_factory`` a drop-in swap
    everywhere in the planners."""

    def _tie_heavy_points(self):
        """A 5x5 integer lattice, duplicated: every query sees massive
        exact-distance ties and duplicate configurations."""
        base = np.array([[float(x), float(y)] for x in range(5) for y in range(5)])
        return np.vstack([base, base])

    def test_exact_order_on_lattice_ties(self):
        pts = self._tie_heavy_points()
        n = len(pts)
        brute = BruteForceNN(2)
        kd = KDTreeNN(2)
        grid = GridNN(2, cell_size=1.0)
        for nn in (brute, kd, grid):
            nn.add_batch(np.arange(n), pts)
        queries = [np.array([2.0, 2.0]), np.array([0.5, 0.5]), np.array([2.5, 1.5])]
        for q in queries:
            for k in (1, 4, 9, 30):
                ref = brute.knn(q, k)
                assert kd.knn(q, k) == ref
                assert grid.knn(q, k) == ref

    def test_duplicates_break_by_insertion_order(self):
        """Duplicate points tie on distance; insertion order decides."""
        for nn in _backends(2):
            nn.add(5, np.array([1.0, 0.0]))
            nn.add(3, np.array([1.0, 0.0]))
            nn.add(9, np.array([1.0, 0.0]))
            assert [i for i, _d in nn.knn(np.zeros(2), 3)] == [5, 3, 9]

    def test_tie_at_kth_slot(self):
        """When the k-th and (k+1)-th candidates tie on distance, the
        earlier-inserted one must win the slot in every backend."""
        pts = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.5, 0.0]])
        for nn in _backends(2):
            nn.add_batch(np.arange(4), pts)
            out = nn.knn(np.zeros(2), 2)
            assert [i for i, _d in out] == [3, 0]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 10))
    def test_exact_order_random(self, seed, k):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-3, 3, size=(50, 3))
        q = rng.uniform(-3, 3, 3)
        brute = BruteForceNN(3)
        kd = KDTreeNN(3)
        grid = GridNN(3, cell_size=0.9)
        for nn in (brute, kd, grid):
            nn.add_batch(np.arange(50), pts)
        ref = brute.knn(q, k)
        assert kd.knn(q, k) == ref
        assert grid.knn(q, k) == ref

    def test_knn_batch_matches_loop(self, rng):
        """The vectorised batch path must equal per-query knn calls
        exactly, for every backend (brute overrides it, others inherit)."""
        pts = rng.uniform(-3, 3, size=(80, 2))
        queries = rng.uniform(-3, 3, size=(12, 2))
        for nn in _backends(2):
            nn.add_batch(np.arange(80), pts)
            batch = nn.knn_batch(queries, 6)
            loop = [nn.knn(q, 6) for q in queries]
            assert batch == loop

    def test_knn_batch_empty(self):
        for nn in _backends(2):
            assert nn.knn_batch(np.empty((0, 2)), 4) == []
            nn.add(0, np.zeros(2))
            assert nn.knn_batch(np.array([[1.0, 0.0]]), 3) == [[(0, 1.0)]]


class TestRadiusCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), r=st.floats(0.1, 3.0))
    def test_backends_agree_on_radius(self, seed, r):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-3, 3, size=(40, 3))
        query = rng.uniform(-3, 3, 3)
        brute = BruteForceNN(3)
        kd = KDTreeNN(3)
        grid = GridNN(3, cell_size=1.0)
        for nn in (brute, kd, grid):
            nn.add_batch(np.arange(40), pts)
        expected = {i for i, _d in brute.radius(query, r)}
        assert {i for i, _d in kd.radius(query, r)} == expected
        assert {i for i, _d in grid.radius(query, r)} == expected

    def test_radius_inclusive(self):
        for nn in _backends(2):
            nn.add(0, np.array([1.0, 0.0]))
            assert nn.radius(np.zeros(2), 1.0) == [(0, pytest.approx(1.0))]


class TestStats:
    def test_brute_counts_distance_evals(self, rng):
        nn = BruteForceNN(2)
        nn.add_batch(np.arange(10), rng.normal(size=(10, 2)))
        nn.knn(np.zeros(2), 3)
        assert nn.stats.queries == 1
        assert nn.stats.distance_evals == 10

    def test_kdtree_prunes(self, rng):
        nn = KDTreeNN(2)
        pts = rng.uniform(-10, 10, size=(500, 2))
        nn.add_batch(np.arange(500), pts)
        nn.knn(np.array([0.0, 0.0]), 1)
        # Pruning must beat exhaustive scan on a spread-out set.
        assert nn.stats.distance_evals < 500

    def test_kdtree_depth_reasonable(self, rng):
        nn = KDTreeNN(3)
        nn.add_batch(np.arange(1000), rng.normal(size=(1000, 3)))
        assert nn.depth() < 60


class TestCapacityGrowth:
    def test_incremental_adds_past_capacity(self, rng):
        """Data must survive repeated buffer growth (regression: np.resize
        tiles the old buffer instead of preserving a prefix)."""
        nn = BruteForceNN(2)
        pts = rng.uniform(0.0, 10.0, size=(300, 2))
        for i, p in enumerate(pts):
            nn.add(i, p)
        assert len(nn) == 300
        # Every stored point must be its own nearest neighbour.
        for i in (0, 63, 64, 65, 128, 299):
            nbrs = nn.knn(pts[i], 1)
            assert nbrs[0][0] == i
            assert nbrs[0][1] == 0.0


class TestBlockGrowing:
    @pytest.mark.parametrize("n0,m,k", [(0, 1, 4), (0, 10, 4), (3, 17, 4), (50, 64, 6), (5, 2, 8)])
    def test_matches_interleaved_loop(self, rng, n0, m, k):
        """knn_block_growing must equal the query-then-insert loop exactly:
        same neighbours, same order, same distances, same stats charges."""
        stored = rng.uniform(0.0, 10.0, size=(n0, 3))
        block = rng.uniform(0.0, 10.0, size=(m, 3))
        ids = np.arange(n0 + m, dtype=np.int64)

        ref_nn = BruteForceNN(3)
        if n0:
            ref_nn.add_batch(ids[:n0], stored)
        ref = []
        for i in range(m):
            ref.append(ref_nn.knn(block[i], k))
            ref_nn.add(int(ids[n0 + i]), block[i])

        blk_nn = BruteForceNN(3)
        if n0:
            blk_nn.add_batch(ids[:n0], stored)
        got = blk_nn.knn_block_growing(ids[n0:], block, k)

        assert got == ref
        assert blk_nn.stats.queries == ref_nn.stats.queries
        assert blk_nn.stats.distance_evals == ref_nn.stats.distance_evals
        assert len(blk_nn) == len(ref_nn) == n0 + m

    def test_empty_block(self):
        nn = BruteForceNN(3)
        assert nn.knn_block_growing(np.empty(0, dtype=np.int64), np.empty((0, 3)), 4) == []

    def test_mismatched_lengths_raise(self, rng):
        nn = BruteForceNN(2)
        with pytest.raises(ValueError):
            nn.knn_block_growing(np.arange(3), rng.uniform(size=(2, 2)), 2)


class TestBatchArrays:
    """The array-native ``knn_batch_arrays`` contract: padded ``(m, k)``
    id/distance arrays whose finite prefix matches ``knn_batch`` exactly,
    across every backend (base-class adapter included)."""

    def test_matches_knn_batch_across_backends(self, rng):
        pts = rng.uniform(0.0, 10.0, size=(60, 3))
        ids = np.arange(60, dtype=np.int64)
        queries = rng.uniform(0.0, 10.0, size=(9, 3))
        k = 5
        for nn in _backends(3):
            nn.add_batch(ids, pts)
            pairs = nn.knn_batch(queries, k)
            aid, adist = nn.knn_batch_arrays(queries, k)
            assert aid.shape == (9, k) and adist.shape == (9, k)
            assert aid.dtype == np.int64
            for row, expect in enumerate(pairs):
                got = [
                    (int(aid[row, j]), float(adist[row, j]))
                    for j in range(k)
                    if np.isfinite(adist[row, j])
                ]
                assert got == expect

    def test_padding_when_store_is_small(self, rng):
        queries = rng.uniform(size=(3, 2))
        for nn in _backends(2):
            nn.add(7, np.zeros(2))
            aid, adist = nn.knn_batch_arrays(queries, 4)
            assert aid.shape == (3, 4) and adist.shape == (3, 4)
            assert np.all(aid[:, 1:] == -1)
            assert np.all(np.isinf(adist[:, 1:]))
            assert np.all(aid[:, 0] == 7) and np.all(np.isfinite(adist[:, 0]))

    def test_empty_store_and_empty_queries(self):
        for nn in _backends(2):
            aid, adist = nn.knn_batch_arrays(np.zeros((2, 2)), 3)
            assert aid.shape == (2, 3) and np.all(aid == -1)
            assert np.all(np.isinf(adist))
            aid, adist = nn.knn_batch_arrays(np.empty((0, 2)), 3)
            assert aid.shape == (0, 3) and adist.shape == (0, 3)

    def test_brute_fast32_backend_matches_reference_ids(self, rng):
        pts = rng.uniform(0.0, 10.0, size=(200, 3))
        ids = np.arange(200, dtype=np.int64)
        queries = rng.uniform(0.0, 10.0, size=(16, 3))
        ref = BruteForceNN(3)
        fast = BruteForceNN(3, kernels="fast32")
        ref.add_batch(ids, pts)
        fast.add_batch(ids, pts)
        rid, rdist = ref.knn_batch_arrays(queries, 6)
        fid, fdist = fast.knn_batch_arrays(queries, 6)
        np.testing.assert_allclose(fdist, rdist, rtol=1e-4, atol=1e-9)
        # uniform draws are tie-free at this scale: ids must agree
        np.testing.assert_array_equal(fid, rid)
