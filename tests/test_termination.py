"""Tests for termination detection."""

import numpy as np
import pytest

from repro.runtime import ClusterTopology, TokenRingDetector, detection_delay, detection_delay_tree


class TestTokenRing:
    def test_all_passive_detects(self):
        det = TokenRingDetector(4)
        assert det.try_circulate()
        assert det.detected

    def test_active_pe_blocks_detection(self):
        det = TokenRingDetector(4)
        det.set_active(2, True)
        assert not det.try_circulate()
        det.set_active(2, False)
        assert det.try_circulate()

    def test_message_in_flight_blocks(self):
        det = TokenRingDetector(4)
        det.on_send(1)  # message sent but never received
        assert not det.try_circulate()
        det.on_receive(3)  # now received; PE 3 became active
        assert not det.try_circulate()
        det.set_active(3, False)
        # Receive tainted PE 3; first round fails, a later round succeeds.
        det.try_circulate()
        assert det.try_circulate()

    def test_single_pe(self):
        det = TokenRingDetector(1)
        assert det.try_circulate()

    def test_no_false_detection_with_ping_pong(self):
        det = TokenRingDetector(3)
        # 0 sends to 1; 1 receives, works, sends to 2, goes passive.
        det.on_send(0)
        det.on_receive(1)
        det.set_active(1, False)
        det.on_send(1)
        assert not det.try_circulate()  # message to 2 still in flight
        det.on_receive(2)
        det.set_active(2, False)
        while not det.try_circulate():
            pass
        assert det.detected

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            TokenRingDetector(0)


class TestDetectionDelay:
    def test_grows_logarithmically(self):
        d64 = detection_delay(64, 10.0)
        d1024 = detection_delay(1024, 10.0)
        assert d1024 == pytest.approx(d64 * (10 / 6))

    def test_rounds_scale(self):
        assert detection_delay(16, 1.0, rounds=2) == 2 * detection_delay(16, 1.0, rounds=1)

    def test_tree_variant_cheaper_than_all_remote(self):
        topo = ClusterTopology(256, cores_per_node=16, latency_local=1.0, latency_remote=10.0)
        assert detection_delay_tree(topo) < detection_delay(256, 10.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            detection_delay(0, 1.0)
