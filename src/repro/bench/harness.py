"""Shared infrastructure for the figure-regeneration benchmarks.

Workloads (the expensive real-planning part) are cached per configuration
so that the many figures drawing on the same experiment — e.g. Figs. 5, 6,
7 and 9 all use the med-cube PRM run — pay for construction once per
session.  Simulation replays per (strategy, PE count) are cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.parallel_prm import PRMWorkload, build_prm_workload, simulate_prm
from ..core.parallel_rrt import RRTWorkload, build_rrt_workload, simulate_rrt
from ..cspace.space import EuclideanCSpace
from ..geometry import environments

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "prm_workload",
    "rrt_workload",
    "prm_scaling_table",
    "rrt_scaling_table",
    "format_table",
    "PRM_STRATEGIES",
    "RRT_STRATEGIES",
]

#: Strategy sets as the paper's figures label them.
PRM_STRATEGIES = ("none", "repartition", "hybrid", "rand-8")
RRT_STRATEGIES = ("none", "hybrid", "rand-8", "diffusive")

_PRM_CACHE: "dict[tuple, PRMWorkload]" = {}
_RRT_CACHE: "dict[tuple, RRTWorkload]" = {}


def prm_workload(
    env_name: str = "med-cube",
    num_regions: int = 6000,
    samples_per_region: int = 8,
    seed: int = 1,
    **kwargs,
) -> PRMWorkload:
    """Build (or fetch from cache) the PRM workload for an environment."""
    key = ("prm", env_name, num_regions, samples_per_region, seed, tuple(sorted(kwargs.items())))
    if key not in _PRM_CACHE:
        env = environments.by_name(env_name)
        cspace = EuclideanCSpace(env)
        _PRM_CACHE[key] = build_prm_workload(
            cspace,
            num_regions=num_regions,
            samples_per_region=samples_per_region,
            seed=seed,
            **kwargs,
        )
    return _PRM_CACHE[key]


def rrt_workload(
    env_name: str = "mixed",
    num_regions: int = 1024,
    seed: int = 2,
    **kwargs,
) -> RRTWorkload:
    """Build (or fetch from cache) the radial-RRT workload."""
    key = ("rrt", env_name, num_regions, seed, tuple(sorted(kwargs.items())))
    if key not in _RRT_CACHE:
        env = environments.by_name(env_name)
        cspace = EuclideanCSpace(env)
        root = np.zeros(env.dim)
        rng = np.random.default_rng(0)
        while not cspace.valid_single(root):
            root = rng.uniform(-0.3 * 10, 0.3 * 10, env.dim)
        _RRT_CACHE[key] = build_rrt_workload(
            cspace, root, num_regions=num_regions, seed=seed, **kwargs
        )
    return _RRT_CACHE[key]


@dataclass
class ScalingRow:
    """One (PE count, strategy) measurement."""

    num_pes: int
    strategy: str
    total_time: float
    speedup_vs_none: float


def prm_scaling_table(
    workload: PRMWorkload,
    pe_counts: "list[int]",
    strategies: "tuple[str, ...]" = PRM_STRATEGIES,
    tracer: "Tracer | None" = None,
) -> "list[ScalingRow]":
    """Strong-scaling sweep of parallel PRM; first strategy must be the baseline.

    ``tracer`` (optional) observes every replay; the default ``None``
    keeps the sweep at zero instrumentation overhead.
    """
    rows: "list[ScalingRow]" = []
    for P in pe_counts:
        base = None
        for strat in strategies:
            result = simulate_prm(workload, P, strat, tracer=tracer)
            if base is None:
                base = result.total_time
            rows.append(ScalingRow(P, strat, result.total_time, base / result.total_time))
    return rows


def rrt_scaling_table(
    workload: RRTWorkload,
    pe_counts: "list[int]",
    strategies: "tuple[str, ...]" = RRT_STRATEGIES,
    tracer: "Tracer | None" = None,
) -> "list[ScalingRow]":
    """RRT twin of :func:`prm_scaling_table`: one row per (PE count,
    strategy) pair, with speedups relative to the first strategy."""
    rows: "list[ScalingRow]" = []
    for P in pe_counts:
        base = None
        for strat in strategies:
            result = simulate_rrt(workload, P, strat, tracer=tracer)
            if base is None:
                base = result.total_time
            rows.append(ScalingRow(P, strat, result.total_time, base / result.total_time))
    return rows


def format_table(headers: "list[str]", rows: "list[list]") -> str:
    """Plain-text table, aligned columns — the benches' printed output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in str_rows)
    return "\n".join(lines)
