"""Fig. 8: PRM across med-cube / small-cube / free environments."""

from repro.bench import fig8_prm_environments


def _speedups(rows, strategy):
    return {r.num_pes: r.speedup_vs_none for r in rows if r.strategy == strategy}


def test_fig8_prm_environments(once):
    out = once(fig8_prm_environments)
    med = _speedups(out["med-cube"], "repartition")
    small = _speedups(out["small-cube"], "repartition")
    free = _speedups(out["free"], "repartition")
    for P in med:
        # Benefit ordering follows the amount of imbalance ...
        assert med[P] > 1.3
        assert small[P] > 1.05
        # ... and the free environment shows no significant overhead.
        assert free[P] > 0.85
    # Work stealing also helps in the imbalanced environments.
    for name in ("hybrid", "rand-8"):
        ws = _speedups(out["med-cube"], name)
        assert all(s > 1.15 for s in ws.values()), name
