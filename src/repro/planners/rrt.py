"""Sequential Rapidly-exploring Random Tree (LaValle & Kuffner, 2001).

Also the regional planner of the uniform *radial* subdivision parallel
RRT (line 11 of Algorithm 2): the tree can be constrained to a region
(a predicate over configurations) and biased toward a target direction,
matching the paper's conical regions whose growth is "biased toward the
region candidate defined by the random ray".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..knn.brute import BruteForceNN
from .roadmap import Roadmap
from .stats import PlannerStats

__all__ = ["RRT", "RRTResult"]


@dataclass
class RRTResult:
    """Tree (as a roadmap plus parent pointers) and the work ledger."""

    tree: Roadmap
    parents: "dict[int, int]"
    root_id: int
    stats: PlannerStats

    def path_to_root(self, vid: int) -> "list[int]":
        path = [vid]
        while path[-1] != self.root_id:
            path.append(self.parents[path[-1]])
        return path


class RRT:
    """Sequential RRT with optional region constraint and growth bias.

    Parameters
    ----------
    cspace:
        Configuration space.
    step_size:
        Maximum extension length ``Δq``.
    local_planner:
        Validator for each extension segment.
    goal_bias:
        Probability of sampling the bias target instead of uniformly.
    nn_factory:
        ``dim -> NeighborFinder``.
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        step_size: float = 0.5,
        local_planner=None,
        goal_bias: float = 0.05,
        nn_factory=None,
    ):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal_bias must be in [0, 1]")
        self.cspace = cspace
        self.step_size = step_size
        self.local_planner = local_planner or StraightLinePlanner(resolution=0.25)
        self.goal_bias = goal_bias
        self.nn_factory = nn_factory or BruteForceNN

    def grow(
        self,
        root: np.ndarray,
        n_nodes: int,
        rng: np.random.Generator,
        bias_target: np.ndarray | None = None,
        region_predicate: "Callable[[np.ndarray], bool] | None" = None,
        max_iterations: int | None = None,
        tree: Roadmap | None = None,
        parents: "dict[int, int] | None" = None,
        root_id: int | None = None,
        id_base: int = 0,
        goal: np.ndarray | None = None,
        goal_tolerance: float = 0.0,
    ) -> RRTResult:
        """Grow a tree of up to ``n_nodes`` nodes rooted at ``root``.

        ``region_predicate`` restricts accepted nodes to a region (the
        radial subdivision cones); ``bias_target`` is the configuration
        toward which ``goal_bias`` of the samples are drawn.  When ``goal``
        is given, growth stops as soon as a node lands within
        ``goal_tolerance`` of it.
        """
        stats = PlannerStats()
        root = np.asarray(root, dtype=float)
        if tree is None:
            tree = Roadmap(self.cspace.dim)
            if not self.cspace.valid_single(root):
                raise ValueError("RRT root configuration is invalid")
            stats.sample_attempts += 1
            root_id = tree.add_vertex(root, id_base)
            parents = {root_id: root_id}
        else:
            if parents is None or root_id is None:
                raise ValueError("extending an existing tree requires parents and root_id")

        nn = self.nn_factory(self.cspace.dim)
        ids, cfgs = tree.configs_array()
        nn.add_batch(ids, cfgs)
        next_local = tree.num_vertices

        max_iterations = max_iterations if max_iterations is not None else 20 * n_nodes
        added = 0
        goal_reached: int | None = None
        for _ in range(max_iterations):
            if added >= n_nodes or goal_reached is not None:
                break
            # -- sample q_rand ------------------------------------------------
            if bias_target is not None and rng.random() < self.goal_bias:
                q_rand = np.asarray(bias_target, dtype=float)
            elif goal is not None and rng.random() < self.goal_bias:
                q_rand = np.asarray(goal, dtype=float)
            else:
                q_rand = self.cspace.sample(rng)
            # -- find q_near ---------------------------------------------------
            stats.nn_queries += 1
            near = nn.knn(q_rand, 1)
            if not near:
                break
            near_id, dist = near[0]
            q_near = tree.config(near_id)
            if dist == 0.0:
                continue
            # -- extend toward q_rand by at most step_size --------------------
            t = min(self.step_size / dist, 1.0)
            q_new = self.cspace.interpolate(q_near, q_rand, t)
            stats.sample_attempts += 1
            if not self.cspace.valid_single(q_new):
                continue
            if region_predicate is not None and not region_predicate(q_new):
                continue
            result = self.local_planner(self.cspace, q_near, q_new)
            stats.lp_calls += 1
            stats.lp_checks += result.checks
            if not result.valid:
                continue
            stats.lp_successes += 1
            vid = id_base + next_local
            next_local += 1
            tree.add_vertex(q_new, vid)
            tree.add_edge(near_id, vid, result.length)
            stats.edges_added += 1
            parents[vid] = near_id
            nn.add(vid, q_new)
            added += 1
            if goal is not None and float(self.cspace.distance(q_new, goal)) <= goal_tolerance:
                goal_reached = vid
        stats.nn_distance_evals += nn.stats.distance_evals
        stats.samples_accepted += added
        return RRTResult(tree, parents, root_id, stats)
