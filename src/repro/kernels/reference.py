"""Reference kernel backend: today's float64 NumPy hot paths, bit-exact.

These are the *exact* expressions that previously lived inline in
``Environment.points_in_collision`` / ``Environment._segments_hit`` and
``BruteForceNN._dist_block`` — moved here unchanged so the backend
boundary introduces zero numerical drift.  Every bit-exact parity test in
the suite (sequential-vs-batched PRM/RRT replay, canonical k-NN
cross-checks) runs through this backend and must stay green with zero
tolerance changes; fast backends are instead held to the statistical
gates described in :mod:`repro.kernels.base`.

The per-primitive tests are exposed as array-level functions
(``points_hit_boxes`` and friends) so the ``bvh`` backend can run the
*identical* expressions over the primitive subsets its tree narrows each
query to — that sharing is what makes the BVH backend bit-exact rather
than merely statistically equivalent (see ``repro.kernels.bvh_backend``).
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .data import EnvKernelData
from .select import select_canonical_rows

__all__ = [
    "ReferenceKernels",
    "pairwise_accumulate_exact",
    "points_hit_boxes",
    "points_hit_spheres",
    "segments_hit_boxes",
    "segments_hit_spheres",
]


def pairwise_accumulate_exact(stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
    """Write ``||stored[j] - queries[i]||`` into ``out[i, j]`` using
    per-dimension 2-D accumulation.

    np.add.reduce over the last axis sums left to right, so
    ``s = dx0²; s += dx1²; ...; sqrt(s)`` produces bit-identical values to
    ``np.linalg.norm(diff, axis=2)`` (and to the per-query scalar path)
    while never materialising the ``(m, n, d)`` temporary — about a third
    of the memory traffic on the O(n²) floor of roadmap construction.
    """
    n = stored.shape[0]
    if n == 0:
        return
    m, dim = queries.shape
    tmp = np.empty((m, n))
    s = np.empty((m, n))
    for j in range(dim):
        np.subtract(stored[None, :, j], queries[:, j, None], out=tmp)
        np.multiply(tmp, tmp, out=tmp)
        if j == 0:
            s, tmp = tmp, s
        else:
            np.add(s, tmp, out=s)
    np.sqrt(s, out=out)


def points_hit_boxes(box_lo: np.ndarray, box_hi: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """``(n,)`` bool: point is inside (inclusively) some box — the exact
    containment expression of the historical ``points_in_collision``."""
    return np.all(
        (pts[:, None, :] >= box_lo[None, :, :]) & (pts[:, None, :] <= box_hi[None, :, :]),
        axis=2,
    ).any(axis=1)


def points_hit_spheres(sph_center: np.ndarray, sph_radius: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """``(n,)`` bool: point is inside (inclusively) some sphere."""
    diff = pts[:, None, :] - sph_center[None, :, :]
    dist2 = np.einsum("imj,imj->im", diff, diff)
    return (dist2 <= sph_radius[None, :] ** 2).any(axis=1)


def segments_hit_boxes(
    obs_lo: np.ndarray, obs_hi: np.ndarray, p: np.ndarray, q: np.ndarray
) -> np.ndarray:
    """Slab test of n segments against m box obstacles -> (n,) bool.

    Verbatim the historical ``Environment._segments_hit`` body.
    """
    d = q - p  # (n, dim)
    m = obs_lo.shape[0]
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(d != 0.0, 1.0 / d, np.inf)  # (n, dim)
    # (n, m, dim)
    t_lo = (obs_lo[None, :, :] - p[:, None, :]) * inv[:, None, :]
    t_hi = (obs_hi[None, :, :] - p[:, None, :]) * inv[:, None, :]
    t_near = np.minimum(t_lo, t_hi)
    t_far = np.maximum(t_lo, t_hi)
    parallel = (d == 0.0)[:, None, :] & np.ones((1, m, 1), dtype=bool)
    inside_slab = (p[:, None, :] >= obs_lo[None, :, :]) & (p[:, None, :] <= obs_hi[None, :, :])
    miss_parallel = parallel & ~inside_slab
    t_near = np.where(parallel, -np.inf, t_near)
    t_far = np.where(parallel, np.inf, t_far)
    t0 = np.maximum(t_near.max(axis=2), 0.0)  # (n, m)
    t1 = np.minimum(t_far.min(axis=2), 1.0)
    hit = (t0 <= t1) & ~miss_parallel.any(axis=2)
    return hit.any(axis=1)


def segments_hit_spheres(
    sph_center: np.ndarray, sph_radius: np.ndarray, p: np.ndarray, q: np.ndarray
) -> np.ndarray:
    """Exact segment-vs-sphere test: closest point on the segment to each
    center, clamped to the parameter range, against the radius."""
    c, r = sph_center, sph_radius
    d = q - p  # (n, dim)
    dd = np.einsum("ij,ij->i", d, d)  # (n,)
    f = p[:, None, :] - c[None, :, :]  # (n, m, dim)
    num = -np.einsum("imj,ij->im", f, d)  # (n, m)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(dd[:, None] > 0.0, num / dd[:, None], 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = f + t[:, :, None] * d[:, None, :]
    dist2 = np.einsum("imj,imj->im", closest, closest)
    return (dist2 <= r[None, :] ** 2).any(axis=1)


class ReferenceKernels(KernelBackend):
    """Bit-exact float64 backend — the default everywhere."""

    name = "reference"
    dtype = np.float64

    def points_free(self, data: EnvKernelData, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        free = np.all((pts >= data.bounds_lo) & (pts <= data.bounds_hi), axis=-1)
        if data.num_boxes:
            free = free & ~points_hit_boxes(data.box_lo, data.box_hi, pts)
        if data.num_spheres:
            free = free & ~points_hit_spheres(data.sph_center, data.sph_radius, pts)
        return free

    def segments_free(self, data: EnvKernelData, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        p = np.atleast_2d(np.asarray(p, dtype=float))
        q = np.atleast_2d(np.asarray(q, dtype=float))
        free = np.all((p >= data.bounds_lo) & (p <= data.bounds_hi), axis=-1) & np.all(
            (q >= data.bounds_lo) & (q <= data.bounds_hi), axis=-1
        )
        if data.num_boxes:
            free = free & ~segments_hit_boxes(data.box_lo, data.box_hi, p, q)
        if data.num_spheres:
            free = free & ~segments_hit_spheres(data.sph_center, data.sph_radius, p, q)
        return free

    def pairwise_accumulate(self, stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        pairwise_accumulate_exact(stored, queries, out)

    def knn_block_min(
        self, stored: np.ndarray, queries: np.ndarray, k: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        stored = np.atleast_2d(np.asarray(stored, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m, n = queries.shape[0], stored.shape[0]
        kk = max(k, 0)
        idx = np.full((m, kk), -1, dtype=np.int64)
        dist = np.full((m, kk), np.inf)
        if n == 0 or kk == 0 or m == 0:
            return idx, dist
        D = np.empty((m, n))
        self.pairwise_accumulate(stored, queries, D)
        k_eff = min(kk, n)
        sel, dvals = select_canonical_rows(D, k_eff)
        for i, (srow, drow) in enumerate(zip(sel, dvals)):
            idx[i, :k_eff] = srow
            dist[i, :k_eff] = drow
        return idx, dist
