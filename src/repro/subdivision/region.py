"""Regions and the region graph.

The region graph is the central coordination structure of the paper's
parallel algorithms: vertices are regions of C-space (the *quanta of
work*, Sec. III), edges encode region adjacency (used by the
inter-region connection phase), vertex weights estimate region work (used
by repartitioning), and the vertex->processor assignment is the
distribution that the load balancing techniques manipulate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Region", "RegionGraph"]


@dataclass
class Region:
    """A region of C-space; concrete geometry lives in the subclasses
    (:class:`~repro.subdivision.uniform.BoxRegion`,
    :class:`~repro.subdivision.radial.ConeRegion`)."""

    id: int

    def contains(self, config: np.ndarray) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class RegionGraph:
    """Undirected graph over regions with weights and a PE assignment.

    The graph is deliberately independent of the distributed runtime: the
    same object is consumed by the partitioners (as input data), by the
    simulator (as the task list), and by the metrics module (to evaluate
    edge cuts before/after repartitioning).
    """

    def __init__(self) -> None:
        self._regions: dict[int, Region] = {}
        self._adj: dict[int, set[int]] = {}
        self.weights: dict[int, float] = {}
        #: region id -> processor id; filled by a partitioner.
        self.assignment: dict[int, int] = {}

    # -- construction ------------------------------------------------------
    def add_region(self, region: Region, weight: float = 1.0) -> None:
        if region.id in self._regions:
            raise KeyError(f"region {region.id} already present")
        self._regions[region.id] = region
        self._adj[region.id] = set()
        self.weights[region.id] = float(weight)

    def add_adjacency(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("a region is not adjacent to itself")
        if a not in self._regions or b not in self._regions:
            raise KeyError(f"adjacency ({a},{b}) references missing region")
        self._adj[a].add(b)
        self._adj[b].add(a)

    # -- access --------------------------------------------------------------
    def region(self, rid: int) -> Region:
        return self._regions[rid]

    def regions(self):
        return self._regions.values()

    def region_ids(self) -> "list[int]":
        return sorted(self._regions.keys())

    def neighbors(self, rid: int) -> "set[int]":
        return self._adj[rid]

    @property
    def num_regions(self) -> int:
        return len(self._regions)

    @property
    def num_adjacencies(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    def edges(self):
        """Iterate undirected adjacencies once as (a, b) with a < b."""
        for a, nbrs in self._adj.items():
            for b in nbrs:
                if a < b:
                    yield a, b

    # -- weights ---------------------------------------------------------------
    def set_weight(self, rid: int, weight: float) -> None:
        if rid not in self._regions:
            raise KeyError(f"region {rid} missing")
        if weight < 0:
            raise ValueError("region weight must be non-negative")
        self.weights[rid] = float(weight)

    def total_weight(self) -> float:
        return float(sum(self.weights.values()))

    # -- assignment --------------------------------------------------------------
    def assign(self, rid: int, pe: int) -> None:
        if rid not in self._regions:
            raise KeyError(f"region {rid} missing")
        self.assignment[rid] = pe

    def set_assignment(self, assignment: "dict[int, int]") -> None:
        missing = set(self._regions) - set(assignment)
        if missing:
            raise ValueError(f"assignment misses regions {sorted(missing)[:5]}...")
        self.assignment = dict(assignment)

    def regions_of_pe(self, pe: int) -> "list[int]":
        return sorted(r for r, p in self.assignment.items() if p == pe)

    def pe_loads(self, num_pes: int) -> np.ndarray:
        """Per-PE total region weight under the current assignment."""
        loads = np.zeros(num_pes)
        for rid, pe in self.assignment.items():
            loads[pe] += self.weights[rid]
        return loads

    def edge_cut(self) -> int:
        """Number of adjacencies whose endpoints live on different PEs."""
        if not self.assignment:
            return 0
        return sum(1 for a, b in self.edges() if self.assignment[a] != self.assignment[b])

    def find_region_of(self, config: np.ndarray) -> int | None:
        """Linear scan for the region containing ``config`` (test helper;
        the subdividers provide O(1) locators)."""
        for rid, region in self._regions.items():
            if region.contains(config):
                return rid
        return None
