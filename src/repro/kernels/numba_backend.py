"""Optional numba kernel backend: nopython float64 loops with early exit.

Importing this module raises ``ImportError`` when numba is not installed;
the registry in :mod:`repro.kernels` catches that and simply omits the
backend, so environments without numba degrade to ``reference``/``fast32``
silently (asserted by the registry tests and the no-numba CI leg).

Where the vectorised backends must evaluate every obstacle for every
query, these scalar loops break out of the obstacle scan at the first
hit — the win on cluttered scenes where most queries collide early.
Arithmetic is float64 in source order, but compiled reductions may fuse
differently from NumPy's pairwise summation, so this backend is held to
the *statistical* equivalence gates, not bit-exactness.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange  # noqa: F401  (ImportError => backend absent)

from .base import KernelBackend
from .data import EnvKernelData
from .select import select_canonical_rows

__all__ = ["NumbaKernels"]


@njit(cache=True)
def _points_free_impl(pts, blo, bhi, box_lo, box_hi, sph_c, sph_r2):  # pragma: no cover
    n, dim = pts.shape
    nb = box_lo.shape[0]
    ns = sph_c.shape[0]
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        free = True
        for j in range(dim):
            if pts[i, j] < blo[j] or pts[i, j] > bhi[j]:
                free = False
                break
        if free:
            for b in range(nb):
                inside = True
                for j in range(dim):
                    if pts[i, j] < box_lo[b, j] or pts[i, j] > box_hi[b, j]:
                        inside = False
                        break
                if inside:
                    free = False
                    break
        if free:
            for s in range(ns):
                d2 = 0.0
                for j in range(dim):
                    diff = pts[i, j] - sph_c[s, j]
                    d2 += diff * diff
                if d2 <= sph_r2[s]:
                    free = False
                    break
        out[i] = free
    return out


@njit(cache=True)
def _segments_free_impl(p, q, blo, bhi, box_lo, box_hi, sph_c, sph_r2):  # pragma: no cover
    n, dim = p.shape
    nb = box_lo.shape[0]
    ns = sph_c.shape[0]
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        free = True
        for j in range(dim):
            if (
                p[i, j] < blo[j]
                or p[i, j] > bhi[j]
                or q[i, j] < blo[j]
                or q[i, j] > bhi[j]
            ):
                free = False
                break
        if free:
            for b in range(nb):
                t0 = 0.0
                t1 = 1.0
                miss = False
                for j in range(dim):
                    d = q[i, j] - p[i, j]
                    if d == 0.0:
                        if p[i, j] < box_lo[b, j] or p[i, j] > box_hi[b, j]:
                            miss = True
                            break
                    else:
                        ta = (box_lo[b, j] - p[i, j]) / d
                        tb = (box_hi[b, j] - p[i, j]) / d
                        if ta > tb:
                            ta, tb = tb, ta
                        if ta > t0:
                            t0 = ta
                        if tb < t1:
                            t1 = tb
                        if t0 > t1:
                            miss = True
                            break
                if not miss:
                    free = False
                    break
        if free and ns:
            dd = 0.0
            for j in range(dim):
                d = q[i, j] - p[i, j]
                dd += d * d
            for s in range(ns):
                num = 0.0
                for j in range(dim):
                    num += (sph_c[s, j] - p[i, j]) * (q[i, j] - p[i, j])
                t = 0.0 if dd == 0.0 else num / dd
                if t < 0.0:
                    t = 0.0
                elif t > 1.0:
                    t = 1.0
                d2 = 0.0
                for j in range(dim):
                    diff = p[i, j] + t * (q[i, j] - p[i, j]) - sph_c[s, j]
                    d2 += diff * diff
                if d2 <= sph_r2[s]:
                    free = False
                    break
        out[i] = free
    return out


@njit(cache=True)
def _pairwise_impl(stored, queries, out):  # pragma: no cover
    n, dim = stored.shape
    m = queries.shape[0]
    for i in range(m):
        for jj in range(n):
            s = 0.0
            for j in range(dim):
                diff = stored[jj, j] - queries[i, j]
                s += diff * diff
            out[i, jj] = np.sqrt(s)


class NumbaKernels(KernelBackend):
    """Compiled scalar loops with first-hit early exit."""

    name = "numba"
    dtype = np.float64

    def points_free(self, data: EnvKernelData, points: np.ndarray) -> np.ndarray:
        pts = np.ascontiguousarray(np.atleast_2d(np.asarray(points, dtype=float)))
        return _points_free_impl(
            pts, data.bounds_lo, data.bounds_hi, data.box_lo, data.box_hi,
            data.sph_center, data.sph_radius**2,
        )

    def segments_free(self, data: EnvKernelData, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        p = np.ascontiguousarray(np.atleast_2d(np.asarray(p, dtype=float)))
        q = np.ascontiguousarray(np.atleast_2d(np.asarray(q, dtype=float)))
        return _segments_free_impl(
            p, q, data.bounds_lo, data.bounds_hi, data.box_lo, data.box_hi,
            data.sph_center, data.sph_radius**2,
        )

    def pairwise_accumulate(self, stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        if stored.shape[0] == 0:
            return
        _pairwise_impl(
            np.ascontiguousarray(np.asarray(stored, dtype=float)),
            np.ascontiguousarray(np.asarray(queries, dtype=float)),
            out,
        )

    def knn_block_min(
        self, stored: np.ndarray, queries: np.ndarray, k: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        stored = np.atleast_2d(np.asarray(stored, dtype=float))
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m, n = queries.shape[0], stored.shape[0]
        kk = max(k, 0)
        idx = np.full((m, kk), -1, dtype=np.int64)
        dist = np.full((m, kk), np.inf)
        if n == 0 or kk == 0 or m == 0:
            return idx, dist
        D = np.empty((m, n))
        self.pairwise_accumulate(stored, queries, D)
        k_eff = min(kk, n)
        sel, dvals = select_canonical_rows(D, k_eff)
        for i, (srow, drow) in enumerate(zip(sel, dvals)):
            idx[i, :k_eff] = srow
            dist[i, :k_eff] = drow
        return idx, dist
