"""Tests for uniform grid subdivision and the region graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB
from repro.subdivision import RegionGraph, UniformSubdivision, grid_shape_for
from repro.subdivision.uniform import BoxRegion


class TestGridShape:
    def test_reaches_target(self):
        shape = grid_shape_for(100, 2, np.array([1.0, 1.0]))
        assert np.prod(shape) >= 100

    def test_proportional_to_extents(self):
        shape = grid_shape_for(64, 2, np.array([4.0, 1.0]))
        assert shape[0] > shape[1]

    def test_single_region(self):
        assert grid_shape_for(1, 3, np.ones(3)) == (1, 1, 1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            grid_shape_for(0, 2, np.ones(2))
        with pytest.raises(ValueError):
            grid_shape_for(4, 2, np.array([1.0, -1.0]))


class TestUniformSubdivision:
    @pytest.fixture
    def sub(self):
        return UniformSubdivision(AABB([-2, -2], [2, 2]), 16, overlap=0.2)

    def test_region_count(self, sub):
        assert sub.num_regions == 16
        assert sub.shape == (4, 4)

    def test_regions_tile_the_space(self, sub):
        total = sum(sub.region_of(r).volume() for r in sub.graph.region_ids())
        assert total == pytest.approx(16.0)

    def test_cores_disjoint(self, sub):
        regions = [sub.region_of(r) for r in sub.graph.region_ids()]
        for i in range(len(regions)):
            for j in range(i + 1, len(regions)):
                assert regions[i].bounds.intersection_volume(regions[j].bounds) == 0.0

    def test_sample_bounds_include_core(self, sub):
        for rid in sub.graph.region_ids():
            region = sub.region_of(rid)
            assert region.sample_bounds.intersection_volume(region.bounds) == pytest.approx(
                region.bounds.volume()
            )

    def test_sample_bounds_clipped_to_workspace(self, sub):
        for rid in sub.graph.region_ids():
            sb = sub.region_of(rid).sample_bounds
            assert (sb.lo >= sub.bounds.lo - 1e-12).all()
            assert (sb.hi <= sub.bounds.hi + 1e-12).all()

    def test_face_adjacency_count(self, sub):
        # 4x4 grid: 2*4*3 = 24 face adjacencies.
        assert sub.graph.num_adjacencies == 24

    def test_diagonal_adjacency(self):
        sub = UniformSubdivision(AABB([0, 0], [2, 2]), 4, include_diagonal=True)
        assert sub.graph.num_adjacencies == 6  # 4 faces + 2 diagonals

    def test_locate_matches_contains(self, sub, rng):
        pts = rng.uniform(-2, 2, size=(200, 2))
        for p in pts:
            rid = sub.locate(p)
            assert sub.region_of(rid).contains(p)

    def test_locate_batch_matches_scalar(self, sub, rng):
        pts = rng.uniform(-2.5, 2.5, size=(100, 2))
        batch = sub.locate_batch(pts)
        scalar = [sub.locate(p) for p in pts]
        assert batch.tolist() == scalar

    def test_locate_clamps_outside_points(self, sub):
        rid = sub.locate(np.array([99.0, 99.0]))
        assert rid == sub.num_regions - 1

    def test_3d_grid(self):
        sub = UniformSubdivision(AABB([0, 0, 0], [1, 1, 1]), 27)
        assert sub.shape == (3, 3, 3)
        assert sub.graph.num_adjacencies == 3 * 9 * 2

    def test_overlap_validation(self):
        with pytest.raises(ValueError):
            UniformSubdivision(AABB([0, 0], [1, 1]), 4, overlap=-0.1)


class TestRegionGraph:
    def test_duplicate_region_rejected(self):
        g = RegionGraph()
        g.add_region(BoxRegion(id=0, bounds=AABB([0, 0], [1, 1]), sample_bounds=AABB([0, 0], [1, 1])))
        with pytest.raises(KeyError):
            g.add_region(BoxRegion(id=0, bounds=AABB([0, 0], [1, 1]), sample_bounds=AABB([0, 0], [1, 1])))

    def test_self_adjacency_rejected(self):
        g = RegionGraph()
        g.add_region(BoxRegion(id=0, bounds=AABB([0, 0], [1, 1]), sample_bounds=AABB([0, 0], [1, 1])))
        with pytest.raises(ValueError):
            g.add_adjacency(0, 0)

    def test_weights_and_loads(self):
        g = RegionGraph()
        for i in range(4):
            g.add_region(
                BoxRegion(id=i, bounds=AABB([i, 0], [i + 1, 1]), sample_bounds=AABB([i, 0], [i + 1, 1])),
                weight=float(i),
            )
        g.set_assignment({0: 0, 1: 0, 2: 1, 3: 1})
        loads = g.pe_loads(2)
        assert loads.tolist() == [1.0, 5.0]

    def test_negative_weight_rejected(self):
        g = RegionGraph()
        g.add_region(BoxRegion(id=0, bounds=AABB([0, 0], [1, 1]), sample_bounds=AABB([0, 0], [1, 1])))
        with pytest.raises(ValueError):
            g.set_weight(0, -1.0)

    def test_incomplete_assignment_rejected(self):
        g = RegionGraph()
        for i in range(2):
            g.add_region(BoxRegion(id=i, bounds=AABB([i, 0], [i + 1, 1]), sample_bounds=AABB([i, 0], [i + 1, 1])))
        with pytest.raises(ValueError):
            g.set_assignment({0: 0})

    def test_edge_cut(self):
        g = RegionGraph()
        for i in range(3):
            g.add_region(BoxRegion(id=i, bounds=AABB([i, 0], [i + 1, 1]), sample_bounds=AABB([i, 0], [i + 1, 1])))
        g.add_adjacency(0, 1)
        g.add_adjacency(1, 2)
        g.set_assignment({0: 0, 1: 0, 2: 1})
        assert g.edge_cut() == 1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(2, 64), seed=st.integers(0, 1000))
def test_every_point_in_exactly_one_core_region(n, seed):
    """Property: grid cores partition the space (up to boundaries)."""
    sub = UniformSubdivision(AABB([-1, -1], [1, 1]), n)
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-1, 1, size=(50, 2))
    for p in pts:
        owners = [rid for rid in sub.graph.region_ids() if sub.region_of(rid).contains(p)]
        assert sub.locate(p) in owners
        assert len(owners) in (1, 2, 4)  # >1 only exactly on boundaries
