"""Grid-hash nearest neighbours.

Buckets points into uniform cells and searches outward ring by ring.
Best for densely, uniformly sampled spaces with radius-bounded queries —
the regime of regional roadmap connection where candidate neighbours are
never farther than the region diameter.

Like the kd-tree backend, distances accumulate per-axis squared
differences left to right in Python floats (bit-identical to NumPy's
row-wise norm for small ``dim``) and ties are broken canonically by
``(distance, insertion order)``, so results are interchangeable with
:class:`~repro.knn.brute.BruteForceNN`.
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict

import numpy as np

from .base import NeighborFinder

__all__ = ["GridNN"]


class GridNN(NeighborFinder):
    """Uniform-cell spatial hash over ``dim``-dimensional points."""

    def __init__(self, dim: int, cell_size: float, kernels=None):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.dim = dim
        self.cell_size = cell_size
        # Accepted for factory-signature uniformity; the cell-walk scalar
        # path is always exact float64, so the backend is unused.
        self.kernels = kernels
        self._cells: "dict[tuple[int, ...], list[int]]" = defaultdict(list)
        self._points: "list[tuple[float, ...]]" = []
        self._ids: list[int] = []

    def _key(self, point: np.ndarray) -> "tuple[int, ...]":
        return tuple(np.floor(np.asarray(point, dtype=float) / self.cell_size).astype(int))

    def add(self, point_id: int, point: np.ndarray) -> None:
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {pt.shape}")
        idx = len(self._points)
        self._points.append(tuple(pt.tolist()))
        self._ids.append(point_id)
        self._cells[self._key(pt)].append(idx)

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        for i, p in zip(ids, points):
            self.add(int(i), p)

    def _candidates_in_ring(self, center: "tuple[int, ...]", ring: int):
        """Indices of stored points in cells at Chebyshev distance == ring."""
        if ring == 0:
            yield from self._cells.get(center, ())
            return
        for offset in itertools.product(range(-ring, ring + 1), repeat=self.dim):
            if max(abs(o) for o in offset) != ring:
                continue
            key = tuple(c + o for c, o in zip(center, offset))
            yield from self._cells.get(key, ())

    def _dist(self, idx: int, q: "tuple[float, ...]") -> float:
        self.stats.distance_evals += 1
        s = 0.0
        for a, b in zip(self._points[idx], q):
            t = a - b
            s += t * t
        return math.sqrt(s)

    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if not self._points or k <= 0:
            return []
        q = tuple(np.asarray(query, dtype=float).tolist())
        self.stats.queries += 1
        center = self._key(np.asarray(query, dtype=float))
        best: "list[tuple[float, int, int]]" = []  # (distance, seq, id)
        ring = 0
        # Expand rings until the k-th best distance is provably inside the
        # searched shell: every unseen point past ring r is at least
        # r * cell_size away, so stopping requires kth strictly below that
        # bound (a tied point at exactly kth could still lurk one ring out,
        # and canonical tie-breaking must see it).
        max_ring = self._max_ring(center)
        while ring <= max_ring:
            for idx in self._candidates_in_ring(center, ring):
                pid = self._ids[idx]
                if pid == exclude:
                    continue
                best.append((self._dist(idx, q), idx, pid))
            if len(best) >= k:
                best.sort()
                kth = best[min(k, len(best)) - 1][0]
                if kth < ring * self.cell_size:
                    break
            ring += 1
        best.sort()
        return [(pid, d) for d, _seq, pid in best[:k]]

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if not self._points:
            return []
        q = tuple(np.asarray(query, dtype=float).tolist())
        self.stats.queries += 1
        center = self._key(np.asarray(query, dtype=float))
        reach = int(np.ceil(r / self.cell_size)) + 1
        found: "list[tuple[float, int, int]]" = []
        for ring in range(reach + 1):
            for idx in self._candidates_in_ring(center, ring):
                pid = self._ids[idx]
                if pid == exclude:
                    continue
                d = self._dist(idx, q)
                if d <= r:
                    found.append((d, idx, pid))
        found.sort()
        return [(pid, d) for d, _seq, pid in found]

    def _max_ring(self, center: "tuple[int, ...]") -> int:
        """Chebyshev distance from the query's cell to the farthest
        occupied cell — the last ring that can contain a stored point."""
        if not self._cells:
            return 0
        keys = np.array(list(self._cells.keys()))
        return int(np.max(np.abs(keys - np.asarray(center)))) + 1

    def __len__(self) -> int:
        return len(self._points)
