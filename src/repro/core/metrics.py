"""Load-imbalance metrics used throughout the evaluation.

The paper's primary measure is the coefficient of variation of per-PE
load (σ/µ, Sec. IV-B); improvement percentages compare the most-loaded
processor before and after balancing (Fig. 4b).

This module also defines the :class:`PhaseBreakdown` protocol: a shared,
canonically named view of per-phase timings that both planners' phase
dataclasses (``PhaseTimes`` and ``RRTPhaseTimes``) implement, so the obs
summariser and the bench figures consume either uniformly.  The canonical
vocabulary matches the trace span names in :mod:`repro.obs.events`:

========== ============================= ============================
phase      parallel PRM                  radial RRT
========== ============================= ============================
subdivide  region construction           region construction
generate   node generation               —
weigh      — (sample counts are free)    k-rays free-space probe
repartition  partition install overhead  partition install overhead
construct  node connection (LB'd phase)  branch growth (LB'd phase)
terminate  termination detection         termination detection
connect    region connection             branch connection
========== ============================= ============================
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "coefficient_of_variation",
    "percent_improvement",
    "speedup",
    "max_load_reduction",
    "ideal_loads",
    "PhaseBreakdown",
    "PlannerRunResult",
    "phases_dict",
]


@runtime_checkable
class PhaseBreakdown(Protocol):
    """Per-phase virtual times under the shared canonical phase names."""

    def phase_items(self) -> "list[tuple[str, float]]":
        """Ordered (canonical phase name, virtual seconds) pairs."""
        ...

    @property
    def total(self) -> float: ...


@runtime_checkable
class PlannerRunResult(Protocol):
    """What any planner's simulated run exposes, uniformly.

    ``PRMRunResult`` and ``RRTRunResult`` both satisfy this: ``sim`` is
    the load-balanced phase's simulator output and ``loads`` its per-PE
    virtual work, whatever that phase is called for the planner.
    """

    strategy: str
    num_pes: int

    @property
    def phases(self) -> PhaseBreakdown: ...

    @property
    def sim(self): ...

    @property
    def loads(self) -> np.ndarray: ...

    @property
    def total_time(self) -> float: ...


def phases_dict(phases: PhaseBreakdown) -> "dict[str, float]":
    """Canonical-name -> duration mapping of any phase breakdown."""
    return dict(phases.phase_items())


def emit_phase_spans(tracer, phases: PhaseBreakdown, t0: float = 0.0) -> None:
    """Lay a phase breakdown onto a tracer as back-to-back spans.

    Phases are placed consecutively starting at ``t0`` in
    ``phase_items()`` order, which both planners define as their virtual
    timeline order; zero-duration phases still get a span so a trace
    always reproduces the breakdown field-for-field.
    """
    t = t0
    for name, duration in phases.phase_items():
        tracer.span_at(name, t, t + duration)
        t += duration


def coefficient_of_variation(loads: np.ndarray) -> float:
    """σ/µ of per-PE loads; 0 for a perfectly balanced machine."""
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    mu = loads.mean()
    if mu == 0.0:
        return 0.0
    return float(loads.std() / mu)


def percent_improvement(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after`` (positive = better)."""
    if before == 0.0:
        return 0.0
    return 100.0 * (before - after) / before


def speedup(baseline_time: float, improved_time: float) -> float:
    """How many times faster ``improved_time`` is than ``baseline_time``."""
    if improved_time <= 0.0:
        raise ValueError("improved_time must be positive")
    return baseline_time / improved_time


def max_load_reduction(loads_before: np.ndarray, loads_after: np.ndarray) -> float:
    """Percent reduction of the most-loaded PE — the paper's "potential
    improvement" metric (Fig. 4b measures it for V_free, sample counts and
    runtime)."""
    before = float(np.max(np.asarray(loads_before, dtype=float)))
    after = float(np.max(np.asarray(loads_after, dtype=float)))
    return percent_improvement(before, after)


def ideal_loads(total: float, num_pes: int) -> np.ndarray:
    """The perfectly balanced distribution of ``total`` load (Fig. 5c's
    "Ideal" line)."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    return np.full(num_pes, total / num_pes)
