"""Snapshot cache: frozen roadmaps keyed by canonical workload hash.

Every pre-service caller paid roadmap construction per request.  The
:class:`RoadmapCache` amortises it across requests *and* tenants: the
first request for a :class:`~repro.spec.WorkloadSpec` builds the roadmap
and compiles it into a :class:`~repro.planners.engine.QueryEngine`
(frozen CSR snapshot + reusable NN index); every later request for an
equal workload — same environment, planner parameters and seed, hashed
canonically by :meth:`WorkloadSpec.cache_key` — is served from the warm
snapshot.

Three properties matter under concurrent load:

* **Singleflight construction** — N concurrent misses on one key take a
  per-key construction lock: one thread builds, the other N-1 wait on
  the same flight and share the result (counted as ``coalesced``
  misses).  A failed build propagates its exception to every waiter and
  clears the flight so the next request retries.
* **LRU memory budget** — snapshots are charged their CSR array bytes;
  inserting past ``max_bytes`` evicts least-recently-used entries (the
  newest entry is never evicted, so one oversized workload degrades to
  rebuild-per-miss instead of failing).
* **Observability** — every lookup emits ``EV_CACHE_HIT`` /
  ``EV_CACHE_MISS`` / ``EV_CACHE_EVICT`` through the attached
  :class:`~repro.obs.Tracer` and tallies ``cache_hits`` /
  ``cache_misses`` / ``cache_evictions`` metric counters, so the trace
  summariser's Service table reconstructs hit rates offline.

Cached answers are bit-identical to uncached ones by construction: the
cache stores the *engine*, and :class:`~repro.planners.engine.QueryEngine`
answers are asserted bit-identical to ``RoadmapQuery.solve`` on the same
roadmap (see PR 5's parity suite), so serving from a snapshot can never
change a result — only its latency.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..obs.events import EV_CACHE_EVICT, EV_CACHE_HIT, EV_CACHE_MISS
from ..obs.tracer import active
from ..planners.engine import QueryEngine
from ..spec import WorkloadSpec

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["CacheStats", "RoadmapCache", "snapshot_nbytes", "build_engine"]


def snapshot_nbytes(engine: QueryEngine) -> int:
    """Memory charge of a cached engine: its frozen snapshot's CSR arrays.

    The Python-list mirrors and the NN index are proportional to the same
    arrays, so array bytes are the right relative measure for an LRU
    budget even though the absolute resident size is a small multiple.
    """
    fz = engine.frozen
    return int(
        fz.configs.nbytes
        + fz.ids.nbytes
        + fz.indptr.nbytes
        + fz.indices.nbytes
        + fz.weights.nbytes
    )


def build_engine(
    spec: WorkloadSpec, k: int = 8, nn_factory=None, local_planner=None, kernels=None
) -> QueryEngine:
    """Default cache builder: construct the workload's roadmap exactly the
    way :func:`repro.api.plan` does, then freeze it into an engine.

    Bit-parity anchor: a direct ``RoadmapQuery.solve`` against
    ``plan(spec).roadmap`` and a served query through this engine return
    identical paths, because both start from the same roadmap bytes.
    ``kernels`` (a :mod:`repro.kernels` backend name or instance) routes
    both the build and the engine's serving paths through that backend —
    the service-level hookup for ``ExecutionPolicy.kernel_backend``.
    """
    from ..api import _default_root  # local import: api imports spec
    from ..core.parallel_prm import build_prm_workload
    from ..core.parallel_rrt import build_rrt_workload

    spec.validate()
    cspace = spec.resolve_cspace()
    if kernels is not None:
        cspace.set_kernel_backend(kernels)
    if spec.planner == "prm":
        workload = build_prm_workload(
            cspace,
            num_regions=spec.num_regions,
            samples_per_region=spec.samples_per_region,
            seed=spec.seed,
            **spec.options,
        )
    else:
        root = _default_root(cspace, spec.seed)
        workload = build_rrt_workload(
            cspace,
            root,
            num_regions=spec.num_regions,
            nodes_per_region=spec.nodes_per_region,
            seed=spec.seed,
            **spec.options,
        )
    return QueryEngine(
        cspace,
        workload.roadmap,
        k=k,
        nn_factory=nn_factory,
        local_planner=local_planner,
        kernels=kernels,
    )


@dataclass
class CacheStats:
    """Point-in-time counters of one :class:`RoadmapCache`."""

    hits: int = 0
    misses: int = 0
    #: builds actually executed (<= misses: coalesced misses share one).
    builds: int = 0
    #: misses that waited on another thread's in-flight build.
    coalesced: int = 0
    evictions: int = 0
    entries: int = 0
    current_bytes: int = 0
    #: wall seconds spent inside builder calls (leader threads only).
    build_time: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 with no traffic)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class _Flight:
    """One in-flight singleflight build."""

    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value: "QueryEngine | None" = None
        self.error: "BaseException | None" = None


class _Entry:
    """One cached engine plus its byte charge."""

    __slots__ = ("engine", "nbytes")

    def __init__(self, engine: QueryEngine, nbytes: int):
        self.engine = engine
        self.nbytes = nbytes


class RoadmapCache:
    """LRU cache of frozen-roadmap query engines with singleflight builds.

    Parameters
    ----------
    max_bytes:
        Memory budget over snapshot CSR bytes (see
        :func:`snapshot_nbytes`).  ``None`` means unbounded.
    builder:
        ``WorkloadSpec -> QueryEngine``; defaults to
        :func:`build_engine` with ``k`` / ``nn_factory`` applied.
    k, nn_factory, local_planner:
        Engine construction knobs forwarded to the default builder
        (ignored when an explicit ``builder`` is given).
    enabled:
        ``False`` turns storage off: every lookup is a miss that builds
        fresh (the bit-parity control for benchmarks and tests —
        identical answers, none of the amortisation).
    tracer:
        Optional :class:`~repro.obs.Tracer` for cache events/metrics.
    kernels:
        Optional :mod:`repro.kernels` backend (name or instance) the
        default builder threads through build and serving.  Roadmaps
        built under different backends can differ, so a non-reference
        backend participates in the cache key — entries never alias
        across backends.
    """

    def __init__(
        self,
        max_bytes: "int | None" = 256 << 20,
        builder: "Callable[[WorkloadSpec], QueryEngine] | None" = None,
        k: int = 8,
        nn_factory=None,
        local_planner=None,
        enabled: bool = True,
        tracer: "Tracer | None" = None,
        kernels=None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (or None for unbounded)")
        self.max_bytes = max_bytes
        self.kernels = kernels
        if builder is None:
            builder = lambda spec: build_engine(  # noqa: E731
                spec, k=k, nn_factory=nn_factory, local_planner=local_planner,
                kernels=kernels,
            )
        self._builder = builder
        self.enabled = enabled
        self._tracer = active(tracer)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._flights: "dict[str, _Flight]" = {}
        self._stats = CacheStats()

    # -- introspection -------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """A snapshot copy of the counters (safe to keep)."""
        with self._lock:
            return CacheStats(
                hits=self._stats.hits,
                misses=self._stats.misses,
                builds=self._stats.builds,
                coalesced=self._stats.coalesced,
                evictions=self._stats.evictions,
                entries=len(self._entries),
                current_bytes=self._stats.current_bytes,
                build_time=self._stats.build_time,
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _key_for(self, spec: WorkloadSpec) -> str:
        """Cache key of ``spec`` under this cache's kernel backend.

        The workload hash alone would alias roadmaps built by different
        backends (fast32 verdicts can diverge near obstacle faces), so a
        non-default backend is appended to the key.
        """
        key = spec.cache_key()
        if self.kernels is None:
            return key
        name = self.kernels if isinstance(self.kernels, str) else self.kernels.name
        return f"{key}|kernels={name}"

    def __contains__(self, spec: "WorkloadSpec | str") -> bool:
        key = spec if isinstance(spec, str) else self._key_for(spec)
        with self._lock:
            return key in self._entries

    # -- the lookup ----------------------------------------------------------
    def get(self, spec: WorkloadSpec) -> QueryEngine:
        """The engine for ``spec``: cached, joined in-flight, or built.

        Raises whatever the builder raised (after recording the miss);
        concurrent callers of a failed build all see the same exception.
        """
        key = self._key_for(spec)
        if not self.enabled:
            with self._lock:
                self._stats.misses += 1
                self._stats.builds += 1
            if self._tracer:
                self._tracer.point(EV_CACHE_MISS, key=key, coalesced=False)
                self._tracer.metrics.counter("cache_misses").inc()
            t0 = time.perf_counter()
            engine = self._builder(spec)
            with self._lock:
                self._stats.build_time += time.perf_counter() - t0
            return engine

        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._stats.hits += 1
                if self._tracer:
                    self._tracer.point(EV_CACHE_HIT, key=key)
                    self._tracer.metrics.counter("cache_hits").inc()
                return entry.engine
            self._stats.misses += 1
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
                self._stats.builds += 1
            else:
                self._stats.coalesced += 1
        if self._tracer:
            self._tracer.point(EV_CACHE_MISS, key=key, coalesced=not leader)
            self._tracer.metrics.counter("cache_misses").inc()

        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.value is not None
            return flight.value

        # Leader: build outside the lock so hits on other keys never stall.
        t0 = time.perf_counter()
        try:
            engine = self._builder(spec)
        except BaseException as exc:
            with self._lock:
                self._stats.build_time += time.perf_counter() - t0
                self._flights.pop(key, None)
            flight.error = exc
            flight.done.set()
            raise
        nbytes = snapshot_nbytes(engine)
        with self._lock:
            self._stats.build_time += time.perf_counter() - t0
            self._entries[key] = _Entry(engine, nbytes)
            self._entries.move_to_end(key)
            self._stats.current_bytes += nbytes
            evicted = self._evict_over_budget(protect=key)
            self._flights.pop(key, None)
        if self._tracer:
            for ekey, ebytes in evicted:
                self._tracer.point(EV_CACHE_EVICT, key=ekey, bytes=ebytes)
                self._tracer.metrics.counter("cache_evictions").inc()
        flight.value = engine
        flight.done.set()
        return engine

    def put(self, spec: WorkloadSpec, engine: QueryEngine) -> None:
        """Pre-warm: install an already-built engine under ``spec``'s key."""
        key = self._key_for(spec)
        nbytes = snapshot_nbytes(engine)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._stats.current_bytes -= old.nbytes
            self._entries[key] = _Entry(engine, nbytes)
            self._stats.current_bytes += nbytes
            evicted = self._evict_over_budget(protect=key)
        if self._tracer:
            for ekey, ebytes in evicted:
                self._tracer.point(EV_CACHE_EVICT, key=ekey, bytes=ebytes)
                self._tracer.metrics.counter("cache_evictions").inc()

    def clear(self) -> None:
        """Drop every entry (stats other than ``current_bytes`` persist)."""
        with self._lock:
            self._entries.clear()
            self._stats.current_bytes = 0

    def _evict_over_budget(self, protect: str) -> "list[tuple[str, int]]":
        """Evict LRU entries while over budget (called under the lock).

        The ``protect`` key (the entry just inserted) is never evicted:
        an oversized workload then simply occupies the whole budget and
        the cache degrades to rebuild-per-miss for everyone else, which
        is strictly better than refusing to serve it.
        """
        if self.max_bytes is None:
            return []
        evicted: "list[tuple[str, int]]" = []
        while self._stats.current_bytes > self.max_bytes and len(self._entries) > 1:
            key = next(iter(self._entries))
            if key == protect:
                # LRU order puts the fresh insert last; reaching it first
                # means it is the only entry left to shed.
                break
            entry = self._entries.pop(key)
            self._stats.current_bytes -= entry.nbytes
            self._stats.evictions += 1
            evicted.append((key, entry.nbytes))
        return evicted
