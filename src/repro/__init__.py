"""repro — Load-balanced scalable parallel sampling-based motion planning.

A reproduction of Fidel, Jacobs, Sharma, Amato & Rauchwerger,
"Using Load Balancing to Scalably Parallelize Sampling-Based Motion
Planning Algorithms" (IPDPS 2014).

Packages
--------
``repro.kernels``
    Pluggable compute-kernel backends (bit-exact ``reference``, float32
    blocked ``fast32``, optional numba) behind a registry; selected via
    ``ExecutionPolicy(kernel_backend=...)``.
``repro.geometry``
    Workspace primitives, benchmark environments, vectorised collision.
``repro.cspace``
    Configuration spaces, samplers, local planners.
``repro.knn``
    Interchangeable nearest-neighbour backends.
``repro.planners``
    Sequential PRM / RRT, roadmap graph, queries.
``repro.subdivision``
    Uniform grid and radial region graphs.
``repro.runtime``
    Simulated distributed-memory machine (the STAPL stand-in) and a true
    multiprocessing backend.
``repro.partition``
    Region-graph partitioners and quality metrics.
``repro.core``
    The paper's contribution: load-balanced parallel PRM / RRT, work
    stealing policies, repartitioning, and the theoretical model.
``repro.obs``
    Structured tracing + metrics: typed events, sinks (memory / JSON
    lines), and a trace summariser (``python -m repro.obs summarize``).
``repro.spec``
    The layered request vocabulary: ``WorkloadSpec`` / ``ExecutionPolicy``
    / ``FaultPolicy`` / ``ObsConfig``, the ``PlanRequest`` aggregate,
    canonical workload cache keys, and the flat-kwarg deprecation shim.
``repro.api``
    The ``plan(WorkloadSpec(...)) -> PlanReport`` facade over the whole
    pipeline.
``repro.service``
    Planning-as-a-service: LRU snapshot cache with singleflight builds,
    request coalescing, and the thread-pooled multi-tenant
    ``PlanService``.
``repro.bench``
    Drivers that regenerate every figure in the paper's evaluation, the
    perf suite, and the serving load generator.

Quick start
-----------
>>> from repro import ExecutionPolicy, WorkloadSpec, plan
>>> report = plan(WorkloadSpec(environment="med-cube", num_regions=512, seed=1),
...               execution=ExecutionPolicy(strategy="hybrid", num_pes=96))
>>> print(report.summary())
"""

from .api import PlanReport, PlanRequest, plan
from .spec import ExecutionPolicy, FaultPolicy, ObsConfig, WorkloadSpec
from .obs import (
    JsonlSink,
    MemorySink,
    MetricRegistry,
    NullTracer,
    Tracer,
    format_summary,
    read_jsonl,
    summarize_events,
)
from .runtime import Fault, FaultInjector, TaskFailedError
from .service import PlanService, RoadmapCache, ServiceConfig

__version__ = "1.6.0"

__all__ = [
    "__version__",
    "PlanRequest",
    "PlanReport",
    "plan",
    "WorkloadSpec",
    "ExecutionPolicy",
    "FaultPolicy",
    "ObsConfig",
    "PlanService",
    "ServiceConfig",
    "RoadmapCache",
    "Fault",
    "FaultInjector",
    "TaskFailedError",
    "Tracer",
    "NullTracer",
    "MemorySink",
    "JsonlSink",
    "MetricRegistry",
    "read_jsonl",
    "summarize_events",
    "format_summary",
]
