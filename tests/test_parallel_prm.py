"""Integration tests for the load-balanced parallel PRM driver."""

import numpy as np
import pytest

from repro.core import build_prm_workload, simulate_prm
from repro.core.metrics import coefficient_of_variation
from repro.cspace import EuclideanCSpace
from repro.geometry import free_env, med_cube
from repro.planners import RoadmapQuery


@pytest.fixture(scope="module")
def medcube_workload():
    cs = EuclideanCSpace(med_cube())
    return build_prm_workload(cs, num_regions=500, samples_per_region=6, seed=3)


@pytest.fixture(scope="module")
def free_workload():
    cs = EuclideanCSpace(free_env())
    return build_prm_workload(cs, num_regions=500, samples_per_region=6, seed=3)


class TestWorkloadConstruction:
    def test_region_work_complete(self, medcube_workload):
        wl = medcube_workload
        assert set(wl.region_work) == set(wl.subdivision.graph.region_ids())
        assert all(w.gen_cost >= 0 and w.connect_cost >= 0 for w in wl.region_work.values())

    def test_roadmap_vertices_match_sample_counts(self, medcube_workload):
        wl = medcube_workload
        total = sum(w.num_samples for w in wl.region_work.values())
        assert wl.roadmap.num_vertices == total
        assert wl.sample_positions.shape[0] == total

    def test_vertex_ids_encode_regions(self, medcube_workload):
        wl = medcube_workload
        from repro.core.parallel_prm import ID_SHIFT
        for vid in wl.roadmap.vertices():
            rid = vid >> ID_SHIFT
            assert rid in wl.region_work

    def test_boundary_regions_heavier(self, medcube_workload):
        """Narrow-passage refinement concentrates work near the obstacle."""
        wl = medcube_workload
        env = wl.cspace.env
        boundary_costs, free_costs = [], []
        for rid, work in wl.region_work.items():
            rel = env.box_obstacle_relation(wl.subdivision.region_of(rid).bounds)
            if rel == "boundary":
                boundary_costs.append(work.connect_cost)
            elif rel == "free":
                free_costs.append(work.connect_cost)
        assert np.mean(boundary_costs) > 2.0 * np.mean(free_costs)

    def test_adjacency_work_covers_graph(self, medcube_workload):
        wl = medcube_workload
        pairs = {(a.a, a.b) for a in wl.adjacency_work}
        assert pairs == {(a, b) for a, b in wl.subdivision.graph.edges()}

    def test_workload_deterministic(self):
        cs = EuclideanCSpace(med_cube())
        a = build_prm_workload(cs, num_regions=100, samples_per_region=4, seed=11)
        cs2 = EuclideanCSpace(med_cube())
        b = build_prm_workload(cs2, num_regions=100, samples_per_region=4, seed=11)
        assert a.roadmap.num_vertices == b.roadmap.num_vertices
        for rid in a.region_work:
            assert a.region_work[rid].connect_cost == b.region_work[rid].connect_cost

    def test_roadmap_answers_queries(self, free_workload):
        wl = free_workload
        q = RoadmapQuery(wl.cspace)
        out = q.solve(wl.roadmap, np.array([-9.0, -9.0, -9.0]), np.array([9.0, 9.0, 9.0]))
        assert out is not None

    def test_zero_boost_flattens_boundary_effect(self):
        cs = EuclideanCSpace(med_cube())
        wl = build_prm_workload(
            cs, num_regions=200, samples_per_region=4, seed=5, narrow_passage_boost=0.0
        )
        counts = [w.num_samples for w in wl.region_work.values()]
        assert max(counts) <= 4


class TestSimulation:
    def test_all_strategies_run(self, medcube_workload):
        for strat in ("none", "repartition", "hybrid", "rand-8", "diffusive"):
            r = simulate_prm(medcube_workload, 16, strat)
            assert r.total_time > 0
            assert r.phases.node_connection > 0

    def test_unknown_strategy_rejected(self, medcube_workload):
        with pytest.raises(KeyError):
            simulate_prm(medcube_workload, 8, "magic")

    def test_node_conservation_across_strategies(self, medcube_workload):
        total = medcube_workload.roadmap.num_vertices
        for strat in ("none", "repartition", "hybrid"):
            r = simulate_prm(medcube_workload, 16, strat)
            assert r.nodes_per_pe.sum() == pytest.approx(total)
            assert r.nodes_per_pe_before.sum() == pytest.approx(total)

    def test_repartition_lowers_cov(self, medcube_workload):
        r = simulate_prm(medcube_workload, 16, "repartition")
        assert coefficient_of_variation(r.nodes_per_pe) < coefficient_of_variation(
            r.nodes_per_pe_before
        )

    def test_load_balancing_beats_baseline(self, medcube_workload):
        base = simulate_prm(medcube_workload, 16, "none").total_time
        for strat in ("repartition", "hybrid"):
            assert simulate_prm(medcube_workload, 16, strat).total_time < base

    def test_free_env_no_imbalance_no_churn(self, free_workload):
        base = simulate_prm(free_workload, 16, "none")
        repart = simulate_prm(free_workload, 16, "repartition")
        assert repart.total_time < 1.2 * base.total_time

    def test_repartition_increases_remote_accesses(self, medcube_workload):
        none = simulate_prm(medcube_workload, 32, "none")
        repart = simulate_prm(medcube_workload, 32, "repartition")
        assert repart.roadmap_graph_remote >= none.roadmap_graph_remote

    def test_stealing_transfers_ownership(self, medcube_workload):
        r = simulate_prm(medcube_workload, 16, "hybrid")
        stolen = r.connection_sim.stolen_per_pe().sum()
        assert stolen > 0

    def test_simulation_deterministic(self, medcube_workload):
        a = simulate_prm(medcube_workload, 16, "rand-8")
        b = simulate_prm(medcube_workload, 16, "rand-8")
        assert a.total_time == b.total_time

    def test_strong_scaling_baseline(self, medcube_workload):
        t8 = simulate_prm(medcube_workload, 8, "none").total_time
        t32 = simulate_prm(medcube_workload, 32, "none").total_time
        assert t32 < t8

    def test_mismatched_topology_rejected(self, medcube_workload):
        from repro.runtime import ClusterTopology
        with pytest.raises(ValueError):
            simulate_prm(medcube_workload, 8, "none", topology=ClusterTopology(16))
