"""Simulated distributed-memory runtime (the STAPL stand-in)."""

from .faults import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_RAISE,
    Fault,
    FaultInjector,
    InjectedFault,
    TaskFailedError,
    WorkerCrash,
)
from .chunking import CHUNK_POLICIES, policy_label, resolve_chunks
from .local_pool import (
    FAILURE_POLICIES,
    DispatchStats,
    PoolResult,
    resolve_workers,
    run_tasks_parallel,
)
from .pgraph import AccessStats, PGraphView
from .shm import (
    ArraySpec,
    SharedArrayManifest,
    attach_arrays,
    cleanup_stale,
    leaked_segments,
    publish_arrays,
    release,
    shm_available,
)
from .simulator import StealPolicy, WorkStealingSimulator, run_static_phase
from .stats import PEStats, SimResult
from .termination import TokenRingDetector, detection_delay, detection_delay_tree
from .topology import ClusterTopology, mesh_shape_for

__all__ = [
    "FAULT_CRASH",
    "FAULT_HANG",
    "FAULT_RAISE",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "TaskFailedError",
    "WorkerCrash",
    "FAILURE_POLICIES",
    "CHUNK_POLICIES",
    "DispatchStats",
    "PoolResult",
    "policy_label",
    "resolve_chunks",
    "resolve_workers",
    "run_tasks_parallel",
    "ArraySpec",
    "SharedArrayManifest",
    "attach_arrays",
    "cleanup_stale",
    "leaked_segments",
    "publish_arrays",
    "release",
    "shm_available",
    "AccessStats",
    "PGraphView",
    "StealPolicy",
    "WorkStealingSimulator",
    "run_static_phase",
    "PEStats",
    "SimResult",
    "TokenRingDetector",
    "detection_delay",
    "detection_delay_tree",
    "ClusterTopology",
    "mesh_shape_for",
]
