"""Tests for the theoretical model environment analysis (Sec. IV-B)."""

import numpy as np
import pytest

from repro.core import ModelEnvironmentAnalysis


@pytest.fixture(scope="module")
def analysis():
    return ModelEnvironmentAnalysis(num_regions=1024, total_samples=8000)


class TestModelAnalysis:
    def test_free_volume_conservation(self, analysis):
        total = sum(analysis.free_volumes.values())
        assert total == pytest.approx(analysis.env.free_volume(), rel=1e-6)

    def test_sample_counts_total(self, analysis):
        assert sum(analysis.sample_counts.values()) == analysis.total_samples

    def test_samples_track_free_volume(self, analysis):
        """Sample density is proportional to free volume per region."""
        fv = np.array([analysis.free_volumes[r] for r in sorted(analysis.free_volumes)])
        sc = np.array([analysis.sample_counts[r] for r in sorted(analysis.sample_counts)])
        # Correlation should be strong.
        corr = np.corrcoef(fv, sc)[0, 1]
        assert corr > 0.8

    def test_greedy_never_worse_than_naive(self, analysis):
        for P in (2, 8, 32, 128):
            point = analysis.analyze(P)
            assert point.model_best <= point.model_imbalance + 1e-9
            assert point.model_improvement >= -1e-9

    def test_experimental_tracks_model(self, analysis):
        point = analysis.analyze(16)
        assert abs(point.experimental_imbalance - point.model_imbalance) < 0.15

    def test_invalid_pe_count(self, analysis):
        with pytest.raises(ValueError):
            analysis.analyze(0)

    def test_sweep_shapes(self, analysis):
        points = analysis.sweep([2, 4, 8])
        assert [p.num_pes for p in points] == [2, 4, 8]

    def test_obstacle_fraction_validation(self):
        with pytest.raises(ValueError):
            ModelEnvironmentAnalysis(obstacle_fraction=1.5)
