"""Ablation: balance quality vs regions-per-PE ratio.

The paper's central granularity argument: "the size of the biggest quanta
of work establishes a lower bound by which the problem can be balanced"
and "a more refined problem provides more opportunity to distribute work".
With more regions per PE, the repartitioned makespan approaches the ideal
(total work / P).
"""

from repro.bench import format_table, prm_workload
from repro.core.parallel_prm import simulate_prm


def run_ablation():
    P = 128
    rows = []
    for num_regions in (256, 1024, 4096):
        wl = prm_workload("med-cube", num_regions=num_regions, samples_per_region=8)
        run = simulate_prm(wl, P, "repartition")
        ideal = wl.total_connect_work() / P
        ratio = run.phases.node_connection / ideal
        rows.append([wl.num_regions, f"{wl.num_regions / P:.1f}", f"{ratio:.2f}"])
    print("\nAblation — over-decomposition vs distance from ideal balance (P=128)")
    print(format_table(["regions", "regions/PE", "makespan / ideal"], rows))
    return rows


def test_ablation_overdecomposition(once):
    rows = once(run_ablation)
    ratios = [float(r[2]) for r in rows]
    # Finer decomposition never moves the balanced phase away from ideal
    # (the residual ~1.4-1.6x gap at every scale is weight-vs-cost error,
    # not quantisation — the paper's "imperfect indicator" note).
    assert ratios[-1] <= ratios[0] + 0.05
    # Even at ~2 regions/PE the balanced phase stays within 2x of ideal.
    assert all(r < 2.0 for r in ratios)
    # Makespan can never beat the ideal bound.
    assert all(r >= 0.99 for r in ratios)
