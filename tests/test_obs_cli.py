"""End-to-end tests of the `python -m repro.obs` CLI."""

import os
import subprocess
import sys

import pytest

from repro import JsonlSink, PlanRequest, Tracer, plan

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_cli(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    plan(
        PlanRequest(num_regions=64, samples_per_region=4, strategy="rand-8",
                    num_pes=8, seed=3, tracer=tracer)
    )
    tracer.close()
    return path


def test_summarize(trace_path):
    proc = _run_cli("summarize", str(trace_path))
    assert proc.returncode == 0, proc.stderr
    for needle in ("construct", "connect", "Work stealing", "Fig. 7a", "Fig. 9"):
        assert needle in proc.stdout


def test_events(trace_path):
    proc = _run_cli("events", str(trace_path))
    assert proc.returncode == 0, proc.stderr
    lines = proc.stdout.strip().splitlines()
    assert len(lines) > 10
    assert any("span_begin" in ln and "subdivide" in ln for ln in lines)


def test_usage_errors():
    assert _run_cli().returncode == 2
    assert _run_cli("frobnicate", "x.jsonl").returncode == 2
    assert _run_cli("summarize").returncode == 2
    assert _run_cli("--help").returncode == 0


def test_missing_file():
    proc = _run_cli("summarize", "/nonexistent/trace.jsonl")
    assert proc.returncode == 1
    assert "error reading trace" in proc.stderr


def test_semantically_invalid_trace(tmp_path):
    bad = tmp_path / "unclosed.jsonl"
    bad.write_text('{"ts": 0.0, "kind": "span_begin", "name": "construct"}\n')
    proc = _run_cli("summarize", str(bad))
    assert proc.returncode == 1
    assert "invalid trace" in proc.stderr and "unclosed" in proc.stderr
