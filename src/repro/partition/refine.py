"""Kernighan–Lin-style boundary refinement of a region-graph partition.

Post-processes any assignment by moving boundary regions between PE pairs
when the move reduces edge cut without worsening weight balance beyond a
tolerance.  This is the "high quality partition ... while also preserving
the spatial geometry" step (Sec. III-B): run after LPT it recovers most
of RCB's locality while keeping LPT's balance.
"""

from __future__ import annotations


from ..subdivision.region import RegionGraph
from .edge_cut import loads_of

__all__ = ["refine_partition"]


def refine_partition(
    graph: RegionGraph,
    assignment: "dict[int, int]",
    num_pes: int,
    balance_tolerance: float = 0.05,
    max_passes: int = 4,
) -> "dict[int, int]":
    """Greedy boundary-move refinement.

    A region is movable to a neighbouring PE when the move strictly
    decreases edge cut and leaves both PEs within
    ``(1 + balance_tolerance) * mean`` load.  Passes repeat until no move
    helps or ``max_passes`` is reached.  The input dict is not mutated.
    """
    if balance_tolerance < 0:
        raise ValueError("balance_tolerance must be non-negative")
    assign = dict(assignment)
    loads = loads_of(graph, assign, num_pes)
    mean = loads.mean() if num_pes > 0 else 0.0
    cap = (1.0 + balance_tolerance) * mean

    for _ in range(max_passes):
        improved = False
        for rid in graph.region_ids():
            here = assign[rid]
            nbr_pes: dict[int, int] = {}
            local_ties = 0
            for nbr in graph.neighbors(rid):
                pe = assign[nbr]
                if pe == here:
                    local_ties += 1
                else:
                    nbr_pes[pe] = nbr_pes.get(pe, 0) + 1
            if not nbr_pes:
                continue
            # Gain of moving rid to pe = (cut edges recovered) - (new cut edges).
            best_pe, best_gain = here, 0
            for pe, ties in sorted(nbr_pes.items()):
                gain = ties - local_ties
                if gain > best_gain:
                    best_pe, best_gain = pe, gain
            if best_pe == here:
                continue
            w = graph.weights[rid]
            if loads[best_pe] + w > cap or w > loads[here]:
                continue
            assign[rid] = best_pe
            loads[here] -= w
            loads[best_pe] += w
            improved = True
        if not improved:
            break
    return assign
