"""True-parallel execution of regional planners on the local machine.

The simulator answers "how would this behave on 3,072 cores?"; this module
answers "make it actually faster on my laptop".  Regions are executed by a
``concurrent.futures`` process pool, with a greedy dynamic dispatcher that
is the shared-memory analogue of work stealing: workers pull the next
unstarted region as they finish, so imbalance is absorbed automatically.

Only picklable callables can cross process boundaries, so the executor
receives ``(task_id,)`` and must be a module-level function or a functools
partial of one.  For convenience a threads backend is also provided — with
NumPy doing the heavy lifting inside collision checks, threads get real
speedups despite the GIL.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..obs.events import EV_TASK_END, EV_TASK_START
from ..obs.tracer import active

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["PoolResult", "run_tasks_parallel"]


@dataclass
class PoolResult:
    """Results plus wall-clock accounting of a parallel run."""

    results: "dict[int, object]"
    wall_time: float
    per_task_time: "dict[int, float]"
    workers: int

    def slowest_task(self) -> "tuple[int, float] | None":
        """The (task id, duration) that took longest; ``None`` if no tasks ran."""
        if not self.per_task_time:
            return None
        task = max(self.per_task_time, key=self.per_task_time.get)
        return task, self.per_task_time[task]


def _timed(fn: Callable[[int], object], task_id: int) -> "tuple[int, object, float]":
    t0 = time.perf_counter()
    out = fn(task_id)
    return task_id, out, time.perf_counter() - t0


def run_tasks_parallel(
    fn: Callable[[int], object],
    task_ids: "list[int]",
    workers: int = 4,
    backend: str = "thread",
    window: int | None = None,
    tracer: "Tracer | None" = None,
) -> PoolResult:
    """Execute ``fn(task_id)`` for every task with dynamic dispatch.

    Parameters
    ----------
    fn:
        The regional work; must be picklable for the ``"process"`` backend.
    workers:
        Pool size.
    backend:
        ``"thread"`` (default; fine for NumPy-heavy work) or ``"process"``.
    window:
        Max in-flight futures (default ``2 * workers``); bounds memory for
        huge task lists.
    tracer:
        Optional :class:`repro.obs.Tracer`; emits wall-clock ``task_start``
        / ``task_end`` point events (timestamps relative to pool start) and
        a ``task_time`` histogram.  ``None`` (default) emits nothing.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if backend not in ("thread", "process"):
        raise ValueError("backend must be 'thread' or 'process'")
    pool_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    window = window or 2 * workers
    tr = active(tracer)
    results: "dict[int, object]" = {}
    per_task: "dict[int, float]" = {}
    pending = set()
    it = iter(task_ids)
    t0 = time.perf_counter()
    with pool_cls(max_workers=workers) as pool:
        # Prime the window, then keep it full as tasks complete.
        for _ in range(window):
            task = next(it, None)
            if task is None:
                break
            pending.add(pool.submit(_timed, fn, task))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                task_id, out, dt = fut.result()
                results[task_id] = out
                per_task[task_id] = dt
                if tr is not None:
                    # Completion is observed here on the dispatcher thread;
                    # the start stamp is reconstructed from the duration.
                    end_ts = time.perf_counter() - t0
                    tr.point(EV_TASK_START, ts=max(end_ts - dt, 0.0), task=task_id, cost=dt)
                    tr.point(EV_TASK_END, ts=end_ts, task=task_id, cost=dt)
                    tr.metrics.histogram("task_time").observe(dt)
                nxt = next(it, None)
                if nxt is not None:
                    pending.add(pool.submit(_timed, fn, nxt))
    wall = time.perf_counter() - t0
    if tr is not None:
        tr.metrics.gauge("pool_wall_time").set(wall)
        tr.metrics.counter("pool_tasks").inc(len(results))
    return PoolResult(results, wall, per_task, workers)
