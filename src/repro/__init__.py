"""repro — Load-balanced scalable parallel sampling-based motion planning.

A reproduction of Fidel, Jacobs, Sharma, Amato & Rauchwerger,
"Using Load Balancing to Scalably Parallelize Sampling-Based Motion
Planning Algorithms" (IPDPS 2014).

Packages
--------
``repro.geometry``
    Workspace primitives, benchmark environments, vectorised collision.
``repro.cspace``
    Configuration spaces, samplers, local planners.
``repro.knn``
    Interchangeable nearest-neighbour backends.
``repro.planners``
    Sequential PRM / RRT, roadmap graph, queries.
``repro.subdivision``
    Uniform grid and radial region graphs.
``repro.runtime``
    Simulated distributed-memory machine (the STAPL stand-in) and a true
    multiprocessing backend.
``repro.partition``
    Region-graph partitioners and quality metrics.
``repro.core``
    The paper's contribution: load-balanced parallel PRM / RRT, work
    stealing policies, repartitioning, and the theoretical model.
``repro.obs``
    Structured tracing + metrics: typed events, sinks (memory / JSON
    lines), and a trace summariser (``python -m repro.obs summarize``).
``repro.api``
    The ``plan(PlanRequest(...)) -> PlanReport`` facade over the whole
    pipeline.
``repro.bench``
    Drivers that regenerate every figure in the paper's evaluation.

Quick start
-----------
>>> from repro import PlanRequest, plan
>>> report = plan(PlanRequest(environment="med-cube", strategy="hybrid",
...                           num_regions=512, num_pes=96, seed=1))
>>> print(report.summary())
"""

from .api import PlanReport, PlanRequest, plan
from .obs import (
    JsonlSink,
    MemorySink,
    MetricRegistry,
    NullTracer,
    Tracer,
    format_summary,
    read_jsonl,
    summarize_events,
)
from .runtime import Fault, FaultInjector, TaskFailedError

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "PlanRequest",
    "PlanReport",
    "plan",
    "Fault",
    "FaultInjector",
    "TaskFailedError",
    "Tracer",
    "NullTracer",
    "MemorySink",
    "JsonlSink",
    "MetricRegistry",
    "read_jsonl",
    "summarize_events",
    "format_summary",
]
