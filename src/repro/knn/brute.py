"""Vectorised brute-force nearest neighbours.

O(n) per query but with NumPy constants small enough that it beats the
tree structures below a few thousand points — the regime of regional
roadmaps under heavy over-decomposition.
"""

from __future__ import annotations

import numpy as np

from .base import NeighborFinder

__all__ = ["BruteForceNN"]

_INITIAL_CAPACITY = 64


class BruteForceNN(NeighborFinder):
    """Amortised-growth array of points; queries are one broadcast each."""

    def __init__(self, dim: int):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._points = np.empty((_INITIAL_CAPACITY, dim))
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n = 0

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        cap = self._points.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        # Explicit alloc+copy of the live prefix: np.resize would fill the
        # new space by tiling the old buffer (wasted copying of garbage).
        points = np.empty((new_cap, self.dim))
        points[: self._n] = self._points[: self._n]
        ids = np.empty(new_cap, dtype=np.int64)
        ids[: self._n] = self._ids[: self._n]
        self._points, self._ids = points, ids

    def add(self, point_id: int, point: np.ndarray) -> None:
        self._ensure_capacity(1)
        self._points[self._n] = point
        self._ids[self._n] = point_id
        self._n += 1

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        self._ensure_capacity(points.shape[0])
        self._points[self._n : self._n + points.shape[0]] = points
        self._ids[self._n : self._n + points.shape[0]] = ids
        self._n += points.shape[0]

    @staticmethod
    def _dist_block(stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        """Write ``||stored[j] - queries[i]||`` into ``out[i, j]`` using
        per-dimension 2-D accumulation (see :meth:`knn_block_growing`)."""
        n = stored.shape[0]
        if n == 0:
            return
        m, dim = queries.shape
        tmp = np.empty((m, n))
        s = np.empty((m, n))
        for j in range(dim):
            np.subtract(stored[None, :, j], queries[:, j, None], out=tmp)
            np.multiply(tmp, tmp, out=tmp)
            if j == 0:
                s, tmp = tmp, s
            else:
                np.add(s, tmp, out=s)
        np.sqrt(s, out=out)

    def _distances(self, query: np.ndarray) -> np.ndarray:
        pts = self._points[: self._n]
        self.stats.queries += 1
        self.stats.distance_evals += self._n
        return np.linalg.norm(pts - np.asarray(query, dtype=float)[None, :], axis=1)

    @staticmethod
    def _select_canonical(d: np.ndarray, k_eff: int) -> np.ndarray:
        """Indices of the ``k_eff`` smallest entries of ``d`` under the
        canonical (distance, insertion order) tie-break every backend
        implements.  argpartition alone leaves ties at the k-th distance
        unspecified; gathering *all* entries ``<= kth`` and stable-sorting
        them by distance makes the boundary deterministic."""
        if k_eff >= d.size:
            return np.argsort(d, kind="stable")[:k_eff]
        part = np.argpartition(d, k_eff - 1)[:k_eff]
        kth = d[part].max()
        cand = np.nonzero(d <= kth)[0]
        return cand[np.argsort(d[cand], kind="stable")][:k_eff]

    def _select_canonical_rows(
        self, block: np.ndarray, k_eff: int
    ) -> "tuple[list[list[int]], list[list[float]]]":
        """Row-wise :meth:`_select_canonical`: (index rows, distance rows).

        The vectorised argpartition+argsort fast path is canonical whenever
        a row's k selected distances are distinct and nothing outside the
        selection ties the k-th distance; the rare ambiguous rows are
        re-selected individually.
        """
        if k_eff >= block.shape[1]:
            order = np.argsort(block, axis=1, kind="stable")[:, :k_eff]
            return order.tolist(), np.take_along_axis(block, order, axis=1).tolist()
        idx = np.argpartition(block, k_eff - 1, axis=1)[:, :k_eff]
        dk = np.take_along_axis(block, idx, axis=1)
        dk_sorted = np.sort(dk, axis=1)
        kthv = dk_sorted[:, -1]
        amb = (block <= kthv[:, None]).sum(axis=1) > k_eff
        if k_eff > 1:
            amb |= (dk_sorted[:, 1:] == dk_sorted[:, :-1]).any(axis=1)
        order = np.argsort(dk, axis=1, kind="stable")
        sel = np.take_along_axis(idx, order, axis=1).tolist()
        dists = np.take_along_axis(dk, order, axis=1).tolist()
        for r in np.nonzero(amb)[0].tolist():
            can = self._select_canonical(block[r], k_eff)
            sel[r] = can.tolist()
            dists[r] = block[r][can].tolist()
        return sel, dists

    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0 or k <= 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        if exclude is not None:
            mask = ids != exclude
            d, ids = d[mask], ids[mask]
        if d.size == 0:
            return []
        order = self._select_canonical(d, min(k, d.size))
        return [(int(ids[i]), float(d[i])) for i in order]

    def knn_batch(self, queries: np.ndarray, k: int) -> "list[list[tuple[int, float]]]":
        """Canonical k-NN for every row of ``queries`` in one distance
        broadcast — same results and stats charges as a :meth:`knn` loop."""
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m = queries.shape[0]
        if m == 0:
            return []
        if self._n == 0 or k <= 0:
            return [[] for _ in range(m)]
        D = np.empty((m, self._n))
        self._dist_block(self._points[: self._n], queries, D)
        self.stats.queries += m
        self.stats.distance_evals += m * self._n
        ids = self._ids[: self._n]
        sel, dists = self._select_canonical_rows(D, min(k, self._n))
        return [
            [(int(ids[j]), float(dj)) for j, dj in zip(srow, drow)]
            for srow, drow in zip(sel, dists)
        ]

    def knn_block_growing(
        self, ids: np.ndarray, points: np.ndarray, k: int
    ) -> "list[list[tuple[int, float]]]":
        """k-NN for a block of points as if queried/inserted one at a time.

        Query ``i`` searches the stored points plus ``points[:i]``, and all
        block points are inserted afterwards — exactly equivalent (same
        results, same :class:`KnnStats` charges) to the interleaved
        ``knn(points[i], k); add(ids[i], points[i])`` sequence the PRM
        build loop performs, but with all distance work done in two
        broadcasts instead of one per query.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        m = points.shape[0]
        if ids.shape[0] != m:
            raise ValueError("ids and points length mismatch")
        n0 = self._n
        out: "list[list[tuple[int, float]]]" = []
        if m == 0:
            return out
        # Row i of D holds query i's distances: stored points in columns
        # [0, n0), earlier block points in columns [n0, n0+i); later block
        # points (and self) are masked to +inf so one row-wise selection
        # covers the whole block.
        D = np.empty((m, n0 + m))
        # Distances are accumulated per dimension in 2-D planes instead of
        # reducing a (m, n, dim) broadcast: np.add.reduce over the last
        # axis sums left to right, so `s = dx0²; s += dx1²; ...; sqrt(s)`
        # produces bit-identical values to np.linalg.norm(diff, axis=2)
        # (and to the per-query `knn` path) while never materialising the
        # 3-D temporary — about a third of the memory traffic on the
        # O(n²) floor of roadmap construction.
        self._dist_block(self._points[:n0], points, D[:, :n0])
        if m > 1:
            self._dist_block(points, points, D[:, n0:])
            # Mask self-distances and not-yet-visible later block points.
            D[:, n0:][np.arange(m)[None, :] >= np.arange(m)[:, None]] = np.inf
        else:
            D[:, n0:] = np.inf
        # Charge exactly what the interleaved loop would: a query against
        # an empty structure (or with k<=0) returns early uncharged.
        if k > 0:
            charged = m if n0 else m - 1
            self.stats.queries += max(charged, 0)
            self.stats.distance_evals += m * n0 + m * (m - 1) // 2
        all_ids = np.concatenate((self._ids[:n0], ids))
        # Rows with fewer than k visible points (only the first k-n0 rows
        # of a fresh structure) take per-row selection; the rest batch.
        i0 = min(max(k - n0, 0), m) if k > 0 else m
        for i in range(i0):
            n = n0 + i
            if n == 0 or k <= 0:
                out.append([])
                continue
            d = D[i, :n]
            order = self._select_canonical(d, min(k, n))
            out.append([(int(all_ids[j]), float(d[j])) for j in order])
        if i0 < m:
            # Every row past i0 sees at least k finite (visible) distances,
            # so the +inf mask never leaks into a selection.
            sel, dists = self._select_canonical_rows(D[i0:], k)
            for srow, drow in zip(sel, dists):
                out.append([(int(all_ids[j]), float(dj)) for j, dj in zip(srow, drow)])
        self.add_batch(ids, points)
        return out

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0:
            return []
        d = self._distances(query)
        ids = self._ids[: self._n]
        mask = d <= r
        if exclude is not None:
            mask &= ids != exclude
        sel = np.nonzero(mask)[0]
        sel = sel[np.argsort(d[sel], kind="stable")]
        return [(int(ids[i]), float(d[i])) for i in sel]

    def __len__(self) -> int:
        return self._n
