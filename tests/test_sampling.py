"""Tests for the configuration samplers."""

import numpy as np
import pytest

from repro.cspace import (
    BridgeTestSampler,
    GaussianSampler,
    MixtureSampler,
    ObstacleBasedSampler,
    UniformSampler,
)
from repro.geometry import AABB


class TestUniformSampler:
    def test_produces_valid_samples(self, box_cspace, rng):
        batch = UniformSampler()(box_cspace, rng, 64)
        assert len(batch) == 64
        assert box_cspace.valid(batch.configs).all()
        assert batch.attempts >= 64

    def test_respects_region(self, box_cspace, rng):
        region = AABB([-5, -5], [-3, -3])
        batch = UniformSampler()(box_cspace, rng, 32, within=region)
        assert region.contains(batch.configs).all()

    def test_blocked_region_bounded_attempts(self, box_cspace, rng):
        blocked = AABB([-0.9, -0.9], [0.9, 0.9])
        sampler = UniformSampler(empty_round_limit=3)
        batch = sampler(box_cspace, rng, 16, within=blocked)
        assert len(batch) == 0
        assert batch.attempts <= 3 * 16

    def test_invalid_empty_round_limit(self):
        with pytest.raises(ValueError):
            UniformSampler(empty_round_limit=0)


class TestGaussianSampler:
    def test_samples_near_obstacles(self, box_cspace, rng):
        batch = GaussianSampler(sigma=0.8)(box_cspace, rng, 48)
        assert len(batch) > 0
        assert box_cspace.valid(batch.configs).all()
        # Samples concentrate near obstacle boundaries: distance to the
        # nearest obstacle should be small for most.
        env = box_cspace.env
        dists = np.minimum.reduce([o.distance(batch.configs) for o in env.obstacles])
        assert np.median(dists) < 1.5

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianSampler(sigma=0.0)

    def test_open_region_gives_up_quickly(self, box_cspace, rng):
        open_box = AABB([-5, -5], [-3, -3])
        sampler = GaussianSampler(sigma=0.2, empty_round_limit=2)
        batch = sampler(box_cspace, rng, 8, within=open_box)
        assert len(batch) == 0 or batch.attempts < 1000


class TestObstacleBasedSampler:
    def test_samples_valid_and_near_boundary(self, box_cspace, rng):
        batch = ObstacleBasedSampler()(box_cspace, rng, 16)
        if len(batch):
            assert box_cspace.valid(batch.configs).all()
            env = box_cspace.env
            dists = np.minimum.reduce([o.distance(batch.configs) for o in env.obstacles])
            assert np.median(dists) < 1.0


class TestBridgeSampler:
    def test_finds_narrow_passage(self, rng):
        # Two obstacles with a thin gap; bridge samples should land in it.
        from repro.geometry import Environment
        env = Environment(
            AABB([-5, -5], [5, 5]),
            [AABB([-5, -1], [-0.25, 1]), AABB([0.25, -1], [5, 1])],
        )
        from repro.cspace import EuclideanCSpace
        cs = EuclideanCSpace(env)
        batch = BridgeTestSampler(sigma=2.0)(cs, rng, 24)
        assert len(batch) > 0
        assert cs.valid(batch.configs).all()
        in_gap = np.abs(batch.configs[:, 0]) < 1.0
        assert in_gap.mean() > 0.5


class TestMixtureSampler:
    def test_budget_split(self, box_cspace, rng):
        mix = MixtureSampler([UniformSampler(), GaussianSampler(sigma=0.8)], [0.5, 0.5])
        batch = mix(box_cspace, rng, 40)
        assert 0 < len(batch) <= 40
        assert box_cspace.valid(batch.configs).all()

    def test_open_space_degrades_to_uniform_part(self, rng):
        from repro.geometry import Environment
        from repro.cspace import EuclideanCSpace
        env = Environment(AABB([-5, -5], [5, 5]), [])
        cs = EuclideanCSpace(env)
        mix = MixtureSampler([UniformSampler(), GaussianSampler(sigma=0.5)], [0.5, 0.5])
        batch = mix(cs, rng, 40)
        # Gaussian half accepts nothing without obstacles.
        assert 15 <= len(batch) <= 25

    def test_validation(self):
        with pytest.raises(ValueError):
            MixtureSampler([])
        with pytest.raises(ValueError):
            MixtureSampler([UniformSampler()], [0.5, 0.5])
        with pytest.raises(ValueError):
            MixtureSampler([UniformSampler()], [-1.0])
