"""Typed trace events.

A trace is a flat stream of :class:`Event` records.  Spans (phases with a
duration) are encoded as a ``span_begin`` / ``span_end`` pair sharing a
name; everything else is a ``point`` event.  Timestamps come from whatever
clock the emitting :class:`~repro.obs.tracer.Tracer` was built with — the
simulator's virtual clock for replayed machines, ``time.perf_counter``
for true-parallel runs — so one summariser serves both worlds.

Canonical names are defined here so emitters and the summariser never
drift: the phase vocabulary (``subdivide`` … ``connect``) is shared by the
PRM and RRT drivers (see ``PhaseBreakdown`` in :mod:`repro.core.metrics`),
and the point vocabulary covers the work-stealing protocol, task
execution, and repartition decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "Event",
    "SPAN_BEGIN",
    "SPAN_END",
    "POINT",
    "PHASE_SUBDIVIDE",
    "PHASE_GENERATE",
    "PHASE_WEIGH",
    "PHASE_REPARTITION",
    "PHASE_CONSTRUCT",
    "PHASE_CONNECT",
    "PHASE_TERMINATE",
    "PHASE_SERVE",
    "PHASE_NAMES",
    "EV_TASK_START",
    "EV_TASK_END",
    "EV_TASK_RETRY",
    "EV_TASK_ABANDONED",
    "EV_WORKER_DEATH",
    "EV_STEAL_REQUEST",
    "EV_STEAL_REPLY",
    "EV_STEAL_TRANSFER",
    "EV_STEAL_FAIL",
    "EV_REPARTITION_DECISION",
    "EV_REMOTE_ACCESS",
    "EV_QUERY_START",
    "EV_QUERY_END",
    "EV_CACHE_HIT",
    "EV_CACHE_MISS",
    "EV_CACHE_EVICT",
    "EV_BATCH_FLUSH",
    "EV_REQUEST_REJECTED",
    "EV_SHM_PUBLISH",
    "EV_SHM_ATTACH",
    "EV_POOL_DISPATCH",
]

# -- event kinds -------------------------------------------------------------
SPAN_BEGIN = "span_begin"
SPAN_END = "span_end"
POINT = "point"

# -- canonical phase (span) names -------------------------------------------
PHASE_SUBDIVIDE = "subdivide"        # region construction
PHASE_GENERATE = "generate"          # PRM node generation
PHASE_WEIGH = "weigh"                # LB weight probe (k-rays etc.)
PHASE_REPARTITION = "repartition"    # installing the new partition
PHASE_CONSTRUCT = "construct"        # the load-balanced bulk phase
PHASE_CONNECT = "connect"            # inter-region connection
PHASE_TERMINATE = "terminate"        # termination detection
PHASE_SERVE = "serve"                # batched query serving (post-build)

#: Every phase, in canonical timeline order.
PHASE_NAMES = (
    PHASE_SUBDIVIDE,
    PHASE_GENERATE,
    PHASE_WEIGH,
    PHASE_REPARTITION,
    PHASE_CONSTRUCT,
    PHASE_TERMINATE,
    PHASE_CONNECT,
    PHASE_SERVE,
)

# -- canonical point names ---------------------------------------------------
EV_TASK_START = "task_start"
EV_TASK_END = "task_end"
EV_TASK_RETRY = "task_retry"          # failed attempt rescheduled (attrs: task, attempt, reason)
EV_TASK_ABANDONED = "task_abandoned"  # retry budget exhausted under "degrade"
EV_WORKER_DEATH = "worker_death"      # a worker process / PE died
EV_STEAL_REQUEST = "steal_request"    # thief -> victim request sent
EV_STEAL_REPLY = "steal_reply"        # thief received a reply
EV_STEAL_TRANSFER = "steal_transfer"  # victim handed tasks over
EV_STEAL_FAIL = "steal_fail"          # victim had nothing to give
EV_REPARTITION_DECISION = "repartition_decision"
EV_REMOTE_ACCESS = "remote_access"
EV_QUERY_START = "query_start"        # one planning query begins (attrs: query)
EV_QUERY_END = "query_end"            # one planning query ends (attrs: query, latency, solved)
EV_CACHE_HIT = "cache_hit"            # snapshot served from cache (attrs: key)
EV_CACHE_MISS = "cache_miss"          # snapshot had to be built (attrs: key, coalesced)
EV_CACHE_EVICT = "cache_evict"        # LRU eviction under memory budget (attrs: key, bytes)
EV_BATCH_FLUSH = "batch_flush"        # coalescer flushed a batch (attrs: key, size, reason, waited)
EV_REQUEST_REJECTED = "request_rejected"  # admission control turned a request away (attrs: queued)
EV_SHM_PUBLISH = "shm_publish"        # snapshot published (attrs: label, segment, bytes, reused)
EV_SHM_ATTACH = "shm_attach"          # worker mapped a segment (attrs: label, bytes, seconds, pid)
EV_POOL_DISPATCH = "pool_dispatch"    # pool dispatch accounting (attrs: policy, chunks, tasks)


@dataclass(frozen=True, slots=True)
class Event:
    """One trace record.

    ``ts`` is in the emitting tracer's clock domain (virtual seconds for
    simulated runs, wall seconds for real ones).  ``pe`` is the processing
    element the event belongs to, when there is one.  ``attrs`` carries
    event-specific payload and must stay JSON-serialisable.
    """

    ts: float
    kind: str
    name: str
    pe: "int | None" = None
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> "dict[str, Any]":
        """Compact dict form; ``pe``/``attrs`` omitted when empty."""
        d: "dict[str, Any]" = {"ts": self.ts, "kind": self.kind, "name": self.name}
        if self.pe is not None:
            d["pe"] = self.pe
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    @classmethod
    def from_json(cls, d: "Mapping[str, Any]") -> "Event":
        """Inverse of :meth:`to_json`, coercing field types."""
        return cls(
            ts=float(d["ts"]),
            kind=str(d["kind"]),
            name=str(d["name"]),
            pe=d.get("pe"),
            attrs=dict(d.get("attrs", {})),
        )
