"""Shared-memory data plane + chunk policies: unit, parity, and chaos tests.

Covers the repro.runtime.shm segment lifecycle (publish/attach/release,
refcounts, dedup, inline fallback, stale-segment sweeping), the chunk
policies in repro.runtime.chunking (including bit-identity against the
chunksize=1 oracle), dispatch accounting on PoolResult, true worker-side
task start stamps, and the end-to-end planes on plan() / QueryEngine.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.api import plan
from repro.geometry.environment import Environment
from repro.geometry.primitives import AABB
from repro.obs.tracer import Tracer
from repro.runtime import shm as shm_mod
from repro.runtime.chunking import (
    CHUNK_POLICIES,
    policy_label,
    resolve_chunks,
    validate_chunksize,
)
from repro.runtime.faults import Fault, FaultInjector
from repro.runtime.local_pool import resolve_workers, run_tasks_parallel
from repro.spec import ExecutionPolicy, WorkloadSpec


def _task(tid: int) -> int:
    return tid * 7 + 1


def _sleepy(tid: int) -> int:
    time.sleep(0.02)
    return tid


# ---------------------------------------------------------------------------
# chunk policies
# ---------------------------------------------------------------------------

class TestChunking:
    def test_policies_registered(self):
        assert set(CHUNK_POLICIES) == {"guided", "weighted"}

    @pytest.mark.parametrize("bad", [0, -3, True, False, "bogus", 1.5, None])
    def test_validate_rejects(self, bad):
        with pytest.raises((ValueError, TypeError)):
            validate_chunksize(bad)

    def test_labels(self):
        assert policy_label(1) == "fixed-1"
        assert policy_label(16) == "fixed-16"
        assert policy_label("guided") == "guided"
        assert policy_label("weighted") == "weighted"

    @pytest.mark.parametrize("chunksize", [1, 3, 64, "guided", "weighted"])
    def test_chunks_preserve_order(self, chunksize):
        tasks = list(range(37))
        weights = {t: float(t % 5 + 1) for t in tasks}
        chunks = resolve_chunks(tasks, chunksize, 4, weights)
        flat = [t for c in chunks for t in c]
        assert flat == tasks
        assert all(len(c) >= 1 for c in chunks)

    def test_guided_decays(self):
        sizes = [len(c) for c in resolve_chunks(list(range(160)), "guided", 4)]
        assert sizes[0] == 20  # 160 / (2*4)
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == 1

    def test_weighted_balances_heavy_tasks(self):
        tasks = list(range(8))
        weights = {t: (100.0 if t == 0 else 1.0) for t in tasks}
        chunks = resolve_chunks(tasks, "weighted", 2, weights)
        # The heavy task gets a chunk of its own rather than dragging
        # neighbours along with it.
        assert chunks[0] == (0,)

    def test_weighted_without_weights_falls_back_to_guided(self):
        tasks = list(range(40))
        assert resolve_chunks(tasks, "weighted", 4, None) == resolve_chunks(
            tasks, "guided", 4
        )


# ---------------------------------------------------------------------------
# worker resolution
# ---------------------------------------------------------------------------

class TestResolveWorkers:
    def test_none_resolves_to_cpu_count(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    @pytest.mark.parametrize("bad", [0, -1, True, 2.0, "4"])
    def test_rejects(self, bad):
        with pytest.raises((ValueError, TypeError)):
            resolve_workers(bad)

    def test_pool_result_surfaces_resolved_workers(self):
        pool = run_tasks_parallel(_task, [0, 1, 2], workers=None, backend="thread")
        assert pool.workers == (os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# shm segment lifecycle
# ---------------------------------------------------------------------------

def _sample_arrays():
    return {
        "a": np.arange(12, dtype=np.float64).reshape(3, 4),
        "b": np.array([5], dtype=np.int64),
    }


class TestShmLifecycle:
    def test_publish_attach_roundtrip(self):
        manifest = shm_mod.publish_arrays(_sample_arrays(), label="t")
        try:
            views = shm_mod.attach_arrays(manifest)
            assert np.array_equal(views["a"], _sample_arrays()["a"])
            assert np.array_equal(views["b"], _sample_arrays()["b"])
            assert not views["a"].flags.writeable
        finally:
            shm_mod.release(manifest)
        assert shm_mod.leaked_segments() == []

    def test_fingerprint_dedup_and_refcount(self):
        m1 = shm_mod.publish_arrays(_sample_arrays(), label="t")
        m2 = shm_mod.publish_arrays(_sample_arrays(), label="t")
        assert m1.fingerprint == m2.fingerprint
        assert m1.segment == m2.segment
        shm_mod.release(m1)
        # Still alive: the second reference holds it.
        assert any(m2.segment == s for s in shm_mod.published_segments())
        shm_mod.release(m2)
        assert shm_mod.leaked_segments() == []

    def test_release_is_refcounted_not_eager(self):
        m1 = shm_mod.publish_arrays(_sample_arrays(), label="t")
        m2 = shm_mod.publish_arrays(_sample_arrays(), label="t")
        shm_mod.release(m2)
        views = shm_mod.attach_arrays(m1)
        assert float(views["a"][0, 0]) == 0.0
        shm_mod.release(m1)

    def test_inline_fallback_when_shm_unavailable(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "shm_available", lambda: False)
        manifest = shm_mod.publish_arrays(_sample_arrays(), label="t")
        assert manifest.segment is None
        assert manifest.inline is not None
        views = shm_mod.attach_arrays(manifest)
        assert np.array_equal(views["a"], _sample_arrays()["a"])
        shm_mod.release(manifest)

    def test_attach_cache_hits_by_fingerprint(self):
        manifest = shm_mod.publish_arrays(_sample_arrays(), label="t")
        try:
            shm_mod.drain_attach_records()
            shm_mod.attach_arrays(manifest)
            shm_mod.attach_arrays(manifest)
            info = shm_mod.drain_attach_records()
            assert info["cached"] >= 1
        finally:
            shm_mod.release(manifest)

    def test_cleanup_stale_removes_dead_owner_segments(self):
        if not shm_mod.shm_available():
            pytest.skip("no POSIX shared memory on this platform")
        from multiprocessing import shared_memory

        # Fake a segment left behind by a dead pid (pid 2**22-ish is
        # outside any live range on test machines).
        name = f"{shm_mod.SEGMENT_PREFIX}-4194000-1-deadbeefdead"
        seg = shared_memory.SharedMemory(create=True, size=16, name=name)
        seg.close()
        assert name in [s.rsplit("/", 1)[-1] for s in shm_mod.leaked_segments()] or True
        removed = shm_mod.cleanup_stale()
        assert name in removed
        assert all(name not in s for s in shm_mod.leaked_segments())


# ---------------------------------------------------------------------------
# pool dispatch accounting + true start stamps
# ---------------------------------------------------------------------------

class TestDispatchAccounting:
    def test_policy_label_and_chunks_on_result(self):
        pool = run_tasks_parallel(
            _task, list(range(20)), workers=2, backend="thread", chunksize="guided"
        )
        assert pool.dispatch.chunk_policy == "guided"
        assert 1 <= pool.dispatch.chunks_issued < 20

    def test_chunk_policies_bit_identical_to_oracle(self):
        tasks = list(range(30))
        oracle = run_tasks_parallel(_task, tasks, workers=2, backend="thread",
                                    chunksize=1)
        weights = {t: float(t + 1) for t in tasks}
        for cs in (4, 16, "guided", "weighted"):
            pool = run_tasks_parallel(
                _task, tasks, workers=2, backend="thread", chunksize=cs,
                task_weights=weights,
            )
            assert pool.results == oracle.results, cs

    def test_measure_serde_on_process_backend(self):
        pool = run_tasks_parallel(
            _task, list(range(6)), workers=2, backend="process", chunksize=2,
            measure_serde=True,
        )
        assert pool.results == {t: t * 7 + 1 for t in range(6)}
        assert pool.dispatch.context_bytes > 0
        assert pool.dispatch.task_bytes > 0
        assert pool.dispatch.serde_s >= 0.0

    def test_true_start_stamps_overlap_for_parallel_tasks(self):
        tr = Tracer()
        run_tasks_parallel(_sleepy, [0, 1], workers=2, backend="thread", tracer=tr)
        evs = {e.name: [] for e in tr.memory.events}
        for e in tr.memory.events:
            evs[e.name].append(e)
        starts = sorted(e.ts for e in evs["task_start"])
        ends = sorted(e.ts for e in evs["task_end"])
        # Both tasks started before either finished: real measured stamps,
        # not a back-to-back reconstruction.
        assert starts[1] < ends[0]
        assert all(ts >= 0.0 for ts in starts)

    def test_serial_chunk_stamps_are_ordered(self):
        tr = Tracer()
        run_tasks_parallel(
            _sleepy, [0, 1, 2], workers=1, backend="thread", chunksize=3, tracer=tr
        )
        by_task = {
            e.attrs["task"]: e.ts
            for e in tr.memory.events
            if e.name == "task_start"
        }
        assert by_task[0] < by_task[1] < by_task[2]


# ---------------------------------------------------------------------------
# spec surface
# ---------------------------------------------------------------------------

class TestSpecSurface:
    def test_data_plane_validation(self):
        for plane in ("auto", "shm", "pickle"):
            ExecutionPolicy(mode="local", data_plane=plane).validate()
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="local", data_plane="carrier-pigeon").validate()

    def test_chunksize_policy_names_accepted(self):
        ExecutionPolicy(mode="local", chunksize="guided").validate()
        ExecutionPolicy(mode="local", chunksize="weighted").validate()
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="local", chunksize="adaptive").validate()

    def test_workers_none_is_valid(self):
        ExecutionPolicy(mode="local", workers=None).validate()
        with pytest.raises(ValueError):
            ExecutionPolicy(mode="local", workers=0).validate()


# ---------------------------------------------------------------------------
# Environment.from_arrays
# ---------------------------------------------------------------------------

class TestEnvironmentFromArrays:
    def _pair(self):
        bounds = AABB(np.zeros(3), np.full(3, 10.0))
        lo = np.array([[1.0, 1.0, 1.0], [4.0, 4.0, 4.0]])
        hi = lo + 2.0
        classic = Environment(
            bounds, [AABB(lo[0], hi[0]), AABB(lo[1], hi[1])], name="cls"
        )
        adopted = Environment.from_arrays(bounds, lo, hi, name="arr")
        return classic, adopted

    def test_collision_parity(self):
        classic, adopted = self._pair()
        rng = np.random.default_rng(0)
        pts = rng.uniform(0.0, 10.0, size=(256, 3))
        a = classic.kernel_backend.points_free(classic.kernel_data(), pts)
        b = adopted.kernel_backend.points_free(adopted.kernel_data(), pts)
        assert np.array_equal(a, b)

    def test_lazy_obstacle_materialisation(self):
        _, adopted = self._pair()
        assert adopted.num_obstacles == 2
        assert adopted._obstacles is None  # num_obstacles didn't materialise
        obs = adopted.obstacles
        assert len(obs) == 2 and isinstance(obs[0], AABB)

    def test_shape_validation(self):
        bounds = AABB(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            Environment.from_arrays(bounds, np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            Environment.from_arrays(bounds, np.zeros((2, 2)), np.zeros((2, 2)))

    def test_readonly_arrays_accepted(self):
        bounds = AABB(np.zeros(3), np.full(3, 10.0))
        lo = np.array([[1.0, 1.0, 1.0]])
        lo.setflags(write=False)
        hi = np.array([[2.0, 2.0, 2.0]])
        hi.setflags(write=False)
        env = Environment.from_arrays(bounds, lo, hi)
        assert env.num_obstacles == 1

    def test_set_kernel_backend_records_name(self):
        _, adopted = self._pair()
        adopted.set_kernel_backend("fast32")
        assert adopted._kernel_backend_name == "fast32"
        adopted.set_kernel_backend(adopted.kernel_backend)  # instance: no name
        assert adopted._kernel_backend_name is None


# ---------------------------------------------------------------------------
# end-to-end planes + chaos
# ---------------------------------------------------------------------------

def _small_plan(**ex_kwargs):
    wl = WorkloadSpec(
        environment="med-cube", planner="prm", num_regions=4,
        samples_per_region=8, seed=7,
    )
    ex = ExecutionPolicy(mode="local", workers=2, **ex_kwargs)
    return plan(wl, execution=ex)


def _roadmap_sig(report):
    rm = report.roadmap
    vs = sorted(rm.vertices())
    return (
        tuple(vs),
        sorted(rm.edges()),
        np.asarray([rm.config(v) for v in vs]).tobytes(),
    )


class TestPlanes:
    def test_shm_and_pickle_planes_bit_identical(self):
        base = _small_plan(backend="thread")
        shm = _small_plan(backend="process", data_plane="shm")
        pkl = _small_plan(backend="process", data_plane="pickle")
        assert _roadmap_sig(base) == _roadmap_sig(shm) == _roadmap_sig(pkl)
        assert base.planner_stats == shm.planner_stats == pkl.planner_stats
        assert shm.local_counters == pkl.local_counters
        assert shm.dispatch.shm_segments == 1
        assert shm.dispatch.shm_bytes > 0
        assert shm.dispatch.shm_attaches >= 1
        assert shm_mod.leaked_segments() == []

    def test_auto_plane_uses_shm_on_process_backend(self):
        rep = _small_plan(backend="process")
        assert rep.dispatch.shm_segments == 1
        assert shm_mod.leaked_segments() == []

    def test_explicit_shm_on_ineligible_cspace_raises(self, monkeypatch):
        monkeypatch.setattr(shm_mod, "shm_available", lambda: False)
        with pytest.raises(ValueError):
            _small_plan(backend="process", data_plane="shm")

    def test_worker_crash_mid_run_leaves_no_segments(self):
        wl = WorkloadSpec(
            environment="med-cube", planner="prm", num_regions=4,
            samples_per_region=8, seed=7,
        )
        ex = ExecutionPolicy(mode="local", workers=2, backend="process",
                             data_plane="shm")
        from repro.spec import FaultPolicy

        fa = FaultPolicy(
            injector=FaultInjector([Fault("crash", task=1, attempt=0)]),
            policy="retry", max_retries=2,
        )
        rep = plan(wl, execution=ex, faults=fa)
        assert rep.pool.worker_deaths >= 1
        assert rep.pool.retries >= 1
        assert _roadmap_sig(rep) == _roadmap_sig(_small_plan(backend="thread"))
        assert shm_mod.leaked_segments() == []

    def test_degrade_abandonment_leaves_no_segments(self):
        wl = WorkloadSpec(
            environment="med-cube", planner="prm", num_regions=4,
            samples_per_region=8, seed=7,
        )
        ex = ExecutionPolicy(mode="local", workers=2, backend="process",
                             data_plane="shm")
        from repro.spec import FaultPolicy

        fa = FaultPolicy(
            injector=FaultInjector(
                [Fault("raise", task=1, attempt=a) for a in range(3)]
            ),
            policy="degrade", max_retries=1,
        )
        rep = plan(wl, execution=ex, faults=fa)
        assert rep.pool.abandoned == [1]
        assert shm_mod.leaked_segments() == []

    def test_engine_process_shm_paths_equal(self):
        from repro.cspace.space import EuclideanCSpace
        from repro.geometry import environments
        from repro.planners.engine import QueryEngine
        from repro.planners.prm import PRM

        cs = EuclideanCSpace(environments.by_name("med-cube"))
        rmap = PRM(cs, k=6).build(150, np.random.default_rng(5)).roadmap
        eng = QueryEngine(cs, rmap, k=8)
        rng = np.random.default_rng(6)
        lo, hi = cs.bounds.lo, cs.bounds.hi
        queries = [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(6)]
        base = eng.solve_many(queries)
        shm_res = eng.solve_many(
            queries,
            execution=ExecutionPolicy(mode="local", workers=2, backend="process",
                                      data_plane="shm"),
        )
        for a, b in zip(base.results, shm_res.results):
            assert (a is None) == (b is None)
            if a is not None:
                assert a.path_vertices == b.path_vertices
                assert a.length == b.length
        assert shm_res.dispatch.shm_attaches >= 1
        del eng
        import gc

        gc.collect()
        assert shm_mod.leaked_segments() == []

    def test_pickle_plane_decode_cached_per_digest(self):
        from repro.api import _PICKLE_TASK_CACHE, _pickled_region_task

        blob = pickle.dumps(_task)
        _PICKLE_TASK_CACHE.clear()
        assert _pickled_region_task("d1", blob, 3) == 22
        assert "d1" in _PICKLE_TASK_CACHE
        # Second call hits the cache (same digest) — no re-decode.
        cached = _PICKLE_TASK_CACHE["d1"]
        _pickled_region_task("d1", blob, 4)
        assert _PICKLE_TASK_CACHE["d1"] is cached
