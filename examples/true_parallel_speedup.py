#!/usr/bin/env python
"""Actual wall-clock speedup on your machine.

The simulator answers "how would this scale to 3,072 cores?"; this example
shows the other side: regional roadmap construction is embarrassingly
parallel, so a thread pool with dynamic dispatch (the shared-memory
analogue of work stealing) gives real speedups on a laptop.

Run:  python examples/true_parallel_speedup.py
"""

import numpy as np

from repro.bench import format_table
from repro.cspace import EuclideanCSpace
from repro.geometry import AABB, med_cube
from repro.planners import PRM
from repro.runtime import run_tasks_parallel
from repro.subdivision import UniformSubdivision

ENV = med_cube()
CSPACE = EuclideanCSpace(ENV)
SUBDIVISION = UniformSubdivision(ENV.bounds, 256, overlap=0.1)
SAMPLES_PER_REGION = 40


def build_region(rid: int):
    """The per-region work: a real regional PRM build."""
    region = SUBDIVISION.region_of(rid)
    rng = np.random.default_rng(np.random.SeedSequence(entropy=7, spawn_key=(rid,)))
    planner = PRM(CSPACE, k=5, connect_same_component=False)
    result = planner.build(
        SAMPLES_PER_REGION, rng, within=region.sample_bounds, id_base=rid << 20
    )
    return result.roadmap.num_vertices, result.roadmap.num_edges


def main() -> None:
    region_ids = SUBDIVISION.graph.region_ids()
    print(f"{len(region_ids)} regions x {SAMPLES_PER_REGION} samples, med-cube\n")
    rows = []
    serial_time = None
    for workers in (1, 2, 4, 8):
        out = run_tasks_parallel(build_region, region_ids, workers=workers, backend="thread")
        if serial_time is None:
            serial_time = out.wall_time
        vertices = sum(v for v, _e in out.results.values())
        rows.append(
            [
                workers,
                f"{out.wall_time:.2f}s",
                f"{serial_time / out.wall_time:.2f}x",
                vertices,
            ]
        )
    print(format_table(["workers", "wall time", "speedup", "roadmap nodes"], rows))
    print(
        "\n(NumPy releases the GIL inside collision kernels, so even the "
        "thread backend scales; use backend='process' for fully Python-bound "
        "workloads.)"
    )


if __name__ == "__main__":
    main()
