"""Load-imbalance metrics used throughout the evaluation.

The paper's primary measure is the coefficient of variation of per-PE
load (σ/µ, Sec. IV-B); improvement percentages compare the most-loaded
processor before and after balancing (Fig. 4b).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "coefficient_of_variation",
    "percent_improvement",
    "speedup",
    "max_load_reduction",
    "ideal_loads",
]


def coefficient_of_variation(loads: np.ndarray) -> float:
    """σ/µ of per-PE loads; 0 for a perfectly balanced machine."""
    loads = np.asarray(loads, dtype=float)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    mu = loads.mean()
    if mu == 0.0:
        return 0.0
    return float(loads.std() / mu)


def percent_improvement(before: float, after: float) -> float:
    """Percentage reduction from ``before`` to ``after`` (positive = better)."""
    if before == 0.0:
        return 0.0
    return 100.0 * (before - after) / before


def speedup(baseline_time: float, improved_time: float) -> float:
    """How many times faster ``improved_time`` is than ``baseline_time``."""
    if improved_time <= 0.0:
        raise ValueError("improved_time must be positive")
    return baseline_time / improved_time


def max_load_reduction(loads_before: np.ndarray, loads_after: np.ndarray) -> float:
    """Percent reduction of the most-loaded PE — the paper's "potential
    improvement" metric (Fig. 4b measures it for V_free, sample counts and
    runtime)."""
    before = float(np.max(np.asarray(loads_before, dtype=float)))
    after = float(np.max(np.asarray(loads_after, dtype=float)))
    return percent_improvement(before, after)


def ideal_loads(total: float, num_pes: int) -> np.ndarray:
    """The perfectly balanced distribution of ``total`` load (Fig. 5c's
    "Ideal" line)."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    return np.full(num_pes, total / num_pes)
