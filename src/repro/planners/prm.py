"""Sequential Probabilistic Roadmap Method (Kavraki et al., 1996).

This is the planner invoked inside each region by the uniform-subdivision
parallel PRM (line 8 of Algorithm 1 in the paper).  It samples valid
configurations, connects each to its k nearest neighbours with a local
planner, and returns the regional roadmap together with the operation
counts the virtual-time model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.sampling import UniformSampler
from ..cspace.space import ConfigurationSpace
from ..geometry.primitives import AABB
from ..knn.brute import BruteForceNN
from .roadmap import Roadmap
from .stats import PlannerStats

__all__ = ["PRM", "PRMResult"]


@dataclass
class PRMResult:
    """Roadmap plus the work ledger for the invocation."""

    roadmap: Roadmap
    stats: PlannerStats


class PRM:
    """Sequential PRM.

    Parameters
    ----------
    cspace:
        The configuration space to plan in.
    sampler:
        A sampler from :mod:`repro.cspace.sampling` (default uniform).
    local_planner:
        Edge validator (default straight-line at resolution 0.25).
    k:
        Number of nearest-neighbour connection attempts per node.
    connect_same_component:
        If False (default), skip connection attempts between vertices
        already in the same connected component — the standard PRM
        optimisation.
    nn_factory:
        Callable ``dim -> NeighborFinder`` (default brute force, the right
        choice at regional roadmap sizes).
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        sampler=None,
        local_planner=None,
        k: int = 6,
        connect_same_component: bool = True,
        nn_factory=None,
    ):
        self.cspace = cspace
        self.sampler = sampler or UniformSampler()
        self.local_planner = local_planner or StraightLinePlanner(resolution=0.25)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.connect_same_component = connect_same_component
        self.nn_factory = nn_factory or BruteForceNN

    def build(
        self,
        n_samples: int,
        rng: np.random.Generator,
        within: AABB | None = None,
        roadmap: Roadmap | None = None,
        id_base: int = 0,
    ) -> PRMResult:
        """Construct (or extend) a roadmap with ``n_samples`` new samples.

        ``within`` restricts sampling to a sub-box of C-space — this is how
        regional roadmaps are built.  ``id_base`` offsets vertex ids so that
        regional roadmaps have globally unique ids.
        """
        stats = PlannerStats()
        rmap = roadmap if roadmap is not None else Roadmap(self.cspace.dim)

        batch = self.sampler(self.cspace, rng, n_samples, within=within)
        stats.sample_attempts += batch.attempts
        stats.samples_accepted += len(batch)

        nn = self.nn_factory(self.cspace.dim)
        # Seed NN structure with pre-existing vertices (extension mode).
        ids, cfgs = rmap.configs_array()
        if ids.size:
            nn.add_batch(ids, cfgs)

        batched = not self.connect_same_component and hasattr(self.local_planner, "batch_pairs")
        next_local = rmap.num_vertices
        for cfg in batch.configs:
            vid = id_base + next_local
            next_local += 1
            rmap.add_vertex(cfg, vid)

            neighbors = nn.knn(cfg, self.k)
            stats.nn_queries += 1
            if batched and len(neighbors) > 1:
                nbr_ids = [n for n, _d in neighbors]
                ends = np.stack([rmap.config(n) for n in nbr_ids])
                starts = np.broadcast_to(cfg, ends.shape)
                ok, checks, lengths = self.local_planner.batch_pairs(self.cspace, starts, ends)
                stats.lp_calls += len(nbr_ids)
                stats.lp_checks += checks
                for i, nbr_id in enumerate(nbr_ids):
                    if ok[i]:
                        stats.lp_successes += 1
                        if rmap.add_edge(vid, nbr_id, float(lengths[i])):
                            stats.edges_added += 1
            else:
                for nbr_id, _dist in neighbors:
                    if self.connect_same_component and rmap.same_component(vid, nbr_id):
                        continue
                    result = self.local_planner(self.cspace, cfg, rmap.config(nbr_id))
                    stats.lp_calls += 1
                    stats.lp_checks += result.checks
                    if result.valid:
                        stats.lp_successes += 1
                        if rmap.add_edge(vid, nbr_id, result.length):
                            stats.edges_added += 1
            nn.add(vid, cfg)
        stats.nn_distance_evals += nn.stats.distance_evals
        return PRMResult(rmap, stats)

    def connect_roadmaps(
        self,
        rmap: Roadmap,
        ids_a: np.ndarray,
        ids_b: np.ndarray,
        k: int | None = None,
        max_attempts: int | None = None,
    ) -> PlannerStats:
        """Attempt connections between two vertex sets of one merged roadmap.

        Used for the inter-region connection phase (lines 10-12 of
        Algorithm 1): for each vertex in ``ids_a``, try its ``k`` nearest
        vertices in ``ids_b``.
        """
        stats = PlannerStats()
        k = k or self.k
        ids_b = np.asarray(ids_b, dtype=np.int64)
        if ids_b.size == 0 or len(ids_a) == 0:
            return stats
        nn = self.nn_factory(self.cspace.dim)
        nn.add_batch(ids_b, np.stack([rmap.config(int(i)) for i in ids_b]))
        batched = not self.connect_same_component and hasattr(self.local_planner, "batch_pairs")
        if batched:
            # Collect all (u, v) candidate pairs, then validate in one batch.
            pairs: "list[tuple[int, int]]" = []
            for u in np.asarray(ids_a, dtype=np.int64):
                u = int(u)
                stats.nn_queries += 1
                for v, _dist in nn.knn(rmap.config(u), k):
                    pairs.append((u, v))
                    if max_attempts is not None and len(pairs) >= max_attempts:
                        break
                if max_attempts is not None and len(pairs) >= max_attempts:
                    break
            if pairs:
                starts = np.stack([rmap.config(u) for u, _v in pairs])
                ends = np.stack([rmap.config(v) for _u, v in pairs])
                ok, checks, lengths = self.local_planner.batch_pairs(self.cspace, starts, ends)
                stats.lp_calls += len(pairs)
                stats.lp_checks += checks
                for i, (u, v) in enumerate(pairs):
                    if ok[i]:
                        stats.lp_successes += 1
                        if rmap.add_edge(u, v, float(lengths[i])):
                            stats.edges_added += 1
            stats.nn_distance_evals += nn.stats.distance_evals
            return stats
        attempts = 0
        for u in np.asarray(ids_a, dtype=np.int64):
            u = int(u)
            cfg = rmap.config(u)
            stats.nn_queries += 1
            for v, _dist in nn.knn(cfg, k):
                if max_attempts is not None and attempts >= max_attempts:
                    stats.nn_distance_evals += nn.stats.distance_evals
                    return stats
                if self.connect_same_component and rmap.same_component(u, v):
                    continue
                attempts += 1
                result = self.local_planner(self.cspace, cfg, rmap.config(v))
                stats.lp_calls += 1
                stats.lp_checks += result.checks
                if result.valid:
                    stats.lp_successes += 1
                    if rmap.add_edge(u, v, result.length):
                        stats.edges_added += 1
        stats.nn_distance_evals += nn.stats.distance_evals
        return stats
