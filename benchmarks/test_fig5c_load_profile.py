"""Fig. 5(c): per-PE load distribution at 192 PEs."""

import numpy as np

from repro.bench import fig5c_load_profile


def test_fig5c_load_profile(once):
    out = once(fig5c_load_profile)
    without = out["without_lb"]
    repart = out["repartitioned"]
    ideal = out["ideal"]
    # Node conservation: LB moves nodes, never creates or destroys them.
    assert np.isclose(without.sum(), repart.sum())
    assert np.isclose(ideal.sum(), repart.sum())
    # Repartitioning pulls the maximum toward the ideal line.
    assert repart.max() < without.max()
    assert repart.max() <= 1.6 * ideal[0]
    # The unbalanced run has a wide spread.
    assert without.max() > 1.5 * ideal[0]
