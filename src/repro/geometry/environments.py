"""Procedural builders for the benchmark environments used in the paper.

The paper evaluates on:

* **model-2d** (Sec. IV-B): a 2-D square workspace with a single square
  obstacle equidistant from the bounding box — the analytically tractable
  model environment.
* **med-cube / small-cube / free** (PRM, Sec. IV-C1): 3-D narrow-passage
  variants of the model with roughly 24%, 6% and 0% of the workspace
  blocked by a single central cube.
* **walls / walls-45**: narrow-passage wall environments (Fig. 8 captions);
  the running text uses the cube names, so these are provided as extras.
* **mixed / mixed-30 / free** (RRT, Sec. IV-C2): cluttered environments
  that are 60%, 30% and 0% blocked.

All builders return an :class:`~repro.geometry.environment.Environment`
whose blocked fraction matches the paper's figure within a small tolerance
(checked by the test-suite).
"""

from __future__ import annotations

import numpy as np

from .environment import Environment
from .primitives import AABB

__all__ = [
    "model_2d",
    "cube_env",
    "med_cube",
    "small_cube",
    "free_env",
    "walls_env",
    "cluttered_env",
    "mixed_env",
    "mixed_30_env",
    "by_name",
]

#: Default workspace half-extent used by all builders.
DEFAULT_HALF_EXTENT = 10.0


def _unit_workspace(dim: int, half: float = DEFAULT_HALF_EXTENT) -> AABB:
    return AABB(-half * np.ones(dim), half * np.ones(dim))


def model_2d(obstacle_fraction: float = 0.25, half: float = DEFAULT_HALF_EXTENT) -> Environment:
    """The paper's theoretical model: one square obstacle centred in a 2-D
    square workspace, equidistant from the bounding box.

    ``obstacle_fraction`` is the fraction of the workspace *area* covered by
    the obstacle.
    """
    if not 0.0 <= obstacle_fraction < 1.0:
        raise ValueError(f"obstacle_fraction must be in [0, 1), got {obstacle_fraction}")
    bounds = _unit_workspace(2, half)
    side = 2.0 * half * np.sqrt(obstacle_fraction)
    obstacle = AABB(-0.5 * side * np.ones(2), 0.5 * side * np.ones(2))
    obstacles = [obstacle] if obstacle_fraction > 0 else []
    return Environment(bounds, obstacles, name=f"model-2d({obstacle_fraction:.0%})")


def cube_env(blocked_fraction: float, dim: int = 3, half: float = DEFAULT_HALF_EXTENT, name: str | None = None) -> Environment:
    """A d-dimensional workspace with one central cube blocking the given
    volume fraction; the generalisation behind med-cube/small-cube."""
    if not 0.0 <= blocked_fraction < 1.0:
        raise ValueError(f"blocked_fraction must be in [0, 1), got {blocked_fraction}")
    bounds = _unit_workspace(dim, half)
    obstacles = []
    if blocked_fraction > 0:
        side = 2.0 * half * blocked_fraction ** (1.0 / dim)
        obstacles.append(AABB(-0.5 * side * np.ones(dim), 0.5 * side * np.ones(dim)))
    env = Environment(bounds, obstacles, name=name or f"cube({blocked_fraction:.0%})")
    return env


def med_cube(dim: int = 3) -> Environment:
    """~24% of the environment blocked by a central cube (paper's med-cube)."""
    return cube_env(0.24, dim=dim, name="med-cube")


def small_cube(dim: int = 3) -> Environment:
    """~6% of the environment blocked by a central cube (paper's small-cube)."""
    return cube_env(0.06, dim=dim, name="small-cube")


def free_env(dim: int = 3) -> Environment:
    """Completely obstacle-free workspace (paper's free environment)."""
    return cube_env(0.0, dim=dim, name="free")


def walls_env(num_walls: int = 3, gap_fraction: float = 0.15, dim: int = 3, half: float = DEFAULT_HALF_EXTENT, angled: bool = False) -> Environment:
    """Narrow-passage environment: parallel walls spanning the workspace,
    each pierced by one off-centre gap.

    With ``angled=True`` the gaps alternate corners, mimicking the
    "walls-45" style of staggered passages that forces long detours.
    """
    if num_walls < 1:
        raise ValueError("num_walls must be >= 1")
    if not 0.0 < gap_fraction < 1.0:
        raise ValueError("gap_fraction must be in (0, 1)")
    bounds = _unit_workspace(dim, half)
    thickness = 0.05 * (2 * half)
    gap = gap_fraction * (2 * half)
    obstacles: list[AABB] = []
    for w in range(num_walls):
        # Wall position along axis 0, evenly spaced inside the workspace.
        x = -half + (w + 1) * (2 * half) / (num_walls + 1)
        # The gap slides along axis 1: alternate sides for staggering.
        side = (-1) ** w if not angled else (-1) ** (w + (w // 2))
        gap_center = side * (half - gap)
        gap_lo, gap_hi = gap_center - 0.5 * gap, gap_center + 0.5 * gap
        # Wall = two slabs leaving [gap_lo, gap_hi] open along axis 1.
        lo1 = np.full(dim, -half)
        hi1 = np.full(dim, half)
        lo1[0], hi1[0] = x - 0.5 * thickness, x + 0.5 * thickness
        hi1[1] = gap_lo
        if hi1[1] > lo1[1]:
            obstacles.append(AABB(lo1.copy(), hi1.copy()))
        lo2 = np.full(dim, -half)
        hi2 = np.full(dim, half)
        lo2[0], hi2[0] = x - 0.5 * thickness, x + 0.5 * thickness
        lo2[1] = gap_hi
        if hi2[1] > lo2[1]:
            obstacles.append(AABB(lo2.copy(), hi2.copy()))
    name = "walls-45" if angled else "walls"
    return Environment(bounds, obstacles, name=f"{name}({num_walls})")


def cluttered_env(
    blocked_fraction: float,
    dim: int = 3,
    cells_per_axis: int = 4,
    seed: int = 0,
    half: float = DEFAULT_HALF_EXTENT,
    name: str | None = None,
    asymmetry: float = 0.0,
    max_rounds: int = 0,
    num_obstacles: int = 0,
    half_bias: float = 0.0,
) -> Environment:
    """Cluttered workspace with *non-overlapping* box obstacles totalling
    ``blocked_fraction`` of the volume (exactly, up to jitter).

    Placement is a jittered grid: the workspace is divided into
    ``cells_per_axis**dim`` cells and each cell receives one box whose
    volume is the cell's share of the target.  ``asymmetry`` in [0, 1)
    shifts volume toward the positive-x half: the +x half is filled to
    ``blocked * (1 + asymmetry)`` and the -x half to
    ``blocked * (1 - asymmetry)``, producing the directional workload
    heterogeneity the paper's cluttered RRT environments exhibit.
    (``max_rounds``/``num_obstacles``/``half_bias`` are accepted for
    backward compatibility and ignored.)
    """
    del max_rounds, num_obstacles, half_bias
    if not 0.0 <= blocked_fraction < 0.92:
        raise ValueError("blocked_fraction must be in [0, 0.92)")
    if not 0.0 <= asymmetry < 1.0:
        raise ValueError("asymmetry must be in [0, 1)")
    fill_plus = blocked_fraction * (1.0 + asymmetry)
    fill_minus = blocked_fraction * (1.0 - asymmetry)
    if fill_plus >= 0.95:
        raise ValueError("asymmetric fill exceeds the +x half's capacity")
    bounds = _unit_workspace(dim, half)
    rng = np.random.default_rng(seed)
    cell = bounds.extents / cells_per_axis
    obstacles: list[AABB] = []
    for idx in np.ndindex(*(cells_per_axis,) * dim):
        lo = bounds.lo + np.asarray(idx) * cell
        center_x = lo[0] + 0.5 * cell[0]
        fill = fill_plus if center_x > 0 else fill_minus
        if fill <= 0.0:
            continue
        side = cell * fill ** (1.0 / dim)
        # Jitter the box inside its cell; boxes stay disjoint by
        # construction because each lives in its own cell.
        slack = cell - side
        offset = rng.uniform(0.05, 0.95, size=dim) * slack
        obstacles.append(AABB(lo + offset, lo + offset + side))
    env = Environment(bounds, obstacles, name=name or f"cluttered({blocked_fraction:.0%})")
    return env


def mixed_env(dim: int = 3, seed: int = 7) -> Environment:
    """The RRT evaluation's 60%-blocked cluttered environment.

    The clutter is strongly one-sided so that conical regions facing it
    are far more expensive than those facing open space — the directional
    heterogeneity the paper's mixed workload exhibits.
    """
    return cluttered_env(0.60, dim=dim, seed=seed, name="mixed", asymmetry=0.5, cells_per_axis=5)


def mixed_30_env(dim: int = 3, seed: int = 7) -> Environment:
    """The RRT evaluation's 30%-blocked cluttered environment."""
    return cluttered_env(0.30, dim=dim, seed=seed, name="mixed-30", asymmetry=0.6, cells_per_axis=5)


_BUILDERS = {
    "model-2d": model_2d,
    "med-cube": med_cube,
    "small-cube": small_cube,
    "free": free_env,
    "walls": walls_env,
    "walls-45": lambda **kw: walls_env(angled=True, **kw),
    "mixed": mixed_env,
    "mixed-30": mixed_30_env,
}


def by_name(name: str, **kwargs) -> Environment:
    """Build a benchmark environment by its paper name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown environment {name!r}; known: {sorted(_BUILDERS)}") from None
    return builder(**kwargs)
