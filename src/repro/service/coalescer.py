"""Request coalescing: per-workload batches under a latency budget.

The query engine's fixed costs (NN index touch, CSR handoff, pool spin)
amortise over a batch, so the service wants *large* batches — but a
request sitting in a queue is pure added latency, so it also wants
*prompt* ones.  :class:`BatchQueue` resolves the tension with the classic
two-trigger rule:

* flush when a key's queue reaches ``max_batch`` requests (**full**), or
* flush when its oldest request has waited ``max_linger`` seconds
  (**linger**), whichever comes first; a closing service flushes every
  remainder (**drain**).

Requests are grouped by workload cache key — queries against different
roadmaps can never share a :meth:`QueryEngine.solve_many` call — and the
structure is deliberately *pure*: time is an argument, not a clock read,
so unit tests exercise full/linger/drain flushes deterministically and
the dispatcher thread in :mod:`repro.service.service` owns all real
timing.  Total occupancy is capped at ``max_queue`` for admission
control; :meth:`offer` refuses beyond it and the caller decides whether
to block or reject.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..spec import WorkloadSpec

__all__ = ["BatchQueue", "Flush", "Pending"]

#: Flush trigger names, in the order they are checked.
FLUSH_REASONS = ("full", "linger", "drain")


@dataclass(frozen=True, slots=True)
class Pending:
    """One queued request: its payload plus the enqueue timestamp."""

    item: Any
    enqueued_at: float


@dataclass(frozen=True, slots=True)
class Flush:
    """One batch released by the coalescer.

    ``waited`` is the queueing delay of the batch's *oldest* request —
    the number the linger budget bounds (modulo key-busy serialisation).
    """

    key: str
    spec: WorkloadSpec
    items: "tuple[Any, ...]"
    reason: str
    waited: float

    def __len__(self) -> int:
        return len(self.items)


class _KeyQueue:
    """Pending requests for one workload key."""

    __slots__ = ("spec", "pending")

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.pending: "deque[Pending]" = deque()


@dataclass
class BatchQueue:
    """Pure, clock-free coalescing buffer (caller provides ``now``).

    Not thread-safe by itself — :class:`~repro.service.service.PlanService`
    guards it with its dispatcher condition variable.
    """

    max_batch: int = 32
    max_linger: float = 0.010
    max_queue: int = 1024
    _queues: "OrderedDict[str, _KeyQueue]" = field(default_factory=OrderedDict)
    _total: int = 0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_linger < 0:
            raise ValueError("max_linger must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")

    # -- intake --------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Total requests currently buffered across all keys."""
        return self._total

    def offer(self, key: str, spec: WorkloadSpec, item: Any, now: float) -> bool:
        """Enqueue one request; ``False`` when the buffer is at capacity."""
        if self._total >= self.max_queue:
            return False
        kq = self._queues.get(key)
        if kq is None:
            kq = _KeyQueue(spec)
            self._queues[key] = kq
        kq.pending.append(Pending(item, now))
        self._total += 1
        return True

    # -- release -------------------------------------------------------------
    def pop_ready(
        self,
        now: float,
        busy: "Iterable[str]" = (),
        drain: bool = False,
    ) -> "list[Flush]":
        """Release every batch whose trigger has fired.

        Keys in ``busy`` (a batch already executing against their engine)
        are skipped so in-flight serving keeps soaking up arrivals — the
        next flush after the key frees up is correspondingly larger.  A
        flush takes at most ``max_batch`` items, leaving the rest queued;
        with ``drain=True`` every remaining request flushes regardless of
        triggers (used by ``close``).
        """
        busy = set(busy)
        flushes: "list[Flush]" = []
        for key in list(self._queues):
            if key in busy:
                continue
            kq = self._queues[key]
            while kq.pending:
                n = len(kq.pending)
                waited = now - kq.pending[0].enqueued_at
                if n >= self.max_batch:
                    reason = "full"
                elif waited >= self.max_linger:
                    reason = "linger"
                elif drain:
                    reason = "drain"
                else:
                    break
                take = min(n, self.max_batch)
                items = tuple(kq.pending.popleft().item for _ in range(take))
                self._total -= take
                flushes.append(Flush(key, kq.spec, items, reason, max(waited, 0.0)))
                if not drain:
                    # One batch per key per wake-up: the key is about to
                    # become busy, so further flushes would just pile up
                    # behind it out of order.
                    break
            if not kq.pending:
                del self._queues[key]
        return flushes

    def next_deadline(self, busy: "Iterable[str]" = ()) -> "float | None":
        """Earliest instant a linger trigger can fire, or ``None`` if idle.

        The dispatcher sleeps until this deadline (or the next offer /
        batch completion, whichever wakes it first).
        """
        busy = set(busy)
        deadline: "float | None" = None
        for key, kq in self._queues.items():
            if key in busy or not kq.pending:
                continue
            t = kq.pending[0].enqueued_at + self.max_linger
            if deadline is None or t < deadline:
                deadline = t
        return deadline
