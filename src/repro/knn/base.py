"""k-nearest-neighbour interface.

Nearest-neighbour search is a well-known bottleneck of parallelising
sampling-based motion planning (Sec. I of the paper); restricting
connection attempts to within a region plus its neighbours is exactly what
makes the uniform-subdivision approach scale.  The planners only need this
small interface, so backends (brute force, kd-tree, grid) are
interchangeable and are cross-checked against each other in the tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["NeighborFinder", "KnnStats"]


@dataclass
class KnnStats:
    """Counts of NN work, charged to virtual time by the runtime.

    The structure-maintenance fields (``rebuilds``, ``buffer_hits``,
    ``evals_saved``) stay zero for the flat backends; only
    :class:`~repro.knn.incremental.IncrementalNN` maintains internal
    structure worth counting.  ``evals_saved`` is the number of distance
    evaluations a brute-force scan of the same stream would have spent
    minus what the structure actually spent (never negative).
    """

    queries: int = 0
    distance_evals: int = 0
    rebuilds: int = 0
    buffer_hits: int = 0
    evals_saved: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.distance_evals = 0
        self.rebuilds = 0
        self.buffer_hits = 0
        self.evals_saved = 0


class NeighborFinder(ABC):
    """Maintains a set of points supporting k-NN and radius queries.

    Points are identified by the integer id supplied at :meth:`add` time
    (planners use roadmap vertex descriptors).
    """

    def __init__(self) -> None:
        self.stats = KnnStats()

    @abstractmethod
    def add(self, point_id: int, point: np.ndarray) -> None:
        """Insert a point with an external integer id."""

    @abstractmethod
    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        """Insert many points at once."""

    @abstractmethod
    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        """The ``k`` nearest stored points to ``query`` as ``(id, distance)``
        sorted by ascending distance, ties broken by insertion order (the
        canonical order every backend implements identically).  ``exclude``
        omits one id (typically the query point itself)."""

    def knn_batch(self, queries: np.ndarray, k: int) -> "list[list[tuple[int, float]]]":
        """:meth:`knn` for every row of ``queries``.

        The default loops; backends override with a vectorised path that
        must return identical results and charge identical stats.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        return [self.knn(q, k) for q in queries]

    def knn_batch_arrays(self, queries: np.ndarray, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """Array-native :meth:`knn_batch`: ``(ids (m, k) int64, dists
        (m, k) float64)``, rows padded with id ``-1`` / distance ``+inf``
        when fewer than ``k`` neighbours exist (test validity with
        ``np.isfinite(dists)``, not the id sentinel).

        Same results, ordering, and stats charges as :meth:`knn_batch`,
        without materialising ``list[list[tuple]]`` per query — the
        allocation that dominates ``QueryEngine.solve_many`` profiles.
        The default adapts the tuple path; backends override with a fully
        vectorised implementation.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=float))
        m = queries.shape[0]
        kk = max(k, 0)
        ids = np.full((m, kk), -1, dtype=np.int64)
        dists = np.full((m, kk), np.inf)
        for i, row in enumerate(self.knn_batch(queries, k) if m else []):
            for j, (pid, d) in enumerate(row):
                ids[i, j] = pid
                dists[i, j] = d
        return ids, dists

    @abstractmethod
    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        """All stored points within distance ``r`` of ``query``."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored points."""
