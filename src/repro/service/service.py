"""PlanService: a persistent, multi-tenant motion-planning front end.

:func:`repro.api.plan` is one-shot: build a roadmap, answer queries,
throw everything away.  :class:`PlanService` is the long-lived
counterpart — the paper's "construct once, query many" economics turned
into a server loop:

1. ``submit(workload, query)`` hands one ``(start, goal)`` request to
   the service and immediately returns a
   :class:`concurrent.futures.Future` (await-able from asyncio via
   :meth:`submit_async`).
2. Admission control bounds the in-service queue: past ``max_queue``
   requests, ``submit`` blocks for back-pressure (or rejects with
   :class:`ServiceOverloadError` when ``block=False`` / the timeout
   lapses), emitting ``EV_REQUEST_REJECTED``.
3. A dispatcher thread coalesces queued requests per workload key and
   flushes a batch when it is full or its oldest request has lingered
   past the latency budget (:mod:`repro.service.coalescer`).
4. Each flush resolves its :class:`~repro.service.cache.RoadmapCache`
   snapshot (singleflight — concurrent cold-start tenants share one
   construction) and answers the whole batch with one
   :meth:`QueryEngine.solve_many` call under the configured
   :class:`~repro.spec.ExecutionPolicy` / :class:`~repro.spec.FaultPolicy`
   — the same retry / degrade semantics as regional planning.

Answers are **bit-identical** to the direct
``RoadmapQuery.solve`` / ``QueryEngine.solve`` path on the same
workload: the service only changes *when* and *how amortised* the work
happens, never what is computed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from ..obs.events import EV_BATCH_FLUSH, EV_REQUEST_REJECTED
from ..obs.tracer import active
from ..planners.engine import QueryRequest
from ..spec import ExecutionPolicy, FaultPolicy, WorkloadSpec
from .cache import CacheStats, RoadmapCache
from .coalescer import BatchQueue, Flush

if TYPE_CHECKING:
    from ..obs.tracer import Tracer
    from ..planners.query import QueryResult

__all__ = ["PlanService", "ServiceConfig", "ServiceStats", "ServiceOverloadError"]


class ServiceOverloadError(RuntimeError):
    """Admission control refused a request: the service queue is full."""


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`PlanService`.

    The coalescer trades batch amortisation against added latency via
    ``max_batch`` / ``max_linger``; ``max_queue`` bounds memory and gives
    back-pressure a place to push; ``cache_bytes`` bounds the snapshot
    cache (``cache_enabled=False`` is the parity control: identical
    answers, a fresh build per batch).
    """

    #: flush a workload's batch at this many queued requests.
    max_batch: int = 32
    #: ... or once its oldest request waited this many seconds.
    max_linger: float = 0.010
    #: admission-control bound on requests queued (not yet dispatched).
    max_queue: int = 1024
    #: LRU budget for cached roadmap snapshots (None = unbounded).
    cache_bytes: "int | None" = 256 << 20
    #: False disables snapshot reuse (every batch rebuilds — parity mode).
    cache_enabled: bool = True
    #: start/goal attachment degree (matches ``RoadmapQuery`` default).
    k: int = 8
    #: optional ``dim -> NeighborFinder`` override for cached engines.
    nn_factory: Any = None
    #: batches that may execute concurrently (distinct workload keys).
    serve_workers: int = 2
    #: per-batch execution policy (workers/backend for ``solve_many``).
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    #: per-batch fault policy (retry / degrade, forwarded to the pool).
    faults: FaultPolicy = field(default_factory=FaultPolicy)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range knobs."""
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_linger < 0:
            raise ValueError("max_linger must be >= 0")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.serve_workers < 1:
            raise ValueError("serve_workers must be >= 1")
        self.execution.validate()
        self.faults.validate()


@dataclass
class ServiceStats:
    """Point-in-time service counters (see :meth:`PlanService.stats`)."""

    submitted: int = 0
    rejected: int = 0
    served: int = 0
    solved: int = 0
    abandoned: int = 0
    retries: int = 0
    batches: int = 0
    queued: int = 0
    cache: CacheStats = field(default_factory=CacheStats)
    #: sojourn times (submit -> resolution) of completed requests.
    latencies: "list[float]" = field(default_factory=list)

    @property
    def mean_batch_size(self) -> float:
        """Average requests per flushed batch (0.0 before any flush)."""
        return self.served / self.batches if self.batches else 0.0

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank request-sojourn percentile (``q`` in [0, 100])."""
        lats = sorted(self.latencies)
        if not lats:
            return 0.0
        i = min(int(q / 100 * (len(lats) - 1) + 0.5), len(lats) - 1)
        return lats[i]


class _Item:
    """One admitted request: payload, its future, and the submit time."""

    __slots__ = ("request", "future", "submitted_at")

    def __init__(self, request: QueryRequest, future: "Future", submitted_at: float):
        self.request = request
        self.future = future
        self.submitted_at = submitted_at


class PlanService:
    """Long-lived planning server over a snapshot cache and a coalescer.

    Use as a context manager (``with PlanService() as svc``) or call
    :meth:`close` explicitly — a dispatcher thread and a serving pool
    run until then.

    Parameters
    ----------
    config:
        :class:`ServiceConfig`; defaults are sensible for tests/benches.
    tracer:
        Optional :class:`~repro.obs.Tracer`; the service emits cache
        events, ``EV_BATCH_FLUSH`` / ``EV_REQUEST_REJECTED`` points, and
        each batch's full ``serve`` span + per-query events through it.
    cache:
        Optional pre-built (possibly shared) :class:`RoadmapCache`;
        by default one is built from the config's budget/knobs.
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        tracer: "Tracer | None" = None,
        cache: "RoadmapCache | None" = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self._tracer = active(tracer)
        self._raw_tracer = tracer
        if cache is None:
            cache = RoadmapCache(
                max_bytes=self.config.cache_bytes,
                k=self.config.k,
                nn_factory=self.config.nn_factory,
                enabled=self.config.cache_enabled,
                tracer=tracer,
                # End of the ExecutionPolicy.kernel_backend chain: builds
                # and serving both run on the configured backend (None =
                # inherit, i.e. reference).
                kernels=self.config.execution.kernel_backend,
            )
        self.cache = cache
        self._cond = threading.Condition()
        self._queue = BatchQueue(
            max_batch=self.config.max_batch,
            max_linger=self.config.max_linger,
            max_queue=self.config.max_queue,
        )
        self._busy: "set[str]" = set()
        self._inflight = 0
        self._closing = False
        self._draining = True
        self._stats = ServiceStats()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.serve_workers,
            thread_name_prefix="repro-serve",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------------
    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def close(self, drain: bool = True) -> None:
        """Stop the service.

        ``drain=True`` (default) flushes and answers every queued
        request first; ``drain=False`` cancels queued futures and stops
        as soon as in-flight batches finish.  Idempotent.
        """
        with self._cond:
            if not self._closing:
                self._closing = True
                self._draining = drain
            self._cond.notify_all()
        self._dispatcher.join()
        self._pool.shutdown(wait=True)

    # -- intake --------------------------------------------------------------
    def submit(
        self,
        workload: WorkloadSpec,
        query: "QueryRequest | tuple",
        block: bool = True,
        timeout: "float | None" = None,
    ) -> "Future[QueryResult | None]":
        """Admit one query against ``workload``; returns its future.

        The future resolves to the query's
        :class:`~repro.planners.query.QueryResult` (or ``None`` when no
        path exists / the query was abandoned under ``degrade``) — the
        exact object :meth:`QueryEngine.solve` would have produced.

        When the service queue is full: ``block=True`` waits (up to
        ``timeout`` seconds, forever if ``None``) for space; on
        ``block=False`` or timeout expiry the request is **rejected**
        with :class:`ServiceOverloadError`.
        """
        if not isinstance(query, QueryRequest):
            s, g = query
            query = QueryRequest(np.asarray(s, dtype=float), np.asarray(g, dtype=float))
        key = workload.cache_key()
        fut: "Future[QueryResult | None]" = Future()
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            if self._closing:
                raise RuntimeError("PlanService is closed")
            item = _Item(query, fut, time.perf_counter())
            while not self._queue.offer(key, workload, item, time.perf_counter()):
                if not block:
                    self._reject()
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        self._reject()
                self._cond.wait(remaining)
                if self._closing:
                    raise RuntimeError("PlanService is closed")
            self._stats.submitted += 1
            self._cond.notify_all()
        return fut

    def _reject(self) -> None:
        """Record and raise an admission-control rejection (lock held)."""
        self._stats.rejected += 1
        if self._tracer:
            self._tracer.point(EV_REQUEST_REJECTED, queued=self._queue.queued)
            self._tracer.metrics.counter("requests_rejected").inc()
        raise ServiceOverloadError(
            f"service queue full ({self._queue.queued}/{self.config.max_queue})"
        )

    def submit_async(self, workload: WorkloadSpec, query: "QueryRequest | tuple"):
        """Asyncio-compatible :meth:`submit`: returns an awaitable future.

        Admission back-pressure would block the event loop, so this
        variant never waits — a full queue raises
        :class:`ServiceOverloadError` immediately (callers retry with
        their own async pacing).
        """
        import asyncio

        return asyncio.wrap_future(self.submit(workload, query, block=False))

    # -- sync conveniences ---------------------------------------------------
    def solve(
        self, workload: WorkloadSpec, start, goal
    ) -> "QueryResult | None":
        """Submit one query and wait for its answer."""
        return self.submit(workload, (start, goal)).result()

    def solve_many(
        self, workload: WorkloadSpec, queries
    ) -> "list[QueryResult | None]":
        """Submit a burst of queries and wait for all answers, in order."""
        futs = [self.submit(workload, q) for q in queries]
        return [f.result() for f in futs]

    # -- introspection -------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A consistent snapshot of the service counters."""
        with self._cond:
            s = self._stats
            return ServiceStats(
                submitted=s.submitted,
                rejected=s.rejected,
                served=s.served,
                solved=s.solved,
                abandoned=s.abandoned,
                retries=s.retries,
                batches=s.batches,
                queued=self._queue.queued,
                cache=self.cache.stats,
                latencies=list(s.latencies),
            )

    # -- dispatcher ----------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Flush ready batches to the serving pool until closed."""
        while True:
            with self._cond:
                now = time.perf_counter()
                flushes = self._queue.pop_ready(
                    now, busy=self._busy, drain=self._closing and self._draining
                )
                if not flushes:
                    if self._closing:
                        if self._queue.queued == 0 or not self._draining:
                            break
                        # Drain mode with busy keys: wait for them to free.
                        self._cond.wait(0.05)
                        continue
                    deadline = self._queue.next_deadline(busy=self._busy)
                    self._cond.wait(
                        None if deadline is None else max(deadline - now, 0.0)
                    )
                    continue
                for flush in flushes:
                    self._busy.add(flush.key)
                    self._inflight += 1
                # Popping freed queue space: wake blocked submitters.
                self._cond.notify_all()
            for flush in flushes:
                self._pool.submit(self._serve_batch, flush)
        # Closed without drain: cancel whatever is still queued.
        with self._cond:
            for flush in self._queue.pop_ready(time.perf_counter(), drain=True):
                for item in flush.items:
                    item.future.cancel()
            self._cond.notify_all()

    def _serve_batch(self, flush: Flush) -> None:
        """Answer one coalesced batch (runs on the serving pool)."""
        items: "tuple[_Item, ...]" = flush.items
        try:
            engine = self.cache.get(flush.spec)
            batch = engine.solve_many(
                [it.request for it in items],
                tracer=self._raw_tracer,
                execution=self.config.execution,
                faults=self.config.faults,
                retry_seed=flush.spec.seed,
            )
        except BaseException as exc:
            for it in items:
                if not it.future.done():
                    it.future.set_exception(exc)
            with self._cond:
                self._busy.discard(flush.key)
                self._inflight -= 1
                self._cond.notify_all()
            return
        if self._tracer:
            self._tracer.point(
                EV_BATCH_FLUSH,
                key=flush.key,
                size=len(items),
                reason=flush.reason,
                waited=flush.waited,
            )
            self._tracer.metrics.counter("batches_flushed").inc()
        done = time.perf_counter()
        with self._cond:
            self._stats.served += len(items)
            self._stats.solved += batch.solved
            self._stats.abandoned += len(batch.abandoned)
            self._stats.retries += batch.retries
            self._stats.batches += 1
            for it in items:
                self._stats.latencies.append(done - it.submitted_at)
            self._busy.discard(flush.key)
            self._inflight -= 1
            self._cond.notify_all()
        for it, res in zip(items, batch.results):
            if not it.future.done():
                it.future.set_result(res)
