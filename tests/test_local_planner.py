"""Tests for local planners (single and batched)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cspace import BinaryLocalPlanner, StraightLinePlanner


class TestStraightLinePlanner:
    def test_valid_free_segment(self, box_cspace):
        lp = StraightLinePlanner(resolution=0.1)
        res = lp(box_cspace, np.array([-4.0, -4.0]), np.array([4.0, -4.0]))
        assert res.valid
        assert res.length == pytest.approx(8.0)
        assert res.checks > 0

    def test_blocked_segment(self, box_cspace):
        lp = StraightLinePlanner(resolution=0.1)
        res = lp(box_cspace, np.array([-3.0, 0.0]), np.array([3.0, 0.0]))
        assert not res.valid

    def test_zero_length_segment(self, box_cspace):
        lp = StraightLinePlanner(resolution=0.1)
        a = np.array([-4.0, -4.0])
        res = lp(box_cspace, a, a)
        assert res.valid and res.checks == 0 and res.length == 0.0

    def test_short_segment_no_checks(self, box_cspace):
        lp = StraightLinePlanner(resolution=1.0)
        res = lp(box_cspace, np.array([-4.0, -4.0]), np.array([-3.5, -4.0]))
        assert res.valid and res.checks == 0

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            StraightLinePlanner(resolution=0.0)

    def test_batch_matches_single(self, box_cspace, rng):
        lp = StraightLinePlanner(resolution=0.2)
        starts = rng.uniform(-4.5, 4.5, (64, 2))
        ends = rng.uniform(-4.5, 4.5, (64, 2))
        ok, checks, lengths = lp.batch_pairs(box_cspace, starts, ends)
        singles = [lp(box_cspace, a, b) for a, b in zip(starts, ends)]
        assert np.array_equal(ok, [s.valid for s in singles])
        assert checks == sum(s.checks for s in singles)
        assert np.allclose(lengths, [s.length for s in singles])

    def test_batch_empty_total(self, box_cspace):
        lp = StraightLinePlanner(resolution=10.0)
        starts = np.array([[-4.0, -4.0]])
        ends = np.array([[-3.9, -4.0]])
        ok, checks, lengths = lp.batch_pairs(box_cspace, starts, ends)
        assert ok.all() and checks == 0


class TestBinaryLocalPlanner:
    def test_agrees_with_straight_line_on_validity(self, box_cspace, rng):
        blp = BinaryLocalPlanner(resolution=0.05)
        slp = StraightLinePlanner(resolution=0.05)
        for _ in range(64):
            a = rng.uniform(-4.5, 4.5, 2)
            b = rng.uniform(-4.5, 4.5, 2)
            vb = blp(box_cspace, a, b).valid
            vs = slp(box_cspace, a, b).valid
            # Binary subdivision checks a slightly different point set; on
            # clearly-blocked segments they must agree.
            if box_cspace.env.segments_in_collision(a[None], b[None])[0]:
                assert not vb or not vs

    def test_fails_fast_on_blocked(self, box_cspace):
        blp = BinaryLocalPlanner(resolution=0.01)
        slp = StraightLinePlanner(resolution=0.01)
        a, b = np.array([-3.0, 0.0]), np.array([3.0, 0.0])
        rb = blp(box_cspace, a, b)
        rs = slp(box_cspace, a, b)
        assert not rb.valid
        assert rb.checks < rs.checks  # midpoint-first fails immediately


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_exact_segment_check_implies_lp_verdict(seed):
    """Property: if the exact swept test says free, the sampled local
    planner must also say free (its checks are a subset of the segment)."""
    from repro.cspace import EuclideanCSpace
    from repro.geometry import AABB, Environment

    env = Environment(
        AABB([-5.0, -5.0], [5.0, 5.0]),
        [AABB([-1.0, -1.0], [1.0, 1.0]), AABB([2.0, 2.0], [4.0, 4.0])],
    )
    cspace = EuclideanCSpace(env)
    rng = np.random.default_rng(seed)
    lp = StraightLinePlanner(resolution=0.1)
    a = rng.uniform(-4.5, 4.5, 2)
    b = rng.uniform(-4.5, 4.5, 2)
    exact_free = not env.segments_in_collision(a[None], b[None])[0]
    if exact_free:
        assert lp(cspace, a, b).valid


class TestBatchPairsChunked:
    def test_same_verdicts_fewer_checks(self, box_cspace, rng):
        lp = StraightLinePlanner(resolution=0.25)
        starts = rng.uniform(-5, 5, size=(60, 2))
        ends = rng.uniform(-5, 5, size=(60, 2))
        ok_full, checks_full, len_full = lp.batch_pairs(box_cspace, starts, ends)
        ok_ff, checks_ff, len_ff = lp.batch_pairs_chunked(box_cspace, starts, ends, chunk=4)
        np.testing.assert_array_equal(ok_full, ok_ff)
        np.testing.assert_allclose(len_full, len_ff)
        assert checks_ff <= checks_full
        # The fixture environment blocks some of these segments, so the
        # fail-fast variant must actually save work here.
        assert not ok_full.all()
        assert checks_ff < checks_full

    def test_identical_on_all_free(self, box_cspace):
        lp = StraightLinePlanner(resolution=0.25)
        starts = np.full((5, 2), -4.5) + np.arange(5)[:, None] * 0.01
        ends = starts + [[0.3, 0.0]] * 5
        ok_full, checks_full, _ = lp.batch_pairs(box_cspace, starts, ends)
        ok_ff, checks_ff, _ = lp.batch_pairs_chunked(box_cspace, starts, ends)
        assert ok_full.all() and ok_ff.all()
        assert checks_full == checks_ff


class TestBinaryVsStraightLine:
    def test_exactly_free_segments_accepted_by_both(self, box_cspace, rng):
        """Bisection and the uniform sweep probe different point sets, so
        their verdicts may differ near obstacle boundaries — but both only
        probe points *on* the segment, so an exactly collision-free
        segment must be accepted by both, at matching length and with the
        sweep's check count as one per interior step."""
        sl = StraightLinePlanner(resolution=0.25)
        bi = BinaryLocalPlanner(resolution=0.25)
        free = 0
        for _ in range(120):
            a = rng.uniform(-5, 5, size=2)
            b = rng.uniform(-5, 5, size=2)
            if box_cspace.env.segments_in_collision(a[None], b[None])[0]:
                continue
            free += 1
            rs, rb = sl(box_cspace, a, b), bi(box_cspace, a, b)
            assert rs.valid and rb.valid
            assert rs.length == pytest.approx(rb.length)
        assert free > 10
