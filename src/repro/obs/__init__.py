"""repro.obs — structured tracing and metrics for the runtime.

The observability substrate every figure and perf report builds on:

* :class:`Tracer` emits typed :class:`Event` records — spans for the
  planner phases, points for steal protocol traffic, task execution and
  repartition decisions — stamped by the simulator's virtual clock or the
  wall clock.
* :class:`MetricRegistry` tallies counters/gauges/histograms alongside
  the event stream (steals attempted/succeeded, tasks migrated, remote
  accesses, per-PE busy/idle time).
* Sinks route events to memory (:class:`MemorySink`) or JSON-lines files
  (:class:`JsonlSink`); :func:`summarize_events` reconstructs the paper's
  Fig. 7a phase breakdown and Fig. 9 steal distribution from a trace, and
  ``python -m repro.obs summarize trace.jsonl`` does so from the shell.

Instrumented code treats ``tracer=None`` (or :data:`NULL_TRACER`) as
"emit nothing", keeping the default path at zero overhead.
"""

from .events import (
    EV_QUERY_END,
    EV_QUERY_START,
    EV_REMOTE_ACCESS,
    EV_REPARTITION_DECISION,
    EV_STEAL_FAIL,
    EV_STEAL_REPLY,
    EV_STEAL_REQUEST,
    EV_STEAL_TRANSFER,
    EV_TASK_ABANDONED,
    EV_TASK_END,
    EV_TASK_RETRY,
    EV_TASK_START,
    EV_WORKER_DEATH,
    PHASE_CONNECT,
    PHASE_CONSTRUCT,
    PHASE_GENERATE,
    PHASE_NAMES,
    PHASE_REPARTITION,
    PHASE_SERVE,
    PHASE_SUBDIVIDE,
    PHASE_TERMINATE,
    PHASE_WEIGH,
    POINT,
    SPAN_BEGIN,
    SPAN_END,
    Event,
)
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .sinks import JsonlSink, MemorySink, Sink, parse_jsonl, read_jsonl
from .summary import TraceSummary, format_summary, summarize_events
from .tracer import NULL_TRACER, NullTracer, Tracer, active

__all__ = [
    "Event",
    "SPAN_BEGIN",
    "SPAN_END",
    "POINT",
    "PHASE_SUBDIVIDE",
    "PHASE_GENERATE",
    "PHASE_WEIGH",
    "PHASE_REPARTITION",
    "PHASE_CONSTRUCT",
    "PHASE_CONNECT",
    "PHASE_TERMINATE",
    "PHASE_SERVE",
    "PHASE_NAMES",
    "EV_TASK_START",
    "EV_TASK_END",
    "EV_TASK_RETRY",
    "EV_TASK_ABANDONED",
    "EV_WORKER_DEATH",
    "EV_QUERY_START",
    "EV_QUERY_END",
    "EV_STEAL_REQUEST",
    "EV_STEAL_REPLY",
    "EV_STEAL_TRANSFER",
    "EV_STEAL_FAIL",
    "EV_REPARTITION_DECISION",
    "EV_REMOTE_ACCESS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "read_jsonl",
    "parse_jsonl",
    "TraceSummary",
    "summarize_events",
    "format_summary",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "active",
]
