"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.cspace import EuclideanCSpace
from repro.geometry import AABB, Environment, med_cube


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def box_env():
    """Small 2-D environment with two obstacles."""
    bounds = AABB([-5.0, -5.0], [5.0, 5.0])
    obstacles = [AABB([-1.0, -1.0], [1.0, 1.0]), AABB([2.0, 2.0], [4.0, 4.0])]
    return Environment(bounds, obstacles, name="two-box")


@pytest.fixture
def box_cspace(box_env):
    return EuclideanCSpace(box_env)


@pytest.fixture
def medcube_cspace():
    return EuclideanCSpace(med_cube())
