"""bvh kernel backend: BVH-culled collision queries, bit-exact leaves.

The scaling backend for obstacle-heavy scenes (10³–10⁵ primitives, see
``repro.geometry.scenarios``): ``points_free`` / ``segments_free`` walk a
packed-array AABB tree (:class:`repro.geometry.bvh.BVH`) instead of
scanning every obstacle, turning the per-query cost from ``O(m)`` to
``O(log m)`` node visits plus a handful of candidate primitives.

**The equivalence contract is bit-exact, not statistical.**  The tree
only *culls*: node tests are conservative (inflated float64 boxes), and
every surviving candidate is decided by the reference backend's own
array-level expressions (:func:`repro.kernels.reference.points_hit_boxes`
and friends) applied to the gathered primitive subset.  Elementwise
NumPy expressions over a subset produce the same bits as over the full
array, so a verdict can never differ from ``reference`` — which is why
the differential battery in ``tests/test_bvh.py`` and the
``bvh_collision_scaling`` bench row assert exact equality where the
fast32 gates settle for stability-guarded agreement.

``pairwise_accumulate`` and ``knn_block_min`` have no obstacle structure
to accelerate; they delegate to the reference backend unchanged.

Trees are built lazily per :class:`~repro.kernels.data.EnvKernelData`
snapshot and cached *on the snapshot* — snapshots are immutable and are
themselves cached on ``Environment`` (invalidated on mutation), so a
mutated environment transparently gets a fresh tree with no extra
invalidation protocol.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .data import EnvKernelData
from .reference import (
    ReferenceKernels,
    points_hit_boxes,
    points_hit_spheres,
    segments_hit_boxes,
    segments_hit_spheres,
)

__all__ = ["BVHKernels"]

#: Attribute name under which trees are cached on an EnvKernelData
#: snapshot (maps "box"/"sph" -> BVH).
_CACHE_ATTR = "_bvh_trees"


def _trees(data: EnvKernelData) -> dict:
    """The snapshot's lazily-built {"box": BVH, "sph": BVH} cache."""
    cache = getattr(data, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(data, _CACHE_ATTR, cache)
    return cache


def _box_tree(data: EnvKernelData):
    from ..geometry.bvh import BVH  # deferred: geometry imports kernels

    cache = _trees(data)
    tree = cache.get("box")
    if tree is None:
        tree = cache["box"] = BVH(data.box_lo, data.box_hi)
    return tree


def _sphere_tree(data: EnvKernelData):
    from ..geometry.bvh import BVH  # deferred: geometry imports kernels

    cache = _trees(data)
    tree = cache.get("sph")
    if tree is None:
        r = data.sph_radius[:, None]
        tree = cache["sph"] = BVH(data.sph_center - r, data.sph_center + r)
    return tree


class BVHKernels(KernelBackend):
    """BVH-culled collision kernels; distance primitives are reference."""

    name = "bvh"
    dtype = np.float64

    def __init__(self):
        self._ref = ReferenceKernels()

    def points_free(self, data: EnvKernelData, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        free = np.all((pts >= data.bounds_lo) & (pts <= data.bounds_hi), axis=-1)
        if data.num_boxes:
            hit = _box_tree(data).points_hit(
                pts,
                lambda sub, prims: points_hit_boxes(data.box_lo[prims], data.box_hi[prims], sub),
            )
            free = free & ~hit
        if data.num_spheres:
            hit = _sphere_tree(data).points_hit(
                pts,
                lambda sub, prims: points_hit_spheres(
                    data.sph_center[prims], data.sph_radius[prims], sub
                ),
            )
            free = free & ~hit
        return free

    def segments_free(self, data: EnvKernelData, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        p = np.atleast_2d(np.asarray(p, dtype=float))
        q = np.atleast_2d(np.asarray(q, dtype=float))
        free = np.all((p >= data.bounds_lo) & (p <= data.bounds_hi), axis=-1) & np.all(
            (q >= data.bounds_lo) & (q <= data.bounds_hi), axis=-1
        )
        if data.num_boxes:
            hit = _box_tree(data).segments_hit(
                p,
                q,
                lambda sp, sq, prims: segments_hit_boxes(
                    data.box_lo[prims], data.box_hi[prims], sp, sq
                ),
            )
            free = free & ~hit
        if data.num_spheres:
            hit = _sphere_tree(data).segments_hit(
                p,
                q,
                lambda sp, sq, prims: segments_hit_spheres(
                    data.sph_center[prims], data.sph_radius[prims], sp, sq
                ),
            )
            free = free & ~hit
        return free

    # -- distance primitives: nothing to cull, reference verbatim ----------
    def pairwise_accumulate(self, stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        self._ref.pairwise_accumulate(stored, queries, out)

    def knn_block_min(
        self, stored: np.ndarray, queries: np.ndarray, k: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        return self._ref.knn_block_min(stored, queries, k)
