"""A from-scratch kd-tree with incremental insertion.

Supports the same interface as :class:`~repro.knn.brute.BruteForceNN` and
is cross-validated against it property-style in the tests.  Insertion uses
median-less splitting (cycle through axes at the insertion point), which
keeps the tree adequately balanced for randomly ordered points — exactly
what samplers produce.
"""

from __future__ import annotations

import heapq

import numpy as np

from .base import NeighborFinder

__all__ = ["KDTreeNN"]


class _Node:
    __slots__ = ("point", "point_id", "axis", "left", "right")

    def __init__(self, point: np.ndarray, point_id: int, axis: int):
        self.point = point
        self.point_id = point_id
        self.axis = axis
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class KDTreeNN(NeighborFinder):
    """Incremental kd-tree over ``dim``-dimensional points."""

    def __init__(self, dim: int):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._root: _Node | None = None
        self._n = 0

    def add(self, point_id: int, point: np.ndarray) -> None:
        pt = np.asarray(point, dtype=float).copy()
        if pt.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {pt.shape}")
        if self._root is None:
            self._root = _Node(pt, point_id, 0)
        else:
            node = self._root
            while True:
                axis = node.axis
                if pt[axis] < node.point[axis]:
                    if node.left is None:
                        node.left = _Node(pt, point_id, (axis + 1) % self.dim)
                        break
                    node = node.left
                else:
                    if node.right is None:
                        node.right = _Node(pt, point_id, (axis + 1) % self.dim)
                        break
                    node = node.right
        self._n += 1

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        for i, p in zip(ids, points):
            self.add(int(i), p)

    # -- queries -----------------------------------------------------------
    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._root is None or k <= 0:
            return []
        q = np.asarray(query, dtype=float)
        self.stats.queries += 1
        # Max-heap of (-dist, id) for the current best k.
        heap: list[tuple[float, int]] = []

        def visit(node: "_Node | None") -> None:
            if node is None:
                return
            self.stats.distance_evals += 1
            d = float(np.linalg.norm(node.point - q))
            if node.point_id != exclude:
                if len(heap) < k:
                    heapq.heappush(heap, (-d, node.point_id))
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, (-d, node.point_id))
            axis = node.axis
            delta = q[axis] - node.point[axis]
            near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
            visit(near)
            # Prune the far side unless the splitting plane is within reach.
            if len(heap) < k or abs(delta) <= -heap[0][0]:
                visit(far)

        visit(self._root)
        out = sorted(((-nd, pid) for nd, pid in heap))
        return [(pid, d) for d, pid in out]

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._root is None:
            return []
        q = np.asarray(query, dtype=float)
        self.stats.queries += 1
        found: list[tuple[float, int]] = []

        def visit(node: "_Node | None") -> None:
            if node is None:
                return
            self.stats.distance_evals += 1
            d = float(np.linalg.norm(node.point - q))
            if d <= r and node.point_id != exclude:
                found.append((d, node.point_id))
            delta = q[node.axis] - node.point[node.axis]
            near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
            visit(near)
            if abs(delta) <= r:
                visit(far)

        visit(self._root)
        found.sort()
        return [(pid, d) for d, pid in found]

    def __len__(self) -> int:
        return self._n

    # -- diagnostics --------------------------------------------------------
    def depth(self) -> int:
        """Tree height (for balance diagnostics in tests)."""

        def h(node: "_Node | None") -> int:
            if node is None:
                return 0
            return 1 + max(h(node.left), h(node.right))

        return h(self._root)
