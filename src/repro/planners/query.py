"""Roadmap queries: shortest paths and start/goal connection.

Once a roadmap is built, a motion planning query is answered by connecting
the start and goal configurations to the roadmap and extracting a path
through it (Sec. II-B1 of the paper).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..knn.brute import BruteForceNN
from .roadmap import Roadmap

__all__ = ["dijkstra", "astar", "QueryResult", "RoadmapQuery"]


def dijkstra(rmap: Roadmap, source: int, target: int) -> "tuple[list[int], float] | None":
    """Shortest path by edge weight; None when disconnected."""
    if not (rmap.has_vertex(source) and rmap.has_vertex(target)):
        raise KeyError("source or target vertex missing from roadmap")
    dist: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    done: set[int] = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in done:
            continue
        if u == target:
            break
        done.add(u)
        for v, w in rmap.neighbors(u).items():
            nd = d + w
            if nd < dist.get(v, np.inf):
                dist[v] = nd
                prev[v] = u
                heapq.heappush(heap, (nd, v))
    if target not in dist:
        return None
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path, dist[target]


def astar(
    rmap: Roadmap,
    source: int,
    target: int,
    heuristic=None,
) -> "tuple[list[int], float] | None":
    """A* with an admissible heuristic (default: Euclidean distance of
    configurations, which is admissible for Euclidean edge weights)."""
    if not (rmap.has_vertex(source) and rmap.has_vertex(target)):
        raise KeyError("source or target vertex missing from roadmap")
    target_cfg = rmap.config(target)
    if heuristic is None:
        # Row-wise norm so the heuristic is bit-identical to the vectorised
        # one in FrozenRoadmap.astar (np.linalg.norm(..., axis=1)).
        def heuristic(vid: int) -> float:
            return float(np.linalg.norm((rmap.config(vid) - target_cfg)[None, :], axis=1)[0])

    g: dict[int, float] = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(heuristic(source), source)]
    done: set[int] = set()
    while heap:
        _f, u = heapq.heappop(heap)
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return path, g[target]
        if u in done:
            continue
        done.add(u)
        for v, w in rmap.neighbors(u).items():
            ng = g[u] + w
            if ng < g.get(v, np.inf):
                g[v] = ng
                prev[v] = u
                heapq.heappush(heap, (ng + heuristic(v), v))
    return None


@dataclass
class QueryResult:
    """Solved query: configurations along the path including start and goal."""

    path_vertices: "list[int]"
    path_configs: np.ndarray
    length: float


class RoadmapQuery:
    """Connects a start and goal configuration to a roadmap and solves.

    ``nn_factory`` picks the nearest-neighbour backend used for attachment
    (any :class:`~repro.knn.base.NearestNeighbors` subclass); all backends
    share the canonical (distance, insertion order) tie-break, so swapping
    factories does not change the answer.
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        local_planner=None,
        k: int = 8,
        nn_factory=None,
    ):
        self.cspace = cspace
        self.local_planner = (
            local_planner if local_planner is not None
            else StraightLinePlanner(resolution=0.25)
        )
        self.k = k
        self.nn_factory = nn_factory if nn_factory is not None else BruteForceNN

    def _attach(self, rmap: Roadmap, config: np.ndarray, vid: int) -> bool:
        """Add ``config`` as vertex ``vid`` and link it to up to k nearest
        reachable roadmap vertices; True if at least one link succeeded."""
        ids, cfgs = rmap.configs_array()
        nn = self.nn_factory(self.cspace.dim)
        nn.add_batch(ids, cfgs)
        rmap.add_vertex(config, vid)
        attached = False
        for nbr, _d in nn.knn(config, self.k):
            result = self.local_planner(self.cspace, config, rmap.config(nbr))
            if result.valid:
                rmap.add_edge(vid, nbr, result.length)
                attached = True
        return attached

    def solve(self, rmap: Roadmap, start: np.ndarray, goal: np.ndarray) -> QueryResult | None:
        """Solve the (start, goal) query; None when no path exists.

        The temporary start/goal vertices are removed from the roadmap
        before returning, leaving it unchanged.
        """
        start = np.asarray(start, dtype=float)
        goal = np.asarray(goal, dtype=float)
        if not self.cspace.valid_single(start) or not self.cspace.valid_single(goal):
            return None
        ids, _ = rmap.configs_array()
        max_id = int(ids.max()) if ids.size else -1
        sid, gid = max_id + 1, max_id + 2
        try:
            ok_s = self._attach(rmap, start, sid)
            ok_g = self._attach(rmap, goal, gid)
            if not (ok_s and ok_g):
                return None
            found = astar(rmap, sid, gid)
            if found is None:
                return None
            path, length = found
            configs = rmap.configs_of(path)
            return QueryResult(path, configs, length)
        finally:
            for vid in (gid, sid):
                if rmap.has_vertex(vid):
                    rmap.remove_vertex(vid)
