"""Command-line driver for the figure benchmarks.

Usage::

    python -m repro.bench                 # list available figures
    python -m repro.bench fig5a           # regenerate one figure
    python -m repro.bench all             # regenerate everything
    python -m repro.bench perf [...]      # hot-path perf regression suite
    python -m repro.bench serve [...]     # PlanService load-generator bench
"""

from __future__ import annotations

import sys
import time

from . import figures

_FIGURES = {
    "fig4a": figures.fig4a_model_cov,
    "fig4b": figures.fig4b_model_improvement,
    "fig5a": figures.fig5a_prm_medcube_time,
    "fig5b": figures.fig5b_prm_cov,
    "fig5c": figures.fig5c_load_profile,
    "fig6": figures.fig6_prm_scale,
    "fig7a": figures.fig7a_phase_breakdown,
    "fig7b": figures.fig7b_remote_accesses,
    "fig8": figures.fig8_prm_environments,
    "fig9": figures.fig9_steal_distribution,
    "fig10": figures.fig10_rrt_environments,
}


def main(argv: "list[str]") -> int:
    """Dispatch to a figure benchmark or the perf suite; 0 on success."""
    if not argv:
        print(__doc__)
        print("Available figures:")
        for name, fn in _FIGURES.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {summary}")
        print("  perf     hot-path perf regression suite (see 'perf --help')")
        print("  serve    PlanService load-generator bench (see 'serve --help')")
        return 0
    if argv[0] == "perf":
        from . import perf

        return perf.main(argv[1:])
    if argv[0] == "serve":
        from . import serve

        return serve.main(argv[1:])
    targets = list(_FIGURES) if argv == ["all"] else argv
    unknown = [t for t in targets if t not in _FIGURES]
    if unknown:
        print(f"unknown figure(s): {unknown}; known: {sorted(_FIGURES)}", file=sys.stderr)
        return 2
    for name in targets:
        t0 = time.perf_counter()
        _FIGURES[name]()
        print(f"[{name} regenerated in {time.perf_counter() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
