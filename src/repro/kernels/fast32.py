"""fast32 kernel backend: float32, blocked/tiled, structure-of-arrays.

The throughput backend.  Three layout decisions buy the speedup over the
reference kernels:

* **float32 compute** — halves memory traffic on kernels that are pure
  streaming (the collision and distance kernels run at memory bandwidth,
  not FLOP limit, on CPUs).
* **2-D planes instead of 3-D broadcasts** — the point and distance
  kernels accumulate per dimension into ``(n, tile)`` planes rather than
  reducing an ``(n, m, d)`` temporary, mirroring the trick the batched
  k-NN path introduced for float64.
* **obstacle / stored-point tiling** — obstacle arrays are processed in
  tiles sized to stay cache-resident, with a cheap early-out once every
  query in the block has hit something.

Numerically this backend is *statistically* equivalent to the reference:
verdicts may flip for queries within float32 rounding of a decision
boundary (an obstacle face, the workspace wall, a k-NN distance tie).
The equivalence gates in ``tests/test_kernels.py`` and the perf suite
quantify exactly that: agreement is asserted on every query whose
reference verdict is stable under ``±eps`` obstacle inflation, and k-NN
distances must match to 1e-4 relative.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .data import EnvKernelData

__all__ = ["Fast32Kernels"]

# Obstacles (or stored points) per tile: 256 float32 3-D boxes are ~12 KB
# of planes per query block — comfortably L2-resident alongside the
# queries.
_TILE = 256
# Stored-point tile for the blocked k-NN merge.
_KNN_TILE = 2048

_F32 = np.float32
_INF32 = np.float32(np.inf)


def _as_f32_2d(arr: np.ndarray) -> np.ndarray:
    out = np.atleast_2d(np.asarray(arr))
    return np.ascontiguousarray(out, dtype=_F32)


class Fast32Kernels(KernelBackend):
    """float32 blocked kernels over the SoA snapshot."""

    name = "fast32"
    dtype = np.float32

    # -- collision ---------------------------------------------------------
    def points_free(self, data: EnvKernelData, points: np.ndarray) -> np.ndarray:
        pts = _as_f32_2d(points)
        n, dim = pts.shape
        free = np.all((pts >= data.bounds_lo32) & (pts <= data.bounds_hi32), axis=1)
        if not free.any():
            return free
        hit = np.zeros(n, dtype=bool)
        # Boxes: |p - center| <= half per dimension, accumulated in 2-D
        # (n, tile) planes (no (n, m, d) temporary).
        c, h = data.box_center32, data.box_half32
        for lo in range(0, data.num_boxes, _TILE):
            cc = c[lo : lo + _TILE]
            hh = h[lo : lo + _TILE]
            inside = np.abs(pts[:, 0, None] - cc[None, :, 0]) <= hh[None, :, 0]
            for j in range(1, dim):
                inside &= np.abs(pts[:, j, None] - cc[None, :, j]) <= hh[None, :, j]
            hit |= inside.any(axis=1)
            if hit.all():
                break
        # Spheres: squared distance accumulated per dimension.
        if data.num_spheres and not hit.all():
            sc, sr = data.sph_center32, data.sph_radius32
            for lo in range(0, data.num_spheres, _TILE):
                cc = sc[lo : lo + _TILE]
                r2 = sr[lo : lo + _TILE] ** 2
                diff = pts[:, 0, None] - cc[None, :, 0]
                d2 = diff * diff
                for j in range(1, dim):
                    diff = pts[:, j, None] - cc[None, :, j]
                    d2 += diff * diff
                hit |= (d2 <= r2[None, :]).any(axis=1)
                if hit.all():
                    break
        return free & ~hit

    def segments_free(self, data: EnvKernelData, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        p32 = _as_f32_2d(p)
        q32 = _as_f32_2d(q)
        n, dim = p32.shape
        free = np.all((p32 >= data.bounds_lo32) & (p32 <= data.bounds_hi32), axis=1) & np.all(
            (q32 >= data.bounds_lo32) & (q32 <= data.bounds_hi32), axis=1
        )
        if not free.any() or (data.num_boxes == 0 and data.num_spheres == 0):
            return free
        d = q32 - p32  # (n, dim)
        hit = np.zeros(n, dtype=bool)
        if data.num_boxes:
            with np.errstate(divide="ignore", invalid="ignore"):
                inv = np.where(d != 0.0, _F32(1.0) / d, _INF32)  # (n, dim)
            par = d == 0.0  # (n, dim) parallel-axis mask
            any_par = par.any()
            blo, bhi = data.box_lo32, data.box_hi32
            for lo in range(0, data.num_boxes, _TILE):
                olo = blo[lo : lo + _TILE]
                ohi = bhi[lo : lo + _TILE]
                t = olo.shape[0]
                t0 = np.zeros((n, t), dtype=_F32)
                t1 = np.ones((n, t), dtype=_F32)
                miss = np.zeros((n, t), dtype=bool)
                for j in range(dim):
                    pj = p32[:, j, None]  # (n, 1)
                    a = (olo[None, :, j] - pj) * inv[:, j, None]
                    b = (ohi[None, :, j] - pj) * inv[:, j, None]
                    tn = np.minimum(a, b)
                    tf = np.maximum(a, b)
                    if any_par:
                        # Parallel axes produce 0*inf = NaN above; replace
                        # with the pass-through slab and record misses for
                        # segments outside it.
                        pm = par[:, j, None]
                        inside = (pj >= olo[None, :, j]) & (pj <= ohi[None, :, j])
                        miss |= pm & ~inside
                        tn = np.where(pm, -_INF32, tn)
                        tf = np.where(pm, _INF32, tf)
                    np.maximum(t0, tn, out=t0)
                    np.minimum(t1, tf, out=t1)
                hit |= ((t0 <= t1) & ~miss).any(axis=1)
                if hit.all():
                    return free & ~hit
        if data.num_spheres:
            dd = np.einsum("ij,ij->i", d, d)  # (n,)
            safe_dd = np.where(dd > 0.0, dd, _F32(1.0))
            sc, sr = data.sph_center32, data.sph_radius32
            for lo in range(0, data.num_spheres, _TILE):
                cc = sc[lo : lo + _TILE]
                r2 = sr[lo : lo + _TILE] ** 2
                # t = clamp(-(p-c)·d / d·d, 0, 1) accumulated per dim.
                num = (cc[None, :, 0] - p32[:, 0, None]) * d[:, 0, None]
                for j in range(1, dim):
                    num += (cc[None, :, j] - p32[:, j, None]) * d[:, j, None]
                t = np.clip(num / safe_dd[:, None], _F32(0.0), _F32(1.0))
                diff = p32[:, 0, None] + t * d[:, 0, None] - cc[None, :, 0]
                d2 = diff * diff
                for j in range(1, dim):
                    diff = p32[:, j, None] + t * d[:, j, None] - cc[None, :, j]
                    d2 += diff * diff
                hit |= (d2 <= r2[None, :]).any(axis=1)
                if hit.all():
                    break
        return free & ~hit

    # -- distances ---------------------------------------------------------
    def pairwise_accumulate(self, stored: np.ndarray, queries: np.ndarray, out: np.ndarray) -> None:
        n = stored.shape[0]
        if n == 0:
            return
        s32 = _as_f32_2d(stored)
        q32 = _as_f32_2d(queries)
        m, dim = q32.shape
        tmp = np.empty((m, n), dtype=_F32)
        acc = np.empty((m, n), dtype=_F32)
        for j in range(dim):
            np.subtract(s32[None, :, j], q32[:, j, None], out=tmp)
            np.multiply(tmp, tmp, out=tmp)
            if j == 0:
                acc, tmp = tmp, acc
            else:
                np.add(acc, tmp, out=acc)
        np.sqrt(acc, out=acc)
        out[:, :] = acc  # single float32 -> float64 cast on store

    def knn_block_min(
        self, stored: np.ndarray, queries: np.ndarray, k: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        stored = _as_f32_2d(stored)
        queries = _as_f32_2d(queries)
        m, n = queries.shape[0], stored.shape[0]
        kk = max(k, 0)
        best_i = np.full((m, kk), -1, dtype=np.int64)
        best_d = np.full((m, kk), _INF32, dtype=_F32)
        if n == 0 or kk == 0 or m == 0:
            return best_i, best_d.astype(np.float64)
        dim = queries.shape[1]
        # Running top-k over stored-point tiles: each tile is reduced to
        # its k smallest per row with argpartition, then merged with the
        # previous best via a canonical (distance, index) sort of the
        # <= 2k candidates — O(n) selection instead of an O(n log n) sort.
        # Ties at the argpartition boundary (exact float32 distance ties
        # straddling the k-th rank within one tile) may deviate from the
        # canonical tie-break; that is within this backend's statistical
        # contract and is deterministic for a given input.
        for lo in range(0, n, _KNN_TILE):
            tile = stored[lo : lo + _KNN_TILE]
            t = tile.shape[0]
            tmp = np.empty((m, t), dtype=_F32)
            acc = np.empty((m, t), dtype=_F32)
            for j in range(dim):
                np.subtract(tile[None, :, j], queries[:, j, None], out=tmp)
                np.multiply(tmp, tmp, out=tmp)
                if j == 0:
                    acc, tmp = tmp, acc
                else:
                    np.add(acc, tmp, out=acc)
            np.sqrt(acc, out=acc)
            if t > kk:
                part = np.argpartition(acc, kk - 1, axis=1)[:, :kk]
                tile_d = np.take_along_axis(acc, part, axis=1)
                tile_i = part.astype(np.int64) + lo
            else:
                tile_d = acc
                tile_i = np.broadcast_to(np.arange(lo, lo + t, dtype=np.int64), (m, t))
            cand_d = np.concatenate((best_d, tile_d), axis=1)
            cand_i = np.concatenate((best_i, tile_i), axis=1)
            # Canonical order of the candidates: stable-sort by index then
            # (stably) by distance, so equal distances keep ascending ids.
            ordi = np.argsort(cand_i, axis=1, kind="stable")
            cand_d = np.take_along_axis(cand_d, ordi, axis=1)
            cand_i = np.take_along_axis(cand_i, ordi, axis=1)
            ordd = np.argsort(cand_d, axis=1, kind="stable")[:, :kk]
            best_d = np.take_along_axis(cand_d, ordd, axis=1)
            best_i = np.take_along_axis(cand_i, ordd, axis=1)
        return best_i, best_d.astype(np.float64)
