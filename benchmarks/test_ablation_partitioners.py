"""Ablation: greedy LPT vs spatial RCB vs refined LPT.

Quantifies the balance/edge-cut trade-off behind Fig. 7's region-connection
regression: LPT balances best but cuts most adjacencies; RCB preserves
locality; refinement recovers locality at small balance cost.
"""

from repro.bench import format_table, prm_workload
from repro.partition import (
    edge_cut_of,
    evaluate_partition,
    partition_greedy_lpt,
    partition_rcb,
    refine_partition,
)


def run_ablation():
    wl = prm_workload("med-cube", num_regions=3000, samples_per_region=8)
    g = wl.subdivision.graph
    for rid, w in wl.sample_count_weights().items():
        g.set_weight(rid, w)
    P = 192
    rows = []
    partitions = {
        "lpt": partition_greedy_lpt(g, P),
        "rcb": partition_rcb(g, P),
    }
    partitions["lpt+refine"] = refine_partition(g, partitions["lpt"], P)
    for name, assign in partitions.items():
        q = evaluate_partition(g, assign, P)
        rows.append([name, f"{q.coefficient_of_variation:.3f}", q.edge_cut, f"{q.imbalance:.2f}"])
    print("\nAblation — partitioner balance vs edge cut (med-cube, P=192)")
    print(format_table(["partitioner", "CoV", "edge cut", "max/mean"], rows))
    return rows


def test_ablation_partitioners(once):
    rows = once(run_ablation)
    by = {r[0]: r for r in rows}
    # RCB cuts fewer edges than raw LPT; refinement does not increase LPT's cut.
    assert int(by["rcb"][2]) < int(by["lpt"][2])
    assert int(by["lpt+refine"][2]) <= int(by["lpt"][2])
    # LPT balances at least as well as RCB.
    assert float(by["lpt"][1]) <= float(by["rcb"][1]) + 0.05
