"""Tests for the structured observability layer (repro.obs)."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    EV_STEAL_REQUEST,
    EV_STEAL_TRANSFER,
    EV_TASK_END,
    EV_TASK_START,
    NULL_TRACER,
    Event,
    JsonlSink,
    MemorySink,
    MetricRegistry,
    NullTracer,
    Tracer,
    active,
    parse_jsonl,
    read_jsonl,
    summarize_events,
)
from repro.obs.summary import format_summary
from repro.runtime import ClusterTopology, WorkStealingSimulator
from repro.core.work_stealing import policy_by_name


class TestEvent:
    def test_json_round_trip(self):
        ev = Event(ts=1.5, kind="point", name="task_start", pe=3, attrs={"task": 7})
        assert Event.from_json(ev.to_json()) == ev

    def test_json_omits_empty_fields(self):
        ev = Event(ts=0.0, kind="point", name="x")
        d = ev.to_json()
        assert "pe" not in d and "attrs" not in d
        assert Event.from_json(d) == ev


class TestMetricRegistry:
    def test_counter(self):
        reg = MetricRegistry()
        reg.counter("steals").inc()
        reg.counter("steals").inc(4)
        assert reg.counter("steals").value == 5
        with pytest.raises(ValueError):
            reg.counter("steals").inc(-1)

    def test_counter_concurrent_increments_all_land(self):
        import threading

        reg = MetricRegistry()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                reg.counter("served").inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("served").value == n_threads * per_thread

    def test_gauge(self):
        reg = MetricRegistry()
        reg.gauge("load").set(2.5)
        reg.gauge("load").add(0.5)
        assert reg.gauge("load").value == 3.0

    def test_histogram(self):
        reg = MetricRegistry()
        h = reg.histogram("busy")
        for v in (1.0, 3.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_histogram(self):
        h = MetricRegistry().histogram("empty")
        assert h.mean == 0.0 and h.percentile(50) == 0.0

    def test_as_dict(self):
        reg = MetricRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(3.0)
        snap = reg.as_dict()
        assert snap["c"] == 2 and snap["g"] == 1.0
        assert snap["h"]["count"] == 1 and snap["h"]["sum"] == 3.0


class TestSinks:
    def test_memory_ring_buffer(self):
        sink = MemorySink(capacity=3)
        for i in range(5):
            sink.emit(Event(ts=float(i), kind="point", name="x"))
        assert len(sink) == 3
        assert [e.ts for e in sink.events] == [2.0, 3.0, 4.0]

    def test_memory_capacity_validation(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = [
            Event(ts=0.0, kind="span_begin", name="construct"),
            Event(ts=1.0, kind="point", name="task_start", pe=2, attrs={"cost": 4.5}),
            Event(ts=9.0, kind="span_end", name="construct"),
        ]
        with JsonlSink(path) as sink:
            for ev in events:
                sink.emit(ev)
        assert read_jsonl(path) == events

    def test_jsonl_accepts_open_handle(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit(Event(ts=1.0, kind="point", name="x"))
        sink.close()  # must not close a caller-owned handle
        assert json.loads(buf.getvalue()) == {"ts": 1.0, "kind": "point", "name": "x"}

    def test_jsonl_concurrent_emit_keeps_lines_intact(self, tmp_path):
        # The service layer traces from its dispatcher thread and pool
        # workers at once; interleaved writes must never corrupt a line.
        import threading

        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        n_threads, per_thread = 8, 200
        barrier = threading.Barrier(n_threads)

        def hammer(tid):
            barrier.wait()
            for i in range(per_thread):
                sink.emit(
                    Event(ts=float(i), kind="point", name="x",
                          attrs={"tid": tid, "pad": "y" * 64})
                )

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        events = read_jsonl(path)  # raises on any corrupted line
        assert len(events) == n_threads * per_thread

    def test_parse_jsonl_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_jsonl(['{"ts": 0, "kind": "point", "name": "x"}', "not json"])

    def test_parse_jsonl_skips_blank_lines(self):
        assert parse_jsonl(["", '{"ts": 0, "kind": "point", "name": "x"}', "  "]) == [
            Event(ts=0.0, kind="point", name="x")
        ]


class TestTracer:
    def test_default_memory_sink(self):
        tr = Tracer()
        tr.point("task_start", ts=1.0, pe=0, task=3)
        assert len(tr.memory.events) == 1
        ev = tr.memory.events[0]
        assert ev.name == "task_start" and ev.attrs == {"task": 3}

    def test_span_context_manager_orders_events(self):
        tr = Tracer()
        with tr.span("construct"):
            tr.point("task_start", pe=0)
        kinds = [e.kind for e in tr.memory.events]
        assert kinds == ["span_begin", "point", "span_end"]
        begin, _, end = tr.memory.events
        assert begin.ts <= end.ts

    def test_span_at_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().span_at("x", 2.0, 1.0)

    def test_offset_shifts_timestamps(self):
        tr = Tracer()
        off = tr.offset(10.0)
        off.point("x", ts=1.5)
        assert tr.memory.events[0].ts == 11.5

    def test_offset_composes_and_shares_metrics(self):
        tr = Tracer()
        off = tr.offset(10.0).offset(5.0)
        off.point("x", ts=0.0)
        off.metrics.counter("c").inc()
        assert tr.memory.events[0].ts == 15.0
        assert tr.metrics.counter("c").value == 1

    def test_zero_offset_is_identity(self):
        tr = Tracer()
        assert tr.offset(0.0) is tr

    def test_null_tracer_normalises_to_none(self):
        assert active(None) is None
        assert active(NULL_TRACER) is None
        assert active(NullTracer()) is None
        tr = Tracer()
        assert active(tr) is tr

    def test_null_tracer_accepts_api(self):
        nt = NullTracer()
        with nt.span("x"):
            nt.point("y", pe=1)
        nt.span_at("z", 0.0, 1.0)
        assert nt.offset(5.0) is nt
        assert nt.memory is None


def _run_simulated(tracer=None, num_pes=8, seed=7):
    """A small deterministic work-stealing run with imbalanced costs."""
    rng = np.random.default_rng(seed)
    costs = {t: float(c) for t, c in enumerate(rng.uniform(1.0, 20.0, 60))}
    topology = ClusterTopology(num_pes)
    sim = WorkStealingSimulator(
        topology,
        lambda task, pe: costs[task],
        steal_policy=policy_by_name("rand-8"),
        rng=np.random.default_rng(seed),
        tracer=tracer,
    )
    # Pile all tasks on PE 0 so stealing definitely happens.
    return sim.run({t: 0 for t in costs})


class TestSimulatorTracing:
    def test_event_stream_is_time_ordered_and_deterministic(self):
        tr1, tr2 = Tracer(), Tracer()
        _run_simulated(tr1)
        _run_simulated(tr2)
        events = tr1.memory.events
        assert events, "instrumented run must emit events"
        ts = [e.ts for e in events]
        assert ts == sorted(ts), "virtual clock must be monotone over emissions"
        assert events == tr2.memory.events, "same seed must give identical traces"

    def test_trace_matches_sim_result_exactly(self):
        tr = Tracer()
        result = _run_simulated(tr)
        s = summarize_events(tr.memory.events)
        assert s.tasks_executed == sum(p.tasks_executed for p in result.pe_stats)
        assert s.steal_requests == sum(p.steal_requests_sent for p in result.pe_stats)
        assert s.steal_transfers == sum(p.steals_serviced for p in result.pe_stats)
        assert s.steal_fails == sum(p.steals_failed for p in result.pe_stats)
        assert s.tasks_migrated == sum(p.tasks_lost for p in result.pe_stats)
        for pe, st in enumerate(result.pe_stats):
            assert s.per_pe_tasks.get(pe, 0) == st.tasks_executed
            assert s.per_pe_stolen_tasks.get(pe, 0) == st.tasks_stolen_executed
            assert s.per_pe_busy.get(pe, 0.0) == pytest.approx(st.work_time)

    def test_metrics_registry_populated(self):
        tr = Tracer()
        result = _run_simulated(tr)
        m = tr.metrics
        assert m.counter("steals_attempted").value == sum(
            p.steal_requests_sent for p in result.pe_stats
        )
        assert m.counter("tasks_migrated").value == sum(
            p.tasks_lost for p in result.pe_stats
        )
        busy = m.histogram("pe_busy_time")
        assert busy.count == result.num_pes
        assert busy.sum == pytest.approx(result.total_work())

    def test_untraced_run_identical_to_traced(self):
        plain = _run_simulated(None)
        traced = _run_simulated(Tracer())
        assert plain.makespan == traced.makespan
        assert plain.executed_by == traced.executed_by


class TestSummarize:
    def _golden_events(self):
        return [
            Event(ts=0.0, kind="span_begin", name="construct"),
            Event(ts=0.0, kind="point", name=EV_TASK_START, pe=0,
                  attrs={"task": 1, "cost": 5.0, "stolen": False}),
            Event(ts=1.0, kind="point", name=EV_STEAL_REQUEST, pe=1,
                  attrs={"victim": 0}),
            Event(ts=2.0, kind="point", name=EV_STEAL_TRANSFER, pe=0,
                  attrs={"thief": 1, "tasks": 2}),
            Event(ts=5.0, kind="point", name=EV_TASK_END, pe=0,
                  attrs={"task": 1, "cost": 5.0, "stolen": False}),
            Event(ts=7.0, kind="point", name=EV_TASK_END, pe=1,
                  attrs={"task": 2, "cost": 3.0, "stolen": True}),
            Event(ts=8.0, kind="span_end", name="construct"),
        ]

    def test_golden_trace(self):
        s = summarize_events(self._golden_events())
        assert s.phases == {"construct": 8.0}
        assert s.tasks_executed == 2
        assert s.steal_requests == 1
        assert s.steal_transfers == 1
        assert s.tasks_migrated == 2
        assert s.per_pe_busy == {0: 5.0, 1: 3.0}
        assert s.per_pe_stolen_tasks == {1: 1}
        assert s.stolen_fraction() == 0.5
        assert s.end_time == 8.0

    def test_order_independent(self):
        events = self._golden_events()
        shuffled = list(reversed(events))
        assert summarize_events(shuffled) == summarize_events(events)

    def test_unclosed_span_rejected(self):
        with pytest.raises(ValueError, match="unclosed"):
            summarize_events([Event(ts=0.0, kind="span_begin", name="construct")])

    def test_end_without_begin_rejected(self):
        with pytest.raises(ValueError, match="without begin"):
            summarize_events([Event(ts=1.0, kind="span_end", name="construct")])

    def test_format_summary_mentions_figures(self):
        text = format_summary(summarize_events(self._golden_events()))
        assert "construct" in text
        assert "Fig. 7a" in text and "Fig. 9" in text

    def test_format_summary_planner_stats_table(self):
        from repro.planners.stats import PlannerStats

        s = summarize_events(self._golden_events())
        assert "Planner work" not in format_summary(s)

        stats = PlannerStats(sample_attempts=100, nn_queries=90,
                             nn_distance_evals=4_000, lp_checks=80,
                             edges_added=70)
        text = format_summary(s, planner_stats=stats)
        assert "Planner work" in text
        assert "4000" in text
        # No incremental index in play -> no evals-saved line.
        assert "evals saved" not in text

    def test_format_summary_evals_saved_line(self):
        from repro.planners.stats import PlannerStats

        s = summarize_events(self._golden_events())
        stats = PlannerStats(sample_attempts=100, nn_queries=90,
                             nn_distance_evals=4_000, lp_checks=80,
                             edges_added=70, nn_evals_saved=120_000,
                             nn_rebuilds=7, nn_buffer_hits=40)
        text = format_summary(s, planner_stats=stats)
        assert ("nn evals saved by the incremental index: 120000 "
                "(7 rebuilds, 40 buffer hits)") in text
