"""Roadmap graph: the data structure PRM and RRT build.

A small, dependency-free adjacency-list graph specialised for motion
planning: vertices carry configurations, edges carry C-space lengths, and
connected components are tracked incrementally with a union-find so that
"would this edge merge two components?" — the question PRM connection
strategies ask constantly — is O(α(n)).

Configurations live in one contiguous, amortised-growth NumPy array (the
same layout as :class:`repro.knn.brute.BruteForceNN`), so
:meth:`Roadmap.configs_array` is O(1) and batched accessors like
:meth:`Roadmap.configs_of` feed the vectorised local planner directly —
roadmap construction is the hot path of the whole computation
(paper Sec. III-B).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Roadmap", "UnionFind"]

_INITIAL_CAPACITY = 64


class UnionFind:
    """Array-based union-find with path compression and union by rank.

    Arbitrary hashable keys are interned once into dense slots; parent and
    rank live in flat lists indexed by slot, which beats per-element dict
    storage for the millions of tiny find/union operations roadmap
    construction performs.
    """

    __slots__ = ("_slot", "_key", "_parent", "_rank", "num_sets")

    def __init__(self) -> None:
        self._slot: dict[int, int] = {}
        self._key: list[int] = []
        self._parent: list[int] = []
        self._rank: list[int] = []
        self.num_sets = 0

    def make_set(self, x: int) -> None:
        if x in self._slot:
            return
        s = len(self._parent)
        self._slot[x] = s
        self._key.append(x)
        self._parent.append(s)
        self._rank.append(0)
        self.num_sets += 1

    def _find_slot(self, s: int) -> int:
        parent = self._parent
        root = s
        while parent[root] != root:
            root = parent[root]
        while parent[s] != root:
            parent[s], s = root, parent[s]
        return root

    def find(self, x: int) -> int:
        """Representative key of the set containing ``x``."""
        return self._key[self._find_slot(self._slot[x])]

    def root_slot(self, x: int) -> int:
        """Dense slot index of ``x``'s representative — one find instead of
        the two a ``same_set`` costs, for callers comparing many elements
        against a fixed set.  Stable only until the next union."""
        return self._find_slot(self._slot[x])

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra = self._find_slot(self._slot[a])
        rb = self._find_slot(self._slot[b])
        if ra == rb:
            return False
        rank = self._rank
        if rank[ra] < rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if rank[ra] == rank[rb]:
            rank[ra] += 1
        self.num_sets -= 1
        return True

    def same_set(self, a: int, b: int) -> bool:
        return self._find_slot(self._slot[a]) == self._find_slot(self._slot[b])

    def __contains__(self, x: int) -> bool:
        return x in self._slot


class Roadmap:
    """Undirected graph of configurations.

    Vertex ids are non-negative integers.  By default they are assigned
    sequentially, but callers may supply explicit ids (the distributed
    planners use globally unique ids of the form ``region_id << 32 | local``).

    ``metric`` (optional) supplies the edge weight when :meth:`add_edge` is
    called without one.  The default is the raw Euclidean norm, which is
    **wrong for C-spaces with topology** (e.g. SO(2) wraparound); planners
    in this repo therefore always pass explicit weights computed by their
    configuration space, and callers on non-Euclidean spaces should either
    do the same or pass ``metric=cspace.distance`` here.
    """

    def __init__(self, dim: int, metric: "Callable[[np.ndarray, np.ndarray], float] | None" = None):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.metric = metric
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._cfgs = np.empty((_INITIAL_CAPACITY, dim))
        self._n = 0
        self._index: dict[int, int] = {}
        self._adj: dict[int, dict[int, float]] = {}
        self._next_id = 0
        self._uf = UnionFind()
        self.num_edges = 0

    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        cap = self._cfgs.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        cfgs = np.empty((new_cap, self.dim))
        cfgs[: self._n] = self._cfgs[: self._n]
        ids = np.empty(new_cap, dtype=np.int64)
        ids[: self._n] = self._ids[: self._n]
        self._cfgs, self._ids = cfgs, ids

    # -- vertices ---------------------------------------------------------
    def add_vertex(self, config: np.ndarray, vid: int | None = None) -> int:
        cfg = np.asarray(config, dtype=float)
        if cfg.shape != (self.dim,):
            raise ValueError(f"config must have shape ({self.dim},), got {cfg.shape}")
        if vid is None:
            vid = self._next_id
        if vid in self._index:
            raise KeyError(f"vertex {vid} already exists")
        self._next_id = max(self._next_id, vid + 1)
        self._ensure_capacity(1)
        row = self._n
        self._cfgs[row] = cfg
        self._ids[row] = vid
        self._index[vid] = row
        self._n = row + 1
        self._adj[vid] = {}
        self._uf.make_set(vid)
        return vid

    def config(self, vid: int) -> np.ndarray:
        """The configuration of ``vid`` (a read-view into shared storage)."""
        return self._cfgs[self._index[vid]]

    def configs_of(self, vids) -> np.ndarray:
        """Configurations of many vertices as one ``(len(vids), dim)`` array."""
        index = self._index
        rows = [index[v] for v in vids]
        if not rows:
            return np.empty((0, self.dim))
        return self._cfgs[rows]

    def remove_vertex(self, vid: int) -> None:
        """Delete a vertex and its incident edges.

        O(degree) via swap-with-last storage removal (insertion order of
        the *last-added* vertex changes).  Like :meth:`remove_edge`,
        union-find component tracking is not rewound — callers needing
        exact components afterwards should use
        :meth:`connected_components`.
        """
        row = self._index.pop(vid, None)
        if row is None:
            raise KeyError(f"vertex {vid} does not exist")
        for nbr in self._adj.pop(vid):
            del self._adj[nbr][vid]
            self.num_edges -= 1
        last = self._n - 1
        if row != last:
            self._cfgs[row] = self._cfgs[last]
            moved = int(self._ids[last])
            self._ids[row] = moved
            self._index[moved] = row
        self._n = last

    def has_vertex(self, vid: int) -> bool:
        return vid in self._index

    @property
    def num_vertices(self) -> int:
        return self._n

    def vertices(self):
        """All vertex ids in insertion order."""
        return self._ids[: self._n]

    def configs_array(self) -> "tuple[np.ndarray, np.ndarray]":
        """All vertex ids and configurations as arrays (stable order, O(1)).

        Returns views of the internal storage; treat them as read-only
        snapshots (they stay valid — but stop tracking — if the roadmap
        grows afterwards).
        """
        return self._ids[: self._n], self._cfgs[: self._n]

    # -- edges --------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float | None = None) -> bool:
        """Insert undirected edge; returns False if it already existed.

        When ``weight`` is omitted it comes from the roadmap's ``metric``
        (default: Euclidean norm — see the class docstring for the
        topology caveat).
        """
        if u == v:
            raise ValueError("self-loops are not allowed in a roadmap")
        if u not in self._index or v not in self._index:
            raise KeyError(f"edge ({u},{v}) references missing vertex")
        if v in self._adj[u]:
            return False
        if weight is None:
            cu, cv = self._cfgs[self._index[u]], self._cfgs[self._index[v]]
            w = float(self.metric(cu, cv)) if self.metric is not None else float(np.linalg.norm(cu - cv))
        else:
            w = float(weight)
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._uf.union(u, v)
        self.num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def remove_edge(self, u: int, v: int) -> None:
        """Delete an undirected edge (component tracking is rebuilt lazily:
        union-find does not support splits, so callers needing exact
        components after removal should use :meth:`connected_components`)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u},{v}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self.num_edges -= 1

    def neighbors(self, vid: int) -> "dict[int, float]":
        return self._adj[vid]

    def degree(self, vid: int) -> int:
        return len(self._adj[vid])

    def edges(self):
        """Iterate undirected edges once, as (u, v, weight) with u < v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    # -- components ------------------------------------------------------------
    def same_component(self, u: int, v: int) -> bool:
        """Fast, union-find-based check (exact as long as no edges were removed)."""
        return self._uf.same_set(u, v)

    def component_id(self, vid: int) -> int:
        """Representative vertex id of ``vid``'s component (union-find root).

        Stable only until the next union; use for transient grouping, not
        as a persistent label.
        """
        return self._uf.find(vid)

    def component_slot(self, vid: int) -> int:
        """Opaque dense label of ``vid``'s component — equality-comparable
        like :meth:`component_id` but cheaper on the hot path.  Stable
        only until the next edge insertion."""
        return self._uf.root_slot(vid)

    @property
    def num_components_fast(self) -> int:
        return self._uf.num_sets

    def connected_components(self) -> "list[set[int]]":
        """Exact connected components by BFS (robust to edge removals)."""
        seen: set[int] = set()
        comps: list[set[int]] = []
        for start in self._adj:
            if start in seen:
                continue
            comp = {start}
            frontier = [start]
            while frontier:
                u = frontier.pop()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        frontier.append(v)
            seen |= comp
            comps.append(comp)
        return comps

    # -- merging (used to stitch regional roadmaps into one) -------------------
    def merge(self, other: "Roadmap") -> None:
        """Graph union of ``other`` into self; vertex ids must be disjoint
        or refer to identical configurations."""
        if other.dim != self.dim:
            raise ValueError("cannot merge roadmaps of different dimension")
        o_ids = other._ids[: other._n]
        o_cfgs = other._cfgs[: other._n]
        fresh_rows: "list[int]" = []
        for i in range(other._n):
            vid = int(o_ids[i])
            row = self._index.get(vid)
            if row is not None:
                if not np.allclose(self._cfgs[row], o_cfgs[i]):
                    raise ValueError(f"vertex id clash with different configs: {vid}")
            else:
                fresh_rows.append(i)
        if fresh_rows:
            self._ensure_capacity(len(fresh_rows))
            dst = self._n
            self._cfgs[dst : dst + len(fresh_rows)] = o_cfgs[fresh_rows]
            self._ids[dst : dst + len(fresh_rows)] = o_ids[fresh_rows]
            for i in fresh_rows:
                vid = int(o_ids[i])
                self._index[vid] = dst
                dst += 1
                self._adj[vid] = {}
                self._uf.make_set(vid)
                self._next_id = max(self._next_id, vid + 1)
            self._n = dst
        for u, v, w in other.edges():
            self.add_edge(u, v, w)

    # -- freezing -----------------------------------------------------------
    def freeze(self):
        """Compile this roadmap into a :class:`~repro.planners.frozen.FrozenRoadmap`
        CSR snapshot for amortised query serving.  The snapshot does not
        track later mutations — re-freeze after changing the roadmap."""
        from .frozen import FrozenRoadmap

        return FrozenRoadmap.from_roadmap(self)

    # -- paths --------------------------------------------------------------
    def path_length(self, path: "list[int]") -> float:
        total = 0.0
        for u, v in zip(path, path[1:]):
            if not self.has_edge(u, v):
                raise KeyError(f"path uses missing edge ({u},{v})")
            total += self._adj[u][v]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Roadmap(|V|={self.num_vertices}, |E|={self.num_edges})"
