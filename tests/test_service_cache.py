"""Tests for the snapshot cache (repro.service.cache)."""

import threading

import pytest

from repro import WorkloadSpec
from repro.obs import Tracer
from repro.service import RoadmapCache, snapshot_nbytes
from repro.service.cache import build_engine


def _spec(seed=0, regions=8):
    return WorkloadSpec(
        environment="med-cube",
        planner="prm",
        num_regions=regions,
        samples_per_region=2,
        seed=seed,
    )


class CountingBuilder:
    """Builder wrapper that counts real constructions (thread-safe)."""

    def __init__(self, delay=0.0, fail=False):
        self.calls = 0
        self.delay = delay
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, spec):
        with self._lock:
            self.calls += 1
        if self.delay:
            import time

            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("construction failed")
        return build_engine(spec)


class TestKeying:
    def test_same_workload_hits(self):
        cache = RoadmapCache()
        a = cache.get(_spec(seed=3))
        b = cache.get(_spec(seed=3))
        assert a is b
        st = cache.stats
        assert (st.hits, st.misses, st.builds) == (1, 1, 1)

    def test_different_seed_is_not_a_hit(self):
        cache = RoadmapCache()
        a = cache.get(_spec(seed=0))
        b = cache.get(_spec(seed=1))
        assert a is not b
        st = cache.stats
        assert st.hits == 0
        assert st.misses == 2
        assert st.builds == 2

    def test_contains_and_len(self):
        cache = RoadmapCache()
        assert _spec() not in cache
        cache.get(_spec())
        assert _spec() in cache
        assert len(cache) == 1


class TestLRUEviction:
    def test_evicts_least_recently_used_under_budget(self):
        cache = RoadmapCache(max_bytes=None)
        first = cache.get(_spec(seed=0))
        budget = snapshot_nbytes(first) * 2 + snapshot_nbytes(first) // 2
        cache = RoadmapCache(max_bytes=budget)
        cache.get(_spec(seed=0))
        cache.get(_spec(seed=1))
        cache.get(_spec(seed=0))  # refresh seed 0: seed 1 is now LRU
        cache.get(_spec(seed=2))  # over budget -> evict seed 1
        assert _spec(seed=0) in cache
        assert _spec(seed=1) not in cache
        assert _spec(seed=2) in cache
        st = cache.stats
        assert st.evictions == 1
        assert st.current_bytes <= budget

    def test_oversized_entry_survives_alone(self):
        cache = RoadmapCache(max_bytes=1)  # nothing fits
        cache.get(_spec(seed=0))
        assert len(cache) == 1  # the newest entry is never evicted
        cache.get(_spec(seed=1))
        assert len(cache) == 1
        assert _spec(seed=1) in cache
        assert cache.stats.evictions == 1

    def test_unbounded_cache_never_evicts(self):
        cache = RoadmapCache(max_bytes=None)
        for seed in range(4):
            cache.get(_spec(seed=seed))
        assert len(cache) == 4
        assert cache.stats.evictions == 0

    def test_put_and_clear(self):
        cache = RoadmapCache()
        engine = build_engine(_spec(seed=9))
        cache.put(_spec(seed=9), engine)
        assert cache.get(_spec(seed=9)) is engine
        assert cache.stats.hits == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestSingleflight:
    def test_concurrent_misses_build_once(self):
        builder = CountingBuilder(delay=0.05)
        cache = RoadmapCache(builder=builder)
        results = [None] * 8
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            results[i] = cache.get(_spec(seed=42))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert builder.calls == 1
        assert all(r is results[0] for r in results)
        st = cache.stats
        assert st.builds == 1
        assert st.misses == 8
        assert st.coalesced == 7

    def test_failed_build_propagates_and_allows_retry(self):
        builder = CountingBuilder(fail=True)
        cache = RoadmapCache(builder=builder)
        with pytest.raises(RuntimeError, match="construction failed"):
            cache.get(_spec())
        builder.fail = False
        engine = cache.get(_spec())  # the flight was cleared -> retry works
        assert engine is not None
        assert builder.calls == 2


class TestDisabledCache:
    def test_disabled_builds_every_time(self):
        builder = CountingBuilder()
        cache = RoadmapCache(builder=builder, enabled=False)
        a = cache.get(_spec())
        b = cache.get(_spec())
        assert a is not b
        assert builder.calls == 2
        st = cache.stats
        assert st.hits == 0
        assert st.misses == 2
        assert len(cache) == 0


class TestObservability:
    def test_events_and_counters(self):
        tracer = Tracer()
        cache = RoadmapCache(tracer=tracer)
        cache.get(_spec(seed=0))
        cache.get(_spec(seed=0))
        names = [e.name for e in tracer.memory.events]
        assert names.count("cache_miss") == 1
        assert names.count("cache_hit") == 1
        assert tracer.metrics.counter("cache_hits").value == 1
        assert tracer.metrics.counter("cache_misses").value == 1

    def test_eviction_event_carries_bytes(self):
        tracer = Tracer()
        probe = RoadmapCache()
        nbytes = snapshot_nbytes(probe.get(_spec(seed=0)))
        cache = RoadmapCache(max_bytes=nbytes + nbytes // 2, tracer=tracer)
        cache.get(_spec(seed=0))
        cache.get(_spec(seed=1))
        evicts = [e for e in tracer.memory.events if e.name == "cache_evict"]
        assert len(evicts) == 1
        assert evicts[0].attrs["bytes"] > 0

    def test_hit_rate(self):
        cache = RoadmapCache()
        assert cache.stats.hit_rate == 0.0
        cache.get(_spec())
        cache.get(_spec())
        cache.get(_spec())
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
