"""Benchmark harness: workload caching and per-figure drivers."""

from .figures import (
    fig4a_model_cov,
    fig4b_model_improvement,
    fig5a_prm_medcube_time,
    fig5b_prm_cov,
    fig5c_load_profile,
    fig6_prm_scale,
    fig7a_phase_breakdown,
    fig7b_remote_accesses,
    fig8_prm_environments,
    fig9_steal_distribution,
    fig10_rrt_environments,
)
from .harness import (
    PRM_STRATEGIES,
    RRT_STRATEGIES,
    format_table,
    prm_scaling_table,
    prm_workload,
    rrt_scaling_table,
    rrt_workload,
)

__all__ = [
    "fig4a_model_cov",
    "fig4b_model_improvement",
    "fig5a_prm_medcube_time",
    "fig5b_prm_cov",
    "fig5c_load_profile",
    "fig6_prm_scale",
    "fig7a_phase_breakdown",
    "fig7b_remote_accesses",
    "fig8_prm_environments",
    "fig9_steal_distribution",
    "fig10_rrt_environments",
    "PRM_STRATEGIES",
    "RRT_STRATEGIES",
    "format_table",
    "prm_scaling_table",
    "prm_workload",
    "rrt_scaling_table",
    "rrt_workload",
]
