"""Command-line trace tooling.

Usage::

    python -m repro.obs summarize trace.jsonl   # phase + steal report
    python -m repro.obs events trace.jsonl      # dump decoded events
"""

from __future__ import annotations

import sys

from .sinks import read_jsonl
from .summary import format_summary, summarize_events


def main(argv: "list[str]") -> int:
    """Run the ``summarize`` / ``events`` trace commands; 0 on success."""
    if len(argv) < 1 or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    command, *rest = argv
    if command not in ("summarize", "events"):
        print(f"unknown command {command!r}; try 'summarize' or 'events'", file=sys.stderr)
        return 2
    if len(rest) != 1:
        print(f"usage: python -m repro.obs {command} TRACE.jsonl", file=sys.stderr)
        return 2
    try:
        events = read_jsonl(rest[0])
    except (OSError, ValueError) as exc:
        print(f"error reading trace: {exc}", file=sys.stderr)
        return 1
    try:
        if command == "events":
            for ev in events:
                pe = "" if ev.pe is None else f" pe={ev.pe}"
                attrs = f" {dict(ev.attrs)}" if ev.attrs else ""
                print(f"{ev.ts:12.4f} {ev.kind:10s} {ev.name}{pe}{attrs}")
        else:
            print(format_summary(summarize_events(events)))
    except ValueError as exc:  # malformed trace semantics, e.g. unclosed span
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # e.g. piped into `head`
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
