"""Region work estimators (``ComputeRegionWeight`` of Algorithm 4).

PRM — sample counts.  "A good metric for approximating the amount of work
that a region will generate is the number of samples in the roadmap that
lie within that region" (Sec. III-B): sample generation is cheap and
happens before the expensive connection phase, so the counts are known
exactly when repartitioning runs.

RRT — k random rays.  "An estimate of work for an RRT branch that uses k
random rays originating from the origin of the region, and computes the
minimum distance to an obstacle in the direction of these rays" (Sec.
III-B).  The paper shows this is a *poor* estimator unless many rays are
used (and then it is expensive) — reproduced by our Fig. 10b bench.
"""

from __future__ import annotations

import numpy as np

from ..geometry.environment import Environment
from ..subdivision.radial import RadialSubdivision
from ..subdivision.region import RegionGraph
from ..subdivision.uniform import UniformSubdivision

__all__ = [
    "prm_sample_count_weights",
    "prm_free_volume_weights",
    "rrt_k_rays_weights",
    "uniform_weights",
]


def uniform_weights(graph: RegionGraph) -> "dict[int, float]":
    """All regions weigh 1 — what no-information repartitioning would use."""
    return {rid: 1.0 for rid in graph.region_ids()}


def prm_sample_count_weights(
    subdivision: UniformSubdivision, samples: np.ndarray
) -> "dict[int, float]":
    """Weight = number of roadmap samples whose position falls in the region.

    ``samples`` is the ``(n, d)`` array of positional coordinates of all
    generated roadmap nodes (the regional sampling phase output).
    """
    weights = {rid: 0.0 for rid in subdivision.graph.region_ids()}
    if samples.size:
        rids = subdivision.locate_batch(samples)
        ids, counts = np.unique(rids, return_counts=True)
        for rid, c in zip(ids, counts):
            weights[int(rid)] = float(c)
    return weights


def prm_free_volume_weights(subdivision: UniformSubdivision, env: Environment) -> "dict[int, float]":
    """Weight = exact free volume of the region — the theoretical model's
    ground truth (Sec. IV-B: load is proportional to ``V_free``)."""
    weights: "dict[int, float]" = {}
    for rid in subdivision.graph.region_ids():
        region = subdivision.region_of(rid)
        weights[rid] = env.free_volume(region.bounds)
    return weights


def rrt_k_rays_weights(
    radial: RadialSubdivision,
    env: Environment,
    k_rays: int = 8,
    rng: np.random.Generator | None = None,
) -> "tuple[dict[int, float], int]":
    """k-random-rays free-space probe per conical region.

    For each region, ``k_rays`` random directions are drawn inside the
    cone; each ray is traced to the nearest obstacle.  The weight is the
    mean free distance — an (intentionally imperfect) proxy for reachable
    free space.  Returns ``(weights, ray_casts)`` so callers can charge
    the probe's cost, which the paper stresses is non-trivial.
    """
    if k_rays < 1:
        raise ValueError("k_rays must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    weights: "dict[int, float]" = {}
    casts = 0
    root = radial.root
    for rid in radial.graph.region_ids():
        region = radial.region_of(rid)
        axis = region.direction
        total = 0.0
        for _ in range(k_rays):
            # Random direction within the cone: perturb the axis by a
            # Gaussian scaled to the half-angle, then renormalise.
            d = axis + np.tan(min(region.half_angle, np.pi / 2 - 1e-6)) * rng.normal(
                size=root.shape[0]
            ) / np.sqrt(root.shape[0])
            n = np.linalg.norm(d)
            if n == 0.0:
                d, n = axis, 1.0
            total += env.ray_free_distance(root, d / n, region.radius)
            casts += 1
        weights[rid] = total / k_rays
    return weights, casts
