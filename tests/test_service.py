"""Tests for the PlanService front end and the request coalescer."""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro import ExecutionPolicy, PlanService, ServiceConfig, Tracer, WorkloadSpec
from repro.obs import format_summary, summarize_events
from repro.runtime import Fault, FaultInjector
from repro.service import BatchQueue, ServiceOverloadError
from repro.service.cache import RoadmapCache, build_engine
from repro.spec import FaultPolicy


def _spec(seed=3):
    return WorkloadSpec(
        environment="med-cube",
        planner="prm",
        num_regions=16,
        samples_per_region=4,
        seed=seed,
    )


def _queries(spec, n, rng_seed=0):
    cs = spec.resolve_cspace()
    lo, hi = cs.bounds.lo, cs.bounds.hi
    rng = np.random.default_rng(rng_seed)
    return [(rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(n)]


def _same(a, b):
    if a is None or b is None:
        return a is b
    return (
        a.path_vertices == b.path_vertices
        and np.array_equal(a.path_configs, b.path_configs)
        and a.length == b.length
    )


class TestBatchQueue:
    """The coalescer is pure — time is an argument — so every flush
    trigger is tested deterministically."""

    def test_full_flush_at_max_batch(self):
        q = BatchQueue(max_batch=3, max_linger=10.0)
        for i in range(3):
            assert q.offer("k", _spec(), i, now=float(i))
        flushes = q.pop_ready(now=2.0)
        assert len(flushes) == 1
        assert flushes[0].reason == "full"
        assert flushes[0].items == (0, 1, 2)
        assert q.queued == 0

    def test_no_flush_before_either_trigger(self):
        q = BatchQueue(max_batch=3, max_linger=1.0)
        q.offer("k", _spec(), "a", now=0.0)
        assert q.pop_ready(now=0.5) == []
        assert q.queued == 1

    def test_linger_flush_after_budget(self):
        q = BatchQueue(max_batch=100, max_linger=1.0)
        q.offer("k", _spec(), "a", now=0.0)
        q.offer("k", _spec(), "b", now=0.4)
        flushes = q.pop_ready(now=1.0)
        assert len(flushes) == 1
        assert flushes[0].reason == "linger"
        assert flushes[0].items == ("a", "b")
        assert flushes[0].waited == pytest.approx(1.0)

    def test_flush_takes_at_most_max_batch(self):
        q = BatchQueue(max_batch=2, max_linger=10.0)
        for i in range(5):
            q.offer("k", _spec(), i, now=0.0)
        flushes = q.pop_ready(now=0.0)
        # One batch per key per wake-up; the rest waits for the next one.
        assert len(flushes) == 1
        assert flushes[0].items == (0, 1)
        assert q.queued == 3

    def test_busy_keys_are_skipped(self):
        q = BatchQueue(max_batch=1, max_linger=0.0)
        q.offer("a", _spec(0), "x", now=0.0)
        q.offer("b", _spec(1), "y", now=0.0)
        flushes = q.pop_ready(now=0.0, busy={"a"})
        assert [f.key for f in flushes] == ["b"]
        assert q.queued == 1

    def test_drain_flushes_everything(self):
        q = BatchQueue(max_batch=100, max_linger=100.0)
        q.offer("a", _spec(0), "x", now=0.0)
        q.offer("b", _spec(1), "y", now=0.0)
        flushes = q.pop_ready(now=0.0, drain=True)
        assert sorted(f.key for f in flushes) == ["a", "b"]
        assert all(f.reason == "drain" for f in flushes)
        assert q.queued == 0

    def test_offer_refuses_past_capacity(self):
        q = BatchQueue(max_batch=10, max_linger=1.0, max_queue=2)
        assert q.offer("k", _spec(), 1, now=0.0)
        assert q.offer("k", _spec(), 2, now=0.0)
        assert not q.offer("k", _spec(), 3, now=0.0)

    def test_next_deadline_is_oldest_plus_linger(self):
        q = BatchQueue(max_batch=10, max_linger=1.0)
        assert q.next_deadline() is None
        q.offer("a", _spec(0), "x", now=5.0)
        q.offer("b", _spec(1), "y", now=3.0)
        assert q.next_deadline() == pytest.approx(4.0)
        assert q.next_deadline(busy={"b"}) == pytest.approx(6.0)


class TestServedParity:
    """Served answers must be bit-identical to direct QueryEngine /
    RoadmapQuery solves, cache enabled and disabled."""

    @pytest.mark.parametrize("cache_enabled", [True, False])
    def test_bit_identical_to_direct_solve(self, cache_enabled):
        spec = _spec()
        queries = _queries(spec, 10)
        engine = build_engine(spec)
        direct = [engine.solve(s, g) for s, g in queries]
        cfg = ServiceConfig(
            max_batch=4, max_linger=0.005, cache_enabled=cache_enabled
        )
        with PlanService(cfg) as svc:
            served = svc.solve_many(spec, queries)
        assert all(_same(a, b) for a, b in zip(direct, served))

    def test_repeat_submissions_stay_identical_warm(self):
        spec = _spec()
        queries = _queries(spec, 6)
        with PlanService(ServiceConfig(max_batch=3, max_linger=0.002)) as svc:
            first = svc.solve_many(spec, queries)
            second = svc.solve_many(spec, queries)
            st = svc.stats()
        assert all(_same(a, b) for a, b in zip(first, second))
        assert st.cache.hits >= 1  # second pass came from the snapshot

    def test_multi_tenant_isolation(self):
        s0, s1 = _spec(seed=0), _spec(seed=1)
        queries = _queries(s0, 4)
        d0 = [build_engine(s0).solve(s, g) for s, g in queries]
        d1 = [build_engine(s1).solve(s, g) for s, g in queries]
        with PlanService(ServiceConfig(max_batch=4, max_linger=0.005)) as svc:
            f0 = [svc.submit(s0, q) for q in queries]
            f1 = [svc.submit(s1, q) for q in queries]
            r0 = [f.result() for f in f0]
            r1 = [f.result() for f in f1]
            st = svc.stats()
        assert all(_same(a, b) for a, b in zip(d0, r0))
        assert all(_same(a, b) for a, b in zip(d1, r1))
        assert st.cache.builds == 2  # one snapshot per tenant


class TestServiceLifecycle:
    def test_close_drains_pending_requests(self):
        spec = _spec()
        queries = _queries(spec, 5)
        svc = PlanService(ServiceConfig(max_batch=100, max_linger=60.0))
        futs = [svc.submit(spec, q) for q in queries]
        svc.close(drain=True)  # linger never fires; drain must answer all
        assert all(f.done() and not f.cancelled() for f in futs)

    def test_close_without_drain_cancels(self):
        spec = _spec()
        svc = PlanService(ServiceConfig(max_batch=100, max_linger=60.0))
        futs = [svc.submit(spec, q) for q in _queries(spec, 3)]
        svc.close(drain=False)
        assert all(f.cancelled() for f in futs)

    def test_submit_after_close_raises(self):
        svc = PlanService()
        svc.close()
        with pytest.raises(RuntimeError, match="closed"):
            svc.submit(_spec(), ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))

    def test_close_is_idempotent(self):
        svc = PlanService()
        svc.close()
        svc.close()

    def test_config_validated_at_construction(self):
        with pytest.raises(ValueError):
            PlanService(ServiceConfig(max_batch=0))


class TestAdmissionControl:
    def _blocked_service(self):
        """A service whose single key is busy forever-ish, so offers pile
        up: a slow builder keeps the first batch in flight."""
        spec = _spec()
        release = threading.Event()

        def slow_builder(s):
            release.wait(5.0)
            return build_engine(s)

        cache = RoadmapCache(builder=slow_builder)
        cfg = ServiceConfig(max_batch=1, max_linger=0.0, max_queue=2)
        svc = PlanService(cfg, cache=cache)
        return svc, spec, release

    def test_nonblocking_submit_rejects_when_full(self):
        svc, spec, release = self._blocked_service()
        try:
            queries = _queries(spec, 8)
            # First fills the in-flight batch; next two fill the queue.
            futs = [svc.submit(spec, queries[i]) for i in range(3)]
            deadline = time.perf_counter() + 2.0
            while svc.stats().queued < 2 and time.perf_counter() < deadline:
                time.sleep(0.005)
            with pytest.raises(ServiceOverloadError):
                svc.submit(spec, queries[3], block=False)
            assert svc.stats().rejected == 1
            release.set()
            for f in futs:  # the admitted requests still get answered
                f.result(10.0)
        finally:
            release.set()
            svc.close()

    def test_blocking_submit_times_out(self):
        svc, spec, release = self._blocked_service()
        try:
            queries = _queries(spec, 8)
            for i in range(3):
                svc.submit(spec, queries[i])
            deadline = time.perf_counter() + 2.0
            while svc.stats().queued < 2 and time.perf_counter() < deadline:
                time.sleep(0.005)
            t0 = time.perf_counter()
            with pytest.raises(ServiceOverloadError):
                svc.submit(spec, queries[3], timeout=0.05)
            assert time.perf_counter() - t0 < 2.0
        finally:
            release.set()
            svc.close()


class TestAsync:
    def test_submit_async_resolves(self):
        spec = _spec()
        queries = _queries(spec, 4)
        engine = build_engine(spec)
        direct = [engine.solve(s, g) for s, g in queries]

        async def run(svc):
            futs = [svc.submit_async(spec, q) for q in queries]
            return await asyncio.gather(*futs)

        with PlanService(ServiceConfig(max_batch=4, max_linger=0.005)) as svc:
            served = asyncio.run(run(svc))
        assert all(_same(a, b) for a, b in zip(direct, served))


class TestFaultsThroughService:
    def test_degrade_surfaces_abandoned_queries(self):
        spec = _spec()
        queries = _queries(spec, 6)
        # Every attempt of every query raises: under "degrade" all six are
        # abandoned (after one retry each) and resolve to None — the
        # service reuses the pool's fault policies instead of crashing.
        injector = FaultInjector(
            [Fault("raise", attempt=0), Fault("raise", attempt=1)]
        )
        cfg = ServiceConfig(
            max_batch=6,
            max_linger=0.01,
            faults=FaultPolicy(policy="degrade", max_retries=1, injector=injector),
            execution=ExecutionPolicy(workers=2),
        )
        with PlanService(cfg) as svc:
            futs = [svc.submit(spec, q) for q in queries]
            results = [f.result() for f in futs]
            st = svc.stats()
        assert results == [None] * 6
        assert st.abandoned == 6
        assert st.retries == 6
        assert st.solved == 0


class TestObservabilityIntegration:
    def test_events_and_summary_table(self):
        spec = _spec()
        tracer = Tracer()
        with PlanService(
            ServiceConfig(max_batch=4, max_linger=0.005), tracer=tracer
        ) as svc:
            svc.solve_many(spec, _queries(spec, 8))
        events = tracer.memory.events
        flushes = [e for e in events if e.name == "batch_flush"]
        assert flushes, "no EV_BATCH_FLUSH emitted"
        for e in flushes:
            assert set(e.attrs) >= {"key", "size", "reason", "waited"}
        summary = summarize_events(events)
        assert summary.cache_misses == 1
        assert summary.batches_flushed == len(flushes)
        assert sum(summary.batch_sizes) == 8
        text = format_summary(summary)
        assert "Service (snapshot cache + coalescer)" in text
        assert "flush reasons" in text

    def test_stats_latencies_cover_all_requests(self):
        spec = _spec()
        with PlanService(ServiceConfig(max_batch=2, max_linger=0.002)) as svc:
            svc.solve_many(spec, _queries(spec, 6))
            st = svc.stats()
        assert len(st.latencies) == 6
        assert st.latency_percentile(50) > 0
        assert st.latency_percentile(99.9) >= st.latency_percentile(50)
