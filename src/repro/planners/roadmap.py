"""Roadmap graph: the data structure PRM and RRT build.

A small, dependency-free adjacency-list graph specialised for motion
planning: vertices carry configurations, edges carry C-space lengths, and
connected components are tracked incrementally with a union-find so that
"would this edge merge two components?" — the question PRM connection
strategies ask constantly — is O(α(n)).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Roadmap", "UnionFind"]


class UnionFind:
    """Union-find with path compression and union by rank."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._rank: dict[int, int] = {}
        self.num_sets = 0

    def make_set(self, x: int) -> None:
        if x not in self._parent:
            self._parent[x] = x
            self._rank[x] = 0
            self.num_sets += 1

    def find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:
            self._parent[x], x = root, self._parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self.num_sets -= 1
        return True

    def same_set(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)

    def __contains__(self, x: int) -> bool:
        return x in self._parent


class Roadmap:
    """Undirected graph of configurations.

    Vertex ids are non-negative integers.  By default they are assigned
    sequentially, but callers may supply explicit ids (the distributed
    planners use globally unique ids of the form ``region_id << 32 | local``).
    """

    def __init__(self, dim: int):
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self._configs: dict[int, np.ndarray] = {}
        self._adj: dict[int, dict[int, float]] = {}
        self._next_id = 0
        self._uf = UnionFind()
        self.num_edges = 0

    # -- vertices ---------------------------------------------------------
    def add_vertex(self, config: np.ndarray, vid: int | None = None) -> int:
        cfg = np.asarray(config, dtype=float)
        if cfg.shape != (self.dim,):
            raise ValueError(f"config must have shape ({self.dim},), got {cfg.shape}")
        if vid is None:
            vid = self._next_id
        if vid in self._configs:
            raise KeyError(f"vertex {vid} already exists")
        self._next_id = max(self._next_id, vid + 1)
        self._configs[vid] = cfg.copy()
        self._adj[vid] = {}
        self._uf.make_set(vid)
        return vid

    def config(self, vid: int) -> np.ndarray:
        return self._configs[vid]

    def has_vertex(self, vid: int) -> bool:
        return vid in self._configs

    @property
    def num_vertices(self) -> int:
        return len(self._configs)

    def vertices(self):
        return self._configs.keys()

    def configs_array(self) -> "tuple[np.ndarray, np.ndarray]":
        """All vertex ids and configurations as arrays (stable order)."""
        if not self._configs:
            return np.empty(0, dtype=np.int64), np.empty((0, self.dim))
        ids = np.fromiter(self._configs.keys(), dtype=np.int64, count=len(self._configs))
        cfgs = np.stack([self._configs[i] for i in ids])
        return ids, cfgs

    # -- edges --------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float | None = None) -> bool:
        """Insert undirected edge; returns False if it already existed."""
        if u == v:
            raise ValueError("self-loops are not allowed in a roadmap")
        if u not in self._configs or v not in self._configs:
            raise KeyError(f"edge ({u},{v}) references missing vertex")
        if v in self._adj[u]:
            return False
        w = float(np.linalg.norm(self._configs[u] - self._configs[v])) if weight is None else float(weight)
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._uf.union(u, v)
        self.num_edges += 1
        return True

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._adj and v in self._adj[u]

    def remove_edge(self, u: int, v: int) -> None:
        """Delete an undirected edge (component tracking is rebuilt lazily:
        union-find does not support splits, so callers needing exact
        components after removal should use :meth:`connected_components`)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u},{v}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self.num_edges -= 1

    def neighbors(self, vid: int) -> "dict[int, float]":
        return self._adj[vid]

    def degree(self, vid: int) -> int:
        return len(self._adj[vid])

    def edges(self):
        """Iterate undirected edges once, as (u, v, weight) with u < v."""
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    # -- components ------------------------------------------------------------
    def same_component(self, u: int, v: int) -> bool:
        """Fast, union-find-based check (exact as long as no edges were removed)."""
        return self._uf.same_set(u, v)

    @property
    def num_components_fast(self) -> int:
        return self._uf.num_sets

    def connected_components(self) -> "list[set[int]]":
        """Exact connected components by BFS (robust to edge removals)."""
        seen: set[int] = set()
        comps: list[set[int]] = []
        for start in self._configs:
            if start in seen:
                continue
            comp = {start}
            frontier = [start]
            while frontier:
                u = frontier.pop()
                for v in self._adj[u]:
                    if v not in comp:
                        comp.add(v)
                        frontier.append(v)
            seen |= comp
            comps.append(comp)
        return comps

    # -- merging (used to stitch regional roadmaps into one) -------------------
    def merge(self, other: "Roadmap") -> None:
        """Graph union of ``other`` into self; vertex ids must be disjoint
        or refer to identical configurations."""
        if other.dim != self.dim:
            raise ValueError("cannot merge roadmaps of different dimension")
        for vid, cfg in other._configs.items():
            if vid in self._configs:
                if not np.allclose(self._configs[vid], cfg):
                    raise ValueError(f"vertex id clash with different configs: {vid}")
            else:
                self.add_vertex(cfg, vid)
        for u, v, w in other.edges():
            self.add_edge(u, v, w)

    # -- paths --------------------------------------------------------------
    def path_length(self, path: "list[int]") -> float:
        total = 0.0
        for u, v in zip(path, path[1:]):
            if not self.has_edge(u, v):
                raise KeyError(f"path uses missing edge ({u},{v})")
            total += self._adj[u][v]
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Roadmap(|V|={self.num_vertices}, |E|={self.num_edges})"
