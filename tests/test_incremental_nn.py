"""Differential battery for the incremental kd-ladder NN backend.

``IncrementalNN``'s contract is **bit-exact** equality with
``BruteForceNN`` on every query — distances, ids, and ordering,
canonical ``(distance, insertion order)`` tie-break included — under any
interleaving of inserts and queries.  Every test here asserts ``==`` on
the full answer lists, never a tolerance.

``hypothesis`` drives the stream generator when installed; otherwise a
seeded sweep covers the same shapes (same pattern as ``tests/test_bvh.py``).
"""

import numpy as np
import pytest

from repro.knn import (
    BruteForceNN,
    GridNN,
    IncrementalNN,
    KDTreeNN,
    available_nn_factories,
    get_nn_factory,
    register_nn_factory,
)
from repro.planners.rrt import RRT
from repro.spec import ExecutionPolicy

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False


def _check_stream(seed, dim, buffer_capacity, n_ops, tie_grid=None):
    """Run one randomized insert/query stream through BruteForceNN and
    IncrementalNN side by side and assert every answer identical.

    ``tie_grid``: when set, coordinates are snapped to a lattice of that
    pitch, manufacturing massive exact-distance ties and duplicates.
    """
    rng = np.random.default_rng(seed)
    brute = BruteForceNN(dim)
    inc = IncrementalNN(dim, buffer_capacity=buffer_capacity)
    next_id = 0
    for _ in range(n_ops):
        p = rng.uniform(-3.0, 3.0, dim)
        if tie_grid is not None:
            p = np.round(p / tie_grid) * tie_grid
        op = rng.integers(0, 4)
        if op == 0 or next_id == 0:
            brute.add(next_id, p)
            inc.add(next_id, p)
            next_id += 1
        elif op == 1:
            k = int(rng.integers(1, 6))
            assert inc.knn(p, k) == brute.knn(p, k)
        elif op == 2:
            excl = int(rng.integers(0, next_id))
            k = int(rng.integers(1, 4))
            assert inc.knn(p, k, exclude=excl) == brute.knn(p, k, exclude=excl)
        else:
            r = float(rng.uniform(0.0, 2.5))
            assert inc.radius(p, r) == brute.radius(p, r)
    assert len(inc) == len(brute) == next_id


class TestDifferentialStreams:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("dim", [2, 3, 6])
    def test_interleaved_stream(self, seed, dim):
        _check_stream(seed, dim, buffer_capacity=16, n_ops=120)

    @pytest.mark.parametrize("seed", range(6))
    def test_tie_storm_stream(self, seed):
        """Lattice-snapped coordinates: duplicates and exact-distance ties
        everywhere; the canonical tie-break must hold through rebuilds."""
        _check_stream(seed, 2, buffer_capacity=4, n_ops=150, tie_grid=1.0)

    @pytest.mark.parametrize("buf", [1, 2, 7, 64])
    def test_buffer_capacity_sweep(self, buf):
        """Degenerate buffers (1 forces a rebuild on nearly every insert)
        through buffers large enough that no rebuild ever happens."""
        _check_stream(99, 3, buffer_capacity=buf, n_ops=140)

    def test_duplicate_ids_duplicate_points(self):
        """Same external id inserted at several positions must surface
        every copy, exactly as the brute scan does."""
        brute, inc = BruteForceNN(2), IncrementalNN(2, buffer_capacity=2)
        for nn in (brute, inc):
            nn.add(7, np.array([0.0, 0.0]))
            nn.add(7, np.array([1.0, 0.0]))
            nn.add(3, np.array([0.0, 0.0]))
            nn.add(7, np.array([0.0, 1.0]))
        for k in (1, 2, 4):
            assert inc.knn(np.zeros(2), k) == brute.knn(np.zeros(2), k)
        assert inc.radius(np.zeros(2), 1.5) == brute.radius(np.zeros(2), 1.5)
        assert inc.knn(np.zeros(2), 4, exclude=7) == brute.knn(np.zeros(2), 4, exclude=7)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=40, deadline=None)
        @given(
            seed=st.integers(0, 2**31 - 1),
            dim=st.integers(2, 5),
            buf=st.integers(1, 32),
        )
        def test_stream_property(self, seed, dim, buf):
            _check_stream(seed, dim, buffer_capacity=buf, n_ops=90)


class TestLadderStructure:
    def test_rung_boundary_sizes(self):
        """Sizes 2^i - 1, 2^i, 2^i + 1 around every rung boundary: the
        off-by-one cases where merge-rebuild bookkeeping breaks first."""
        sizes = []
        for i in range(1, 7):
            sizes.extend([2**i - 1, 2**i, 2**i + 1])
        rng = np.random.default_rng(0)
        for n in sizes:
            pts = rng.uniform(-5.0, 5.0, size=(n, 3))
            brute, inc = BruteForceNN(3), IncrementalNN(3, buffer_capacity=1)
            for i in range(n):
                brute.add(i, pts[i])
                inc.add(i, pts[i])
            assert sum(inc.rung_sizes()) + inc.buffer_size == n
            q = rng.uniform(-5.0, 5.0, 3)
            assert inc.knn(q, min(5, n)) == brute.knn(q, min(5, n))

    def test_buffer_flush_and_rebuild_counters(self):
        rng = np.random.default_rng(1)
        inc = IncrementalNN(3, buffer_capacity=8)
        for i in range(64):
            inc.add(i, rng.uniform(-1.0, 1.0, 3))
        assert inc.buffer_size < 8
        assert inc.stats.rebuilds > 0
        assert sum(inc.rung_sizes()) + inc.buffer_size == 64

    def test_add_batch_matches_loop(self, rng):
        pts = rng.uniform(-2.0, 2.0, size=(50, 3))
        a = IncrementalNN(3, buffer_capacity=4)
        a.add_batch(np.arange(50), pts)
        b = IncrementalNN(3, buffer_capacity=4)
        for i in range(50):
            b.add(i, pts[i])
        q = rng.uniform(-2.0, 2.0, 3)
        assert a.knn(q, 7) == b.knn(q, 7)

    def test_eval_ledger_accounts_for_brute_work(self):
        """On the k=1 growing stream the ladder's ledger must balance:
        evals actually spent + evals saved == what the brute scan spends."""
        rng = np.random.default_rng(2)
        pts = rng.uniform(-5.0, 5.0, size=(400, 3))
        brute, inc = BruteForceNN(3), IncrementalNN(3)
        for i in range(400):
            if i:
                assert inc.knn(pts[i], 1) == brute.knn(pts[i], 1)
            brute.add(i, pts[i])
            inc.add(i, pts[i])
        assert (
            inc.stats.distance_evals + inc.stats.evals_saved
            == brute.stats.distance_evals
        )
        assert inc.stats.queries == brute.stats.queries == 399
        assert inc.stats.evals_saved > 0


class TestRRTParity:
    """Swapping the NN backend may not move a single RRT sample: growth
    under IncrementalNN must be bit-identical to the brute-force oracle,
    sequential and batched alike, with full stats parity between the two
    incremental modes."""

    _NN_FIELDS = ("nn_distance_evals", "nn_rebuilds", "nn_buffer_hits", "nn_evals_saved")

    def _grow(self, nn_factory, batched, goal=None):
        from repro.cspace import EuclideanCSpace
        from repro.geometry import environments

        cs = EuclideanCSpace(environments.by_name("med-cube"))
        rrt = RRT(
            cs, step_size=0.6, goal_bias=0.05, batched=batched, nn_factory=nn_factory
        )
        res = rrt.grow(
            np.full(cs.dim, -9.0), 250, np.random.default_rng(7), goal=goal
        )
        from dataclasses import asdict

        edges = sorted((min(u, v), max(u, v), w) for u, v, w in res.tree.edges())
        return asdict(res.stats), edges, dict(res.parents), res

    @pytest.mark.parametrize("goal", [None, np.array([8.0, 8.0, 8.0])])
    def test_three_way_parity(self, goal):
        b_stats, b_edges, b_parents, _ = self._grow(BruteForceNN, True, goal)
        s_stats, s_edges, s_parents, _ = self._grow(IncrementalNN, False, goal)
        i_stats, i_edges, i_parents, _ = self._grow(IncrementalNN, True, goal)
        assert b_edges == s_edges == i_edges
        assert b_parents == s_parents == i_parents
        # incremental sequential and batched agree on every stat field,
        # ladder maintenance counters included
        assert s_stats == i_stats
        # and match the brute oracle outside the backend-dependent group
        strip = lambda d: {k: v for k, v in d.items() if k not in self._NN_FIELDS}
        assert strip(b_stats) == strip(i_stats)
        assert i_stats["nn_distance_evals"] < b_stats["nn_distance_evals"]
        assert i_stats["nn_evals_saved"] > 0

    def test_grow_accepts_factory_string_via_policy(self):
        """End-to-end: selecting the backend through ExecutionPolicy's
        registry name produces the same tree as passing the class."""
        _, ref_edges, ref_parents, _ = self._grow(IncrementalNN, True)
        _, got_edges, got_parents, _ = self._grow(get_nn_factory("incremental"), True)
        assert got_edges == ref_edges
        assert got_parents == ref_parents


class TestRegistry:
    def test_builtin_factories_registered(self):
        names = available_nn_factories()
        assert {"brute", "kdtree", "incremental"} <= set(names)
        assert list(names) == sorted(names)

    def test_get_factory_resolution(self):
        assert get_nn_factory(None) is None
        assert get_nn_factory(BruteForceNN) is BruteForceNN  # callable passthrough
        assert get_nn_factory("brute") is BruteForceNN
        assert get_nn_factory("kdtree") is KDTreeNN
        assert get_nn_factory("incremental") is IncrementalNN

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(ValueError, match="incremental"):
            get_nn_factory("octree")

    def test_reregistration_replaces(self):
        """Same contract as the kernel registry: re-registering a name
        replaces the factory (user override), it doesn't raise."""
        orig = get_nn_factory("brute")
        try:
            register_nn_factory("brute", KDTreeNN)
            assert get_nn_factory("brute") is KDTreeNN
        finally:
            register_nn_factory("brute", orig)
        assert get_nn_factory("brute") is orig

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_nn_factory("", BruteForceNN)

    def test_grid_not_registered(self):
        """GridNN needs a geometry-dependent cell_size, so it has no
        parameter-free registry entry."""
        assert "grid" not in available_nn_factories()
        assert GridNN(2, cell_size=0.5) is not None  # still importable


class TestPolicyAndEngineErrors:
    def test_policy_accepts_registered_backends(self):
        for name in available_nn_factories():
            ExecutionPolicy(nn_backend=name).validate()
        ExecutionPolicy().validate()  # None stays valid

    def test_policy_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="nn_backend"):
            ExecutionPolicy(nn_backend="octree").validate()

    def test_kernel_name_in_nn_slot_gets_crossover_hint(self):
        with pytest.raises(ValueError, match="kernel_backend='fast32'"):
            ExecutionPolicy(nn_backend="fast32").validate()

    def test_nn_name_in_kernel_slot_gets_crossover_hint(self):
        with pytest.raises(ValueError, match="nn_backend='incremental'"):
            ExecutionPolicy(kernel_backend="incremental").validate()

    def test_query_engine_accepts_factory_name(self):
        from repro.cspace import EuclideanCSpace
        from repro.geometry import AABB, Environment
        from repro.planners import PRM, QueryEngine

        cs = EuclideanCSpace(Environment(AABB([-5.0, -5.0], [5.0, 5.0])))
        rmap = PRM(cs, k=4).build(60, np.random.default_rng(0)).roadmap
        ref = QueryEngine(cs, rmap, k=6, nn_factory=KDTreeNN)
        named = QueryEngine(cs, rmap, k=6, nn_factory="kdtree")
        s, g = np.array([-4.0, -4.0]), np.array([4.0, 4.0])
        a, b = ref.solve(s, g), named.solve(s, g)
        assert (a is None) == (b is None)
        if a is not None:
            assert a.path_vertices == b.path_vertices

    def test_query_engine_unknown_name_raises_at_construction(self):
        from repro.cspace import EuclideanCSpace
        from repro.geometry import AABB, Environment
        from repro.planners import PRM, QueryEngine

        cs = EuclideanCSpace(Environment(AABB([-5.0, -5.0], [5.0, 5.0])))
        rmap = PRM(cs, k=4).build(30, np.random.default_rng(0)).roadmap
        with pytest.raises(ValueError, match="nn"):
            QueryEngine(cs, rmap, nn_factory="octree")


class TestEndToEndPlan:
    def test_plan_simulate_identical_to_default(self):
        """The incremental backend threaded through plan() may not change
        a single vertex or edge of the simulated build."""
        from repro import PlanRequest, plan
        from repro.spec import WorkloadSpec

        wl = WorkloadSpec(num_regions=6, samples_per_region=6, environment="mixed")
        ref = plan(PlanRequest(workload=wl, execution=ExecutionPolicy(num_pes=2)))
        inc = plan(
            PlanRequest(
                workload=wl,
                execution=ExecutionPolicy(num_pes=2, nn_backend="incremental"),
            )
        )
        assert inc.roadmap.num_vertices == ref.roadmap.num_vertices
        assert sorted(inc.roadmap.edges()) == sorted(ref.roadmap.edges())
        ids_i, cfg_i = inc.roadmap.configs_array()
        ids_r, cfg_r = ref.roadmap.configs_array()
        np.testing.assert_array_equal(ids_i, ids_r)
        np.testing.assert_array_equal(cfg_i, cfg_r)
