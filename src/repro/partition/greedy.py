"""Greedy global weight-balancing partitioner.

The paper: "We find an estimate of the most balanced partitioning of the
region graph statically ignoring edge-cuts using a greedy global
partitioning algorithm, as the exact problem is NP-complete" (Sec. IV-B).
This is the classic LPT (Longest Processing Time) heuristic: sort regions
by descending weight and repeatedly place the heaviest into the currently
lightest bin.  LPT is a 4/3-approximation of optimal makespan.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..subdivision.region import RegionGraph

__all__ = ["partition_greedy_lpt", "partition_weighted_blocks"]


def partition_greedy_lpt(graph: RegionGraph, num_pes: int) -> "dict[int, int]":
    """LPT assignment of weighted regions to ``num_pes`` bins."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    # Heaviest first; ties broken by region id for determinism.
    order = sorted(graph.region_ids(), key=lambda r: (-graph.weights[r], r))
    heap: "list[tuple[float, int]]" = [(0.0, pe) for pe in range(num_pes)]
    heapq.heapify(heap)
    assignment: "dict[int, int]" = {}
    for rid in order:
        load, pe = heapq.heappop(heap)
        assignment[rid] = pe
        heapq.heappush(heap, (load + graph.weights[rid], pe))
    return assignment


def partition_weighted_blocks(graph: RegionGraph, num_pes: int) -> "dict[int, int]":
    """Contiguous blocks of (id-ordered) regions with near-equal *weight*.

    A middle ground between the naive count-based blocks and LPT: keeps
    spatial contiguity of id-ordered regions (grid ids are row-major, so
    blocks are slabs) while equalising weight.  This is the "preserving
    the spatial geometry of the subdivision" variant (Sec. III-B).
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    ids = graph.region_ids()
    weights = np.array([graph.weights[r] for r in ids])
    total = float(weights.sum())
    if total == 0.0:
        # Fall back to balanced counts.
        target_counts = np.array_split(np.arange(len(ids)), num_pes)
        return {ids[i]: pe for pe, chunk in enumerate(target_counts) for i in chunk}
    target = total / num_pes
    assignment: "dict[int, int]" = {}
    pe = 0
    acc = 0.0
    remaining = total
    for i, rid in enumerate(ids):
        w = weights[i]
        # Close the current block when it reached its fair share — unless
        # it is the last PE, which takes everything left.
        if pe < num_pes - 1 and acc > 0 and acc + 0.5 * w > target:
            pe += 1
            acc = 0.0
            remaining_pes = num_pes - pe
            target = remaining / remaining_pes
        assignment[rid] = pe
        acc += w
        remaining -= w
    return assignment
