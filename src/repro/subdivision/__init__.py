"""Spatial subdivision of C-space into region graphs."""

from .radial import ConeRegion, RadialSubdivision
from .region import Region, RegionGraph
from .uniform import BoxRegion, UniformSubdivision, grid_shape_for

__all__ = [
    "ConeRegion",
    "RadialSubdivision",
    "Region",
    "RegionGraph",
    "BoxRegion",
    "UniformSubdivision",
    "grid_shape_for",
]
