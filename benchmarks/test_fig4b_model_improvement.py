"""Fig. 4(b): theoretical vs experimental vs runtime improvement."""

from repro.bench import fig4b_model_improvement


def test_fig4b_model_improvement(once):
    out = once(fig4b_model_improvement)
    for o in out:
        # All three metrics agree on a real, positive improvement ...
        assert o["theoretical"] > 0
        assert o["experimental"] > 0
        assert o["runtime"] > 0
        # ... and the experimental run tracks the model's prediction.
        assert abs(o["experimental"] - o["theoretical"]) < 20.0
