"""Tests for bulk-synchronous repartitioning (Algorithm 4)."""

import numpy as np
import pytest

from repro.core import repartition
from repro.geometry import AABB
from repro.partition import loads_of, partition_block
from repro.runtime import ClusterTopology
from repro.subdivision import UniformSubdivision


def _setup(num_regions=64, P=4, skew=True, seed=0):
    sub = UniformSubdivision(AABB([0, 0], [8, 8]), num_regions)
    g = sub.graph
    rng = np.random.default_rng(seed)
    weights = {}
    for rid in g.region_ids():
        if skew:
            weights[rid] = 100.0 if rid < num_regions // 8 else 1.0
        else:
            weights[rid] = 1.0
    old = partition_block(g, P)
    topo = ClusterTopology(P, cores_per_node=2)
    return g, weights, old, topo


class TestRepartition:
    def test_improves_balance_on_skewed_load(self):
        g, w, old, topo = _setup(skew=True)
        res = repartition(g, w, old, topo)
        old_loads = loads_of(g, old, topo.num_pes)
        new_loads = loads_of(g, res.assignment, topo.num_pes)
        assert new_loads.max() < old_loads.max()
        assert res.moved_regions > 0
        assert res.overhead > 0

    def test_skips_when_balanced(self):
        g, w, old, topo = _setup(skew=False)
        res = repartition(g, w, old, topo)
        assert res.assignment == old
        assert res.moved_regions == 0
        assert res.max_migration_payload == 0.0
        # Only the all-reduce is charged.
        assert res.overhead == pytest.approx(
            2.0 * np.ceil(np.log2(topo.num_pes)) * topo.latency_remote
        )

    def test_moved_fraction(self):
        g, w, old, topo = _setup(skew=True)
        res = repartition(g, w, old, topo)
        assert 0.0 < res.moved_fraction <= 1.0

    def test_migration_payload_scales_with_weight(self):
        g, w, old, topo = _setup(skew=True)
        light = repartition(g, w, old, topo, payload_per_weight=0.0)
        heavy = repartition(g, w, old, topo, payload_per_weight=10.0)
        assert heavy.max_migration_payload > light.max_migration_payload

    def test_min_gain_zero_always_installs(self):
        g, w, old, topo = _setup(skew=False)
        res = repartition(g, w, old, topo, min_gain=0.0)
        # With uniform weights LPT may reassign but balance stays perfect.
        new_loads = loads_of(g, res.assignment, topo.num_pes)
        assert new_loads.max() <= loads_of(g, old, topo.num_pes).max() + 1e-9

    def test_refine_does_not_break_completeness(self):
        g, w, old, topo = _setup(skew=True)
        res = repartition(g, w, old, topo, refine=True)
        assert set(res.assignment) == set(g.region_ids())
