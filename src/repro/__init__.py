"""repro — Load-balanced scalable parallel sampling-based motion planning.

A reproduction of Fidel, Jacobs, Sharma, Amato & Rauchwerger,
"Using Load Balancing to Scalably Parallelize Sampling-Based Motion
Planning Algorithms" (IPDPS 2014).

Packages
--------
``repro.geometry``
    Workspace primitives, benchmark environments, vectorised collision.
``repro.cspace``
    Configuration spaces, samplers, local planners.
``repro.knn``
    Interchangeable nearest-neighbour backends.
``repro.planners``
    Sequential PRM / RRT, roadmap graph, queries.
``repro.subdivision``
    Uniform grid and radial region graphs.
``repro.runtime``
    Simulated distributed-memory machine (the STAPL stand-in) and a true
    multiprocessing backend.
``repro.partition``
    Region-graph partitioners and quality metrics.
``repro.core``
    The paper's contribution: load-balanced parallel PRM / RRT, work
    stealing policies, repartitioning, and the theoretical model.
``repro.bench``
    Drivers that regenerate every figure in the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
