"""Tests for the region-graph partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB
from repro.partition import (
    edge_cut_of,
    evaluate_partition,
    loads_of,
    partition_1d_columns,
    partition_block,
    partition_greedy_lpt,
    partition_rcb,
    partition_weighted_blocks,
    refine_partition,
)
from repro.subdivision import UniformSubdivision


def _grid(n=64, weights=None, seed=0):
    sub = UniformSubdivision(AABB([0, 0], [8, 8]), n)
    g = sub.graph
    rng = np.random.default_rng(seed)
    for rid in g.region_ids():
        w = float(rng.uniform(0.1, 10)) if weights is None else weights(rid)
        g.set_weight(rid, w)
    return sub, g


def _assert_complete(assignment, g, P):
    assert set(assignment) == set(g.region_ids())
    assert all(0 <= pe < P for pe in assignment.values())


class TestNaivePartitions:
    def test_columns_balanced_counts(self):
        sub, g = _grid(64)
        assign = partition_1d_columns(sub, 4)
        _assert_complete(assign, g, 4)
        counts = np.bincount(list(assign.values()), minlength=4)
        assert counts.max() - counts.min() == 0

    def test_columns_are_contiguous(self):
        sub, _g = _grid(64)
        assign = partition_1d_columns(sub, 4)
        for region in sub.graph.regions():
            col = region.grid_index[0]
            assert assign[region.id] == col // 2

    def test_block_balanced(self):
        _sub, g = _grid(64)
        assign = partition_block(g, 7)
        _assert_complete(assign, g, 7)
        counts = np.bincount(list(assign.values()), minlength=7)
        assert counts.max() - counts.min() <= 1

    def test_block_more_pes_than_regions(self):
        _sub, g = _grid(16)
        assign = partition_block(g, 64)
        _assert_complete(assign, g, 64)
        counts = np.bincount(list(assign.values()), minlength=64)
        assert counts.max() == 1

    def test_invalid_pe_count(self):
        sub, g = _grid(16)
        with pytest.raises(ValueError):
            partition_block(g, 0)
        with pytest.raises(ValueError):
            partition_1d_columns(sub, 0)


class TestGreedyLPT:
    def test_balances_weights(self):
        _sub, g = _grid(64)
        assign = partition_greedy_lpt(g, 8)
        _assert_complete(assign, g, 8)
        q = evaluate_partition(g, assign, 8)
        assert q.imbalance < 1.2

    def test_beats_naive_on_skewed_weights(self):
        _sub, g = _grid(64, weights=lambda rid: 100.0 if rid < 8 else 1.0)
        naive = partition_block(g, 8)
        lpt = partition_greedy_lpt(g, 8)
        assert evaluate_partition(g, lpt, 8).max_load < evaluate_partition(g, naive, 8).max_load

    def test_lpt_deterministic(self):
        _sub, g = _grid(64)
        assert partition_greedy_lpt(g, 8) == partition_greedy_lpt(g, 8)

    def test_weighted_blocks_contiguous(self):
        _sub, g = _grid(64)
        assign = partition_weighted_blocks(g, 4)
        _assert_complete(assign, g, 4)
        # Contiguity: PE of region ids is non-decreasing.
        pes = [assign[r] for r in g.region_ids()]
        assert all(a <= b for a, b in zip(pes, pes[1:]))

    def test_weighted_blocks_zero_weights(self):
        _sub, g = _grid(16, weights=lambda rid: 0.0)
        assign = partition_weighted_blocks(g, 4)
        counts = np.bincount(list(assign.values()), minlength=4)
        assert counts.max() - counts.min() == 0


class TestRCB:
    def test_complete_and_balanced(self):
        _sub, g = _grid(64)
        assign = partition_rcb(g, 8)
        _assert_complete(assign, g, 8)
        q = evaluate_partition(g, assign, 8)
        assert q.imbalance < 2.0

    def test_non_power_of_two(self):
        _sub, g = _grid(64)
        assign = partition_rcb(g, 6)
        _assert_complete(assign, g, 6)
        assert len(set(assign.values())) == 6

    def test_lower_edge_cut_than_lpt(self):
        _sub, g = _grid(256)
        rcb = partition_rcb(g, 16)
        lpt = partition_greedy_lpt(g, 16)
        assert edge_cut_of(g, rcb) < edge_cut_of(g, lpt)


class TestRefinement:
    def test_never_increases_edge_cut(self):
        _sub, g = _grid(144)
        lpt = partition_greedy_lpt(g, 12)
        refined = refine_partition(g, lpt, 12)
        assert edge_cut_of(g, refined) <= edge_cut_of(g, lpt)

    def test_respects_balance_tolerance(self):
        _sub, g = _grid(144)
        lpt = partition_greedy_lpt(g, 12)
        refined = refine_partition(g, lpt, 12, balance_tolerance=0.05)
        loads = loads_of(g, refined, 12)
        assert loads.max() <= 1.12 * loads.mean()

    def test_input_not_mutated(self):
        _sub, g = _grid(64)
        lpt = partition_greedy_lpt(g, 8)
        before = dict(lpt)
        refine_partition(g, lpt, 8)
        assert lpt == before


class TestQualityMetrics:
    def test_evaluate_rejects_bad_assignment(self):
        _sub, g = _grid(16)
        with pytest.raises(ValueError):
            evaluate_partition(g, {}, 4)
        assign = partition_block(g, 4)
        assign[0] = 99
        with pytest.raises(ValueError):
            evaluate_partition(g, assign, 4)

    def test_cov_zero_when_balanced(self):
        _sub, g = _grid(16, weights=lambda rid: 1.0)
        assign = partition_block(g, 4)
        q = evaluate_partition(g, assign, 4)
        assert q.coefficient_of_variation == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), P=st.integers(1, 16))
def test_lpt_within_4_3_of_mean_bound(seed, P):
    """Property: LPT makespan <= 4/3 * OPT; OPT >= max(mean, max weight)."""
    _sub, g = _grid(64, seed=seed)
    assign = partition_greedy_lpt(g, P)
    loads = loads_of(g, assign, P)
    weights = [g.weights[r] for r in g.region_ids()]
    opt_lb = max(sum(weights) / P, max(weights))
    assert loads.max() <= (4.0 / 3.0) * opt_lb + 1e-9
