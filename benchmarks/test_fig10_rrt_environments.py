"""Fig. 10: radial RRT with load balancing across environments."""

from repro.bench import fig10_rrt_environments


def _speedups(rows, strategy):
    return {r.num_pes: r.speedup_vs_none for r in rows if r.strategy == strategy}


def test_fig10_rrt_environments(once):
    out = once(fig10_rrt_environments)
    # Work stealing helps substantially in the cluttered environments at
    # moderate scale, with the benefit shrinking at high PE counts.
    for env in ("mixed", "mixed-30"):
        best32 = max(_speedups(out[env], s)[32] for s in ("diffusive", "hybrid", "rand-8"))
        assert best32 > 1.25, env
        diff = _speedups(out[env], "diffusive")
        assert diff[256] < diff[32] + 0.35, env
    # In the free environment no strategy changes much.
    for strat in ("diffusive", "hybrid", "rand-8"):
        free = _speedups(out["free"], strat)
        assert all(0.8 < s < 1.2 for s in free.values()), strat
    # k-rays repartitioning (panel b) is never the clear winner at low-to-
    # moderate scale: its weight is a poor predictor and it pays the probe.
    repart = _speedups(out["mixed-30"], "repartition")
    ws_best = {
        P: max(_speedups(out["mixed-30"], s)[P] for s in ("diffusive", "hybrid", "rand-8"))
        for P in repart
    }
    for P in (8, 32, 64):
        assert repart[P] < ws_best[P], P
