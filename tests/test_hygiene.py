"""Source-hygiene gates: keep known footgun patterns out of src/repro.

Two patterns have bitten this codebase before and are cheap to ban
mechanically:

* **Falsy-default assignment** — ``x = x or default()``.  Replaces every
  falsy-but-valid argument (``0``, ``""``, empty containers, and any
  object whose ``__bool__``/``__len__`` says so) with the default.  A
  seeded ``rng`` argument or a zero-valued config silently vanishes.
  Write ``x = x if x is not None else default()``.
* **Mutable default argument** — ``def f(x=[])``.  The default is
  evaluated once at definition time and shared across calls (ruff's
  B006; also enforced here so the gate holds even without ruff).

The checks are AST-based, not grep-based, so comments/strings can't
false-positive and formatting can't false-negative.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Call names that are safe as defaults (immutable / sentinel factories).
_SAFE_DEFAULT_CALLS = {"frozenset", "tuple"}


def _python_sources():
    return sorted(SRC.rglob("*.py"))


def _target_name(node: ast.expr) -> "str | None":
    """The bare name being assigned: ``x`` for both ``x = ...`` and
    ``self.x = ...``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _falsy_default_assignments(tree: ast.AST):
    """Yield (lineno, source) for ``target = <name> or <expr>`` where the
    left operand of ``or`` is the same bare name as the target — the
    classic falsy-default idiom."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        value = node.value
        if not (isinstance(value, ast.BoolOp) and isinstance(value.op, ast.Or)):
            continue
        first = value.values[0]
        if not isinstance(first, ast.Name):
            continue
        target = _target_name(node.targets[0])
        if target == first.id:
            yield node.lineno, ast.unparse(node)


def _mutable_defaults(tree: ast.AST):
    """Yield (lineno, source) for function defaults that are mutable
    literals or mutable-constructor calls (B006)."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d is not None]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if isinstance(default, ast.Call):
                func = default.func
                name = func.id if isinstance(func, ast.Name) else None
                bad = name in {"list", "dict", "set", "bytearray"} or (
                    name is not None
                    and name not in _SAFE_DEFAULT_CALLS
                    and name[:1].isupper()  # class constructors share state too
                )
            if bad:
                label = getattr(node, "name", "<lambda>")
                yield node.lineno, f"{label}(... = {ast.unparse(default)})"


@pytest.mark.parametrize("path", _python_sources(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_falsy_default_assignments(path):
    offenders = list(_falsy_default_assignments(ast.parse(path.read_text())))
    assert not offenders, (
        f"{path}: falsy-default assignments (use 'x if x is not None else ...'):\n"
        + "\n".join(f"  line {ln}: {src}" for ln, src in offenders)
    )


@pytest.mark.parametrize("path", _python_sources(), ids=lambda p: str(p.relative_to(SRC)))
def test_no_mutable_default_arguments(path):
    offenders = list(_mutable_defaults(ast.parse(path.read_text())))
    assert not offenders, (
        f"{path}: mutable default arguments (use None + in-body default):\n"
        + "\n".join(f"  line {ln}: {src}" for ln, src in offenders)
    )


def test_detector_catches_known_bad_code():
    """The gates themselves must flag the patterns they exist to ban."""
    bad = ast.parse(
        "def f(x=[], y={}, z=set(), w=SomeClass()):\n"
        "    x = x or make()\n"
        "    self_like = 3\n"
    )
    assert len(list(_mutable_defaults(bad))) == 4
    assert len(list(_falsy_default_assignments(bad))) == 1

    good = ast.parse(
        "def f(x=None, y=(), z=frozenset()):\n"
        "    x = x if x is not None else make()\n"
        "    k = a or b\n"  # different name: a genuine boolean fallback
    )
    assert not list(_mutable_defaults(good))
    assert not list(_falsy_default_assignments(good))
