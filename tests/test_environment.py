"""Tests for the workspace environment and collision checking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, Environment, by_name
from repro.geometry import environments as envs


class TestEnvironmentBasics:
    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Environment(AABB([0, 0], [1, 1]), [AABB([0, 0, 0], [1, 1, 1])])

    def test_blocked_fraction(self):
        env = Environment(AABB([0, 0], [10, 10]), [AABB([0, 0], [5, 5])])
        assert env.blocked_fraction() == pytest.approx(0.25)

    def test_free_volume_of_region(self):
        env = Environment(AABB([0, 0], [10, 10]), [AABB([0, 0], [5, 5])])
        assert env.free_volume(AABB([0, 0], [5, 5])) == 0.0
        assert env.free_volume(AABB([5, 5], [10, 10])) == 25.0
        assert env.free_volume(AABB([0, 0], [10, 10])) == 75.0

    def test_obstacle_volume_clips_to_region(self):
        env = Environment(AABB([0, 0], [10, 10]), [AABB([-5, -5], [5, 5])])
        assert env.obstacle_volume() == pytest.approx(25.0)

    def test_pairwise_overlap_correction(self):
        env = Environment(
            AABB([0, 0], [10, 10]),
            [AABB([0, 0], [4, 4]), AABB([2, 2], [6, 6])],
        )
        # 16 + 16 - 4 overlap = 28.
        assert env.obstacle_volume() == pytest.approx(28.0)

    def test_add_obstacle_updates_arrays(self, box_env):
        n = box_env.num_obstacles
        box_env.add_obstacle(AABB([-4.0, 3.0], [-3.0, 4.0]))
        assert box_env.num_obstacles == n + 1
        assert bool(box_env.points_in_collision(np.array([-3.5, 3.5])))


class TestPointCollision:
    def test_inside_obstacle(self, box_env):
        assert bool(box_env.points_in_collision(np.array([0.0, 0.0])))

    def test_free_point(self, box_env):
        assert box_env.point_free(np.array([-3.0, -3.0]))

    def test_out_of_bounds_is_collision(self, box_env):
        assert bool(box_env.points_in_collision(np.array([10.0, 0.0])))

    def test_batch_matches_scalar(self, box_env, rng):
        pts = rng.uniform(-6, 6, size=(256, 2))
        batch = box_env.points_in_collision(pts)
        scalar = np.array([bool(box_env.points_in_collision(p)) for p in pts])
        assert np.array_equal(batch, scalar)

    def test_counters_accumulate(self, box_env):
        box_env.counters.reset()
        box_env.points_in_collision(np.zeros((10, 2)))
        assert box_env.counters.point_checks == 10 * box_env.num_obstacles


class TestSegmentCollision:
    def test_segment_through_obstacle(self, box_env):
        assert box_env.segment_in_collision(np.array([-3.0, 0.0]), np.array([3.0, 0.0]))

    def test_segment_in_free_space(self, box_env):
        assert not box_env.segment_in_collision(np.array([-4.0, -4.0]), np.array([4.0, -4.0]))

    def test_segment_leaving_bounds(self, box_env):
        assert box_env.segment_in_collision(np.array([-4.0, -4.0]), np.array([-7.0, -4.0]))

    def test_batch_matches_scalar(self, box_env, rng):
        p = rng.uniform(-5, 5, size=(128, 2))
        q = rng.uniform(-5, 5, size=(128, 2))
        batch = box_env.segments_in_collision(p, q)
        scalar = np.array([box_env.segment_in_collision(a, b) for a, b in zip(p, q)])
        assert np.array_equal(batch, scalar)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_segment_with_colliding_endpoint_collides(self, seed):
        env = Environment(
            AABB([-5.0, -5.0], [5.0, 5.0]),
            [AABB([-1.0, -1.0], [1.0, 1.0]), AABB([2.0, 2.0], [4.0, 4.0])],
        )
        rng = np.random.default_rng(seed)
        p = np.array([0.0, 0.0])  # inside the first obstacle
        q = rng.uniform(-5, 5, 2)
        assert env.segment_in_collision(p, q)


class TestRays:
    def test_ray_hits_obstacle(self, box_env):
        d = box_env.ray_free_distance(np.array([-3.0, 0.0]), np.array([1.0, 0.0]), 100.0)
        assert d == pytest.approx(2.0)

    def test_ray_exits_workspace(self, box_env):
        d = box_env.ray_free_distance(np.array([-3.0, -3.0]), np.array([-1.0, 0.0]), 100.0)
        assert d == pytest.approx(2.0)

    def test_ray_capped_by_max_dist(self, box_env):
        d = box_env.ray_free_distance(np.array([-3.0, -3.0]), np.array([1.0, 0.0]), 1.5)
        assert d == pytest.approx(1.5)

    def test_zero_direction_raises(self, box_env):
        with pytest.raises(ValueError):
            box_env.ray_free_distance(np.zeros(2), np.zeros(2), 1.0)


class TestBoxObstacleRelation:
    def test_free(self, box_env):
        assert box_env.box_obstacle_relation(AABB([-4, -4], [-3, -3])) == "free"

    def test_blocked(self, box_env):
        assert box_env.box_obstacle_relation(AABB([-0.5, -0.5], [0.5, 0.5])) == "blocked"

    def test_boundary(self, box_env):
        assert box_env.box_obstacle_relation(AABB([0.5, 0.5], [1.5, 1.5])) == "boundary"


class TestSampling:
    def test_sample_free_avoids_obstacles(self, box_env, rng):
        pts = box_env.sample_free(rng, 100)
        assert pts.shape[0] == 100
        assert not box_env.points_in_collision(pts).any()

    def test_sample_free_in_blocked_region_returns_empty(self, box_env, rng):
        blocked = AABB([-0.9, -0.9], [0.9, 0.9])
        pts = box_env.sample_free(rng, 10, within=blocked, max_tries=4)
        assert pts.shape[0] == 0


class TestBenchmarkEnvironments:
    @pytest.mark.parametrize(
        "name,expected",
        [("med-cube", 0.24), ("small-cube", 0.06), ("free", 0.0)],
    )
    def test_cube_blocked_fractions(self, name, expected):
        env = by_name(name)
        assert env.blocked_fraction() == pytest.approx(expected, abs=0.01)

    @pytest.mark.parametrize("name,target", [("mixed", 0.60), ("mixed-30", 0.30)])
    def test_cluttered_blocked_fractions(self, name, target):
        env = by_name(name)
        assert abs(env.blocked_fraction() - target) < 0.08

    def test_cluttered_obstacles_disjoint(self):
        env = envs.mixed_env()
        obs = env.obstacles
        for i in range(len(obs)):
            for j in range(i + 1, len(obs)):
                assert obs[i].intersection_volume(obs[j]) == 0.0

    def test_model_2d_obstacle_centred(self):
        env = envs.model_2d(0.25)
        ob = env.obstacles[0]
        assert np.allclose(ob.center, env.bounds.center)
        assert env.blocked_fraction() == pytest.approx(0.25)

    def test_walls_leave_a_passage(self):
        env = envs.walls_env(num_walls=3)
        # Gaps exist: some x-sweep at the gap heights passes every wall.
        assert env.free_volume() > 0.5 * env.bounds.volume()

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            by_name("no-such-env")

    def test_walls45_differs_from_walls(self):
        a = envs.walls_env(num_walls=3)
        b = envs.by_name("walls-45", num_walls=3)
        assert a.num_obstacles == b.num_obstacles
        same = all(
            np.allclose(x.lo, y.lo) and np.allclose(x.hi, y.hi)
            for x, y in zip(a.obstacles, b.obstacles)
        )
        assert not same
