"""Fig. 9: stolen vs locally executed tasks per PE (HYBRID WS)."""

import numpy as np

from repro.bench import fig9_steal_distribution


def test_fig9_steal_distribution(once):
    out = once(fig9_steal_distribution)
    small_p, large_p = sorted(out)
    small, large = out[small_p], out[large_p]
    # Work stealing actually moves work at both scales.
    assert small["stolen"].sum() > 0
    assert large["stolen"].sum() > 0
    # At the small scale a substantial share of PEs find work to steal;
    # at the large scale the per-PE stolen share does not grow (work per
    # PE shrinks while the victim pool grows) — the paper's observation.
    frac_small = float(np.mean(small["stolen"] > 0))
    assert frac_small > 0.2
    share_small = small["stolen"].sum() / (small["stolen"] + small["non_stolen"]).sum()
    share_large = large["stolen"].sum() / (large["stolen"] + large["non_stolen"]).sum()
    assert share_large <= share_small + 0.05
