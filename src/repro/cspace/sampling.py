"""Samplers for sampling-based motion planning.

Samplers produce *valid* (collision-free) configurations from a
configuration space, optionally restricted to a sub-region (the regional
planning used by uniform subdivision).  All samplers share the interface

    sampler(cspace, rng, n, within=None) -> (m, dof) array, m <= n attempts

and report how many raw attempts they consumed via the returned
:class:`SampleBatch`, since attempts (not accepted samples) are what cost
collision-detection time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.primitives import AABB
from .space import ConfigurationSpace

__all__ = [
    "SampleBatch",
    "UniformSampler",
    "GaussianSampler",
    "ObstacleBasedSampler",
    "BridgeTestSampler",
    "MixtureSampler",
]


@dataclass
class SampleBatch:
    """Valid configurations plus the raw attempt count that produced them."""

    configs: np.ndarray
    attempts: int

    def __len__(self) -> int:
        return self.configs.shape[0]


class UniformSampler:
    """Uniform rejection sampler: the PRM default.

    Gives up after ``empty_round_limit`` consecutive rounds with zero
    accepted samples — regions entirely inside obstacles cost a bounded
    number of wasted attempts instead of the full round budget.
    """

    name = "uniform"

    def __init__(self, max_rounds: int = 32, empty_round_limit: int = 3):
        if empty_round_limit < 1:
            raise ValueError("empty_round_limit must be >= 1")
        self.max_rounds = max_rounds
        self.empty_round_limit = empty_round_limit

    def __call__(
        self,
        cspace: ConfigurationSpace,
        rng: np.random.Generator,
        n: int,
        within: AABB | None = None,
    ) -> SampleBatch:
        accepted: list[np.ndarray] = []
        attempts = 0
        need = n
        empty_rounds = 0
        for _ in range(self.max_rounds):
            if need <= 0 or empty_rounds >= self.empty_round_limit:
                break
            batch = max(need, 4)
            cand = cspace.sample(rng, batch, within=within)
            attempts += batch
            ok = cspace.valid(cand)
            got = cand[ok][:need]
            if got.size:
                accepted.append(got)
                need -= got.shape[0]
                empty_rounds = 0
            else:
                empty_rounds += 1
        configs = np.vstack(accepted) if accepted else np.empty((0, cspace.dim))
        return SampleBatch(configs, attempts)


class GaussianSampler:
    """Gaussian sampler (Boor et al.): keeps a valid sample whose Gaussian
    neighbour is invalid — biases samples toward obstacle boundaries, which
    helps narrow passages."""

    name = "gaussian"

    def __init__(self, sigma: float = 0.5, max_rounds: int = 64, empty_round_limit: int = 3):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if empty_round_limit < 1:
            raise ValueError("empty_round_limit must be >= 1")
        self.sigma = sigma
        self.max_rounds = max_rounds
        self.empty_round_limit = empty_round_limit

    def __call__(
        self,
        cspace: ConfigurationSpace,
        rng: np.random.Generator,
        n: int,
        within: AABB | None = None,
    ) -> SampleBatch:
        region = within if within is not None else cspace.bounds
        accepted: list[np.ndarray] = []
        attempts = 0
        need = n
        empty_rounds = 0
        for _ in range(self.max_rounds):
            if need <= 0 or empty_rounds >= self.empty_round_limit:
                break
            batch = max(need * 2, 8)
            q1 = cspace.sample(rng, batch, within=within)
            q2 = region.clamp(q1 + rng.normal(scale=self.sigma, size=q1.shape))
            attempts += 2 * batch
            v1 = cspace.valid(q1)
            v2 = cspace.valid(q2)
            keep = v1 & ~v2
            got = q1[keep][:need]
            if got.size:
                accepted.append(got)
                need -= got.shape[0]
                empty_rounds = 0
            else:
                empty_rounds += 1
        configs = np.vstack(accepted) if accepted else np.empty((0, cspace.dim))
        return SampleBatch(configs, attempts)


class ObstacleBasedSampler:
    """OBPRM-style sampler: shoot from an invalid sample toward a valid one
    and keep the valid configuration nearest the obstacle boundary."""

    name = "obstacle"

    def __init__(self, steps: int = 8, max_rounds: int = 64):
        self.steps = steps
        self.max_rounds = max_rounds

    def __call__(
        self,
        cspace: ConfigurationSpace,
        rng: np.random.Generator,
        n: int,
        within: AABB | None = None,
    ) -> SampleBatch:
        accepted: list[np.ndarray] = []
        attempts = 0
        need = n
        for _ in range(self.max_rounds):
            if need <= 0:
                break
            q_in = cspace.sample(rng, within=within)
            q_out = cspace.sample(rng, within=within)
            attempts += 2
            if not cspace.valid_single(q_in) and cspace.valid_single(q_out):
                # Binary search for the boundary from the free side.
                lo_cfg, hi_cfg = q_out, q_in
                for _ in range(self.steps):
                    mid = cspace.interpolate(lo_cfg, hi_cfg, 0.5)
                    attempts += 1
                    if cspace.valid_single(mid):
                        lo_cfg = mid
                    else:
                        hi_cfg = mid
                accepted.append(np.atleast_2d(lo_cfg))
                need -= 1
        configs = np.vstack(accepted) if accepted else np.empty((0, cspace.dim))
        return SampleBatch(configs, attempts)


class BridgeTestSampler:
    """Bridge-test sampler (Hsu et al.): keep the midpoint of two invalid
    endpoints when it is valid — strongly biased to narrow passages."""

    name = "bridge"

    def __init__(self, sigma: float = 1.5, max_rounds: int = 96, empty_round_limit: int = 3):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        if empty_round_limit < 1:
            raise ValueError("empty_round_limit must be >= 1")
        self.sigma = sigma
        self.max_rounds = max_rounds
        self.empty_round_limit = empty_round_limit

    def __call__(
        self,
        cspace: ConfigurationSpace,
        rng: np.random.Generator,
        n: int,
        within: AABB | None = None,
    ) -> SampleBatch:
        region = within if within is not None else cspace.bounds
        accepted: list[np.ndarray] = []
        attempts = 0
        need = n
        empty_rounds = 0
        for _ in range(self.max_rounds):
            if need <= 0 or empty_rounds >= self.empty_round_limit:
                break
            batch = max(need * 4, 16)
            q1 = cspace.sample(rng, batch, within=within)
            q2 = region.clamp(q1 + rng.normal(scale=self.sigma, size=q1.shape))
            mid = 0.5 * (q1 + q2)
            attempts += 3 * batch
            keep = ~cspace.valid(q1) & ~cspace.valid(q2) & cspace.valid(mid)
            got = mid[keep][:need]
            if got.size:
                accepted.append(got)
                need -= got.shape[0]
                empty_rounds = 0
            else:
                empty_rounds += 1
        configs = np.vstack(accepted) if accepted else np.empty((0, cspace.dim))
        return SampleBatch(configs, attempts)


class MixtureSampler:
    """Split the sample budget across component samplers.

    Narrow-passage planning in practice mixes uniform sampling with an
    obstacle-biased sampler (Gaussian / OBPRM / bridge).  The mixture
    concentrates samples — and therefore connection work — in regions near
    obstacle surfaces, which is the load heterogeneity the paper's
    narrow-passage environments exhibit.  In obstacle-free space the
    biased components accept nothing, so the mixture degrades gracefully
    to (a fraction of) uniform sampling and the workload stays balanced.
    """

    def __init__(self, samplers, proportions=None):
        self.samplers = list(samplers)
        if not self.samplers:
            raise ValueError("MixtureSampler needs at least one component")
        if proportions is None:
            proportions = [1.0 / len(self.samplers)] * len(self.samplers)
        proportions = [float(p) for p in proportions]
        if len(proportions) != len(self.samplers):
            raise ValueError("proportions length mismatch")
        if any(p < 0 for p in proportions) or sum(proportions) <= 0:
            raise ValueError("proportions must be non-negative and sum > 0")
        total = sum(proportions)
        self.proportions = [p / total for p in proportions]
        self.name = "mix(" + "+".join(s.name for s in self.samplers) + ")"

    def __call__(
        self,
        cspace: ConfigurationSpace,
        rng: np.random.Generator,
        n: int,
        within: AABB | None = None,
    ) -> SampleBatch:
        parts: "list[np.ndarray]" = []
        attempts = 0
        remaining = n
        for i, (sampler, frac) in enumerate(zip(self.samplers, self.proportions)):
            quota = round(n * frac) if i < len(self.samplers) - 1 else remaining
            quota = min(quota, remaining)
            if quota <= 0:
                continue
            batch = sampler(cspace, rng, quota, within=within)
            attempts += batch.attempts
            if len(batch):
                parts.append(batch.configs)
            remaining -= len(batch)
        configs = np.vstack(parts) if parts else np.empty((0, cspace.dim))
        return SampleBatch(configs, attempts)
