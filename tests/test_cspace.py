"""Tests for configuration spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cspace import EuclideanCSpace, RigidBodyCSpace, box_body_points
from repro.geometry import AABB, Environment


class TestEuclideanCSpace:
    def test_dim_and_bounds(self, box_cspace):
        assert box_cspace.dim == 2
        assert box_cspace.positional_dims == (0, 1)

    def test_negative_radius_rejected(self, box_env):
        with pytest.raises(ValueError):
            EuclideanCSpace(box_env, robot_radius=-1.0)

    def test_valid_matches_environment(self, box_cspace, box_env, rng):
        pts = rng.uniform(-5, 5, size=(128, 2))
        assert np.array_equal(box_cspace.valid(pts), ~box_env.points_in_collision(pts))

    def test_robot_radius_inflates_obstacles(self, box_env):
        cs = EuclideanCSpace(box_env, robot_radius=0.5)
        # Point just outside the bare obstacle but within the inflation.
        assert not cs.valid_single(np.array([1.3, 0.0]))
        assert cs.valid_single(np.array([2.0, 0.0]))
        # Bounds shrink by the radius.
        assert np.allclose(cs.bounds.lo, [-4.5, -4.5])

    def test_distance_scalar_and_batch(self, box_cspace):
        a = np.zeros(2)
        assert box_cspace.distance(a, np.array([3.0, 4.0])) == pytest.approx(5.0)
        d = box_cspace.distance(a, np.array([[3.0, 4.0], [1.0, 0.0]]))
        assert np.allclose(d, [5.0, 1.0])

    def test_interpolate_endpoints(self, box_cspace):
        a, b = np.array([0.0, 0.0]), np.array([2.0, -2.0])
        assert np.allclose(box_cspace.interpolate(a, b, 0.0), a)
        assert np.allclose(box_cspace.interpolate(a, b, 1.0), b)
        mid = box_cspace.interpolate(a, b, 0.5)
        assert np.allclose(mid, [1.0, -1.0])

    def test_interpolate_array_t(self, box_cspace):
        a, b = np.zeros(2), np.array([1.0, 0.0])
        out = box_cspace.interpolate(a, b, np.array([0.25, 0.75]))
        assert out.shape == (2, 2)
        assert np.allclose(out[:, 0], [0.25, 0.75])

    def test_distance_pairs_matches_loop(self, box_cspace, rng):
        A = rng.uniform(-5, 5, (32, 2))
        B = rng.uniform(-5, 5, (32, 2))
        d = box_cspace.distance_pairs(A, B)
        expected = [box_cspace.distance(a, b) for a, b in zip(A, B)]
        assert np.allclose(d, expected)

    def test_interpolate_pairs_matches_loop(self, box_cspace, rng):
        A = rng.uniform(-5, 5, (16, 2))
        B = rng.uniform(-5, 5, (16, 2))
        t = rng.uniform(0, 1, 16)
        out = box_cspace.interpolate_pairs(A, B, t)
        expected = np.stack([box_cspace.interpolate(a, b, ti) for a, b, ti in zip(A, B, t)])
        assert np.allclose(out, expected)

    def test_segment_valid(self, box_cspace):
        assert box_cspace.segment_valid(np.array([-4.0, -4.0]), np.array([4.0, -4.0]))
        assert not box_cspace.segment_valid(np.array([-3.0, 0.0]), np.array([3.0, 0.0]))

    def test_sample_within_region(self, box_cspace, rng):
        region = AABB([-5, -5], [-3, -3])
        pts = box_cspace.sample(rng, 50, within=region)
        assert region.contains(pts).all()


class TestRigidBodyCSpace:
    @pytest.fixture
    def rb2(self, box_env):
        body = box_body_points(np.array([0.4, 0.2]))
        return RigidBodyCSpace(box_env, body, rotation_weight=0.5)

    def test_dof_layout(self, rb2):
        assert rb2.dim == 3
        assert rb2.positional_dims == (0, 1)

    def test_body_too_large_rejected(self):
        env = Environment(AABB([0, 0], [1, 1]), [])
        with pytest.raises(ValueError):
            RigidBodyCSpace(env, box_body_points(np.array([2.0, 2.0])))

    def test_collision_depends_on_rotation(self, box_env):
        # A long thin robot beside the [2,2]x[4,4] obstacle: vertical fits
        # in the gap at x=1.3, horizontal reaches into the obstacle.
        body = box_body_points(np.array([1.2, 0.05]), points_per_edge=5)
        cs = RigidBodyCSpace(box_env, body)
        cfg_vertical = np.array([1.3, 3.0, np.pi / 2])
        cfg_horizontal = np.array([1.3, 3.0, 0.0])
        assert cs.valid_single(cfg_vertical)
        assert not cs.valid_single(cfg_horizontal)

    def test_distance_accounts_for_rotation(self, rb2):
        a = np.array([0.0, 0.0, 0.0])
        b = np.array([0.0, 0.0, np.pi])
        assert rb2.distance(a, b) == pytest.approx(0.5 * np.pi)

    def test_distance_wraps_angle(self, rb2):
        a = np.array([0.0, 0.0, np.pi - 0.1])
        b = np.array([0.0, 0.0, -np.pi + 0.1])
        assert rb2.distance(a, b) == pytest.approx(0.5 * 0.2)

    def test_interpolate_wraps_shortest_way(self, rb2):
        a = np.array([0.0, 0.0, np.pi - 0.2])
        b = np.array([0.0, 0.0, -np.pi + 0.2])
        mid = rb2.interpolate(a, b, 0.5)
        assert abs(abs(mid[2]) - np.pi) < 1e-9

    def test_interpolate_pairs_matches_single(self, rb2, rng):
        A = np.column_stack([rng.uniform(-3, 3, (8, 2)), rng.uniform(-np.pi, np.pi, 8)])
        B = np.column_stack([rng.uniform(-3, 3, (8, 2)), rng.uniform(-np.pi, np.pi, 8)])
        t = rng.uniform(0, 1, 8)
        out = rb2.interpolate_pairs(A, B, t)
        for i in range(8):
            assert np.allclose(out[i], rb2.interpolate(A[i], B[i], t[i]))

    def test_distance_pairs_matches_single(self, rb2, rng):
        A = np.column_stack([rng.uniform(-3, 3, (8, 2)), rng.uniform(-np.pi, np.pi, 8)])
        B = np.column_stack([rng.uniform(-3, 3, (8, 2)), rng.uniform(-np.pi, np.pi, 8)])
        d = rb2.distance_pairs(A, B)
        for i in range(8):
            assert d[i] == pytest.approx(rb2.distance(A[i], B[i]))


class TestBoxBodyPoints:
    def test_corners_present(self):
        pts = box_body_points(np.array([1.0, 2.0]))
        assert pts.shape == (4, 2)
        assert {tuple(p) for p in pts} == {(-1, -2), (-1, 2), (1, -2), (1, 2)}

    def test_surface_only(self):
        pts = box_body_points(np.array([1.0, 1.0]), points_per_edge=5)
        on_surface = np.any(np.isclose(np.abs(pts), 1.0), axis=1)
        assert on_surface.all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), t=st.floats(0, 1))
def test_interpolation_distance_is_linear_euclidean(seed, t):
    """Property: d(a, interp(a,b,t)) == t * d(a,b) for the Euclidean space."""
    env = Environment(AABB([-5, -5], [5, 5]), [])
    cs = EuclideanCSpace(env)
    rng = np.random.default_rng(seed)
    a, b = rng.uniform(-5, 5, 2), rng.uniform(-5, 5, 2)
    m = cs.interpolate(a, b, t)
    assert cs.distance(a, m) == pytest.approx(t * cs.distance(a, b), abs=1e-9)
