"""Tests for shortcut path smoothing."""

import numpy as np

from repro.planners import path_length, shortcut_smooth


def test_smoothing_never_lengthens(box_cspace, rng):
    # A deliberately wiggly path along the bottom free corridor.
    xs = np.linspace(-4.5, 4.5, 12)
    ys = np.where(np.arange(12) % 2 == 0, -4.5, -3.5)
    path = np.column_stack([xs, ys])
    before = path_length(box_cspace, path)
    smoothed = shortcut_smooth(box_cspace, path, rng, iterations=128)
    after = path_length(box_cspace, smoothed)
    assert after <= before + 1e-9


def test_smoothed_path_remains_valid(box_cspace, rng):
    xs = np.linspace(-4.5, 4.5, 12)
    ys = np.where(np.arange(12) % 2 == 0, -4.5, -3.5)
    path = np.column_stack([xs, ys])
    smoothed = shortcut_smooth(box_cspace, path, rng, iterations=128)
    for a, b in zip(smoothed[:-1], smoothed[1:]):
        assert box_cspace.segment_valid(a, b)


def test_endpoints_preserved(box_cspace, rng):
    xs = np.linspace(-4.5, 4.5, 8)
    path = np.column_stack([xs, np.full(8, -4.5)])
    smoothed = shortcut_smooth(box_cspace, path, rng, iterations=64)
    assert np.allclose(smoothed[0], path[0])
    assert np.allclose(smoothed[-1], path[-1])
