"""Uniform radial subdivision for parallel RRT (Algorithm 2, lines 1-9).

A hypersphere of radius ``r`` is centred at the tree root; ``Nr`` points
are sampled on its surface, each defining a conical region around the ray
from the root through the point.  The region graph connects each region
to its ``k`` nearest regions (by surface point distance).  Membership in a
cone is angular: a configuration belongs to the region whose ray is
nearest in angle, with an ``overlap`` margin (in radians) so branches can
explore slightly into neighbouring cones, as the paper allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.primitives import Sphere
from .region import Region, RegionGraph

__all__ = ["ConeRegion", "RadialSubdivision"]


@dataclass
class ConeRegion(Region):
    """Conical region around the ray root -> target."""

    root: np.ndarray = None  # type: ignore[assignment]
    target: np.ndarray = None  # type: ignore[assignment]
    half_angle: float = 0.0
    overlap: float = 0.0
    radius: float = 0.0

    @property
    def direction(self) -> np.ndarray:
        d = self.target - self.root
        return d / np.linalg.norm(d)

    def angle_to(self, config: np.ndarray) -> float:
        """Angle between the region ray and the root->config direction."""
        v = np.asarray(config, dtype=float)[: self.root.shape[0]] - self.root
        n = np.linalg.norm(v)
        if n == 0.0:
            return 0.0
        c = float(np.clip(np.dot(v / n, self.direction), -1.0, 1.0))
        return float(np.arccos(c))

    def contains(self, config: np.ndarray) -> bool:
        """Whether ``config`` lies in the cone (within radius and angle)."""
        return bool(self.contains_many(config)[0])

    def contains_many(self, configs: np.ndarray) -> np.ndarray:
        """Vectorised membership: boolean mask for ``(m, dim)`` positions.

        :meth:`contains` delegates here, so the scalar predicate used by
        the sequential RRT oracle and the batch predicate used by the
        vectorised growth path share one arithmetic path — their verdicts
        cannot diverge, even for configurations on the cone boundary.
        """
        pts = np.atleast_2d(np.asarray(configs, dtype=float))[:, : self.root.shape[0]]
        v = pts - self.root
        n = np.sqrt(np.einsum("ij,ij->i", v, v))
        nonzero = n > 0.0
        safe_n = np.where(nonzero, n, 1.0)
        cos = np.clip((v / safe_n[:, None]) @ self.direction, -1.0, 1.0)
        angle = np.where(nonzero, np.arccos(cos), 0.0)
        return (n <= self.radius) & (angle <= self.half_angle + self.overlap)


class RadialSubdivision:
    """Radial (conical) subdivision of the positional space.

    Parameters
    ----------
    root:
        Positional coordinates of the RRT root ``q_root``.
    radius:
        Sphere radius ``r`` (how far branches may grow).
    num_regions:
        Number of surface points / conical regions ``Nr``.
    k:
        Each region is adjacent to its ``k`` nearest regions.
    overlap:
        Angular overlap in radians allowed beyond the nominal half-angle.
    rng:
        Source of randomness for the surface points.
    """

    def __init__(
        self,
        root: np.ndarray,
        radius: float,
        num_regions: int,
        k: int = 4,
        overlap: float = 0.0,
        rng: np.random.Generator | None = None,
    ):
        if radius <= 0:
            raise ValueError("radius must be positive")
        if num_regions < 1:
            raise ValueError("num_regions must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        self.root = np.asarray(root, dtype=float)
        self.radius = float(radius)
        self.num_regions = int(num_regions)
        self.k = min(k, num_regions - 1) if num_regions > 1 else 0
        self.overlap = float(overlap)
        rng = rng if rng is not None else np.random.default_rng(0)

        sphere = Sphere(self.root, self.radius)
        targets = np.atleast_2d(sphere.surface_sample(rng, self.num_regions))
        # Order regions angularly (lexicographic on direction cosines):
        # region ids then sweep the sphere coherently, the radial analogue
        # of the row-major ordering a mesh-distributed container uses, so
        # a blocked naive assignment owns contiguous angular sectors.
        order = np.lexsort(targets.T[::-1])
        self.targets = targets[order]
        # Nominal half-angle from the surface density: each cone covers
        # ~1/Nr of the sphere's solid angle; for a d-sphere the cap with
        # fraction f has cos(theta) ≈ 1 - 2 f^(2/(d-1)) — we use the
        # simpler equal-angle heuristic theta = pi * (1/Nr)^(1/(d-1)).
        d = self.root.shape[0]
        exponent = 1.0 / max(d - 1, 1)
        self.half_angle = float(np.pi * (1.0 / self.num_regions) ** exponent)

        self.graph = self._build()

    def _build(self) -> RegionGraph:
        graph = RegionGraph()
        for i, target in enumerate(self.targets):
            graph.add_region(
                ConeRegion(
                    id=i,
                    root=self.root,
                    target=target,
                    half_angle=self.half_angle,
                    overlap=self.overlap,
                    radius=self.radius,
                )
            )
        if self.num_regions > 1 and self.k > 0:
            # k nearest surface points define adjacency (Alg. 2 lines 4-9).
            diffs = self.targets[:, None, :] - self.targets[None, :, :]
            dist = np.linalg.norm(diffs, axis=2)
            np.fill_diagonal(dist, np.inf)
            for i in range(self.num_regions):
                for j in np.argsort(dist[i], kind="stable")[: self.k]:
                    if int(j) != i:
                        graph.add_adjacency(i, int(j))
        return graph

    # -- queries --------------------------------------------------------------
    def locate(self, position: np.ndarray) -> int:
        """Region whose ray is angularly nearest to root->position."""
        pos = np.asarray(position, dtype=float)[: self.root.shape[0]]
        v = pos - self.root
        n = np.linalg.norm(v)
        if n == 0.0:
            return 0
        dirs = self.targets - self.root
        dirs = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
        cos = dirs @ (v / n)
        return int(np.argmax(cos))

    def region_of(self, rid: int) -> ConeRegion:
        return self.graph.region(rid)  # type: ignore[return-value]

    def predicate_for(self, rid: int):
        """Membership predicate for the regional RRT (captures overlap)."""
        region = self.region_of(rid)
        return region.contains

    def predicate_batch_for(self, rid: int):
        """Vectorised twin of :meth:`predicate_for` (``(m, dim) -> (m,)``)."""
        region = self.region_of(rid)
        return region.contains_many
