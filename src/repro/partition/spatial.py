"""Spatially-aware weighted partitioning: recursive coordinate bisection.

The paper notes that "as regions are also spatial entities, the spatial
geometry of regions should also be preserved in an ideal partition"
(Sec. III-B).  Recursive coordinate bisection (RCB) splits the region set
along the widest coordinate axis into two halves of near-equal *weight*,
recursing until one part per PE remains.  It trades a little balance for
much lower edge cut than LPT — the knob behind the Fig. 7 region-
connection regression.
"""

from __future__ import annotations

import numpy as np

from ..subdivision.region import RegionGraph

__all__ = ["partition_rcb"]


def _region_centers(graph: RegionGraph) -> "tuple[list[int], np.ndarray]":
    ids = graph.region_ids()
    centers = []
    for rid in ids:
        region = graph.region(rid)
        if hasattr(region, "bounds"):
            centers.append(region.bounds.center)  # BoxRegion
        elif hasattr(region, "target"):
            centers.append(np.asarray(region.target, dtype=float))  # ConeRegion
        else:
            raise TypeError(f"region {rid} has no spatial representation")
    return ids, np.stack(centers)


def partition_rcb(graph: RegionGraph, num_pes: int) -> "dict[int, int]":
    """Recursive coordinate bisection into ``num_pes`` weight-balanced parts."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    ids, centers = _region_centers(graph)
    weights = np.array([graph.weights[r] for r in ids])
    assignment: "dict[int, int]" = {}

    def recurse(indices: np.ndarray, pe_lo: int, pe_hi: int) -> None:
        """Assign regions[indices] to PEs [pe_lo, pe_hi)."""
        n_pes = pe_hi - pe_lo
        if n_pes == 1 or indices.size == 0:
            for i in indices:
                assignment[ids[i]] = pe_lo
            return
        # Split PE range proportionally (handles non-power-of-two counts).
        left_pes = n_pes // 2
        frac = left_pes / n_pes
        # Widest axis of this part's centers.
        pts = centers[indices]
        axis = int(np.argmax(pts.max(axis=0) - pts.min(axis=0)))
        order = indices[np.lexsort((indices, centers[indices, axis]))]
        w = weights[order]
        total = float(w.sum())
        if total == 0.0:
            split = int(round(order.size * frac))
        else:
            cum = np.cumsum(w)
            split = int(np.searchsorted(cum, frac * total))
            split = min(max(split, 1), order.size - 1) if order.size > 1 else 0
        recurse(order[:split], pe_lo, pe_lo + left_pes)
        recurse(order[split:], pe_lo + left_pes, pe_hi)

    recurse(np.arange(len(ids)), 0, num_pes)
    return assignment
