"""Zero-copy shared-memory data plane for the true-parallel pool.

The process backend historically shipped the whole planning context
(environment SoA arrays, BVH nodes, frozen-roadmap CSR blocks) to workers
by pickle — a serialization tax the paper's distributed schedulers never
pay.  This module is the arena that removes it: a publisher packs named
immutable numpy arrays into one ``multiprocessing.shared_memory`` segment
and hands out a tiny picklable :class:`SharedArrayManifest` (names,
dtypes, shapes, offsets, sha256 fingerprint).  Workers attach lazily and
cache the mapping **by fingerprint**, so a segment is mapped once per
worker process and reused across tasks and across ``PlanService``
requests; attached views are read-only, so the snapshot is immutable by
construction.

Lifecycle:

* :func:`publish_arrays` deduplicates by fingerprint and refcounts —
  publishing identical content twice reuses the live segment.
* :func:`release` decrements; the last release closes and unlinks.  If
  same-process numpy views still pin the mapping (thread backend), the
  segment is still *unlinked* (nothing left in ``/dev/shm``) and the
  close is retried at interpreter exit — memory is reclaimed when the
  last mapping dies, the name never leaks.
* An ``atexit`` sweep unlinks anything still published, so a crashed run
  cannot orphan segments; :func:`cleanup_stale` reclaims segments whose
  owning pid is gone (the crash-safe backstop for ``SIGKILL``), and
  :func:`leaked_segments` is the audit hook the tests and CI gate on.

When shared memory is unavailable the manifest transparently carries the
packed bytes inline (``segment=None``) and :func:`attach_arrays` rebuilds
identical read-only arrays from them — results are bit-identical either
way, only the transport differs.

This module is deliberately planner-agnostic (numpy + stdlib only): the
adapters that know what an ``Environment`` or ``FrozenRoadmap`` looks
like live with their consumers in :mod:`repro.api` and
:mod:`repro.planners.engine`, which keeps the import graph acyclic.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..obs.events import EV_SHM_PUBLISH
from ..obs.tracer import active

__all__ = [
    "SEGMENT_PREFIX",
    "ArraySpec",
    "SharedArrayManifest",
    "attach_arrays",
    "cleanup_stale",
    "drain_attach_records",
    "leaked_segments",
    "publish_arrays",
    "published_segments",
    "release",
    "shm_available",
]

#: Every segment this module creates is named ``repro-shm-<pid>-<seq>-<fp12>``
#: — the pid makes stale segments attributable, the fingerprint prefix makes
#: them identifiable, and the prefix is what the leak audits scan for.
SEGMENT_PREFIX = "repro-shm"

#: Array offsets are aligned so every attached view is cache-line aligned.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """One array's layout inside a published segment."""

    name: str
    dtype: str
    shape: "tuple[int, ...]"
    offset: int
    nbytes: int


@dataclass(frozen=True)
class SharedArrayManifest:
    """Picklable description of one published snapshot.

    ``segment`` names the shared-memory block; ``None`` means shared
    memory was unavailable and ``inline`` carries the packed bytes
    instead (the transparent fallback — attach is bit-identical).
    """

    fingerprint: str
    segment: "str | None"
    total_bytes: int
    arrays: "tuple[ArraySpec, ...]"
    label: str = "arrays"
    inline: "bytes | None" = field(default=None, repr=False)


@dataclass
class _Published:
    """Publisher-side bookkeeping for one live segment."""

    shm: object
    manifest: SharedArrayManifest
    refs: int


# fingerprint -> live publication (publisher side, refcounted).
_PUBLISHED: "dict[str, _Published]" = {}
# fingerprint -> (SharedMemory | None, {name: read-only view}) (attach side).
_ATTACHED: "dict[str, tuple[object, dict]]" = {}
# Segments whose close() was pinned by exported views; retried at exit.
_ZOMBIES: "list[object]" = []
# Worker-side attach log, drained by the pool dispatcher with each chunk.
_ATTACH_RECORDS: "list[dict]" = []
_ATTACH_CACHE_HITS = 0
_SEQ = iter(range(1, 1 << 62))
_ATEXIT_REGISTERED = False
_SHM_OK: "bool | None" = None


def shm_available() -> bool:
    """True when named shared memory actually works on this platform."""
    global _SHM_OK
    if _SHM_OK is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _SHM_OK = True
        except Exception:
            _SHM_OK = False
    return _SHM_OK


def _canonical(arrays: "dict[str, np.ndarray]") -> "list[tuple[str, np.ndarray]]":
    out = []
    for name, arr in arrays.items():
        a = np.ascontiguousarray(np.asarray(arr))
        if a.dtype == object:
            raise ValueError(f"array {name!r} has dtype=object; only plain dtypes ship")
        out.append((name, a))
    return out


def _layout(items: "list[tuple[str, np.ndarray]]") -> "tuple[tuple[ArraySpec, ...], int, str]":
    """Compute specs, total packed size, and the content fingerprint."""
    specs = []
    offset = 0
    h = hashlib.sha256()
    header = [(n, a.dtype.str, a.shape) for n, a in items]
    h.update(json.dumps(header).encode())
    for name, a in items:
        offset = -(-offset // _ALIGN) * _ALIGN  # round up
        specs.append(ArraySpec(name, a.dtype.str, tuple(a.shape), offset, a.nbytes))
        offset += a.nbytes
        h.update(a.data)
    return tuple(specs), offset, h.hexdigest()


def _pack_into(buf, items, specs) -> None:
    for (name, a), spec in zip(items, specs):
        if a.nbytes:
            buf[spec.offset : spec.offset + spec.nbytes] = a.tobytes()


def _ensure_atexit() -> None:
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_atexit_sweep)
        _ATEXIT_REGISTERED = True


def publish_arrays(
    arrays: "dict[str, np.ndarray]",
    label: str = "arrays",
    tracer=None,
) -> SharedArrayManifest:
    """Publish named arrays as one shared segment; returns the manifest.

    Identical content (same names, dtypes, shapes, bytes) republished
    while still live reuses the existing segment and bumps its refcount
    — :func:`release` must be called once per successful publish.  When
    shared memory is unavailable the manifest ships the bytes inline.
    """
    items = _canonical(arrays)
    specs, total, fingerprint = _layout(items)
    tr = active(tracer)

    live = _PUBLISHED.get(fingerprint)
    if live is not None:
        live.refs += 1
        if tr is not None:
            tr.point(
                EV_SHM_PUBLISH,
                label=label,
                segment=live.manifest.segment,
                bytes=total,
                arrays=len(specs),
                reused=True,
            )
        return live.manifest

    shm = None
    if shm_available():
        from multiprocessing import shared_memory

        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_SEQ)}-{fingerprint[:12]}"
        try:
            shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
        except Exception:
            shm = None

    if shm is None:
        packed = bytearray(total)
        _pack_into(packed, items, specs)
        manifest = SharedArrayManifest(
            fingerprint, None, total, specs, label=label, inline=bytes(packed)
        )
        if tr is not None:
            tr.point(
                EV_SHM_PUBLISH, label=label, segment=None, bytes=total,
                arrays=len(specs), reused=False,
            )
        return manifest

    _pack_into(shm.buf, items, specs)
    manifest = SharedArrayManifest(fingerprint, shm.name, total, specs, label=label)
    _PUBLISHED[fingerprint] = _Published(shm, manifest, refs=1)
    _ensure_atexit()
    if tr is not None:
        tr.point(
            EV_SHM_PUBLISH, label=label, segment=shm.name, bytes=total,
            arrays=len(specs), reused=False,
        )
    return manifest


def release(manifest: SharedArrayManifest) -> None:
    """Drop one reference; the last reference closes and unlinks.

    Safe to call with an inline-fallback manifest (no-op) and idempotent
    past zero.  Unlink always happens on the last release even if local
    numpy views still pin the mapping — the name is gone immediately,
    the memory when the last mapping dies.
    """
    if manifest.segment is None:
        return
    live = _PUBLISHED.get(manifest.fingerprint)
    if live is None:
        return
    live.refs -= 1
    if live.refs > 0:
        return
    del _PUBLISHED[manifest.fingerprint]
    _ATTACHED.pop(manifest.fingerprint, None)
    try:
        live.shm.close()
    except BufferError:
        # Same-process views (thread backend) still pin the mapping:
        # unlink now, retry the close at exit.
        _ZOMBIES.append(live.shm)
    try:
        live.shm.unlink()
    except FileNotFoundError:
        pass


def attach_arrays(manifest: SharedArrayManifest) -> "dict[str, np.ndarray]":
    """Map a published snapshot; returns ``{name: read-only array}``.

    Cached by fingerprint: one ``mmap`` per segment per process, reused
    across tasks.  In the publishing process itself the views alias the
    publisher's buffer directly (no second mapping).  Each *real* attach
    is logged; :func:`drain_attach_records` hands the log to the pool
    dispatcher for accounting.
    """
    global _ATTACH_CACHE_HITS
    cached = _ATTACHED.get(manifest.fingerprint)
    if cached is not None:
        _ATTACH_CACHE_HITS += 1
        return cached[1]

    t0 = time.perf_counter()
    if manifest.segment is None:
        if manifest.inline is None:
            raise ValueError("manifest has neither a segment nor inline bytes")
        buf: "object" = manifest.inline
        shm = None
    else:
        live = _PUBLISHED.get(manifest.fingerprint)
        if live is not None:
            buf = live.shm.buf
            shm = None  # publisher owns the mapping
        else:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=manifest.segment)
            buf = shm.buf
    views = {}
    for spec in manifest.arrays:
        n = int(np.prod(spec.shape, dtype=np.int64)) if spec.shape else 1
        a = np.frombuffer(buf, dtype=np.dtype(spec.dtype), count=n, offset=spec.offset)
        a = a.reshape(spec.shape)
        a.flags.writeable = False
        views[spec.name] = a
    _ATTACHED[manifest.fingerprint] = (shm, views)
    _ATTACH_RECORDS.append(
        {
            "fingerprint": manifest.fingerprint,
            "segment": manifest.segment,
            "label": manifest.label,
            "bytes": manifest.total_bytes,
            "seconds": time.perf_counter() - t0,
            "pid": os.getpid(),
        }
    )
    _ensure_atexit()
    return views


def drain_attach_records() -> "dict | None":
    """Return and clear this process's attach log (``None`` when empty).

    The pool worker piggybacks this on each chunk result so the
    dispatcher can account attaches and cache hits without extra IPC.
    """
    global _ATTACH_CACHE_HITS
    if not _ATTACH_RECORDS and not _ATTACH_CACHE_HITS:
        return None
    out = {"attaches": list(_ATTACH_RECORDS), "cached": _ATTACH_CACHE_HITS}
    _ATTACH_RECORDS.clear()
    _ATTACH_CACHE_HITS = 0
    return out


def published_segments() -> "list[str]":
    """Names of segments this process currently has published (live refs)."""
    return sorted(p.manifest.segment for p in _PUBLISHED.values())


def _shm_dir() -> "Path | None":
    d = Path("/dev/shm")
    return d if d.is_dir() else None


def leaked_segments() -> "list[str]":
    """All ``repro-shm-*`` names visible in ``/dev/shm`` — the leak audit.

    After every run has released its publications this must be empty;
    the chaos tests and the CI smoke job assert exactly that.  Returns
    ``[]`` on platforms without a visible shm filesystem.
    """
    d = _shm_dir()
    if d is None:
        return []
    return sorted(p.name for p in d.glob(f"{SEGMENT_PREFIX}-*"))


def cleanup_stale() -> "list[str]":
    """Unlink segments whose owning pid is dead; returns what was removed.

    The crash-safe backstop: segment names embed the creating pid, so a
    segment whose owner no longer exists is orphaned by definition
    (normal exits release via ``atexit``).  Live owners' segments are
    never touched.
    """
    removed = []
    d = _shm_dir()
    if d is None:
        return removed
    for p in d.glob(f"{SEGMENT_PREFIX}-*"):
        parts = p.name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid():
            continue
        try:
            os.kill(pid, 0)
            continue  # owner alive
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # owner alive under another uid
        try:
            p.unlink()
            removed.append(p.name)
        except OSError:
            pass
    return removed


def _close_or_disarm(seg) -> None:
    """Close a mapping; if live views still pin it, disarm ``__del__``.

    At this point the process is exiting (or the segment is already
    unlinked), so dropping the private ``_buf`` / ``_mmap`` references
    instead of closing merely defers reclamation to process teardown —
    the alternative is a ``BufferError`` traceback spat from ``__del__``
    during interpreter shutdown.
    """
    try:
        seg.close()
    except BufferError:
        try:
            seg._buf = None
            seg._mmap = None
        except AttributeError:
            pass


def _atexit_sweep() -> None:
    """Last-chance cleanup: unlink every live publication, close mappings."""
    for live in list(_PUBLISHED.values()):
        _close_or_disarm(live.shm)
        try:
            live.shm.unlink()
        except (FileNotFoundError, OSError):
            pass
    _PUBLISHED.clear()
    for seg, _views in list(_ATTACHED.values()):
        if seg is not None:
            _close_or_disarm(seg)
    _ATTACHED.clear()
    for seg in _ZOMBIES:
        _close_or_disarm(seg)
    _ZOMBIES.clear()
