"""Unit and property tests for geometric primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, Sphere, aabb_from_points, aabb_union


class TestAABB:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            AABB([1.0, 0.0], [0.0, 1.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            AABB([0.0], [1.0, 1.0])

    def test_volume(self):
        assert AABB([0, 0, 0], [2, 3, 4]).volume() == 24.0

    def test_degenerate_volume_is_zero(self):
        assert AABB([0, 0], [0, 1]).volume() == 0.0

    def test_center_and_extents(self):
        box = AABB([-1, -2], [3, 4])
        assert np.allclose(box.center, [1, 1])
        assert np.allclose(box.extents, [4, 6])

    def test_contains_single_and_batch(self):
        box = AABB([0, 0], [1, 1])
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))
        mask = box.contains(np.array([[0.5, 0.5], [2.0, 0.0], [1.0, 1.0]]))
        assert mask.tolist() == [True, False, True]

    def test_boundary_is_inside(self):
        box = AABB([0, 0], [1, 1])
        assert box.contains(np.array([0.0, 1.0]))

    def test_clamp(self):
        box = AABB([0, 0], [1, 1])
        assert np.allclose(box.clamp(np.array([2.0, -1.0])), [1.0, 0.0])

    def test_distance_inside_is_zero(self):
        box = AABB([0, 0], [2, 2])
        assert box.distance(np.array([1.0, 1.0])) == 0.0

    def test_distance_outside(self):
        box = AABB([0, 0], [1, 1])
        assert box.distance(np.array([4.0, 5.0])) == pytest.approx(5.0)

    def test_intersects_and_intersection(self):
        a = AABB([0, 0], [2, 2])
        b = AABB([1, 1], [3, 3])
        assert a.intersects(b)
        inter = a.intersection(b)
        assert np.allclose(inter.lo, [1, 1]) and np.allclose(inter.hi, [2, 2])
        assert a.intersection_volume(b) == 1.0

    def test_disjoint_intersection_none(self):
        a = AABB([0, 0], [1, 1])
        b = AABB([2, 2], [3, 3])
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.intersection_volume(b) == 0.0

    def test_touching_boxes_intersect(self):
        a = AABB([0, 0], [1, 1])
        b = AABB([1, 0], [2, 1])
        assert a.intersects(b)
        assert a.intersection_volume(b) == 0.0

    def test_expanded(self):
        box = AABB([0, 0], [1, 1]).expanded(0.5)
        assert np.allclose(box.lo, [-0.5, -0.5]) and np.allclose(box.hi, [1.5, 1.5])

    def test_expanded_negative_collapses_to_center(self):
        box = AABB([0, 0], [1, 1]).expanded(-2.0)
        assert np.allclose(box.lo, box.hi)
        assert np.allclose(box.lo, [0.5, 0.5])

    def test_sample_inside(self, rng):
        box = AABB([-1, 2], [0, 5])
        pts = box.sample(rng, 200)
        assert pts.shape == (200, 2)
        assert box.contains(pts).all()

    def test_segment_intersects_hit_and_miss(self):
        box = AABB([0, 0], [1, 1])
        assert box.segment_intersects(np.array([-1.0, 0.5]), np.array([2.0, 0.5]))
        assert not box.segment_intersects(np.array([-1.0, 2.0]), np.array([2.0, 2.0]))

    def test_segment_fully_inside_hits(self):
        box = AABB([0, 0], [1, 1])
        assert box.segment_intersects(np.array([0.2, 0.2]), np.array([0.8, 0.8]))

    def test_segments_intersect_batch_matches_scalar(self, rng):
        box = AABB([0, 0], [1, 1])
        p = rng.uniform(-2, 3, size=(64, 2))
        q = rng.uniform(-2, 3, size=(64, 2))
        batch = box.segments_intersect(p, q)
        scalar = np.array([box.segment_intersects(a, b) for a, b in zip(p, q)])
        assert np.array_equal(batch, scalar)

    def test_axis_parallel_segment_outside_slab(self):
        box = AABB([0, 0], [1, 1])
        # Vertical segment left of the box: parallel to y-axis slab.
        assert not box.segment_intersects(np.array([-0.5, -1.0]), np.array([-0.5, 2.0]))


class TestSphere:
    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), -1.0)

    def test_contains(self):
        s = Sphere(np.zeros(2), 1.0)
        assert s.contains(np.array([0.5, 0.5]))
        assert not s.contains(np.array([1.0, 1.0]))

    def test_volume_matches_known_formulas(self):
        assert Sphere(np.zeros(2), 2.0).volume() == pytest.approx(np.pi * 4)
        assert Sphere(np.zeros(3), 1.0).volume() == pytest.approx(4.0 / 3.0 * np.pi)

    def test_bounding_box(self):
        s = Sphere(np.array([1.0, 1.0]), 0.5)
        box = s.bounding_box()
        assert np.allclose(box.lo, [0.5, 0.5]) and np.allclose(box.hi, [1.5, 1.5])

    def test_surface_sample_on_surface(self, rng):
        s = Sphere(np.array([1.0, -2.0, 3.0]), 2.5)
        pts = s.surface_sample(rng, 128)
        assert pts.shape == (128, 3)
        assert np.allclose(np.linalg.norm(pts - s.center, axis=1), 2.5)

    def test_surface_sample_single(self, rng):
        s = Sphere(np.zeros(3), 1.0)
        p = s.surface_sample(rng)
        assert p.shape == (3,)
        assert np.isclose(np.linalg.norm(p), 1.0)


class TestHelpers:
    def test_aabb_union(self):
        u = aabb_union([AABB([0, 0], [1, 1]), AABB([-1, 2], [0.5, 3])])
        assert np.allclose(u.lo, [-1, 0]) and np.allclose(u.hi, [1, 3])

    def test_aabb_union_empty_raises(self):
        with pytest.raises(ValueError):
            aabb_union([])

    def test_aabb_from_points(self):
        box = aabb_from_points(np.array([[0, 1], [2, -1], [1, 0]]))
        assert np.allclose(box.lo, [0, -1]) and np.allclose(box.hi, [2, 1])


@settings(max_examples=50, deadline=None)
@given(
    lo=st.lists(st.floats(-100, 100), min_size=2, max_size=2),
    extent=st.lists(st.floats(0.01, 50), min_size=2, max_size=2),
    margin=st.floats(0, 10),
)
def test_expanded_always_contains_original_samples(lo, extent, margin):
    """Property: an expanded box contains everything the original does."""
    lo = np.array(lo)
    box = AABB(lo, lo + np.array(extent))
    grown = box.expanded(margin)
    rng = np.random.default_rng(0)
    pts = box.sample(rng, 32)
    assert grown.contains(pts).all()


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_segment_endpoints_inside_implies_hit(seed):
    """Property: a segment with an endpoint in the box intersects it."""
    rng = np.random.default_rng(seed)
    box = AABB([-1, -1, -1], [1, 1, 1])
    p = box.sample(rng)
    q = rng.uniform(-3, 3, 3)
    assert box.segment_intersects(p, q)
