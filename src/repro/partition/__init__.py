"""Region-graph partitioners and partition-quality metrics."""

from .edge_cut import PartitionQuality, edge_cut_of, evaluate_partition, loads_of
from .greedy import partition_greedy_lpt, partition_weighted_blocks
from .naive import partition_1d_columns, partition_block
from .refine import refine_partition
from .spatial import partition_rcb

__all__ = [
    "PartitionQuality",
    "edge_cut_of",
    "evaluate_partition",
    "loads_of",
    "partition_greedy_lpt",
    "partition_weighted_blocks",
    "partition_1d_columns",
    "partition_block",
    "refine_partition",
    "partition_rcb",
    "PARTITIONERS",
    "partition_by_name",
]

#: Initial-distribution partitioners selectable by name (the ``plan()``
#: facade and ``simulate_*`` drivers route through this).
PARTITIONERS = {
    "block": partition_block,
    "greedy": partition_greedy_lpt,
    "rcb": partition_rcb,
}


def partition_by_name(graph, num_pes: int, name: str) -> "dict[int, int]":
    """Run the named partitioner over ``graph`` for ``num_pes`` PEs."""
    try:
        fn = PARTITIONERS[name]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {name!r}; known: {sorted(PARTITIONERS)}"
        ) from None
    return fn(graph, num_pes)
