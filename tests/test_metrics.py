"""Tests for the load-imbalance metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    coefficient_of_variation,
    ideal_loads,
    max_load_reduction,
    percent_improvement,
    speedup,
)


class TestCoV:
    def test_balanced_is_zero(self):
        assert coefficient_of_variation(np.array([5.0, 5.0, 5.0])) == 0.0

    def test_known_value(self):
        loads = np.array([0.0, 10.0])
        assert coefficient_of_variation(loads) == pytest.approx(1.0)

    def test_all_zero_loads(self):
        assert coefficient_of_variation(np.zeros(4)) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))

    @settings(max_examples=50, deadline=None)
    @given(scale=st.floats(0.1, 100), seed=st.integers(0, 1000))
    def test_scale_invariant(self, scale, seed):
        rng = np.random.default_rng(seed)
        loads = rng.uniform(1, 10, 16)
        assert coefficient_of_variation(loads * scale) == pytest.approx(
            coefficient_of_variation(loads)
        )


class TestImprovements:
    def test_percent_improvement(self):
        assert percent_improvement(100.0, 50.0) == pytest.approx(50.0)
        assert percent_improvement(100.0, 120.0) == pytest.approx(-20.0)
        assert percent_improvement(0.0, 10.0) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 5.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_max_load_reduction(self):
        before = np.array([10.0, 2.0, 2.0])
        after = np.array([5.0, 5.0, 4.0])
        assert max_load_reduction(before, after) == pytest.approx(50.0)

    def test_ideal_loads(self):
        out = ideal_loads(12.0, 4)
        assert np.allclose(out, 3.0)
        with pytest.raises(ValueError):
            ideal_loads(1.0, 0)
