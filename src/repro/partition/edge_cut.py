"""Partition quality metrics: balance and edge cut.

A good region-graph partition balances two competing objectives (Sec.
III-B): equalise per-PE weight (so the construction phase is balanced)
and minimise edge cut (so the region-connection phase stays local).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..subdivision.region import RegionGraph

__all__ = ["PartitionQuality", "evaluate_partition", "edge_cut_of", "loads_of"]


@dataclass(frozen=True)
class PartitionQuality:
    """Summary of one assignment's quality."""

    num_pes: int
    loads: np.ndarray
    edge_cut: int
    total_edges: int

    @property
    def max_load(self) -> float:
        return float(self.loads.max())

    @property
    def mean_load(self) -> float:
        return float(self.loads.mean())

    @property
    def imbalance(self) -> float:
        """max/mean load ratio; 1.0 is perfect."""
        return self.max_load / self.mean_load if self.mean_load > 0 else 1.0

    @property
    def coefficient_of_variation(self) -> float:
        """σ/µ of PE loads — the paper's imbalance measure."""
        mu = self.loads.mean()
        return float(self.loads.std() / mu) if mu > 0 else 0.0

    @property
    def cut_fraction(self) -> float:
        return self.edge_cut / self.total_edges if self.total_edges else 0.0


def loads_of(graph: RegionGraph, assignment: "dict[int, int]", num_pes: int) -> np.ndarray:
    loads = np.zeros(num_pes)
    for rid in graph.region_ids():
        loads[assignment[rid]] += graph.weights[rid]
    return loads


def edge_cut_of(graph: RegionGraph, assignment: "dict[int, int]") -> int:
    return sum(1 for a, b in graph.edges() if assignment[a] != assignment[b])


def evaluate_partition(graph: RegionGraph, assignment: "dict[int, int]", num_pes: int) -> PartitionQuality:
    """Compute all quality metrics for an assignment."""
    missing = set(graph.region_ids()) - set(assignment)
    if missing:
        raise ValueError(f"assignment misses {len(missing)} regions")
    bad = {pe for pe in assignment.values() if not 0 <= pe < num_pes}
    if bad:
        raise ValueError(f"assignment uses invalid PEs {sorted(bad)}")
    return PartitionQuality(
        num_pes=num_pes,
        loads=loads_of(graph, assignment, num_pes),
        edge_cut=edge_cut_of(graph, assignment),
        total_edges=graph.num_adjacencies,
    )
