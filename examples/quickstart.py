#!/usr/bin/env python
"""Quickstart: build a roadmap, answer a motion-planning query, then run
the same problem through the load-balanced parallel PRM on a simulated
768-core machine — via the one-call ``plan()`` facade, with a tracer
recording the run.

Run:  python examples/quickstart.py [--quick]

``--quick`` shrinks the problem to CI-smoke scale (seconds, same code
paths).
"""

import sys

import numpy as np

from repro import (
    ExecutionPolicy,
    JsonlSink,
    MemorySink,
    ObsConfig,
    Tracer,
    WorkloadSpec,
    plan,
)
from repro.bench import format_table
from repro.cspace import EuclideanCSpace
from repro.geometry import med_cube
from repro.planners import PRM, RoadmapQuery


def main(quick: bool = False) -> None:
    rng = np.random.default_rng(0)
    prm_samples = 150 if quick else 600
    num_regions = 200 if quick else 1500
    num_pes = 64 if quick else 768

    # ------------------------------------------------------------------
    # 1. Sequential planning: PRM + query in the paper's med-cube world.
    # ------------------------------------------------------------------
    env = med_cube()
    print(f"Environment: {env}")
    cspace = EuclideanCSpace(env)

    planner = PRM(cspace, k=6)
    result = planner.build(prm_samples, rng)
    print(f"Sequential PRM: {result.roadmap} "
          f"({result.stats.lp_calls} local plans, "
          f"{result.stats.sample_attempts} sample attempts)")

    start = np.array([-9.0, -9.0, -9.0])
    goal = np.array([9.0, 9.0, 9.0])
    query = RoadmapQuery(cspace).solve(result.roadmap, start, goal)
    if query is None:
        print("Query failed — try more samples.")
    else:
        print(f"Query solved: {len(query.path_vertices)} waypoints, "
              f"length {query.length:.1f}")

    # ------------------------------------------------------------------
    # 2. Parallel planning through the plan() facade: one call composes
    #    workload construction, load balancing, and the simulated
    #    768-core machine.  A tracer records the last run as a trace you
    #    can inspect with `python -m repro.obs summarize trace.jsonl`.
    # ------------------------------------------------------------------
    print(f"\nParallel PRM on a simulated {num_pes}-core machine:")
    workload = WorkloadSpec(
        environment="med-cube",
        planner="prm",
        num_regions=num_regions,
        samples_per_region=6,
        seed=1,
    )
    rows = []
    base = None
    for strategy in ("none", "repartition", "hybrid", "rand-8"):
        tracer = Tracer(sinks=[MemorySink(), JsonlSink("quickstart_trace.jsonl")])
        report = plan(
            workload,
            execution=ExecutionPolicy(strategy=strategy, num_pes=num_pes),
            obs=ObsConfig(tracer=tracer),
        )
        tracer.close()
        if base is None:
            base = report.total_time
            print(f"  workload: {report.workload.num_regions} regions, "
                  f"{report.roadmap.num_vertices} roadmap nodes")
        summary = report.trace_summary()
        rows.append(
            [
                strategy,
                f"{report.total_time:.0f}",
                f"{summary.phases['construct']:.0f}",
                f"{summary.phases['connect']:.0f}",
                summary.steal_requests,
                f"{base / report.total_time:.2f}x",
            ]
        )
    print(format_table(
        ["strategy", "virtual time", "construct", "connect", "steal reqs", "speedup"],
        rows,
    ))
    print("\nTrace of the last run written to quickstart_trace.jsonl; try:")
    print("  python -m repro.obs summarize quickstart_trace.jsonl")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
