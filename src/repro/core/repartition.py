"""Bulk-synchronous repartitioning (Algorithm 4).

Given region weights, computes a new region->PE assignment with a greedy
global partitioner (optionally followed by edge-cut refinement) and models
the cost of enforcing it: an all-reduce to agree on the partition plus
migration of the moved regions (ownership transfer of the region *and its
roadmap data*, the pGraph redistribution of Sec. IV-A).

The overhead model is what makes the paper's "at 128 cores there is no
better distribution possible, so the experimental result only shows the
overhead of attempting to repartition" observation reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..obs.events import EV_REPARTITION_DECISION
from ..obs.tracer import active
from ..partition.greedy import partition_greedy_lpt
from ..partition.refine import refine_partition
from ..runtime.topology import ClusterTopology
from ..subdivision.region import RegionGraph

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = ["RepartitionResult", "repartition"]


@dataclass
class RepartitionResult:
    """New assignment plus the virtual-time overhead of installing it."""

    assignment: "dict[int, int]"
    moved_regions: int
    #: max over PEs of (outgoing + incoming) migration payload.
    max_migration_payload: float
    #: virtual time charged: allreduce + migration.
    overhead: float

    @property
    def moved_fraction(self) -> float:
        return self.moved_regions / max(len(self.assignment), 1)


def repartition(
    graph: RegionGraph,
    weights: "dict[int, float]",
    old_assignment: "dict[int, int]",
    topology: ClusterTopology,
    refine: bool = True,
    balance_tolerance: float = 0.05,
    payload_per_weight: float = 1.0,
    payload_per_region: float = 1.0,
    min_gain: float = 0.10,
    tracer: "Tracer | None" = None,
) -> RepartitionResult:
    """Compute and cost a weight-balanced repartition.

    ``payload_per_region`` and ``payload_per_weight`` convert a migrated
    region into transfer payload: the region descriptor itself plus its
    roadmap data, which is proportional to its weight (= sample count for
    PRM).

    ``min_gain`` guards against useless migration: when the new partition
    would not reduce the predicted maximum load by at least this fraction,
    the old assignment is kept and only the (cheap) weight all-reduce is
    charged — this is why the paper sees "no significant overhead" from
    load balancing in its already-balanced *free* environment.
    """
    for rid, w in weights.items():
        graph.set_weight(rid, w)
    num_pes = topology.num_pes
    new_assignment = partition_greedy_lpt(graph, num_pes)
    if refine:
        new_assignment = refine_partition(
            graph, new_assignment, num_pes, balance_tolerance=balance_tolerance
        )

    allreduce = 2.0 * np.ceil(np.log2(max(num_pes, 2))) * topology.latency_remote
    old_loads = np.zeros(num_pes)
    new_loads = np.zeros(num_pes)
    for rid in graph.region_ids():
        w = weights.get(rid, 0.0)
        old_loads[old_assignment[rid]] += w
        new_loads[new_assignment[rid]] += w
    old_max, new_max = float(old_loads.max()), float(new_loads.max())
    tr = active(tracer)
    if old_max > 0 and new_max >= (1.0 - min_gain) * old_max:
        if tr is not None:
            tr.point(
                EV_REPARTITION_DECISION,
                ts=0.0,
                accepted=False,
                moved=0,
                overhead=float(allreduce),
                old_max_load=old_max,
                new_max_load=new_max,
            )
            tr.metrics.counter("repartitions_declined").inc()
        return RepartitionResult(
            assignment=dict(old_assignment),
            moved_regions=0,
            max_migration_payload=0.0,
            overhead=float(allreduce),
        )

    # Migration payload per PE: regions leaving plus regions arriving.
    payload = np.zeros(topology.num_pes)
    moved = 0
    for rid in graph.region_ids():
        src, dst = old_assignment[rid], new_assignment[rid]
        if src == dst:
            continue
        moved += 1
        size = payload_per_region + payload_per_weight * weights.get(rid, 0.0)
        payload[src] += size
        payload[dst] += size
    max_payload = float(payload.max()) if payload.size else 0.0

    # Overhead: the weight all-reduce plus the slowest PE's migration
    # traffic at remote bandwidth.
    migration = max_payload * topology.bandwidth_cost + (
        topology.latency_remote if moved else 0.0
    )
    if tr is not None:
        tr.point(
            EV_REPARTITION_DECISION,
            ts=0.0,
            accepted=True,
            moved=moved,
            overhead=float(allreduce + migration),
            old_max_load=old_max,
            new_max_load=new_max,
        )
        tr.metrics.counter("repartitions_accepted").inc()
        tr.metrics.counter("regions_migrated").inc(moved)
    return RepartitionResult(
        assignment=new_assignment,
        moved_regions=moved,
        max_migration_payload=max_payload,
        overhead=float(allreduce + migration),
    )
