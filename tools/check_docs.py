#!/usr/bin/env python
"""Keep the docs subsystem in sync with the code.

Two checks, both cheap enough for every push (CI ``docs-check`` job):

1. **Module-map coverage** — every top-level module or package under
   ``src/repro/`` must appear as ``repro.<name>`` in the module map of
   ``docs/index.md``.  Adding a subsystem without documenting it fails
   the build; so does documenting a module that no longer exists.

2. **Snippet syntax** — every fenced ``python`` code block in
   ``docs/*.md`` and ``README.md`` must at least ``compile()``.  The
   snippets are illustrative (they may reference names without
   importing them), so they are not executed — but a snippet that is
   not valid Python is always a documentation bug.

Exits non-zero with one line per problem.
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DOCS = REPO / "docs"
INDEX = DOCS / "index.md"

_FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.M | re.S)
_MODULE_REF = re.compile(r"`repro\.([A-Za-z_][A-Za-z0-9_]*)`")


def repo_modules() -> set[str]:
    """Top-level modules/packages of ``repro`` (filesystem truth)."""
    names = set()
    for entry in SRC.iterdir():
        if entry.name.startswith(("_", ".")):
            continue
        if entry.is_dir() and (entry / "__init__.py").exists():
            names.add(entry.name)
        elif entry.suffix == ".py":
            names.add(entry.stem)
    return names


def mapped_modules(index_text: str) -> set[str]:
    """``repro.<name>`` entries in docs/index.md's module-map table."""
    in_map = False
    names = set()
    for line in index_text.splitlines():
        if line.lstrip().startswith("## "):
            in_map = line.strip().lower() == "## module map"
            continue
        if in_map and line.lstrip().startswith("|"):
            names.update(_MODULE_REF.findall(line.split("|")[1]))
    return names


def check_module_map(problems: list[str]) -> None:
    if not INDEX.exists():
        problems.append(f"{INDEX.relative_to(REPO)}: missing")
        return
    actual = repo_modules()
    mapped = mapped_modules(INDEX.read_text())
    for name in sorted(actual - mapped):
        problems.append(
            f"docs/index.md: module map is missing `repro.{name}` "
            f"(src/repro/{name} exists)")
    for name in sorted(mapped - actual):
        problems.append(
            f"docs/index.md: module map lists `repro.{name}` "
            f"but src/repro/{name} does not exist")


def check_snippets(problems: list[str]) -> None:
    pages = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    for page in pages:
        text = page.read_text()
        for i, match in enumerate(_FENCE.finditer(text), start=1):
            snippet = match.group(1)
            line = text[: match.start()].count("\n") + 2
            try:
                compile(snippet, f"{page.name}:snippet{i}", "exec")
            except SyntaxError as exc:
                problems.append(
                    f"{page.relative_to(REPO)}:{line}: python snippet "
                    f"#{i} does not compile: {exc.msg} "
                    f"(snippet line {exc.lineno})")


def main() -> int:
    problems: list[str] = []
    check_module_map(problems)
    check_snippets(problems)
    if problems:
        for p in problems:
            print(p, file=sys.stderr)
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    n_pages = len(list(DOCS.glob("*.md"))) + 1
    print(f"check_docs: module map covers all {len(repo_modules())} "
          f"modules; snippets across {n_pages} pages compile")
    return 0


if __name__ == "__main__":
    sys.exit(main())
