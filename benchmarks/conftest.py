"""Benchmark configuration: figure benches run once (the workload is
deterministic; statistical repetition adds nothing but wall-clock)."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
