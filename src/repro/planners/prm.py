"""Sequential Probabilistic Roadmap Method (Kavraki et al., 1996).

This is the planner invoked inside each region by the uniform-subdivision
parallel PRM (line 8 of Algorithm 1 in the paper).  It samples valid
configurations, connects each to its k nearest neighbours with a local
planner, and returns the regional roadmap together with the operation
counts the virtual-time model charges for.

Neighbour connection — the hot path — is batched through the local
planner's ``batch_pairs`` whenever it offers one, *including* on the
default ``connect_same_component=True`` path: candidates are filtered by
connected component first and only the survivors are validated, in an
order that reproduces the sequential planner's operation counts exactly
(see :meth:`PRM._connect_batched`).  ``PlannerStats`` and the
environment's ``CollisionCounters`` are therefore field-for-field
identical to the one-edge-at-a-time implementation; the virtual-time
model depends on that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.sampling import UniformSampler
from ..cspace.space import ConfigurationSpace
from ..geometry.primitives import AABB
from ..knn.brute import BruteForceNN
from .roadmap import Roadmap
from .stats import PlannerStats

__all__ = ["PRM", "PRMResult"]

_BLOCK = 64


@dataclass
class PRMResult:
    """Roadmap plus the work ledger for the invocation."""

    roadmap: Roadmap
    stats: PlannerStats


class PRM:
    """Sequential PRM.

    Parameters
    ----------
    cspace:
        The configuration space to plan in.
    sampler:
        A sampler from :mod:`repro.cspace.sampling` (default uniform).
    local_planner:
        Edge validator (default straight-line at resolution 0.25).
    k:
        Number of nearest-neighbour connection attempts per node.
    connect_same_component:
        If False (default), skip connection attempts between vertices
        already in the same connected component — the standard PRM
        optimisation.
    nn_factory:
        Callable ``dim -> NeighborFinder`` (default brute force, the right
        choice at regional roadmap sizes).
    batched:
        Use the local planner's vectorised ``batch_pairs`` when available
        (default True).  Operation counts are identical either way; False
        forces the one-edge-at-a-time reference path (used by the perf
        suite to measure the speedup and by tests to assert parity).
    fail_fast:
        Opt into the chunked fail-fast batch validator
        (``batch_pairs_chunked``) so long invalid segments stop early.
        Faster in cluttered spaces but *changes* ``lp_checks`` (fewer
        checks on failures), so it is off by default — the virtual-time
        model wants the exact counts.
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        sampler=None,
        local_planner=None,
        k: int = 6,
        connect_same_component: bool = True,
        nn_factory=None,
        batched: bool = True,
        fail_fast: bool = False,
    ):
        self.cspace = cspace
        self.sampler = sampler if sampler is not None else UniformSampler()
        self.local_planner = (
            local_planner if local_planner is not None
            else StraightLinePlanner(resolution=0.25)
        )
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.connect_same_component = connect_same_component
        self.nn_factory = nn_factory if nn_factory is not None else BruteForceNN
        self.batched = batched
        self.fail_fast = fail_fast

    # -- batched validation ------------------------------------------------
    def _use_batch(self) -> bool:
        return self.batched and hasattr(self.local_planner, "batch_pairs")

    def _validate_pairs(
        self, starts: np.ndarray, ends: np.ndarray
    ) -> "tuple[np.ndarray, int, np.ndarray]":
        if self.fail_fast and hasattr(self.local_planner, "batch_pairs_chunked"):
            return self.local_planner.batch_pairs_chunked(self.cspace, starts, ends)
        return self.local_planner.batch_pairs(self.cspace, starts, ends)

    def _connect_batched(
        self,
        rmap: Roadmap,
        vid: int,
        cfg: np.ndarray,
        neighbors: "list[tuple[int, float]]",
        stats: PlannerStats,
    ) -> None:
        """Connect a *new* vertex to its candidate neighbours, batched.

        Reproduces the sequential semantics exactly.  With
        ``connect_same_component=True`` the sequential loop validates, per
        connected component, that component's candidates in order until
        the first success (a success merges the component into ``vid``'s,
        so its remaining candidates are skipped); components are mutually
        independent because ``vid`` starts in a singleton component.  So:
        group candidates by current component and validate one wave per
        round — the first still-open candidate of every still-open group —
        through one ``batch_pairs`` call.  Round 1 covers everything when
        components are distinct, which is the common case.
        """
        if self.connect_same_component:
            groups: "dict[int, list[int]]" = {}
            for nbr_id, _d in neighbors:
                groups.setdefault(rmap.component_id(nbr_id), []).append(nbr_id)
            queues = list(groups.values())
        else:
            queues = [[nbr_id] for nbr_id, _d in neighbors]
        pos = [0] * len(queues)
        active = list(range(len(queues)))
        while active:
            wave_ids = [queues[g][pos[g]] for g in active]
            ends = rmap.configs_of(wave_ids)
            starts = np.broadcast_to(cfg, ends.shape)
            ok, checks, lengths = self._validate_pairs(starts, ends)
            stats.lp_calls += len(wave_ids)
            stats.lp_checks += checks
            still_open = []
            for j, g in enumerate(active):
                if ok[j]:
                    stats.lp_successes += 1
                    if rmap.add_edge(vid, wave_ids[j], float(lengths[j])):
                        stats.edges_added += 1
                else:
                    pos[g] += 1
                    if pos[g] < len(queues[g]):
                        still_open.append(g)
            active = still_open

    def _build_block(
        self,
        rmap: Roadmap,
        configs: np.ndarray,
        id_base: int,
        next_local: int,
        nn,
        stats: PlannerStats,
    ) -> None:
        """Add ``configs`` to the roadmap in predict-validate-replay blocks.

        Per block of up to ``_BLOCK`` samples: (1) batch the k-NN queries
        with growing visibility (query *i* sees the block's earlier
        samples, exactly as the interleaved query/insert loop would);
        (2) predict which candidate pairs the sequential connection loop
        will actually validate — the first unconsumed candidate of each
        distinct connected component, per vertex — and validate the whole
        prediction in one vectorised ``batch_pairs_counted`` call (pair
        verdicts depend only on geometry, never on roadmap state, so
        validating ahead of time is safe); then (3) replay the sequential
        decision loop in strict order against the verdict cache, applying
        edges as it goes so component checks see exactly the state the
        reference implementation would.  A replay that needs a verdict
        the prediction missed (e.g. the candidate *after* a failed
        attempt in the same component) pauses, and the loop predicts
        again from the paused state — a handful of small follow-up
        batches in practice.

        ``PlannerStats`` are charged from the replay, so they match the
        sequential path field for field.  The environment's
        ``CollisionCounters`` are rescaled from the speculative charge to
        the replayed one (the charge per intermediate point is a constant
        factor, so the correction is exact integer arithmetic).
        """
        env = getattr(self.cspace, "env", None)
        counters = getattr(env, "counters", None)
        cslot = rmap.component_slot
        for lo in range(0, configs.shape[0], _BLOCK):
            chunk = configs[lo : lo + _BLOCK]
            m = chunk.shape[0]
            vids = [id_base + next_local + i for i in range(m)]
            next_local += m
            nbr_lists = nn.knn_block_growing(
                np.asarray(vids, dtype=np.int64), chunk, self.k
            )
            stats.nn_queries += m
            for i in range(m):
                rmap.add_vertex(chunk[i], vids[i])
            before = counters.snapshot() if counters is not None else None
            spec_checks = 0
            seq_checks = 0
            cache: "dict[tuple[int, int], tuple[bool, int, float]]" = {}
            ptr = [0] * m
            active = [i for i in range(m) if nbr_lists[i]]
            while active:
                # Predict the verdicts the replay will need from here.
                # Component slots are stable within a round (no edges are
                # applied while predicting), so roots memoise per id.
                need: "list[tuple[int, int]]" = []
                root_cache: "dict[int, int]" = {}
                for i in active:
                    lst = nbr_lists[i]
                    if self.connect_same_component:
                        rv = cslot(vids[i])
                        seen: "set[int]" = set()
                        for pos in range(ptr[i], len(lst)):
                            c = lst[pos][0]
                            rc = root_cache.get(c)
                            if rc is None:
                                rc = root_cache[c] = cslot(c)
                            if rc == rv or rc in seen:
                                continue
                            seen.add(rc)
                            if (i, pos) not in cache:
                                need.append((i, pos))
                    else:
                        for pos in range(ptr[i], len(lst)):
                            if (i, pos) not in cache:
                                need.append((i, pos))
                if need:
                    starts = chunk[[i for i, _pos in need]]
                    ends = rmap.configs_of(nbr_lists[i][pos][0] for i, pos in need)
                    ok, per_checks, lengths = self.local_planner.batch_pairs_counted(
                        self.cspace, starts, ends
                    )
                    spec_checks += int(per_checks.sum())
                    for j, key in enumerate(need):
                        cache[key] = (bool(ok[j]), int(per_checks[j]), float(lengths[j]))
                # Strict in-order replay; a missing verdict pauses the
                # replay (later vertices' decisions depend on the
                # outcome) until the next prediction round fills it.
                paused = False
                still_open: "list[int]" = []
                for i in active:
                    if paused:
                        still_open.append(i)
                        continue
                    vid = vids[i]
                    lst = nbr_lists[i]
                    pos = ptr[i]
                    rs = cslot(vid)
                    while pos < len(lst):
                        v = lst[pos][0]
                        if self.connect_same_component and cslot(v) == rs:
                            pos += 1
                            continue
                        verdict = cache.get((i, pos))
                        if verdict is None:
                            paused = True
                            break
                        okp, c, length = verdict
                        stats.lp_calls += 1
                        stats.lp_checks += c
                        seq_checks += c
                        if okp:
                            stats.lp_successes += 1
                            if rmap.add_edge(vid, v, length):
                                stats.edges_added += 1
                            rs = cslot(vid)
                        pos += 1
                    ptr[i] = pos
                    if pos < len(lst):
                        still_open.append(i)
                active = still_open
            if counters is not None and spec_checks:
                dp = counters.point_checks - before.point_checks
                ds = counters.segment_checks - before.segment_checks
                counters.point_checks = (
                    before.point_checks + dp * seq_checks // spec_checks
                )
                counters.segment_checks = (
                    before.segment_checks + ds * seq_checks // spec_checks
                )

    def build(
        self,
        n_samples: int,
        rng: np.random.Generator,
        within: AABB | None = None,
        roadmap: Roadmap | None = None,
        id_base: int = 0,
    ) -> PRMResult:
        """Construct (or extend) a roadmap with ``n_samples`` new samples.

        ``within`` restricts sampling to a sub-box of C-space — this is how
        regional roadmaps are built.  ``id_base`` offsets vertex ids so that
        regional roadmaps have globally unique ids.
        """
        stats = PlannerStats()
        rmap = roadmap if roadmap is not None else Roadmap(self.cspace.dim)

        batch = self.sampler(self.cspace, rng, n_samples, within=within)
        stats.sample_attempts += batch.attempts
        stats.samples_accepted += len(batch)

        nn = self.nn_factory(self.cspace.dim)
        # Seed NN structure with pre-existing vertices (extension mode).
        ids, cfgs = rmap.configs_array()
        if ids.size:
            nn.add_batch(ids, cfgs)

        if (
            self._use_batch()
            and not self.fail_fast
            and hasattr(self.local_planner, "batch_pairs_counted")
            and hasattr(nn, "knn_block_growing")
        ):
            self._build_block(
                rmap, np.asarray(batch.configs, dtype=float), id_base,
                rmap.num_vertices, nn, stats,
            )
            stats.nn_distance_evals += nn.stats.distance_evals
            return PRMResult(rmap, stats)

        batched = self._use_batch()
        next_local = rmap.num_vertices
        for cfg in batch.configs:
            vid = id_base + next_local
            next_local += 1
            rmap.add_vertex(cfg, vid)

            neighbors = nn.knn(cfg, self.k)
            stats.nn_queries += 1
            if batched and len(neighbors) > 1:
                self._connect_batched(rmap, vid, cfg, neighbors, stats)
            else:
                for nbr_id, _dist in neighbors:
                    if self.connect_same_component and rmap.same_component(vid, nbr_id):
                        continue
                    result = self.local_planner(self.cspace, cfg, rmap.config(nbr_id))
                    stats.lp_calls += 1
                    stats.lp_checks += result.checks
                    if result.valid:
                        stats.lp_successes += 1
                        if rmap.add_edge(vid, nbr_id, result.length):
                            stats.edges_added += 1
            nn.add(vid, cfg)
        stats.nn_distance_evals += nn.stats.distance_evals
        return PRMResult(rmap, stats)

    def connect_roadmaps(
        self,
        rmap: Roadmap,
        ids_a: np.ndarray,
        ids_b: np.ndarray,
        k: int | None = None,
        max_attempts: int | None = None,
    ) -> PlannerStats:
        """Attempt connections between two vertex sets of one merged roadmap.

        Used for the inter-region connection phase (lines 10-12 of
        Algorithm 1): for each vertex in ``ids_a``, try its ``k`` nearest
        vertices in ``ids_b``.

        Batched exactly like :meth:`build`: candidate pairs accumulate
        into one validation batch, flushed early only when a pair's
        same-component decision could depend on a pending outcome (either
        of its components is already touched by an unvalidated pair).
        Operation counts match the sequential reference path exactly.
        """
        stats = PlannerStats()
        k = k if k is not None else self.k
        ids_b = np.asarray(ids_b, dtype=np.int64)
        if ids_b.size == 0 or len(ids_a) == 0:
            return stats
        nn = self.nn_factory(self.cspace.dim)
        nn.add_batch(ids_b, rmap.configs_of(int(i) for i in ids_b))
        if self._use_batch():
            self._connect_pairs_batched(rmap, ids_a, nn, k, max_attempts, stats)
            stats.nn_distance_evals += nn.stats.distance_evals
            return stats
        attempts = 0
        for u in np.asarray(ids_a, dtype=np.int64):
            u = int(u)
            cfg = rmap.config(u)
            stats.nn_queries += 1
            for v, _dist in nn.knn(cfg, k):
                if max_attempts is not None and attempts >= max_attempts:
                    stats.nn_distance_evals += nn.stats.distance_evals
                    return stats
                if self.connect_same_component and rmap.same_component(u, v):
                    continue
                attempts += 1
                result = self.local_planner(self.cspace, cfg, rmap.config(v))
                stats.lp_calls += 1
                stats.lp_checks += result.checks
                if result.valid:
                    stats.lp_successes += 1
                    if rmap.add_edge(u, v, result.length):
                        stats.edges_added += 1
        stats.nn_distance_evals += nn.stats.distance_evals
        return stats

    def _connect_pairs_batched(
        self,
        rmap: Roadmap,
        ids_a: np.ndarray,
        nn,
        k: int,
        max_attempts: int | None,
        stats: PlannerStats,
    ) -> None:
        pending: "list[tuple[int, int]]" = []
        pending_roots: "set[int]" = set()

        def flush() -> None:
            if not pending:
                return
            starts = rmap.configs_of(u for u, _v in pending)
            ends = rmap.configs_of(v for _u, v in pending)
            ok, checks, lengths = self._validate_pairs(starts, ends)
            stats.lp_calls += len(pending)
            stats.lp_checks += checks
            for i, (u, v) in enumerate(pending):
                if ok[i]:
                    stats.lp_successes += 1
                    if rmap.add_edge(u, v, float(lengths[i])):
                        stats.edges_added += 1
            pending.clear()
            pending_roots.clear()

        attempts = 0
        exhausted = False
        for u in np.asarray(ids_a, dtype=np.int64):
            u = int(u)
            stats.nn_queries += 1
            for v, _dist in nn.knn(rmap.config(u), k):
                if max_attempts is not None and attempts >= max_attempts:
                    exhausted = True
                    break
                if self.connect_same_component:
                    ru, rv = rmap.component_id(u), rmap.component_id(v)
                    if ru == rv or ru in pending_roots or rv in pending_roots:
                        # Decision may depend on a pending outcome: settle
                        # the batch, then re-evaluate against fresh state.
                        flush()
                        ru, rv = rmap.component_id(u), rmap.component_id(v)
                        if ru == rv:
                            continue
                    pending_roots.add(ru)
                    pending_roots.add(rv)
                attempts += 1
                pending.append((u, v))
            if exhausted:
                break
        flush()
