"""repro.service — persistent multi-tenant planning-as-a-service.

The one-shot :func:`repro.api.plan` pipeline rebuilds a roadmap per
call; this package keeps the expensive artefacts alive between requests:

:mod:`repro.service.cache`
    :class:`RoadmapCache` — LRU snapshot cache of frozen-roadmap query
    engines keyed by canonical :meth:`~repro.spec.WorkloadSpec.cache_key`
    hashes, with singleflight construction.
:mod:`repro.service.coalescer`
    :class:`BatchQueue` — pure per-workload request coalescing under a
    max-batch / max-linger latency budget.
:mod:`repro.service.service`
    :class:`PlanService` — the thread-pooled, asyncio-compatible front
    end: admission control, back-pressure, batched
    :meth:`~repro.planners.engine.QueryEngine.solve_many` dispatch with
    the runtime's retry / degrade fault policies.

Served answers are bit-identical to direct ``RoadmapQuery.solve`` /
``QueryEngine.solve`` calls on the same workload; the
``python -m repro.bench serve`` load generator measures what the
amortisation buys (throughput, p50/p99/p999 latency, hit rate).
"""

from .cache import CacheStats, RoadmapCache, build_engine, snapshot_nbytes
from .coalescer import BatchQueue, Flush
from .service import PlanService, ServiceConfig, ServiceOverloadError, ServiceStats

__all__ = [
    "RoadmapCache",
    "CacheStats",
    "build_engine",
    "snapshot_nbytes",
    "BatchQueue",
    "Flush",
    "PlanService",
    "ServiceConfig",
    "ServiceOverloadError",
    "ServiceStats",
]
