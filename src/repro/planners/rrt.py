"""Sequential Rapidly-exploring Random Tree (LaValle & Kuffner, 2001).

Also the regional planner of the uniform *radial* subdivision parallel
RRT (line 11 of Algorithm 2): the tree can be constrained to a region
(a predicate over configurations) and biased toward a target direction,
matching the paper's conical regions whose growth is "biased toward the
region candidate defined by the random ray".

Growth — the RRT hot path — has two implementations.  The one-extension-
at-a-time loop in :meth:`RRT._grow_sequential` is the semantic oracle.
The default batched path (:meth:`RRT._grow_batched`) replays that oracle
exactly while vectorising the per-iteration array work in blocks,
mirroring the predict-validate-replay strategy of
:class:`repro.planners.prm.PRM`:

1. **Sample** a block's worth of ``q_rand`` draws up front, replaying the
   oracle's RNG call sequence call-for-call (one ``random()`` per bias
   gate, one ``cspace.sample`` otherwise), so every sample is
   bit-identical to what the sequential loop would draw.
2. **Batch the nearest-neighbour work**: distances from all block samples
   to the frozen tree are one broadcast; nodes accepted *inside* the
   block contribute one incremental distance column each, so the nearest
   node for iteration *i* is an O(1) combine of the frozen row minimum
   and the running block minimum — never a rebuild.  Ties (including
   frozen-vs-block ties) fall back to replaying the reference selection
   on the composed distance vector, so the chosen neighbour is identical
   even in degenerate geometry.
3. **Speculatively validate** the extensions the replay will need —
   steer arithmetic, the ``q_new`` validity point check, the region
   predicate, and the local-plan segment — in batches.  Verdicts are
   geometry-only functions of ``(q_near, q_rand)``, so they are cached
   by ``(nearest vertex, sample identity)``; repeated goal-bias draws
   share one entry per tree vertex, which makes bias *chains* (each
   acceptance re-routing the next bias draw through the new node) cost
   exactly one validation per chain link, the same as the oracle.
4. **Replay** the accept/reject loop in strict order against the verdict
   cache, charging :class:`PlannerStats` per the oracle; a replay that
   needs a verdict the prediction missed (an acceptance moved some later
   sample's nearest node) pauses and re-predicts from the updated state.

The environment's ``CollisionCounters`` are rescaled from the
speculative charge to the replayed one at the end of the call — the
charge per evaluated point is a constant factor, so the correction is
exact integer arithmetic (same argument as the PRM build).  Tree
topology, ``PlannerStats``, and counters are asserted field-for-field
identical to the sequential oracle in ``tests/test_rrt_batched.py`` and
re-verified by every ``python -m repro.bench perf`` run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace
from ..knn.brute import BruteForceNN
from ..knn.incremental import IncrementalNN
from .roadmap import Roadmap
from .stats import PlannerStats

__all__ = ["RRT", "RRTResult"]

#: Iterations speculated per batch (wider than the PRM build's 64: RRT
#: blocks re-predict on acceptance cache misses, so bigger blocks amortise
#: the frozen-tree distance broadcast better).
_BLOCK = 128


@dataclass
class RRTResult:
    """Tree (as a roadmap plus parent pointers) and the work ledger."""

    tree: Roadmap
    parents: "dict[int, int]"
    root_id: int
    stats: PlannerStats

    def path_to_root(self, vid: int) -> "list[int]":
        """Vertex ids from ``vid`` up the parent chain to the root."""
        path = [vid]
        while path[-1] != self.root_id:
            path.append(self.parents[path[-1]])
        return path


class RRT:
    """Sequential RRT with optional region constraint and growth bias.

    Parameters
    ----------
    cspace:
        Configuration space.
    step_size:
        Maximum extension length ``Δq``.
    local_planner:
        Validator for each extension segment.
    goal_bias:
        Probability of sampling the bias target instead of uniformly.
    nn_factory:
        ``dim -> NeighborFinder``.
    batched:
        Use the vectorised predict-validate-replay growth loop when the
        local planner offers ``batch_pairs_exact`` (default True).
        Results — tree, parents, ``PlannerStats``, collision counters —
        are identical either way; False forces the one-extension-at-a-
        time reference path (used by the perf suite to measure the
        speedup and by tests to assert parity).
    """

    def __init__(
        self,
        cspace: ConfigurationSpace,
        step_size: float = 0.5,
        local_planner=None,
        goal_bias: float = 0.05,
        nn_factory=None,
        batched: bool = True,
    ):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0.0 <= goal_bias <= 1.0:
            raise ValueError("goal_bias must be in [0, 1]")
        self.cspace = cspace
        self.step_size = step_size
        self.local_planner = (
            local_planner if local_planner is not None
            else StraightLinePlanner(resolution=0.25)
        )
        self.goal_bias = goal_bias
        self.nn_factory = nn_factory if nn_factory is not None else BruteForceNN
        self.batched = batched

    def grow(
        self,
        root: np.ndarray,
        n_nodes: int,
        rng: np.random.Generator,
        bias_target: np.ndarray | None = None,
        region_predicate: "Callable[[np.ndarray], bool] | None" = None,
        max_iterations: int | None = None,
        tree: Roadmap | None = None,
        parents: "dict[int, int] | None" = None,
        root_id: int | None = None,
        id_base: int = 0,
        goal: np.ndarray | None = None,
        goal_tolerance: float = 0.0,
        region_predicate_batch: "Callable[[np.ndarray], np.ndarray] | None" = None,
    ) -> RRTResult:
        """Grow a tree of up to ``n_nodes`` nodes rooted at ``root``.

        ``region_predicate`` restricts accepted nodes to a region (the
        radial subdivision cones); ``bias_target`` is the configuration
        toward which ``goal_bias`` of the samples are drawn.  When ``goal``
        is given, growth stops as soon as a node lands within
        ``goal_tolerance`` of it.  ``region_predicate_batch``, if given,
        is a vectorised ``(m, dim) -> (m,) bool`` twin of
        ``region_predicate`` used by the batched path (it must agree with
        the scalar predicate point-for-point); without it the batched path
        evaluates the scalar predicate per candidate, which is still
        correct, just slower.

        The batched path consumes the RNG in blocks, so after an early
        exit (goal reached, node budget met) the generator state may be
        ahead of where the sequential loop would have left it; every
        *returned* quantity is identical.
        """
        stats = PlannerStats()
        root = np.asarray(root, dtype=float)
        if tree is None:
            tree = Roadmap(self.cspace.dim)
            if not self.cspace.valid_single(root):
                raise ValueError("RRT root configuration is invalid")
            stats.sample_attempts += 1
            root_id = tree.add_vertex(root, id_base)
            parents = {root_id: root_id}
        else:
            if parents is None or root_id is None:
                raise ValueError("extending an existing tree requires parents and root_id")

        max_iterations = max_iterations if max_iterations is not None else 20 * n_nodes
        # The batched path replays BruteForceNN's distance arithmetic and
        # canonical tie-break inline, or drives a live IncrementalNN as
        # the frozen-structure predictor; any other custom nn_factory
        # must go through the sequential loop so its finder is actually
        # consulted.
        if (
            self.batched
            and (self.nn_factory is BruteForceNN or self.nn_factory is IncrementalNN)
            and hasattr(self.local_planner, "batch_pairs_exact")
        ):
            return self._grow_batched(
                tree, parents, root_id, n_nodes, rng, bias_target, region_predicate,
                region_predicate_batch, max_iterations, id_base, goal, goal_tolerance,
                stats,
            )
        return self._grow_sequential(
            tree, parents, root_id, n_nodes, rng, bias_target, region_predicate,
            max_iterations, id_base, goal, goal_tolerance, stats,
        )

    # -- reference implementation -----------------------------------------
    def _grow_sequential(
        self,
        tree: Roadmap,
        parents: "dict[int, int]",
        root_id: int,
        n_nodes: int,
        rng: np.random.Generator,
        bias_target: np.ndarray | None,
        region_predicate,
        max_iterations: int,
        id_base: int,
        goal: np.ndarray | None,
        goal_tolerance: float,
        stats: PlannerStats,
    ) -> RRTResult:
        """One-extension-at-a-time growth loop: the semantic oracle."""
        nn = self.nn_factory(self.cspace.dim)
        ids, cfgs = tree.configs_array()
        nn.add_batch(ids, cfgs)
        next_local = tree.num_vertices

        added = 0
        goal_reached: int | None = None
        for _ in range(max_iterations):
            if added >= n_nodes or goal_reached is not None:
                break
            # -- sample q_rand ------------------------------------------------
            if bias_target is not None and rng.random() < self.goal_bias:
                q_rand = np.asarray(bias_target, dtype=float)
            elif goal is not None and rng.random() < self.goal_bias:
                q_rand = np.asarray(goal, dtype=float)
            else:
                q_rand = self.cspace.sample(rng)
            # -- find q_near ---------------------------------------------------
            stats.nn_queries += 1
            near = nn.knn(q_rand, 1)
            if not near:
                break
            near_id, dist = near[0]
            q_near = tree.config(near_id)
            if dist == 0.0:
                continue
            # -- extend toward q_rand by at most step_size --------------------
            t = min(self.step_size / dist, 1.0)
            q_new = self.cspace.interpolate(q_near, q_rand, t)
            stats.sample_attempts += 1
            if not self.cspace.valid_single(q_new):
                continue
            if region_predicate is not None and not region_predicate(q_new):
                continue
            result = self.local_planner(self.cspace, q_near, q_new)
            stats.lp_calls += 1
            stats.lp_checks += result.checks
            if not result.valid:
                continue
            stats.lp_successes += 1
            vid = id_base + next_local
            next_local += 1
            tree.add_vertex(q_new, vid)
            tree.add_edge(near_id, vid, result.length)
            stats.edges_added += 1
            parents[vid] = near_id
            nn.add(vid, q_new)
            added += 1
            if goal is not None and float(self.cspace.distance(q_new, goal)) <= goal_tolerance:
                goal_reached = vid
        stats.nn_distance_evals += nn.stats.distance_evals
        stats.nn_rebuilds += nn.stats.rebuilds
        stats.nn_buffer_hits += nn.stats.buffer_hits
        stats.nn_evals_saved += nn.stats.evals_saved
        stats.samples_accepted += added
        return RRTResult(tree, parents, root_id, stats)

    # -- batched implementation --------------------------------------------
    def _grow_batched(
        self,
        tree: Roadmap,
        parents: "dict[int, int]",
        root_id: int,
        n_nodes: int,
        rng: np.random.Generator,
        bias_target: np.ndarray | None,
        region_predicate,
        region_predicate_batch,
        max_iterations: int,
        id_base: int,
        goal: np.ndarray | None,
        goal_tolerance: float,
        stats: PlannerStats,
    ) -> RRTResult:
        """Predict-validate-replay growth: identical results, vectorised.

        See the module docstring for the strategy.  Distances are
        computed with :meth:`BruteForceNN._dist_block`'s per-dimension
        accumulation, which is bit-identical to the per-query path the
        oracle takes, so nearest-neighbour choices and steer parameters
        match exactly.
        """
        cspace = self.cspace
        dim = cspace.dim
        step = self.step_size
        lp = self.local_planner
        env = getattr(cspace, "env", None)
        counters = getattr(env, "counters", None)
        before = counters.snapshot() if counters is not None else None

        bias_cfg = np.asarray(bias_target, dtype=float) if bias_target is not None else None
        goal_cfg = np.asarray(goal, dtype=float) if goal is not None else None

        # Insertion-order store of every tree configuration — the same
        # layout the oracle's NeighborFinder holds, so the tie-break
        # fallback can replay the reference selection on an identical
        # array.  Amortised growth like the roadmap's own storage.
        ids0, cfgs0 = tree.configs_array()
        n_store = int(ids0.size)
        cap = max(_BLOCK, n_store + n_nodes)
        store = np.empty((cap, dim))
        store[:n_store] = cfgs0
        store_ids = np.empty(cap, dtype=np.int64)
        store_ids[:n_store] = ids0

        # Live-finder mode (IncrementalNN): the finder holds the frozen
        # structure and answers one uncharged canonical query per sample
        # per block (within-block acceptances are combined through the
        # incremental blk minima below, so the finder is *not* re-probed
        # every re-predict round); replay then issues one *charged* query
        # per iteration at exactly the oracle's structure state, so every
        # KnnStats-derived counter matches the sequential loop exactly.
        live_nn = None
        row_of: "dict[int, int]" = {}
        if self.nn_factory is not BruteForceNN:
            live_nn = self.nn_factory(dim)
            live_nn.add_batch(ids0, cfgs0)
            row_of = {int(v): r for r, v in enumerate(ids0.tolist())}

        def nn_snap():
            s = live_nn.stats
            return (s.queries, s.distance_evals, s.rebuilds, s.buffer_hits, s.evals_saved)

        def nn_restore(snap):
            s = live_nn.stats
            (s.queries, s.distance_evals, s.rebuilds, s.buffer_hits, s.evals_saved) = snap

        next_local = tree.num_vertices
        added = 0
        goal_reached: int | None = None
        nn_evals = 0
        spec_points = 0  # points speculatively evaluated against the env
        seq_points = 0  # points the sequential oracle would evaluate
        # (near_vid, sample key) -> (point_ok, region_ok, lp_ok, lp_checks,
        # lp_length, q_new); kept across blocks — geometry never changes.
        cache: "dict[tuple[int, object], tuple]" = {}
        it = 0
        alive = True

        while alive and it < max_iterations and added < n_nodes and goal_reached is None:
            B = min(_BLOCK, max_iterations - it)
            it += B
            # -- 1. replay the sampling RNG exactly -----------------------
            skey: "list[object]" = [None] * B
            if bias_cfg is None and goal_cfg is None:
                # No bias gates: the oracle consumes exactly B uniform
                # draws, which one bulk call replays bit-for-bit (the
                # generator fills row-major with the same per-element
                # arithmetic as B scalar draws).
                samples = np.atleast_2d(np.asarray(cspace.sample(rng, B), dtype=float))
                for b in range(B):
                    skey[b] = it - B + b
            else:
                samples = np.empty((B, dim))
                for b in range(B):
                    if bias_cfg is not None and rng.random() < self.goal_bias:
                        samples[b] = bias_cfg
                        skey[b] = "bias"
                    elif goal_cfg is not None and rng.random() < self.goal_bias:
                        samples[b] = goal_cfg
                        skey[b] = "goal"
                    else:
                        samples[b] = cspace.sample(rng)
                        skey[b] = it - B + b  # globally unique per uniform draw
            # -- 2. frozen-tree distances -------------------------------
            # Brute mode: one broadcast.  Live mode: one uncharged
            # canonical finder query per sample (the finder resolves its
            # own ties; charges are rolled back because the oracle only
            # pays at replay time).
            n0 = n_store
            if live_nn is not None:
                frozen_vid = np.full(B, -1, dtype=np.int64)
                frozen_min = np.full(B, np.inf)
                snap0 = nn_snap()
                for b in range(B):
                    res = live_nn.knn(samples[b], 1)
                    if res:
                        frozen_vid[b] = res[0][0]
                        frozen_min[b] = res[0][1]
                nn_restore(snap0)
                D = frozen_arg = frozen_tie = None
            elif n0:
                D = np.empty((B, n0))
                BruteForceNN._dist_block(store[:n0], samples, D)
                frozen_min = D.min(axis=1)
                frozen_arg = D.argmin(axis=1)
                frozen_tie = (D == frozen_min[:, None]).sum(axis=1) > 1
            else:
                D = np.empty((B, 0))
                frozen_min = np.full(B, np.inf)
                frozen_arg = np.zeros(B, dtype=np.int64)
                frozen_tie = np.zeros(B, dtype=bool)
            # Running minima over nodes accepted inside this block; one
            # incremental distance column per acceptance.
            blk_D = np.empty((B, B))
            blk_min = np.full(B, np.inf)
            blk_arg = np.full(B, -1)
            blk_tie = np.zeros(B, dtype=bool)
            n_blk = 0

            def nearest(i: int) -> "tuple[int, float, int] | None":
                """``(vid, distance, store row)`` of sample ``i``'s nearest
                tree node under the current block state; None on an empty
                tree.  Exact reference semantics: a unique strict minimum
                is resolved directly, anything tied replays the oracle's
                selection on the composed distance vector."""
                if n0 + n_blk == 0:
                    return None
                fmin = frozen_min[i]
                bmin = blk_min[i]
                if live_nn is not None:
                    if bmin < fmin:
                        # blk_arg holds the EARLIEST block column at
                        # blk_min, so within-block ties are already
                        # canonical; frozen-vs-block ties fall through
                        # to the frozen side (strictly older slots).
                        row = n0 + int(blk_arg[i])
                        return (int(store_ids[row]), float(bmin), row)
                    vid = int(frozen_vid[i])
                    return (vid, float(fmin), row_of[vid])
                if bmin < fmin:
                    if not blk_tie[i]:
                        row = n0 + int(blk_arg[i])
                        return (int(store_ids[row]), float(bmin), row)
                elif fmin < bmin:
                    if not frozen_tie[i]:
                        row = int(frozen_arg[i])
                        return (int(store_ids[row]), float(fmin), row)
                d = np.concatenate((D[i], blk_D[i, :n_blk])) if n_blk else D[i]
                # argmin returns the FIRST minimum, i.e. the earliest
                # inserted node — the canonical (distance, insertion
                # order) tie-break every NeighborFinder implements.
                row = int(np.argmin(d))
                return (int(store_ids[row]), float(d[row]), row)

            pending = list(range(B))
            while pending and alive:
                # -- predict & batch-validate the verdicts replay needs --
                need: "list[tuple[tuple[int, object], int, float, int]]" = []
                seen: "set[tuple[int, object]]" = set()
                for i in pending:
                    nr = nearest(i)
                    if nr is None:
                        break
                    vid_near, dist, row = nr
                    if dist == 0.0:
                        continue
                    key = (vid_near, skey[i])
                    if key in cache or key in seen:
                        continue
                    seen.add(key)
                    need.append((key, row, dist, i))
                if need:
                    q_nears = store[[row for _k, row, _d, _i in need]]
                    q_rands = samples[[i for _k, _r, _d, i in need]]
                    dists = np.array([d for _k, _r, d, _i in need])
                    ts = np.minimum(step / dists, 1.0)
                    q_news = cspace.interpolate_pairs(q_nears, q_rands, ts)
                    ok_pts = np.atleast_1d(cspace.valid(q_news))
                    spec_points += len(need)
                    region_ok = np.ones(len(need), dtype=bool)
                    passed = np.nonzero(ok_pts)[0]
                    if passed.size and region_predicate_batch is not None:
                        region_ok[passed] = np.atleast_1d(
                            region_predicate_batch(q_news[passed])
                        )
                    elif region_predicate is not None:
                        for j in passed:
                            region_ok[j] = bool(region_predicate(q_news[j]))
                    lp_sel = np.nonzero(ok_pts & region_ok)[0]
                    lp_ok = np.zeros(len(need), dtype=bool)
                    lp_checks = np.zeros(len(need), dtype=np.int64)
                    lp_len = np.zeros(len(need))
                    if lp_sel.size:
                        ok2, per_checks, lens = lp.batch_pairs_exact(
                            cspace, q_nears[lp_sel], q_news[lp_sel]
                        )
                        lp_ok[lp_sel] = ok2
                        lp_checks[lp_sel] = per_checks
                        lp_len[lp_sel] = lens
                        spec_points += int(per_checks.sum())
                    for j, (key, _row, _d, _i) in enumerate(need):
                        cache[key] = (
                            bool(ok_pts[j]), bool(region_ok[j]), bool(lp_ok[j]),
                            int(lp_checks[j]), float(lp_len[j]), q_news[j],
                        )
                # -- strict in-order replay ------------------------------
                done = 0
                for i in pending:
                    if added >= n_nodes or goal_reached is not None:
                        alive = False
                        break
                    stats.nn_queries += 1
                    if live_nn is not None:
                        # The *charged* query, at exactly the structure
                        # state the oracle would hold here.  Its answer
                        # always equals the prediction combine: both are
                        # the canonical minimum over the same point set
                        # with bit-identical distances.
                        snap = nn_snap()
                        res = live_nn.knn(samples[i], 1)
                        nr = (
                            (int(res[0][0]), float(res[0][1]), -1)
                            if res else None
                        )
                    else:
                        nr = nearest(i)
                    if nr is None:
                        alive = False
                        break
                    if live_nn is None:
                        nn_evals += n0 + n_blk
                    vid_near, dist, _row = nr
                    if dist == 0.0:
                        done += 1
                        continue
                    verdict = cache.get((vid_near, skey[i]))
                    if verdict is None:
                        # An acceptance moved this sample's nearest node;
                        # pause and re-predict from the updated state.
                        stats.nn_queries -= 1
                        if live_nn is None:
                            nn_evals -= n0 + n_blk
                        else:
                            nn_restore(snap)
                        break
                    done += 1
                    pt_ok, reg_ok, l_ok, l_checks, l_len, q_new = verdict
                    stats.sample_attempts += 1
                    seq_points += 1
                    if not pt_ok or not reg_ok:
                        continue
                    stats.lp_calls += 1
                    stats.lp_checks += l_checks
                    seq_points += l_checks
                    if not l_ok:
                        continue
                    stats.lp_successes += 1
                    vid = id_base + next_local
                    next_local += 1
                    tree.add_vertex(q_new, vid)
                    tree.add_edge(vid_near, vid, l_len)
                    stats.edges_added += 1
                    parents[vid] = vid_near
                    if n_store == store.shape[0]:
                        store = np.concatenate((store, np.empty_like(store)))
                        store_ids = np.concatenate((store_ids, np.empty_like(store_ids)))
                    store[n_store] = q_new
                    store_ids[n_store] = vid
                    if live_nn is not None:
                        live_nn.add(vid, q_new)
                        row_of[vid] = n_store
                    # Incremental distance column: the new node vs every
                    # block sample — the same row-wise norm the reference
                    # finder computes (bit-identical to the frozen
                    # matrix's per-dimension accumulation).
                    blk_D[:, n_blk] = np.linalg.norm(samples - q_new, axis=1)
                    col = blk_D[:, n_blk]
                    better = col < blk_min
                    blk_tie |= col == blk_min
                    blk_tie[better] = False
                    blk_arg[better] = n_blk
                    np.copyto(blk_min, col, where=better)
                    n_store += 1
                    n_blk += 1
                    added += 1
                    if (
                        goal_cfg is not None
                        and float(cspace.distance(q_new, goal_cfg)) <= goal_tolerance
                    ):
                        goal_reached = vid
                pending = pending[done:]

        if counters is not None and spec_points:
            # Exact rescale of the speculative charge to the replayed one:
            # every evaluated point charges the same constant, so integer
            # proportionality is exact (see the PRM build).
            dp = counters.point_checks - before.point_checks
            ds = counters.segment_checks - before.segment_checks
            counters.point_checks = before.point_checks + dp * seq_points // spec_points
            counters.segment_checks = before.segment_checks + ds * seq_points // spec_points
        if live_nn is not None:
            s = live_nn.stats
            stats.nn_distance_evals += s.distance_evals
            stats.nn_rebuilds += s.rebuilds
            stats.nn_buffer_hits += s.buffer_hits
            stats.nn_evals_saved += s.evals_saved
        else:
            stats.nn_distance_evals += nn_evals
        stats.samples_accepted += added
        return RRTResult(tree, parents, root_id, stats)
