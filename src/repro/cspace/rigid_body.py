"""Rigid-body configuration spaces for SE(2) and SE(3).

The robot is modelled as a finite set of *body points* (a point cloud on
its hull).  A configuration is valid when every transformed body point is
collision-free — a conservative, resolution-style rigid-body check that
keeps the hot path fully vectorised.  Distance blends translation with a
weighted geodesic rotation term, the standard C-space metric.
"""

from __future__ import annotations

import numpy as np

from ..geometry.environment import Environment
from ..geometry.primitives import AABB
from ..geometry.transforms import (
    angular_difference,
    transform_points_se2,
    transform_points_se3,
    wrap_angle,
)
from .space import ConfigurationSpace

__all__ = ["RigidBodyCSpace", "box_body_points"]


def box_body_points(half_extents: np.ndarray, points_per_edge: int = 2) -> np.ndarray:
    """Generate a point cloud covering the surface of a box robot.

    For ``points_per_edge=2`` this is just the corners, which is exact for
    convex obstacles under translation and conservative under rotation.
    """
    half = np.asarray(half_extents, dtype=float)
    dim = half.shape[0]
    axes = [np.linspace(-h, h, max(points_per_edge, 2)) for h in half]
    grid = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(-1, dim)
    # Keep only surface points: at least one coordinate at its extreme.
    on_surface = np.any(np.isclose(np.abs(grid), half[None, :]), axis=1)
    return grid[on_surface]


class RigidBodyCSpace(ConfigurationSpace):
    """SE(2) (``x, y, theta``) or SE(3) (``x, y, z, rx, ry, rz``) rigid body.

    Parameters
    ----------
    env:
        Workspace environment.
    body_points:
        ``(k, w)`` body-frame point cloud (``w`` = workspace dim, 2 or 3).
    rotation_weight:
        Scale factor converting radians to workspace length in the metric.
    """

    def __init__(self, env: Environment, body_points: np.ndarray, rotation_weight: float = 1.0):
        self.env = env
        self.body_points = np.atleast_2d(np.asarray(body_points, dtype=float))
        wdim = env.dim
        if self.body_points.shape[1] != wdim:
            raise ValueError(
                f"body points have dim {self.body_points.shape[1]}, workspace has {wdim}"
            )
        if wdim not in (2, 3):
            raise ValueError("RigidBodyCSpace supports 2-D and 3-D workspaces")
        if rotation_weight < 0:
            raise ValueError("rotation_weight must be non-negative")
        self.rotation_weight = rotation_weight
        self._num_angles = 1 if wdim == 2 else 3
        # Keep the body's reference point inside the workspace; rotation
        # bounds are the full circle.
        radius = float(np.max(np.linalg.norm(self.body_points, axis=1))) if self.body_points.size else 0.0
        pos_lo = env.bounds.lo + radius
        pos_hi = env.bounds.hi - radius
        if np.any(pos_lo > pos_hi):
            raise ValueError("robot is too large for the workspace")
        ang = np.pi * np.ones(self._num_angles)
        self.bounds = AABB(np.concatenate([pos_lo, -ang]), np.concatenate([pos_hi, ang]))

    @property
    def workspace_dim(self) -> int:
        return self.env.dim

    @property
    def positional_dims(self) -> "tuple[int, ...]":
        return tuple(range(self.workspace_dim))

    # -- metric ---------------------------------------------------------------
    def distance(self, a: np.ndarray, b: np.ndarray) -> "float | np.ndarray":
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        w = self.workspace_dim
        single = b.ndim == 1
        b2 = np.atleast_2d(b)
        dp = b2[:, :w] - a[:w]
        da = angular_difference(a[w:], b2[:, w:])
        d = np.sqrt(
            np.sum(dp**2, axis=1) + self.rotation_weight**2 * np.sum(np.asarray(da) ** 2, axis=1)
        )
        return float(d[0]) if single else d

    def interpolate(self, a: np.ndarray, b: np.ndarray, t: "float | np.ndarray") -> np.ndarray:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        w = self.workspace_dim
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        pos = a[None, :w] + t_arr[:, None] * (b[:w] - a[:w])[None, :]
        dang = np.atleast_1d(angular_difference(a[w:], b[w:]))
        ang = wrap_angle(a[None, w:] + t_arr[:, None] * dang[None, :])
        out = np.hstack([pos, np.atleast_2d(ang)])
        return out[0] if np.asarray(t).ndim == 0 else out

    def distance_pairs(self, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        w = self.workspace_dim
        dp = ends[:, :w] - starts[:, :w]
        da = np.atleast_2d(angular_difference(starts[:, w:], ends[:, w:]))
        return np.sqrt(
            np.sum(dp**2, axis=1) + self.rotation_weight**2 * np.sum(da**2, axis=1)
        )

    def interpolate_pairs(self, starts: np.ndarray, ends: np.ndarray, t: np.ndarray) -> np.ndarray:
        starts = np.atleast_2d(np.asarray(starts, dtype=float))
        ends = np.atleast_2d(np.asarray(ends, dtype=float))
        t = np.asarray(t, dtype=float)
        w = self.workspace_dim
        pos = starts[:, :w] + t[:, None] * (ends[:, :w] - starts[:, :w])
        dang = np.atleast_2d(angular_difference(starts[:, w:], ends[:, w:]))
        ang = wrap_angle(starts[:, w:] + t[:, None] * dang)
        return np.hstack([pos, np.atleast_2d(ang)])

    # -- validity ---------------------------------------------------------------
    def valid(self, configs: np.ndarray) -> np.ndarray:
        cfgs = np.atleast_2d(np.asarray(configs, dtype=float))
        out = np.empty(cfgs.shape[0], dtype=bool)
        transform = transform_points_se2 if self.workspace_dim == 2 else transform_points_se3
        for i, c in enumerate(cfgs):
            pts = transform(self.body_points, c)
            out[i] = not np.any(self.env.points_in_collision(pts))
        return out
