"""Fig. 5(b): CoV of roadmap nodes per PE before/after repartitioning."""

from repro.bench import fig5b_prm_cov


def test_fig5b_prm_cov(once):
    out = once(fig5b_prm_cov)
    for o in out:
        # Repartitioning substantially lowers the CoV at every PE count.
        assert o["cov_after"] < o["cov_before"]
    # The before-CoV does not shrink with PE count (imbalance persists).
    assert out[-1]["cov_before"] >= 0.5 * out[0]["cov_before"]
