"""Canonical top-k selection shared by the k-NN backends and kernels.

Every NN backend promises the same ordering: ascending distance, ties
broken by insertion (stored) order.  argpartition alone leaves ties at the
k-th distance unspecified, so these helpers gather *all* entries tying the
k-th distance and stable-sort them — the single implementation both
``BruteForceNN`` and the kernel backends' :func:`knn_block_min` use, so
cross-backend tests can compare results exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_canonical", "select_canonical_rows"]


def select_canonical(d: np.ndarray, k_eff: int) -> np.ndarray:
    """Indices of the ``k_eff`` smallest entries of ``d`` under the
    canonical (distance, index) tie-break."""
    if k_eff >= d.size:
        return np.argsort(d, kind="stable")[:k_eff]
    part = np.argpartition(d, k_eff - 1)[:k_eff]
    kth = d[part].max()
    cand = np.nonzero(d <= kth)[0]
    return cand[np.argsort(d[cand], kind="stable")][:k_eff]


def select_canonical_rows(
    block: np.ndarray, k_eff: int
) -> "tuple[list[list[int]], list[list[float]]]":
    """Row-wise :func:`select_canonical`: (index rows, distance rows).

    The vectorised argpartition+argsort fast path is canonical whenever a
    row's k selected distances are distinct and nothing outside the
    selection ties the k-th distance; the rare ambiguous rows are
    re-selected individually.
    """
    if k_eff >= block.shape[1]:
        order = np.argsort(block, axis=1, kind="stable")[:, :k_eff]
        return order.tolist(), np.take_along_axis(block, order, axis=1).tolist()
    idx = np.argpartition(block, k_eff - 1, axis=1)[:, :k_eff]
    dk = np.take_along_axis(block, idx, axis=1)
    dk_sorted = np.sort(dk, axis=1)
    kthv = dk_sorted[:, -1]
    amb = (block <= kthv[:, None]).sum(axis=1) > k_eff
    if k_eff > 1:
        amb |= (dk_sorted[:, 1:] == dk_sorted[:, :-1]).any(axis=1)
    order = np.argsort(dk, axis=1, kind="stable")
    sel = np.take_along_axis(idx, order, axis=1).tolist()
    dists = np.take_along_axis(dk, order, axis=1).tolist()
    for r in np.nonzero(amb)[0].tolist():
        can = select_canonical(block[r], k_eff)
        sel[r] = can.tolist()
        dists[r] = block[r][can].tolist()
    return sel, dists
