"""Distributed graph view with remote-access accounting.

STAPL's pGraph distributes vertices across processing elements; touching a
vertex owned by another PE is a *remote access* and pays communication
latency.  The paper measures remote accesses into both of its pGraphs —
the region graph and the roadmap graph — during the region-connection
phase (Fig. 7b) and attributes the repartitioning regression there to
increased edge cuts.

:class:`PGraphView` wraps any object with an ownership map and counts
accesses per (accessor PE, owner PE) pair; it does not copy the data.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from .topology import ClusterTopology

__all__ = ["AccessStats", "PGraphView"]


@dataclass
class AccessStats:
    """Access tallies for one distributed data structure."""

    local: int = 0
    remote: int = 0
    #: remote accesses per accessor PE.
    remote_by_pe: "dict[int, int]" = field(default_factory=dict)
    #: virtual latency charged for the remote traffic.
    latency_charged: float = 0.0

    @property
    def total(self) -> int:
        """Local plus remote accesses."""
        return self.local + self.remote

    def remote_fraction(self) -> float:
        """Share of accesses that went remote (0.0 when untouched)."""
        return 0.0 if self.total == 0 else self.remote / self.total


class PGraphView:
    """Ownership map + access counters for a distributed graph.

    Parameters
    ----------
    name:
        Label used in reports ("region graph", "roadmap graph").
    topology:
        Supplies the latency model for charged accesses.
    """

    def __init__(self, name: str, topology: ClusterTopology):
        self.name = name
        self.topology = topology
        self._owner: "dict[int, int]" = {}
        self.stats = AccessStats()

    # -- ownership -----------------------------------------------------------
    def set_owner(self, element: int, pe: int) -> None:
        """Assign (or reassign) ``element`` to ``pe``."""
        if not 0 <= pe < self.topology.num_pes:
            raise ValueError(f"invalid owner PE {pe}")
        self._owner[element] = pe

    def set_owners(self, owners: "dict[int, int]") -> None:
        """Bulk :meth:`set_owner` from an element -> PE mapping."""
        for element, pe in owners.items():
            self.set_owner(element, pe)

    def owner(self, element: int) -> int:
        """Current owner PE of ``element`` (KeyError if unknown)."""
        return self._owner[element]

    def migrate(self, element: int, new_pe: int) -> None:
        """Transfer ownership (used by repartitioning and steal transfers)."""
        if element not in self._owner:
            raise KeyError(f"element {element} has no owner")
        self.set_owner(element, new_pe)

    @property
    def num_elements(self) -> int:
        """Number of elements with an assigned owner."""
        return len(self._owner)

    def elements_of(self, pe: int) -> "list[int]":
        """Sorted elements currently owned by ``pe``."""
        return sorted(e for e, p in self._owner.items() if p == pe)

    # -- access accounting ------------------------------------------------------
    def access(self, accessor_pe: int, element: int, count: int = 1) -> float:
        """Record ``count`` accesses to ``element`` from ``accessor_pe``.

        Returns the virtual latency charged (0 for local accesses).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        owner = self._owner[element]
        if owner == accessor_pe:
            self.stats.local += count
            return 0.0
        self.stats.remote += count
        self.stats.remote_by_pe[accessor_pe] = (
            self.stats.remote_by_pe.get(accessor_pe, 0) + count
        )
        charged = count * self.topology.latency(accessor_pe, owner)
        self.stats.latency_charged += charged
        return charged

    def access_bulk(self, accessor_pe: int, element: int, count: int = 1) -> float:
        """Record ``count`` accesses shipped as one aggregated message.

        STAPL aggregates asynchronous remote accesses, so a bulk read of
        ``count`` elements pays one base latency plus bandwidth — not
        ``count`` round trips.  Counts still tally per element accessed.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return 0.0
        owner = self._owner[element]
        if owner == accessor_pe:
            self.stats.local += count
            return 0.0
        self.stats.remote += count
        self.stats.remote_by_pe[accessor_pe] = (
            self.stats.remote_by_pe.get(accessor_pe, 0) + count
        )
        charged = self.topology.latency(accessor_pe, owner, payload=count)
        self.stats.latency_charged += charged
        return charged

    def reset_stats(self) -> None:
        """Zero the access counters, keeping the ownership map."""
        self.stats = AccessStats()
