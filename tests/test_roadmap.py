"""Tests for the roadmap graph and union-find."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.planners import Roadmap, UnionFind


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind()
        for x in range(5):
            uf.make_set(x)
        assert uf.num_sets == 5
        assert uf.union(0, 1)
        assert not uf.union(0, 1)
        assert uf.same_set(0, 1)
        assert not uf.same_set(0, 2)
        assert uf.num_sets == 4

    def test_transitive_union(self):
        uf = UnionFind()
        for x in range(4):
            uf.make_set(x)
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.same_set(0, 3)
        assert uf.num_sets == 1

    def test_make_set_idempotent(self):
        uf = UnionFind()
        uf.make_set(1)
        uf.make_set(1)
        assert uf.num_sets == 1


class TestRoadmap:
    def test_add_vertex_auto_ids(self):
        rm = Roadmap(2)
        assert rm.add_vertex(np.zeros(2)) == 0
        assert rm.add_vertex(np.ones(2)) == 1

    def test_explicit_ids(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), vid=100)
        assert rm.add_vertex(np.ones(2)) == 101

    def test_duplicate_vertex_rejected(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), vid=0)
        with pytest.raises(KeyError):
            rm.add_vertex(np.ones(2), vid=0)

    def test_wrong_dim_rejected(self):
        rm = Roadmap(2)
        with pytest.raises(ValueError):
            rm.add_vertex(np.zeros(3))

    def test_edge_weight_defaults_to_euclidean(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        rm.add_vertex(np.array([3.0, 4.0]), 1)
        rm.add_edge(0, 1)
        assert rm.neighbors(0)[1] == pytest.approx(5.0)

    def test_self_loop_rejected(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        with pytest.raises(ValueError):
            rm.add_edge(0, 0)

    def test_edge_to_missing_vertex(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        with pytest.raises(KeyError):
            rm.add_edge(0, 5)

    def test_duplicate_edge_returns_false(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        rm.add_vertex(np.ones(2), 1)
        assert rm.add_edge(0, 1)
        assert not rm.add_edge(1, 0)
        assert rm.num_edges == 1

    def test_components_tracking(self):
        rm = Roadmap(2)
        for i in range(4):
            rm.add_vertex(np.array([float(i), 0.0]), i)
        rm.add_edge(0, 1)
        rm.add_edge(2, 3)
        assert rm.num_components_fast == 2
        assert rm.same_component(0, 1)
        assert not rm.same_component(1, 2)
        rm.add_edge(1, 2)
        assert rm.num_components_fast == 1

    def test_connected_components_exact(self):
        rm = Roadmap(2)
        for i in range(5):
            rm.add_vertex(np.array([float(i), 0.0]), i)
        rm.add_edge(0, 1)
        rm.add_edge(1, 2)
        comps = rm.connected_components()
        assert sorted(map(sorted, comps)) == [[0, 1, 2], [3], [4]]

    def test_remove_edge(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        rm.add_vertex(np.ones(2), 1)
        rm.add_edge(0, 1)
        rm.remove_edge(0, 1)
        assert rm.num_edges == 0
        with pytest.raises(KeyError):
            rm.remove_edge(0, 1)

    def test_edges_iteration_unique(self):
        rm = Roadmap(2)
        for i in range(3):
            rm.add_vertex(np.array([float(i), 0.0]), i)
        rm.add_edge(0, 1)
        rm.add_edge(1, 2)
        edges = list(rm.edges())
        assert len(edges) == 2
        assert all(u < v for u, v, _w in edges)

    def test_merge_disjoint(self):
        a = Roadmap(2)
        a.add_vertex(np.zeros(2), 0)
        b = Roadmap(2)
        b.add_vertex(np.ones(2), 100)
        b.add_vertex(np.array([2.0, 2.0]), 101)
        b.add_edge(100, 101)
        a.merge(b)
        assert a.num_vertices == 3
        assert a.num_edges == 1

    def test_merge_conflicting_config_rejected(self):
        a = Roadmap(2)
        a.add_vertex(np.zeros(2), 0)
        b = Roadmap(2)
        b.add_vertex(np.ones(2), 0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_shared_identical_vertex_ok(self):
        a = Roadmap(2)
        a.add_vertex(np.zeros(2), 0)
        b = Roadmap(2)
        b.add_vertex(np.zeros(2), 0)
        a.merge(b)
        assert a.num_vertices == 1

    def test_path_length(self):
        rm = Roadmap(2)
        rm.add_vertex(np.zeros(2), 0)
        rm.add_vertex(np.array([1.0, 0.0]), 1)
        rm.add_vertex(np.array([1.0, 1.0]), 2)
        rm.add_edge(0, 1)
        rm.add_edge(1, 2)
        assert rm.path_length([0, 1, 2]) == pytest.approx(2.0)
        with pytest.raises(KeyError):
            rm.path_length([0, 2])

    def test_configs_array_round_trip(self, rng):
        rm = Roadmap(3)
        cfgs = rng.normal(size=(10, 3))
        for i, c in enumerate(cfgs):
            rm.add_vertex(c, i * 7)
        ids, arr = rm.configs_array()
        for i, vid in enumerate(ids):
            assert np.allclose(arr[i], rm.config(int(vid)))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_union_find_matches_bfs_components(seed):
    """Property: union-find component count equals exact BFS count."""
    rng = np.random.default_rng(seed)
    rm = Roadmap(2)
    n = 30
    for i in range(n):
        rm.add_vertex(rng.normal(size=2), i)
    for _ in range(25):
        u, v = rng.integers(0, n, 2)
        if u != v and not rm.has_edge(int(u), int(v)):
            rm.add_edge(int(u), int(v))
    assert rm.num_components_fast == len(rm.connected_components())


class TestArrayBackedStorage:
    def test_configs_of_matches_config(self, rng):
        rm = Roadmap(3)
        cfgs = rng.uniform(-1, 1, size=(10, 3))
        vids = [rm.add_vertex(c) for c in cfgs]
        got = rm.configs_of([vids[7], vids[2], vids[2]])
        np.testing.assert_array_equal(got[0], rm.config(vids[7]))
        np.testing.assert_array_equal(got[1], rm.config(vids[2]))
        np.testing.assert_array_equal(got[2], rm.config(vids[2]))
        assert rm.configs_of([]).shape == (0, 3)

    def test_capacity_growth_preserves_data(self, rng):
        """Adding past the initial capacity one vertex at a time must keep
        every earlier configuration intact (regression for tiling-style
        resize bugs)."""
        rm = Roadmap(2)
        cfgs = rng.uniform(-5, 5, size=(200, 2))
        for c in cfgs:
            rm.add_vertex(c)
        ids, stored = rm.configs_array()
        np.testing.assert_array_equal(ids, np.arange(200))
        np.testing.assert_array_equal(stored, cfgs)

    def test_remove_vertex_swaps_last(self):
        rm = Roadmap(2)
        for i in range(4):
            rm.add_vertex([float(i), 0.0], vid=i)
        rm.add_edge(0, 1, 1.0)
        rm.add_edge(1, 2, 1.0)
        rm.remove_vertex(1)
        assert not rm.has_vertex(1)
        assert rm.num_vertices == 3
        assert rm.num_edges == 0
        assert not rm.has_edge(0, 1)
        # Remaining vertices keep their configurations.
        np.testing.assert_array_equal(rm.config(3), [3.0, 0.0])
        np.testing.assert_array_equal(rm.config(0), [0.0, 0.0])
        with pytest.raises(KeyError):
            rm.remove_vertex(99)


class TestMetricAndComponents:
    def test_metric_supplies_default_weight(self):
        rm = Roadmap(2, metric=lambda a, b: 42.0)
        rm.add_vertex([0.0, 0.0], vid=0)
        rm.add_vertex([3.0, 4.0], vid=1)
        rm.add_edge(0, 1)
        assert rm.neighbors(0)[1] == 42.0

    def test_default_weight_is_euclidean(self):
        rm = Roadmap(2)
        rm.add_vertex([0.0, 0.0], vid=0)
        rm.add_vertex([3.0, 4.0], vid=1)
        rm.add_edge(0, 1)
        assert rm.neighbors(0)[1] == pytest.approx(5.0)

    def test_component_slot_tracks_component_id(self, rng):
        rm = Roadmap(2)
        for i in range(12):
            rm.add_vertex(rng.uniform(-1, 1, size=2), vid=i)
        for u, v in [(0, 1), (1, 2), (4, 5), (6, 7), (7, 8)]:
            rm.add_edge(u, v, 1.0)
        for a in range(12):
            for b in range(12):
                same_by_slot = rm.component_slot(a) == rm.component_slot(b)
                same_by_id = rm.component_id(a) == rm.component_id(b)
                assert same_by_slot == same_by_id
