"""Configuration spaces, samplers, and local planners."""

from .local_planner import BinaryLocalPlanner, LocalPlanResult, StraightLinePlanner
from .rigid_body import RigidBodyCSpace, box_body_points
from .sampling import (
    BridgeTestSampler,
    GaussianSampler,
    MixtureSampler,
    ObstacleBasedSampler,
    SampleBatch,
    UniformSampler,
)
from .space import ConfigurationSpace, EuclideanCSpace

__all__ = [
    "BinaryLocalPlanner",
    "LocalPlanResult",
    "StraightLinePlanner",
    "RigidBodyCSpace",
    "box_body_points",
    "BridgeTestSampler",
    "GaussianSampler",
    "MixtureSampler",
    "ObstacleBasedSampler",
    "SampleBatch",
    "UniformSampler",
    "ConfigurationSpace",
    "EuclideanCSpace",
]
