"""Chunk policies for the true-parallel pool: granularity made adaptive.

``run_tasks_parallel`` historically took ``chunksize`` as a fixed integer
the caller had to guess: too small and dispatch overhead dominates tiny
tasks, too large and a slow region clusters with others behind one worker
— exactly the granularity trade the paper's distributed schedulers make
with region size.  This module replaces the guess with pluggable
*policies*, resolved up front into a deterministic chunk list:

* an ``int`` keeps the historical fixed slicing (``"fixed-N"``),
* ``"guided"`` is OpenMP-style guided self-scheduling: each chunk takes
  ``remaining / (k * workers)`` tasks (``k = 2``), so early chunks are
  large (amortising dispatch) and the tail decays to single tasks (fine
  load balancing exactly where stragglers hurt),
* ``"weighted"`` consumes per-task weights (the partitioner's region
  weights) and packs chunks to roughly equal *weight* rather than equal
  count, falling back to ``"guided"`` when no weights are supplied.

Resolution is a pure function of ``(tasks, chunksize, workers, weights)``
— the same inputs always produce the same chunk list, so policy runs are
bit-identical to the ``chunksize=1`` oracle (only grouping changes, never
task identity or order of first dispatch).
"""

from __future__ import annotations

__all__ = ["CHUNK_POLICIES", "policy_label", "resolve_chunks", "validate_chunksize"]

#: Named adaptive policies accepted anywhere a ``chunksize`` int is.
CHUNK_POLICIES = ("guided", "weighted")

#: Guided decay factor ``k``: chunk size is ``remaining // (k * workers)``.
_GUIDED_K = 2


def validate_chunksize(chunksize: "int | str") -> None:
    """Raise ``ValueError`` unless ``chunksize`` is a valid int or policy."""
    if isinstance(chunksize, str):
        if chunksize not in CHUNK_POLICIES:
            raise ValueError(
                f"chunksize must be an int >= 1 or one of {CHUNK_POLICIES}, "
                f"got {chunksize!r}"
            )
        return
    if isinstance(chunksize, bool) or not isinstance(chunksize, int):
        raise ValueError(
            f"chunksize must be an int >= 1 or one of {CHUNK_POLICIES}, "
            f"got {chunksize!r}"
        )
    if chunksize < 1:
        raise ValueError("chunksize must be >= 1")


def policy_label(chunksize: "int | str") -> str:
    """Human/meta label for the effective policy: ``fixed-N`` or the name."""
    return chunksize if isinstance(chunksize, str) else f"fixed-{chunksize}"


def _fixed(tasks: "list[int]", size: int) -> "list[tuple[int, ...]]":
    return [tuple(tasks[i : i + size]) for i in range(0, len(tasks), size)]


def _guided(tasks: "list[int]", workers: int) -> "list[tuple[int, ...]]":
    chunks: "list[tuple[int, ...]]" = []
    i, n = 0, len(tasks)
    while i < n:
        size = max(1, (n - i) // (_GUIDED_K * workers))
        chunks.append(tuple(tasks[i : i + size]))
        i += size
    return chunks


def _weighted(
    tasks: "list[int]",
    workers: int,
    weights: "dict[int, float]",
) -> "list[tuple[int, ...]]":
    # Guided in *weight* space: each chunk packs tasks (in order) until it
    # holds ~remaining_weight / (k * workers), never fewer than one task.
    w = [max(float(weights.get(tid, 1.0)), 0.0) for tid in tasks]
    total = sum(w)
    if total <= 0.0:
        return _guided(tasks, workers)
    chunks: "list[tuple[int, ...]]" = []
    i, n = 0, len(tasks)
    remaining = total
    while i < n:
        target = remaining / (_GUIDED_K * workers)
        j, acc = i, 0.0
        while j < n and (j == i or acc + w[j] <= target):
            acc += w[j]
            j += 1
        chunks.append(tuple(tasks[i:j]))
        remaining -= acc
        i = j
    return chunks


def resolve_chunks(
    tasks: "list[int]",
    chunksize: "int | str",
    workers: int,
    task_weights: "dict[int, float] | None" = None,
) -> "list[tuple[int, ...]]":
    """Resolve a chunksize (int or policy name) into the chunk list.

    Deterministic: tasks keep their order, every task appears exactly
    once, and the same inputs always produce the same grouping.
    ``"weighted"`` without ``task_weights`` degrades to ``"guided"``.
    """
    validate_chunksize(chunksize)
    if not tasks:
        return []
    if isinstance(chunksize, int):
        return _fixed(tasks, chunksize)
    if chunksize == "weighted" and task_weights:
        return _weighted(tasks, workers, task_weights)
    return _guided(tasks, workers)
