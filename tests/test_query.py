"""Tests for roadmap queries (Dijkstra, A*, start/goal attachment)."""

import numpy as np
import pytest

from repro.planners import PRM, Roadmap, RoadmapQuery, astar, dijkstra


def _line_graph():
    rm = Roadmap(2)
    for i in range(5):
        rm.add_vertex(np.array([float(i), 0.0]), i)
    for i in range(4):
        rm.add_edge(i, i + 1)
    return rm


class TestShortestPaths:
    def test_dijkstra_line(self):
        rm = _line_graph()
        path, dist = dijkstra(rm, 0, 4)
        assert path == [0, 1, 2, 3, 4]
        assert dist == pytest.approx(4.0)

    def test_dijkstra_disconnected_returns_none(self):
        rm = _line_graph()
        rm.add_vertex(np.array([10.0, 10.0]), 99)
        assert dijkstra(rm, 0, 99) is None

    def test_dijkstra_missing_vertex_raises(self):
        rm = _line_graph()
        with pytest.raises(KeyError):
            dijkstra(rm, 0, 1234)

    def test_dijkstra_prefers_shortcut(self):
        rm = _line_graph()
        rm.add_edge(0, 4, weight=1.5)
        path, dist = dijkstra(rm, 0, 4)
        assert path == [0, 4]
        assert dist == pytest.approx(1.5)

    def test_astar_matches_dijkstra(self, rng):
        rm = Roadmap(2)
        n = 40
        pts = rng.uniform(-5, 5, size=(n, 2))
        for i, p in enumerate(pts):
            rm.add_vertex(p, i)
        for _ in range(120):
            u, v = rng.integers(0, n, 2)
            if u != v and not rm.has_edge(int(u), int(v)):
                rm.add_edge(int(u), int(v))
        for s, t in [(0, n - 1), (3, 17), (5, 5)]:
            d_res = dijkstra(rm, s, t)
            a_res = astar(rm, s, t)
            if d_res is None:
                assert a_res is None
            else:
                assert a_res[1] == pytest.approx(d_res[1])

    def test_source_equals_target(self):
        rm = _line_graph()
        path, dist = dijkstra(rm, 2, 2)
        assert path == [2] and dist == 0.0


class TestRoadmapQuery:
    def test_solves_across_free_space(self, box_cspace, rng):
        res = PRM(box_cspace, k=6, connect_same_component=False).build(250, rng)
        q = RoadmapQuery(box_cspace)
        out = q.solve(res.roadmap, np.array([-4.5, -4.5]), np.array([4.5, -4.5]))
        assert out is not None
        assert out.length >= 9.0  # at least the straight-line distance
        # Path endpoints are exactly the query configurations.
        assert np.allclose(out.path_configs[0], [-4.5, -4.5])
        assert np.allclose(out.path_configs[-1], [4.5, -4.5])

    def test_roadmap_unchanged_after_query(self, box_cspace, rng):
        res = PRM(box_cspace, k=6, connect_same_component=False).build(200, rng)
        v_before, e_before = res.roadmap.num_vertices, res.roadmap.num_edges
        RoadmapQuery(box_cspace).solve(
            res.roadmap, np.array([-4.5, -4.5]), np.array([4.5, -4.5])
        )
        assert res.roadmap.num_vertices == v_before
        assert res.roadmap.num_edges == e_before

    def test_invalid_start_returns_none(self, box_cspace, rng):
        res = PRM(box_cspace, k=4).build(50, rng)
        q = RoadmapQuery(box_cspace)
        assert q.solve(res.roadmap, np.array([0.0, 0.0]), np.array([4.5, -4.5])) is None

    def test_path_edges_are_valid(self, box_cspace, rng):
        res = PRM(box_cspace, k=6, connect_same_component=False).build(250, rng)
        out = RoadmapQuery(box_cspace).solve(
            res.roadmap, np.array([-4.5, -4.5]), np.array([4.5, 4.5])
        )
        assert out is not None
        for a, b in zip(out.path_configs[:-1], out.path_configs[1:]):
            assert box_cspace.segment_valid(a, b)
