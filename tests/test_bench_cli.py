"""Tests for the python -m repro.bench CLI."""

from repro.bench.__main__ import _FIGURES, main


def test_no_args_lists_figures(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    for name in _FIGURES:
        assert name in out


def test_unknown_figure_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown" in capsys.readouterr().err


def test_figure_registry_complete():
    # One driver per evaluation panel group: 4a,4b,5a,5b,5c,6,7a,7b,8,9,10.
    assert len(_FIGURES) == 11
