"""Tests for the frozen CSR roadmap snapshot (repro.planners.frozen)."""

import numpy as np
import pytest

from repro.planners import PRM, FrozenRoadmap, Roadmap, astar, dijkstra


def _line_graph():
    rm = Roadmap(2)
    for i in range(5):
        rm.add_vertex(np.array([float(i), 0.0]), i)
    for i in range(4):
        rm.add_edge(i, i + 1)
    return rm


def _random_roadmap(rng, n=60, extra_cluster=True):
    """A random graph roadmap with (optionally) a second disconnected
    cluster, exercising multi-component behaviour."""
    rm = Roadmap(2)
    pts = rng.uniform(-5, 5, size=(n, 2))
    for i, p in enumerate(pts):
        rm.add_vertex(p, i)
    for _ in range(3 * n):
        u, v = rng.integers(0, n, 2)
        if u != v and not rm.has_edge(int(u), int(v)):
            rm.add_edge(int(u), int(v))
    if extra_cluster:
        base = n
        for j in range(5):
            rm.add_vertex(rng.uniform(20, 25, 2), base + j)
        for j in range(4):
            rm.add_edge(base + j, base + j + 1)
    return rm


class TestStructure:
    def test_counts_and_ids(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        assert fr.num_vertices == 5
        assert fr.num_edges == 4
        assert fr.max_id == 4
        assert fr.ids.tolist() == [0, 1, 2, 3, 4]

    def test_csr_mirrors_adjacency(self):
        rm = _line_graph()
        fr = FrozenRoadmap.from_roadmap(rm)
        for vid in range(5):
            row = fr.row_of(vid)
            lo, hi = fr.indptr[row], fr.indptr[row + 1]
            got = {int(fr.ids[r]): float(w) for r, w in
                   zip(fr.indices[lo:hi], fr.weights[lo:hi])}
            assert got == dict(rm.neighbors(vid))

    def test_config_access(self, rng):
        rm = _random_roadmap(rng, n=20, extra_cluster=False)
        fr = FrozenRoadmap.from_roadmap(rm)
        for vid in (0, 7, 19):
            assert np.array_equal(fr.config(vid), rm.config(vid))
        gathered = fr.configs_of([3, 3, 11, 0])
        assert np.array_equal(
            gathered, np.vstack([rm.config(3), rm.config(3), rm.config(11), rm.config(0)])
        )
        assert fr.configs_of([]).shape == (0, 2)

    def test_empty_roadmap(self):
        fr = FrozenRoadmap.from_roadmap(Roadmap(3))
        assert fr.num_vertices == 0
        assert fr.num_edges == 0
        assert fr.max_id == -1
        assert fr.num_components == 0

    def test_missing_vertex_raises(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        with pytest.raises(KeyError):
            fr.dijkstra(0, 1234)
        with pytest.raises(KeyError):
            fr.astar(1234, 0)
        with pytest.raises(KeyError):
            fr.row_of(1234)


class TestComponents:
    def test_labels_partition_clusters(self, rng):
        rm = _random_roadmap(rng)
        fr = FrozenRoadmap.from_roadmap(rm)
        assert fr.num_components >= 2
        # The far-away chain shares one label and it differs from cluster 0.
        chain = {fr.comp[fr.row_of(v)] for v in range(60, 65)}
        assert len(chain) == 1
        assert not fr.same_component(0, 60) or fr.comp[fr.row_of(0)] in chain

    def test_exact_after_edge_removal(self):
        """Labels are BFS-exact, not stale union-find: splitting a chain by
        removing its middle edge must yield two components."""
        rm = _line_graph()
        rm.remove_edge(2, 3)
        fr = FrozenRoadmap.from_roadmap(rm)
        assert not fr.same_component(0, 4)
        assert fr.same_component(0, 2)
        assert fr.dijkstra(0, 4) is None

    def test_same_component_matches_search(self, rng):
        rm = _random_roadmap(rng)
        fr = FrozenRoadmap.from_roadmap(rm)
        ids = [int(v) for v in fr.ids]
        for _ in range(50):
            s, g = (ids[int(i)] for i in rng.integers(0, len(ids), 2))
            assert fr.same_component(s, g) == (fr.dijkstra(s, g) is not None)


class TestSearchParity:
    """The acceptance property: CSR searches are path-exact vs the dict
    implementations — same vertices, same length, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graph_parity(self, seed):
        rng = np.random.default_rng(seed)
        rm = _random_roadmap(rng)
        fr = FrozenRoadmap.from_roadmap(rm)
        ids = [int(v) for v in fr.ids]
        for _ in range(80):
            s, g = (ids[int(i)] for i in rng.integers(0, len(ids), 2))
            ref_d = dijkstra(rm, s, g)
            got_d = fr.dijkstra(s, g)
            ref_a = astar(rm, s, g)
            got_a = fr.astar(s, g)
            if ref_d is None:
                assert got_d is None and got_a is None and ref_a is None
            else:
                assert got_d[0] == ref_d[0] and got_d[1] == ref_d[1]
                assert got_a[0] == ref_a[0] and got_a[1] == ref_a[1]

    def test_prm_roadmap_parity(self, box_cspace, rng):
        res = PRM(box_cspace, k=6, connect_same_component=False).build(150, rng)
        rm = res.roadmap
        fr = FrozenRoadmap.from_roadmap(rm)
        ids = [int(v) for v in fr.ids]
        for _ in range(60):
            s, g = (ids[int(i)] for i in rng.integers(0, len(ids), 2))
            assert fr.dijkstra(s, g) == dijkstra(rm, s, g)
            assert fr.astar(s, g) == astar(rm, s, g)

    def test_source_equals_target(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        assert fr.dijkstra(2, 2) == ([2], 0.0)
        assert fr.astar(2, 2) == ([2], 0.0)

    def test_custom_heuristic(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        path, dist = fr.astar(0, 4, heuristic=lambda vid: 0.0)
        assert path == [0, 1, 2, 3, 4]
        assert dist == pytest.approx(4.0)

    def test_snapshot_is_decoupled_from_source(self):
        """Mutating the source roadmap after freezing must not leak into
        the snapshot (freeze copies, never aliases)."""
        rm = _line_graph()
        fr = FrozenRoadmap.from_roadmap(rm)
        rm.add_vertex(np.array([9.0, 9.0]), 99)
        rm.add_edge(0, 99)
        assert fr.num_vertices == 5
        assert not fr.has_vertex(99)


class TestAstarVirtual:
    def test_no_links_is_unsolvable(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        assert fr.astar_virtual(
            np.zeros(2), np.ones(2), [], [(0, 1.0)], 100, 101
        ) is None
        assert fr.astar_virtual(
            np.zeros(2), np.ones(2), [(0, 1.0)], [], 100, 101
        ) is None

    def test_direct_start_goal_edge(self):
        """A goal link whose row == num_vertices is the direct start-goal
        edge and must work even with no common roadmap component."""
        rm = _line_graph()
        rm.remove_edge(2, 3)
        fr = FrozenRoadmap.from_roadmap(rm)
        n = fr.num_vertices
        start, goal = np.array([0.0, 1.0]), np.array([0.0, 2.0])
        got = fr.astar_virtual(
            start, goal,
            [(fr.row_of(0), 1.0)],
            [(n, 1.0), (fr.row_of(4), 1.0)],
            100, 101,
        )
        assert got is not None
        path, dist = got
        assert path == [100, 101]
        assert dist == pytest.approx(1.0)

    def test_cross_component_without_direct_edge(self):
        rm = _line_graph()
        rm.remove_edge(2, 3)
        fr = FrozenRoadmap.from_roadmap(rm)
        got = fr.astar_virtual(
            np.zeros(2), np.ones(2),
            [(fr.row_of(0), 1.0)],
            [(fr.row_of(4), 1.0)],
            100, 101,
        )
        assert got is None

    def test_path_through_roadmap(self):
        fr = FrozenRoadmap.from_roadmap(_line_graph())
        start, goal = np.array([-1.0, 0.0]), np.array([5.0, 0.0])
        got = fr.astar_virtual(
            start, goal,
            [(fr.row_of(0), 1.0)],
            [(fr.row_of(4), 1.0)],
            100, 101,
        )
        assert got is not None
        path, dist = got
        assert path == [100, 0, 1, 2, 3, 4, 101]
        assert dist == pytest.approx(6.0)
