"""Structure-of-arrays obstacle snapshot consumed by compute kernels.

``EnvKernelData`` flattens a workspace — bounds plus per-type obstacle
arrays — into contiguous NumPy buffers so kernels loop over flat arrays
instead of Python primitive objects.  It is built once per environment
mutation (see :meth:`repro.geometry.environment.Environment.kernel_data`)
and shared by every backend: the reference backend reads the float64
arrays, the fast32 backend the float32 mirrors, and a numba backend the
float64 arrays through nopython loops.

Two obstacle types are carried: axis-aligned boxes (lo/hi plus the
center/half-extent form blocked kernels prefer) and spheres
(center/radius).  ``Environment`` today stores boxes only, so snapshots
built from it have an empty sphere section; the sphere arrays exist so
kernels — and their equivalence tests — cover both primitive types and so
future environments can feed spheres through without a kernel change.
"""

from __future__ import annotations

import numpy as np

__all__ = ["EnvKernelData"]


def _as2d(arr, dim: int, name: str) -> np.ndarray:
    out = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    if out.size == 0:
        return np.empty((0, dim))
    out = np.atleast_2d(out)
    if out.shape[1] != dim:
        raise ValueError(f"{name} has dim {out.shape[1]}, expected {dim}")
    return out


class EnvKernelData:
    """Flat, read-only obstacle arrays plus float32 mirrors.

    Parameters
    ----------
    bounds_lo, bounds_hi:
        Workspace bounding box, shape ``(d,)``.
    box_lo, box_hi:
        Axis-aligned box obstacles, shape ``(nb, d)`` (may be empty).
    sph_center, sph_radius:
        Sphere obstacles, shapes ``(ns, d)`` and ``(ns,)`` (may be empty).

    Derived center/half-extent arrays and float32 mirrors (``*32``
    attributes) are precomputed so per-query kernel calls do no layout
    work.  Instances are treated as immutable; mutate the source
    ``Environment`` and take a fresh snapshot instead.
    """

    def __init__(
        self,
        bounds_lo: np.ndarray,
        bounds_hi: np.ndarray,
        box_lo: "np.ndarray | None" = None,
        box_hi: "np.ndarray | None" = None,
        sph_center: "np.ndarray | None" = None,
        sph_radius: "np.ndarray | None" = None,
    ):
        self.bounds_lo = np.ascontiguousarray(np.asarray(bounds_lo, dtype=np.float64))
        self.bounds_hi = np.ascontiguousarray(np.asarray(bounds_hi, dtype=np.float64))
        if self.bounds_lo.shape != self.bounds_hi.shape or self.bounds_lo.ndim != 1:
            raise ValueError("bounds_lo/bounds_hi must be matching 1-D arrays")
        d = self.bounds_lo.shape[0]
        self.dim = d

        self.box_lo = _as2d(box_lo if box_lo is not None else (), d, "box_lo")
        self.box_hi = _as2d(box_hi if box_hi is not None else (), d, "box_hi")
        if self.box_lo.shape != self.box_hi.shape:
            raise ValueError("box_lo/box_hi shape mismatch")
        self.box_center = 0.5 * (self.box_lo + self.box_hi)
        self.box_half = 0.5 * (self.box_hi - self.box_lo)

        self.sph_center = _as2d(sph_center if sph_center is not None else (), d, "sph_center")
        self.sph_radius = np.ascontiguousarray(
            np.asarray(sph_radius if sph_radius is not None else (), dtype=np.float64).reshape(-1)
        )
        if self.sph_radius.shape[0] != self.sph_center.shape[0]:
            raise ValueError("sph_center/sph_radius length mismatch")

        # float32 mirrors for the fast32 backend (cast once, not per query).
        self.bounds_lo32 = self.bounds_lo.astype(np.float32)
        self.bounds_hi32 = self.bounds_hi.astype(np.float32)
        self.box_lo32 = self.box_lo.astype(np.float32)
        self.box_hi32 = self.box_hi.astype(np.float32)
        self.box_center32 = self.box_center.astype(np.float32)
        self.box_half32 = self.box_half.astype(np.float32)
        self.sph_center32 = self.sph_center.astype(np.float32)
        self.sph_radius32 = self.sph_radius.astype(np.float32)

    # -- constructors ------------------------------------------------------
    @classmethod
    def from_environment(cls, env) -> "EnvKernelData":
        """Snapshot an :class:`~repro.geometry.environment.Environment`.

        Uses the environment's stacked obstacle arrays directly (no Python
        obstacle walk).  Prefer ``env.kernel_data()`` which caches the
        snapshot and invalidates it on mutation.
        """
        return cls(
            bounds_lo=env.bounds.lo,
            bounds_hi=env.bounds.hi,
            box_lo=env._obs_lo,
            box_hi=env._obs_hi,
        )

    @classmethod
    def from_primitives(cls, bounds, obstacles) -> "EnvKernelData":
        """Build from an AABB bounds plus a mixed list of AABB/Sphere
        obstacles (duck-typed on ``lo``/``hi`` vs ``center``/``radius``)."""
        box_lo, box_hi, sc, sr = [], [], [], []
        for obs in obstacles:
            if hasattr(obs, "lo"):
                box_lo.append(np.asarray(obs.lo, dtype=float))
                box_hi.append(np.asarray(obs.hi, dtype=float))
            elif hasattr(obs, "center"):
                sc.append(np.asarray(obs.center, dtype=float))
                sr.append(float(obs.radius))
            else:
                raise TypeError(f"unsupported obstacle type: {type(obs).__name__}")
        return cls(
            bounds_lo=bounds.lo,
            bounds_hi=bounds.hi,
            box_lo=np.stack(box_lo) if box_lo else None,
            box_hi=np.stack(box_hi) if box_hi else None,
            sph_center=np.stack(sc) if sc else None,
            sph_radius=np.asarray(sr) if sr else None,
        )

    # -- properties --------------------------------------------------------
    @property
    def num_boxes(self) -> int:
        return self.box_lo.shape[0]

    @property
    def num_spheres(self) -> int:
        return self.sph_center.shape[0]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the float64 arrays and float32 mirrors."""
        return sum(
            getattr(self, a).nbytes
            for a in (
                "bounds_lo", "bounds_hi", "box_lo", "box_hi", "box_center",
                "box_half", "sph_center", "sph_radius", "bounds_lo32",
                "bounds_hi32", "box_lo32", "box_hi32", "box_center32",
                "box_half32", "sph_center32", "sph_radius32",
            )
        )

    # -- perturbation (equivalence-gate support) ---------------------------
    def inflated(self, margin: float) -> "EnvKernelData":
        """A copy with every obstacle grown by ``margin`` and the workspace
        bounds shrunk by it (negative ``margin`` reverses both).

        Used by the statistical-equivalence gates: a query whose reference
        verdict is identical on the ``+eps`` and ``-eps`` worlds is at
        least ``eps`` away from every decision boundary, so a fast backend
        must agree on it.  Degenerate boxes (half-extent driven negative)
        collapse to their center point.
        """
        m = float(margin)
        half = np.maximum(self.box_half + m, 0.0)
        lo = self.box_center - half
        hi = self.box_center + half
        blo = self.bounds_lo + m
        bhi = self.bounds_hi - m
        mid = 0.5 * (blo + bhi)
        blo = np.minimum(blo, mid)
        bhi = np.maximum(bhi, mid)
        return EnvKernelData(
            bounds_lo=blo,
            bounds_hi=bhi,
            box_lo=lo,
            box_hi=hi,
            sph_center=self.sph_center,
            sph_radius=np.maximum(self.sph_radius + m, 0.0),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnvKernelData(dim={self.dim}, boxes={self.num_boxes}, "
            f"spheres={self.num_spheres})"
        )
