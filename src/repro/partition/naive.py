"""Naive 1-D partitioning of a grid region mesh.

The paper's baseline distribution: "a naive mapping of regions to
processors would perform a 1D partitioning of the region mesh and assign
a balanced number of region columns to processors" (Sec. IV-B).  The
assignment ignores weights entirely — which is exactly why it exhibits a
high coefficient of variation on non-uniform environments.
"""

from __future__ import annotations

import numpy as np

from ..subdivision.region import RegionGraph
from ..subdivision.uniform import UniformSubdivision

__all__ = ["partition_1d_columns", "partition_block"]


def partition_1d_columns(subdivision: UniformSubdivision, num_pes: int, axis: int = 0) -> "dict[int, int]":
    """Assign contiguous slabs of grid columns (along ``axis``) to PEs.

    Columns are split as evenly as possible by *count*; every region in a
    column goes to the same PE, preserving spatial contiguity.
    """
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    shape = subdivision.shape
    if not 0 <= axis < len(shape):
        raise ValueError(f"axis {axis} out of range for shape {shape}")
    n_cols = shape[axis]
    # Columns per PE, distributing the remainder to the first PEs.
    base, extra = divmod(n_cols, num_pes)
    col_to_pe = np.empty(n_cols, dtype=int)
    col = 0
    for pe in range(num_pes):
        take = base + (1 if pe < extra else 0)
        col_to_pe[col : col + take] = pe
        col += take
    assignment: "dict[int, int]" = {}
    for region in subdivision.graph.regions():
        idx = region.grid_index  # type: ignore[attr-defined]
        assignment[region.id] = int(col_to_pe[idx[axis]])
    return assignment


def partition_block(graph: RegionGraph, num_pes: int) -> "dict[int, int]":
    """Assign contiguous blocks of region ids to PEs (round-robin-free
    blocked distribution) — the generic naive baseline when no grid
    structure is available (e.g. radial subdivisions)."""
    if num_pes < 1:
        raise ValueError("num_pes must be >= 1")
    ids = graph.region_ids()
    n = len(ids)
    base, extra = divmod(n, num_pes)
    assignment: "dict[int, int]" = {}
    pos = 0
    for pe in range(num_pes):
        take = base + (1 if pe < extra else 0)
        for rid in ids[pos : pos + take]:
            assignment[rid] = pe
        pos += take
    return assignment
