"""Seeded procedural generators for large-obstacle benchmark scenarios.

The paper's environments top out at ~125 obstacles — enough to show load
imbalance, not enough to exercise hierarchical collision acceleration.
These generators produce 10³–10⁵-obstacle worlds with the *structured*
clutter real workloads have (aisles, streets, protein-like sphere
packings), giving the ``bvh`` kernel backend something to climb and the
load-balancing story richer imbalance profiles:

* :func:`shelf_warehouse` — rows of shelving racks with stacked bays and
  cross aisles; collision density is strongly anisotropic (along-aisle
  segments are nearly free, cross-rack segments hit constantly).
* :func:`city_grid` — a Manhattan grid of buildings with jittered
  footprints and heights over street canyons.
* :func:`cluttered_spheres` — a protein-like random sphere packing,
  returned as an :class:`~repro.kernels.data.EnvKernelData` snapshot
  (``Environment`` stores box obstacles only; the sphere kernels are
  exercised at the snapshot level).

Every generator is **deterministic for a fixed seed** and produces
**exactly** ``n_obstacles`` primitives, so benchmark rows are
reproducible across machines — the golden-seed tests pin obstacle counts
and a sha256 of the packed arrays (:func:`fingerprint`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..kernels import EnvKernelData
from .environment import Environment
from .primitives import AABB

__all__ = [
    "shelf_warehouse",
    "city_grid",
    "cluttered_spheres",
    "scenario_by_name",
    "available_scenarios",
    "fingerprint",
]

#: Workspace half-extent shared by every generator (matches the paper
#: environments in ``repro.geometry.environments``).
HALF_EXTENT = 10.0


def _boxes_to_env(lo: np.ndarray, hi: np.ndarray, name: str, half: float) -> Environment:
    bounds = AABB(-half * np.ones(lo.shape[1]), half * np.ones(lo.shape[1]))
    return Environment(bounds, [AABB(a, b) for a, b in zip(lo, hi)], name=name)


def shelf_warehouse(n_obstacles: int = 1000, seed: int = 0, half: float = HALF_EXTENT) -> Environment:
    """A 3-D warehouse: rows of racks, each rack a column of stacked bays.

    Racks are laid out on a regular grid of aisles in the x/y plane;
    every bay is one box obstacle with a small seeded jitter in extent
    (cargo of varying size).  Exactly ``n_obstacles`` bays are produced,
    filled rack by rack, level by level.
    """
    if n_obstacles < 1:
        raise ValueError("n_obstacles must be >= 1")
    rng = np.random.default_rng(seed)
    levels = 4
    # Racks needed to hold n bays; lay them out on a near-square grid.
    racks = -(-n_obstacles // levels)
    cols = max(1, int(np.ceil(np.sqrt(racks))))
    rows = -(-racks // cols)
    # Rack footprint and aisle pitch derived from the grid so the layout
    # always fits the workspace regardless of n.
    pitch_x = 2.0 * half / cols
    pitch_y = 2.0 * half / rows
    foot_x = 0.45 * pitch_x
    foot_y = 0.60 * pitch_y
    level_h = 2.0 * half / (levels + 1)
    lo = np.empty((n_obstacles, 3))
    hi = np.empty((n_obstacles, 3))
    i = 0
    for r in range(rows):
        for c in range(cols):
            if i >= n_obstacles:
                break
            cx = -half + (c + 0.5) * pitch_x
            cy = -half + (r + 0.5) * pitch_y
            for z in range(levels):
                if i >= n_obstacles:
                    break
                # Cargo jitter: each bay shrinks by up to 30% per axis.
                shrink = rng.uniform(0.7, 1.0, size=3)
                ex = 0.5 * foot_x * shrink[0]
                ey = 0.5 * foot_y * shrink[1]
                z_lo = -half + (z + 0.5) * level_h
                ez = 0.5 * level_h * 0.8 * shrink[2]
                z_c = z_lo + 0.5 * level_h * 0.8
                lo[i] = (cx - ex, cy - ey, z_c - ez)
                hi[i] = (cx + ex, cy + ey, z_c + ez)
                i += 1
    return _boxes_to_env(lo, hi, f"warehouse-{n_obstacles}", half)


def city_grid(n_obstacles: int = 1000, seed: int = 0, half: float = HALF_EXTENT) -> Environment:
    """A 3-D city: blocks of buildings over a street grid.

    The x/y plane is divided into city blocks separated by streets; each
    block holds a 2x2 cluster of buildings with seeded jitter in
    footprint and height.  Buildings rise from the workspace floor, so
    low-altitude segments thread street canyons while high ones fly
    free — strong vertical heterogeneity.  Exactly ``n_obstacles``
    buildings are produced.
    """
    if n_obstacles < 1:
        raise ValueError("n_obstacles must be >= 1")
    rng = np.random.default_rng(seed)
    per_block = 4
    blocks = -(-n_obstacles // per_block)
    bpa = max(1, int(np.ceil(np.sqrt(blocks))))
    pitch = 2.0 * half / bpa
    street = 0.25 * pitch  # street width between blocks
    lot = 0.5 * (pitch - street)  # one building lot (2x2 per block)
    lo = np.empty((n_obstacles, 3))
    hi = np.empty((n_obstacles, 3))
    i = 0
    for by in range(bpa):
        for bx in range(bpa):
            if i >= n_obstacles:
                break
            ox = -half + bx * pitch + 0.5 * street
            oy = -half + by * pitch + 0.5 * street
            for ly in range(2):
                for lx in range(2):
                    if i >= n_obstacles:
                        break
                    # Jittered footprint inside the lot, jittered height.
                    fx = rng.uniform(0.5, 0.9) * lot
                    fy = rng.uniform(0.5, 0.9) * lot
                    x0 = ox + lx * lot + rng.uniform(0.0, lot - fx)
                    y0 = oy + ly * lot + rng.uniform(0.0, lot - fy)
                    height = rng.uniform(0.2, 0.9) * 2.0 * half
                    lo[i] = (x0, y0, -half)
                    hi[i] = (x0 + fx, y0 + fy, -half + height)
                    i += 1
    return _boxes_to_env(lo, hi, f"city-{n_obstacles}", half)


def cluttered_spheres(n_obstacles: int = 1000, seed: int = 0, half: float = HALF_EXTENT) -> EnvKernelData:
    """A protein-like packing of ``n_obstacles`` spheres, as a kernel
    snapshot.

    Radii scale as ``n**(-1/3)`` so total blocked volume stays roughly
    constant as the count grows; centers cluster around a random-walk
    backbone (each sphere placed near the previous one), producing the
    chain-like density of molecular scenes rather than uniform dust.
    """
    if n_obstacles < 1:
        raise ValueError("n_obstacles must be >= 1")
    rng = np.random.default_rng(seed)
    scale = float((1000.0 / n_obstacles) ** (1.0 / 3.0))
    radii = rng.uniform(0.25, 0.6, size=n_obstacles) * scale
    centers = np.empty((n_obstacles, 3))
    pos = rng.uniform(-0.5 * half, 0.5 * half, size=3)
    for i in range(n_obstacles):
        step = rng.normal(0.0, 0.8 * scale, size=3)
        pos = np.clip(pos + step, -0.95 * half, 0.95 * half)
        # Occasional jump: start a new chain elsewhere.
        if rng.uniform() < 0.01:
            pos = rng.uniform(-0.9 * half, 0.9 * half, size=3)
        centers[i] = pos
    return EnvKernelData(
        bounds_lo=-half * np.ones(3),
        bounds_hi=half * np.ones(3),
        sph_center=centers,
        sph_radius=radii,
    )


_SCENARIOS = {
    "warehouse": shelf_warehouse,
    "city": city_grid,
    "spheres": cluttered_spheres,
}


def available_scenarios() -> "list[str]":
    """Registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def scenario_by_name(name: str, n_obstacles: int = 1000, seed: int = 0):
    """Build a scenario by name (``warehouse`` / ``city`` / ``spheres``).

    Returns an :class:`Environment` for the box scenarios and an
    :class:`~repro.kernels.data.EnvKernelData` for ``spheres``.
    """
    try:
        builder = _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {available_scenarios()}"
        ) from None
    return builder(n_obstacles=n_obstacles, seed=seed)


def fingerprint(obj) -> str:
    """sha256 hex digest of a scenario's packed obstacle arrays.

    Accepts an :class:`Environment` (hashed via its cached
    ``EnvKernelData`` snapshot) or an ``EnvKernelData`` directly.  The
    digest covers bounds, box and sphere arrays byte-for-byte, so the
    golden-seed tests pin exact cross-machine reproducibility, not just
    obstacle counts.
    """
    data = obj.kernel_data() if isinstance(obj, Environment) else obj
    h = hashlib.sha256()
    for arr in (
        data.bounds_lo, data.bounds_hi,
        data.box_lo, data.box_hi,
        data.sph_center, data.sph_radius,
    ):
        h.update(np.ascontiguousarray(arr, dtype=np.float64).tobytes())
    return h.hexdigest()
