"""Tests for region weight estimators."""

import numpy as np
import pytest

from repro.core import (
    prm_free_volume_weights,
    prm_sample_count_weights,
    rrt_k_rays_weights,
    uniform_weights,
)
from repro.geometry import AABB, Environment, model_2d
from repro.subdivision import RadialSubdivision, UniformSubdivision


class TestUniformWeights:
    def test_all_ones(self):
        sub = UniformSubdivision(AABB([0, 0], [1, 1]), 9)
        w = uniform_weights(sub.graph)
        assert all(v == 1.0 for v in w.values())


class TestSampleCountWeights:
    def test_counts_match_locate(self, rng):
        sub = UniformSubdivision(AABB([-1, -1], [1, 1]), 16)
        pts = rng.uniform(-1, 1, size=(200, 2))
        w = prm_sample_count_weights(sub, pts)
        assert sum(w.values()) == 200
        for rid, count in w.items():
            expected = int(np.sum(sub.locate_batch(pts) == rid))
            assert count == expected

    def test_empty_samples(self):
        sub = UniformSubdivision(AABB([0, 0], [1, 1]), 4)
        w = prm_sample_count_weights(sub, np.empty((0, 2)))
        assert all(v == 0.0 for v in w.values())


class TestFreeVolumeWeights:
    def test_model_environment_totals(self):
        env = model_2d(0.25)
        sub = UniformSubdivision(env.bounds, 64, overlap=0.0)
        w = prm_free_volume_weights(sub, env)
        assert sum(w.values()) == pytest.approx(env.free_volume(), rel=1e-6)

    def test_blocked_regions_zero(self):
        env = model_2d(0.25)
        sub = UniformSubdivision(env.bounds, 64, overlap=0.0)
        w = prm_free_volume_weights(sub, env)
        center = sub.locate(np.zeros(2))
        assert w[center] == pytest.approx(0.0, abs=1e-9)


class TestKRaysWeights:
    def test_free_env_weights_near_radius(self):
        env = Environment(AABB([-5, -5, -5], [5, 5, 5]), [])
        radial = RadialSubdivision(np.zeros(3), 4.0, 32, rng=np.random.default_rng(0))
        w, casts = rrt_k_rays_weights(radial, env, k_rays=4, rng=np.random.default_rng(1))
        assert casts == 32 * 4
        assert all(3.0 < v <= 4.0 + 1e-9 for v in w.values())

    def test_obstacle_shortens_rays(self):
        env = Environment(
            AABB([-5, -5, -5], [5, 5, 5]), [AABB([1.0, -5, -5], [2.0, 5, 5])]
        )
        radial = RadialSubdivision(np.zeros(3), 4.0, 64, rng=np.random.default_rng(0))
        w, _ = rrt_k_rays_weights(radial, env, k_rays=8, rng=np.random.default_rng(1))
        toward_wall = [w[r] for r in radial.graph.region_ids()
                       if radial.region_of(r).direction[0] > 0.8]
        away = [w[r] for r in radial.graph.region_ids()
                if radial.region_of(r).direction[0] < -0.8]
        assert np.mean(toward_wall) < np.mean(away)

    def test_invalid_k_rays(self):
        env = Environment(AABB([-1, -1], [1, 1]), [])
        radial = RadialSubdivision(np.zeros(2), 0.5, 4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            rrt_k_rays_weights(radial, env, k_rays=0)
