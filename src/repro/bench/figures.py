"""Drivers that regenerate every figure of the paper's evaluation.

Each ``figN_*`` function reproduces the corresponding figure's series,
prints them as a table, and returns the raw data so benchmarks and tests
can assert on the *shape* (who wins, how trends move) without caring about
absolute numbers.  The experiment scales are reduced from the paper's
250,000-region, hours-long runs, but the regions-per-PE regime and the
workload heterogeneity are preserved (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import coefficient_of_variation, percent_improvement, phases_dict
from ..core.model import ModelEnvironmentAnalysis
from ..core.parallel_prm import simulate_prm
from .harness import (
    PRM_STRATEGIES,
    RRT_STRATEGIES,
    format_table,
    prm_scaling_table,
    prm_workload,
    rrt_scaling_table,
    rrt_workload,
)

__all__ = [
    "fig4a_model_cov",
    "fig4b_model_improvement",
    "fig5a_prm_medcube_time",
    "fig5b_prm_cov",
    "fig5c_load_profile",
    "fig6_prm_scale",
    "fig7a_phase_breakdown",
    "fig7b_remote_accesses",
    "fig8_prm_environments",
    "fig9_steal_distribution",
    "fig10_rrt_environments",
]

# Reduced-scale defaults shared by the PRM figures (med-cube experiment).
MEDCUBE_REGIONS = 6000
MEDCUBE_SPR = 8
PE_COUNTS_HOPPER = (96, 192, 384, 768)
PE_COUNTS_SCALE = (384, 768, 1536, 3072)
PE_COUNTS_OPTERON = (32, 64, 128, 256)
PE_COUNTS_RRT = (8, 32, 64, 128, 256)


def fig4a_model_cov(pe_counts=(2, 4, 8, 16, 32, 64, 128, 256), verbose: bool = True):
    """Fig. 4(a): coefficient of variation in the model environment.

    Series: model imbalance (V_free, naive), model best (V_free, greedy),
    experimental imbalance (#samples, naive), after repartitioning.
    """
    analysis = ModelEnvironmentAnalysis()
    points = analysis.sweep(list(pe_counts))
    rows = [
        [
            p.num_pes,
            f"{p.model_imbalance:.3f}",
            f"{p.model_best:.3f}",
            f"{p.experimental_imbalance:.3f}",
            f"{p.experimental_best:.3f}",
        ]
        for p in points
    ]
    if verbose:
        print("\nFig 4(a) — CoV of model environment (lower is better)")
        print(
            format_table(
                ["P", "model naive", "model best", "exp naive", "exp repart"], rows
            )
        )
    return points


def fig4b_model_improvement(pe_counts=(16, 32, 64, 128), verbose: bool = True):
    """Fig. 4(b): % improvement — theoretical (unit area), experimental
    (#samples), and runtime of the load-balanced phase."""
    analysis = ModelEnvironmentAnalysis()
    out = []
    for P in pe_counts:
        point = analysis.analyze(P)
        # Runtime improvement: simulate the connection phase under naive vs
        # repartitioned ownership using sample counts as per-region cost.
        naive = analysis.naive_assignment(P)
        best = analysis.best_assignment(analysis.sample_counts, P)
        loads_naive = analysis._loads(analysis.sample_counts, naive, P)
        loads_best = analysis._loads(analysis.sample_counts, best, P)
        runtime_impr = percent_improvement(float(loads_naive.max()), float(loads_best.max()))
        out.append(
            {
                "num_pes": P,
                "theoretical": point.model_improvement,
                "experimental": point.experimental_improvement,
                "runtime": runtime_impr,
            }
        )
    if verbose:
        print("\nFig 4(b) — potential improvement in model environment (%)")
        rows = [
            [o["num_pes"], f"{o['theoretical']:.1f}", f"{o['experimental']:.1f}", f"{o['runtime']:.1f}"]
            for o in out
        ]
        print(format_table(["P", "theoretical", "experimental", "runtime"], rows))
    return out


def _prm_time_figure(env_name, pe_counts, title, num_regions=MEDCUBE_REGIONS, strategies=PRM_STRATEGIES, verbose=True):
    wl = prm_workload(env_name, num_regions=num_regions, samples_per_region=MEDCUBE_SPR)
    rows = prm_scaling_table(wl, list(pe_counts), strategies)
    if verbose:
        print(f"\n{title}")
        print(
            format_table(
                ["P", "strategy", "exec time", "speedup vs no-LB"],
                [[r.num_pes, r.strategy, f"{r.total_time:.0f}", f"{r.speedup_vs_none:.2f}x"] for r in rows],
            )
        )
    return rows


def fig5a_prm_medcube_time(pe_counts=PE_COUNTS_HOPPER, verbose: bool = True):
    """Fig. 5(a): PRM execution time on med-cube (Hopper scale)."""
    return _prm_time_figure(
        "med-cube", pe_counts, "Fig 5(a) — PRM med-cube execution time", verbose=verbose
    )


def fig5b_prm_cov(pe_counts=PE_COUNTS_HOPPER, verbose: bool = True):
    """Fig. 5(b): CoV of roadmap-node load before/after repartitioning."""
    wl = prm_workload("med-cube", num_regions=MEDCUBE_REGIONS, samples_per_region=MEDCUBE_SPR)
    out = []
    for P in pe_counts:
        r = simulate_prm(wl, P, "repartition")
        out.append(
            {
                "num_pes": P,
                "cov_before": coefficient_of_variation(r.nodes_per_pe_before),
                "cov_after": coefficient_of_variation(r.nodes_per_pe),
            }
        )
    if verbose:
        print("\nFig 5(b) — CoV of PRM roadmap nodes per PE (med-cube)")
        rows = [[o["num_pes"], f"{o['cov_before']:.3f}", f"{o['cov_after']:.3f}"] for o in out]
        print(format_table(["P", "before repart", "after repart"], rows))
    return out


def fig5c_load_profile(num_pes: int = 192, verbose: bool = True):
    """Fig. 5(c): per-PE roadmap-node distribution at one machine size."""
    wl = prm_workload("med-cube", num_regions=MEDCUBE_REGIONS, samples_per_region=MEDCUBE_SPR)
    r = simulate_prm(wl, num_pes, "repartition")
    without = np.sort(r.nodes_per_pe_before)[::-1]
    with_lb = np.sort(r.nodes_per_pe)[::-1]
    ideal = np.full(num_pes, r.nodes_per_pe.sum() / num_pes)
    if verbose:
        print(f"\nFig 5(c) — load profile at {num_pes} PEs (sorted nodes/PE)")
        qs = [0, 10, 25, 50, 75, 90, 100]
        rows = []
        for q in qs:
            i = min(int(q / 100 * (num_pes - 1)), num_pes - 1)
            rows.append([f"p{q}", f"{without[i]:.0f}", f"{with_lb[i]:.0f}", f"{ideal[i]:.0f}"])
        print(format_table(["percentile", "without LB", "repartitioned", "ideal"], rows))
    return {"without_lb": without, "repartitioned": with_lb, "ideal": ideal}


def fig6_prm_scale(pe_counts=PE_COUNTS_SCALE, verbose: bool = True):
    """Fig. 6: PRM med-cube at scale (to 3,072 PEs), no-LB vs repartitioning."""
    return _prm_time_figure(
        "med-cube",
        pe_counts,
        "Fig 6 — PRM med-cube at scale",
        num_regions=16000,
        strategies=("none", "repartition"),
        verbose=verbose,
    )


def fig7a_phase_breakdown(num_pes: int = 192, verbose: bool = True):
    """Fig. 7(a): breakdown into region connection / node connection / other."""
    wl = prm_workload("med-cube", num_regions=MEDCUBE_REGIONS, samples_per_region=MEDCUBE_SPR)
    out = []
    for strat in PRM_STRATEGIES:
        r = simulate_prm(wl, num_pes, strat)
        # Canonical phase names via the PhaseBreakdown protocol: the same
        # code consumes PRM and RRT results (construct = the LB'd phase,
        # connect = inter-region connection).
        pd = phases_dict(r.phases)
        out.append(
            {
                "strategy": strat,
                "region_connection": pd["connect"],
                "node_connection": pd["construct"],
                "other": r.phases.other,
                "total": r.total_time,
            }
        )
    if verbose:
        print(f"\nFig 7(a) — PRM phase breakdown at {num_pes} PEs (med-cube)")
        rows = [
            [
                o["strategy"],
                f"{o['region_connection']:.0f}",
                f"{o['node_connection']:.0f}",
                f"{o['other']:.0f}",
                f"{o['total']:.0f}",
            ]
            for o in out
        ]
        print(format_table(["strategy", "region conn", "node conn", "other", "total"], rows))
    return out


def fig7b_remote_accesses(num_pes: int = 768, verbose: bool = True):
    """Fig. 7(b): remote accesses during region connection, per pGraph."""
    wl = prm_workload("med-cube", num_regions=MEDCUBE_REGIONS, samples_per_region=MEDCUBE_SPR)
    out = []
    for strat in ("none", "repartition"):
        r = simulate_prm(wl, num_pes, strat)
        out.append(
            {
                "strategy": strat,
                "region_graph": r.region_graph_remote,
                "roadmap_graph": r.roadmap_graph_remote,
            }
        )
    if verbose:
        print(f"\nFig 7(b) — remote accesses in region connection at {num_pes} PEs")
        rows = [[o["strategy"], o["region_graph"], o["roadmap_graph"]] for o in out]
        print(format_table(["strategy", "region graph", "roadmap graph"], rows))
    return out


def fig8_prm_environments(pe_counts=PE_COUNTS_OPTERON, verbose: bool = True):
    """Fig. 8(a,b,c): PRM execution time on med-cube / small-cube / free."""
    out = {}
    for env_name, panel in (("med-cube", "a"), ("small-cube", "b"), ("free", "c")):
        out[env_name] = _prm_time_figure(
            env_name,
            pe_counts,
            f"Fig 8({panel}) — PRM {env_name} (Opteron scale)",
            verbose=verbose,
        )
    return out


def fig9_steal_distribution(pe_counts=(96, 768), verbose: bool = True):
    """Fig. 9: stolen vs locally executed tasks per PE under HYBRID WS."""
    wl = prm_workload("med-cube", num_regions=MEDCUBE_REGIONS, samples_per_region=MEDCUBE_SPR)
    out = {}
    for P in pe_counts:
        r = simulate_prm(wl, P, "hybrid")
        stolen = r.sim.stolen_per_pe()
        total = r.sim.tasks_per_pe()
        out[P] = {"stolen": stolen, "non_stolen": total - stolen}
        if verbose:
            frac_thieves = float(np.mean(stolen > 0))
            print(
                f"\nFig 9 — task distribution at {P} PEs: "
                f"{stolen.sum()} stolen / {total.sum()} total; "
                f"{frac_thieves:.0%} of PEs executed stolen work"
            )
            qs = [0, 25, 50, 75, 100]
            rows = []
            order = np.argsort(-stolen)
            for q in qs:
                i = min(int(q / 100 * (P - 1)), P - 1)
                pe = order[i]
                rows.append([f"p{q}", int(stolen[pe]), int(total[pe] - stolen[pe])])
            print(format_table(["percentile (by stolen)", "stolen", "non-stolen"], rows))
    return out


def fig10_rrt_environments(pe_counts=PE_COUNTS_RRT, verbose: bool = True):
    """Fig. 10(a,b,c): radial RRT on mixed / mixed-30 / free.

    Panel (b) additionally includes the k-rays repartitioning strategy the
    paper shows underperforming.
    """
    out = {}
    for env_name, panel in (("mixed", "a"), ("mixed-30", "b"), ("free", "c")):
        wl = rrt_workload(env_name)
        strategies = RRT_STRATEGIES + (("repartition",) if env_name == "mixed-30" else ())
        rows = rrt_scaling_table(wl, list(pe_counts), strategies)
        out[env_name] = rows
        if verbose:
            print(f"\nFig 10({panel}) — radial RRT {env_name}")
            print(
                format_table(
                    ["P", "strategy", "exec time", "speedup vs no-LB"],
                    [
                        [r.num_pes, r.strategy, f"{r.total_time:.0f}", f"{r.speedup_vs_none:.2f}x"]
                        for r in rows
                    ],
                )
            )
    return out
