"""True-parallel execution of regional planners on the local machine.

The simulator answers "how would this behave on 3,072 cores?"; this module
answers "make it actually faster on my laptop".  Regions are executed by a
``concurrent.futures`` pool, with a greedy dynamic dispatcher that is the
shared-memory analogue of work stealing: workers pull the next unstarted
chunk of regions as they finish, so imbalance is absorbed automatically.

On the ``"process"`` backend the task callable is shipped to each worker
exactly once, through the pool initializer, instead of being pickled into
every submission — the callable closes over the whole planning context
(configuration space, decomposition, samplers), so per-submit pickling
used to dominate dispatch for small regions.  Each submission then carries
only a tuple of integer task ids.  The callable must still be picklable
(a module-level function or a functools partial of one), but it crosses
the process boundary once per worker rather than once per task.

For convenience a threads backend is also provided — with NumPy doing the
heavy lifting inside collision checks, threads get real speedups despite
the GIL.

Dispatch granularity is a pluggable policy (:mod:`repro.runtime.chunking`):
``chunksize`` accepts the historical fixed int, ``"guided"``
self-scheduling (chunks decay as ``remaining / (2 * workers)``), or
``"weighted"`` (equal-*weight* chunks from ``task_weights``).  Workers
stamp true per-task start times (``time.perf_counter`` is a shared
monotonic clock across fork on Linux), so traced ``task_start`` events are
measured, not reconstructed.  Every run returns a :class:`DispatchStats`
on ``PoolResult.dispatch`` accounting chunks issued, bytes shipped,
ser-de time and shared-memory attaches — the observable cost of the data
plane that :mod:`repro.runtime.shm` exists to shrink.

Fault tolerance
---------------
Regions are independent subproblems, so a failed or lost regional planner
can be re-run anywhere without perturbing the others — the shared-memory
analogue of the paper's ownership transfer on steal.  The dispatcher
supports three failure policies:

* ``"fail_fast"`` (default) — the first failure propagates.
* ``"retry"`` — failed tasks are retried up to ``max_retries`` times with
  exponential backoff plus deterministic per-task jitter; exhaustion
  raises :class:`~repro.runtime.faults.TaskFailedError`.
* ``"degrade"`` — like ``"retry"``, but exhausted tasks are *abandoned*:
  the run completes and :class:`PoolResult` lists them in ``abandoned``.

Per-task timeouts (``task_timeout``) bound hung tasks: an expired
submission counts as a failed attempt for every unfinished task it
carried and is re-dispatched under the active policy.  Dead workers are
detected (a broken process pool, or a :class:`WorkerCrash` on the thread
backend); the pool is rebuilt and the in-flight regions re-dispatched to
surviving workers.  A deterministic
:class:`~repro.runtime.faults.FaultInjector` can inject failures for
testing; with no injector, no timeout and ``fail_fast`` the original
zero-bookkeeping dispatch loop runs — fault hooks cost nothing on the
default path.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..obs.events import (
    EV_POOL_DISPATCH,
    EV_SHM_ATTACH,
    EV_TASK_ABANDONED,
    EV_TASK_END,
    EV_TASK_RETRY,
    EV_TASK_START,
    EV_WORKER_DEATH,
)
from ..obs.tracer import active
from . import shm as _shm
from .chunking import policy_label, resolve_chunks, validate_chunksize
from .faults import (
    FAULT_CRASH,
    FAULT_HANG,
    FAULT_RAISE,
    FaultInjector,
    InjectedFault,
    TaskFailedError,
    WorkerCrash,
)

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

__all__ = [
    "FAILURE_POLICIES",
    "DispatchStats",
    "PoolResult",
    "resolve_workers",
    "run_tasks_parallel",
]

FAILURE_POLICIES = ("fail_fast", "retry", "degrade")


def resolve_workers(workers: "int | None") -> int:
    """Resolve a worker count: ``None`` means every core on this machine.

    ``os.cpu_count()`` can itself return ``None`` on exotic platforms,
    in which case one worker is the only safe answer.
    """
    if workers is None:
        return os.cpu_count() or 1
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be an int >= 1 or None, got {workers!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


@dataclass
class DispatchStats:
    """What one pool run shipped to its workers, and how.

    ``context_bytes`` / ``task_bytes`` / ``serde_s`` are measured only
    when the run opts in (``measure_serde=True``) on the process
    backend — pickling purely to weigh it is not free, so the default
    path stays zero-overhead.  The shm fields aggregate the worker-side
    attach records piggybacked on chunk results.
    """

    #: effective policy label: ``fixed-N``, ``guided`` or ``weighted``.
    chunk_policy: str = "fixed-1"
    chunks_issued: int = 0
    #: pickled size of the task callable (the shipped context), bytes.
    context_bytes: int = 0
    #: pickled size of all task-id submissions, bytes.
    task_bytes: int = 0
    #: dispatcher-side serialization time, seconds.
    serde_s: float = 0.0
    #: shm segments published for this run (filled by the caller).
    shm_segments: int = 0
    #: total bytes of those segments (filled by the caller).
    shm_bytes: int = 0
    #: worker-side segment mappings observed (first attach per worker).
    shm_attaches: int = 0
    #: worker-side attach-cache hits (segment already mapped).
    shm_attach_cached: int = 0
    #: cumulative worker-side attach time, seconds.
    shm_attach_s: float = 0.0


@dataclass
class PoolResult:
    """Results plus wall-clock and failure accounting of a parallel run."""

    results: "dict[int, object]"
    wall_time: float
    #: duration of the *successful* attempt only — failed attempts never
    #: pollute bench numbers (they are visible via ``attempts``).
    per_task_time: "dict[int, float]"
    workers: int
    #: task id -> number of attempts consumed (1 = first try succeeded).
    attempts: "dict[int, int]" = field(default_factory=dict)
    #: tasks given up on under the ``"degrade"`` policy, sorted.
    abandoned: "list[int]" = field(default_factory=list)
    #: failed attempts that were rescheduled.
    retries: int = 0
    #: dead workers detected (process deaths, or modelled thread crashes).
    worker_deaths: int = 0
    #: dispatch accounting: chunk policy, bytes shipped, shm attaches.
    dispatch: DispatchStats = field(default_factory=DispatchStats)

    @property
    def complete(self) -> bool:
        """True when no task was abandoned."""
        return not self.abandoned

    def slowest_task(self) -> "tuple[int, float] | None":
        """The (task id, duration) that took longest; ``None`` if no tasks ran."""
        if not self.per_task_time:
            return None
        task = max(self.per_task_time, key=self.per_task_time.get)
        return task, self.per_task_time[task]


# The worker-side task callable and fault plan, installed once per process
# by _pool_init.
_WORKER_FN: "Callable[[int], object] | None" = None
_WORKER_INJECTOR: "FaultInjector | None" = None


def _pool_init(fn: Callable[[int], object], injector: "FaultInjector | None" = None) -> None:
    global _WORKER_FN, _WORKER_INJECTOR
    _WORKER_FN = fn
    _WORKER_INJECTOR = injector


def _run_chunk(
    fn: Callable[[int], object], task_ids: "tuple[int, ...]"
) -> "tuple[list[tuple[int, object, float, float]], dict | None]":
    """Run one chunk; rows are ``(task, value, duration, start_stamp)``.

    ``start_stamp`` is the worker's own ``perf_counter`` at task start —
    a true measurement (the clock is system-wide monotonic, shared with
    the dispatcher), not a reconstruction.  The second element is the
    worker's drained shm attach log, piggybacked for dispatch accounting.
    """
    rows = [(tid, *_one(fn, tid)) for tid in task_ids]
    return rows, _shm.drain_attach_records()


def _one(fn: Callable[[int], object], tid: int) -> "tuple[object, float, float]":
    t0 = time.perf_counter()
    out = fn(tid)
    return out, time.perf_counter() - t0, t0


def _run_chunk_shipped(
    task_ids: "tuple[int, ...]",
) -> "tuple[list[tuple[int, object, float, float]], dict | None]":
    assert _WORKER_FN is not None, "worker initializer did not run"
    return _run_chunk(_WORKER_FN, task_ids)


def _run_attempts(
    fn: Callable[[int], object],
    entries: "tuple[tuple[int, int], ...]",
    injector: "FaultInjector | None",
    process_worker: bool,
) -> "tuple[list[tuple[int, int, bool, object, float, float]], dict | None]":
    """Run ``(task, attempt)`` entries, reporting per-task outcomes.

    Returns ``(task, attempt, ok, payload, duration, start_stamp)`` rows
    (plus the worker's drained shm attach log) where ``payload`` is the
    result on success or a ``repr`` of the failure and ``start_stamp``
    is the worker-side ``perf_counter`` at attempt start.  A crash fault
    kills the worker process outright (process backend) or raises
    :class:`WorkerCrash` out of the chunk (thread backend) — in both
    cases the dispatcher loses the whole chunk, exactly as it would to
    a real worker death.
    """
    out: "list[tuple[int, int, bool, object, float, float]]" = []
    for tid, attempt in entries:
        t0 = time.perf_counter()
        try:
            if injector is not None:
                fault = injector.poll(tid, attempt)
                if fault is not None:
                    if fault.kind == FAULT_CRASH:
                        if process_worker:
                            os._exit(3)
                        raise WorkerCrash(
                            f"injected crash at task {tid} attempt {attempt}"
                        )
                    if fault.kind == FAULT_HANG:
                        time.sleep(fault.hang)
                    elif fault.kind == FAULT_RAISE:
                        raise InjectedFault(
                            f"injected fault: task {tid} attempt {attempt}"
                        )
            value = fn(tid)
        except WorkerCrash:
            raise
        except Exception as exc:  # transient task failure: report, move on
            out.append((tid, attempt, False, repr(exc), time.perf_counter() - t0, t0))
            continue
        out.append((tid, attempt, True, value, time.perf_counter() - t0, t0))
    return out, _shm.drain_attach_records()


def _run_attempts_shipped(
    entries: "tuple[tuple[int, int], ...]",
) -> "tuple[list[tuple[int, int, bool, object, float, float]], dict | None]":
    assert _WORKER_FN is not None, "worker initializer did not run"
    return _run_attempts(_WORKER_FN, entries, _WORKER_INJECTOR, process_worker=True)


def run_tasks_parallel(
    fn: Callable[[int], object],
    task_ids: "list[int]",
    workers: "int | None" = None,
    backend: str = "thread",
    window: int | None = None,
    chunksize: "int | str" = 1,
    tracer: "Tracer | None" = None,
    failure_policy: str = "fail_fast",
    max_retries: int = 2,
    task_timeout: "float | None" = None,
    backoff_base: float = 0.05,
    backoff_jitter: float = 0.5,
    fault_injector: "FaultInjector | None" = None,
    retry_seed: int = 0,
    task_weights: "dict[int, float] | None" = None,
    measure_serde: bool = False,
) -> PoolResult:
    """Execute ``fn(task_id)`` for every task with dynamic dispatch.

    Parameters
    ----------
    fn:
        The regional work; must be picklable for the ``"process"`` backend
        (it is shipped once per worker via the pool initializer).
    workers:
        Pool size; ``None`` (default) resolves to ``os.cpu_count()``.
        The resolved value is surfaced on ``PoolResult.workers``.
    backend:
        ``"thread"`` (default; fine for NumPy-heavy work) or ``"process"``.
    window:
        Max in-flight submissions (default ``2 * workers``); bounds memory
        for huge task lists.
    chunksize:
        Tasks per submission: a fixed int (default 1), or a policy name —
        ``"guided"`` (self-scheduling decay: big chunks early to amortise
        dispatch, single tasks at the tail for balance) or ``"weighted"``
        (equal-weight chunks from ``task_weights``).  Larger chunks
        amortise dispatch overhead when individual tasks are tiny, at the
        price of coarser load balancing — the same trade the paper's
        distributed schedulers make with region granularity; the policies
        make it adaptive.  See :mod:`repro.runtime.chunking`.
    tracer:
        Optional :class:`repro.obs.Tracer`; emits wall-clock ``task_start``
        / ``task_end`` point events (timestamps relative to pool start,
        measured from worker-side start stamps) and a ``task_time``
        histogram, plus ``shm_attach`` points for worker segment mappings
        and one ``pool_dispatch`` summary point.  Under fault tolerance it
        additionally emits ``task_retry`` / ``task_abandoned`` /
        ``worker_death`` points.  ``None`` (default) emits nothing.
    failure_policy:
        ``"fail_fast"`` (default), ``"retry"`` or ``"degrade"`` — see the
        module docstring.  With the default policy, no timeout and no
        injector, failures propagate as the task's original exception (the
        zero-overhead fast path); otherwise exhausted tasks raise
        :class:`TaskFailedError`.
    max_retries:
        Retry budget per task for ``"retry"`` / ``"degrade"``.
    task_timeout:
        Seconds allowed per task; a submission of *k* tasks expires after
        ``k * task_timeout`` and every unfinished task in it counts one
        failed attempt.  ``None`` (default) disables timeouts.
    backoff_base, backoff_jitter:
        Retry *n* waits ``backoff_base * 2**(n-1) * (1 + jitter * u)``
        where ``u`` is a deterministic per-``(task, attempt)`` uniform
        draw seeded by ``retry_seed`` — runs with the same seed back off
        identically regardless of scheduling order.
    fault_injector:
        Optional :class:`~repro.runtime.faults.FaultInjector` for chaos
        testing; ``None`` (default) costs nothing.
    task_weights:
        Optional per-task relative cost estimates (the partitioner's
        region weights) consumed by the ``"weighted"`` chunk policy.
    measure_serde:
        When true (process backend), weigh the pickled context and task
        submissions and time the pickling, reported on
        ``PoolResult.dispatch``.  Off by default — measuring costs a
        duplicate serialization pass.
    """
    workers = resolve_workers(workers)
    validate_chunksize(chunksize)
    if backend not in ("thread", "process"):
        raise ValueError("backend must be 'thread' or 'process'")
    if failure_policy not in FAILURE_POLICIES:
        raise ValueError(
            f"failure_policy must be one of {FAILURE_POLICIES}, got {failure_policy!r}"
        )
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if task_timeout is not None and task_timeout <= 0:
        raise ValueError("task_timeout must be positive")
    window = window if window is not None else 2 * workers
    if window < 1:
        raise ValueError("window must be >= 1")
    resilient = (
        fault_injector is not None
        or failure_policy != "fail_fast"
        or task_timeout is not None
    )
    if resilient:
        return _run_resilient(
            fn,
            list(task_ids),
            workers=workers,
            backend=backend,
            window=window,
            chunksize=chunksize,
            tracer=tracer,
            failure_policy=failure_policy,
            max_retries=max_retries,
            task_timeout=task_timeout,
            backoff_base=backoff_base,
            backoff_jitter=backoff_jitter,
            fault_injector=fault_injector,
            retry_seed=retry_seed,
            task_weights=task_weights,
            measure_serde=measure_serde,
        )
    return _run_simple(
        fn,
        list(task_ids),
        workers=workers,
        backend=backend,
        window=window,
        chunksize=chunksize,
        tracer=tracer,
        task_weights=task_weights,
        measure_serde=measure_serde,
    )


def _weigh(obj: object, dispatch: DispatchStats) -> int:
    """Pickle ``obj`` purely to weigh it, charging the time to ser-de."""
    t0 = time.perf_counter()
    n = len(pickle.dumps(obj))
    dispatch.serde_s += time.perf_counter() - t0
    return n


def _absorb_shm(info: "dict | None", dispatch: DispatchStats, tr, ts: float) -> None:
    """Fold one worker's piggybacked attach log into the run's accounting."""
    if not info:
        return
    dispatch.shm_attach_cached += info.get("cached", 0)
    for rec in info.get("attaches", ()):
        dispatch.shm_attaches += 1
        dispatch.shm_attach_s += rec.get("seconds", 0.0)
        if tr is not None:
            tr.point(
                EV_SHM_ATTACH,
                ts=ts,
                label=rec.get("label"),
                segment=rec.get("segment"),
                bytes=rec.get("bytes", 0),
                seconds=rec.get("seconds", 0.0),
                pid=rec.get("pid"),
            )


def _finish_dispatch(dispatch: DispatchStats, tr, n_tasks: int, ts: float) -> None:
    """Emit the run's one ``pool_dispatch`` summary point."""
    if tr is not None:
        tr.point(
            EV_POOL_DISPATCH,
            ts=ts,
            policy=dispatch.chunk_policy,
            chunks=dispatch.chunks_issued,
            tasks=n_tasks,
            context_bytes=dispatch.context_bytes,
            task_bytes=dispatch.task_bytes,
            shm_attaches=dispatch.shm_attaches,
        )


def _run_simple(
    fn: Callable[[int], object],
    tasks: "list[int]",
    workers: int,
    backend: str,
    window: int,
    chunksize: "int | str",
    tracer: "Tracer | None",
    task_weights: "dict[int, float] | None" = None,
    measure_serde: bool = False,
) -> PoolResult:
    """The original fast path: no retry bookkeeping, no timeout checks."""
    tr = active(tracer)
    results: "dict[int, object]" = {}
    per_task: "dict[int, float]" = {}
    pending = set()

    chunks = resolve_chunks(tasks, chunksize, workers, task_weights)
    dispatch = DispatchStats(chunk_policy=policy_label(chunksize), chunks_issued=len(chunks))
    it = iter(chunks)

    measure = measure_serde and backend == "process"
    if measure:
        dispatch.context_bytes = _weigh(fn, dispatch)

    if backend == "process":
        pool = ProcessPoolExecutor(max_workers=workers, initializer=_pool_init, initargs=(fn,))

        def submit(chunk):
            """Ship the chunk to a process worker (fn sent at pool init)."""
            if measure:
                dispatch.task_bytes += _weigh(chunk, dispatch)
            return pool.submit(_run_chunk_shipped, chunk)
    else:
        pool = ThreadPoolExecutor(max_workers=workers)

        def submit(chunk):
            """Run the chunk on a thread worker with fn passed directly."""
            return pool.submit(_run_chunk, fn, chunk)

    t0 = time.perf_counter()
    with pool:
        # Prime the window, then keep it full as chunks complete.
        for _ in range(window):
            chunk = next(it, None)
            if chunk is None:
                break
            pending.add(submit(chunk))
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                chunk_out, shm_info = fut.result()
                end_ts = time.perf_counter() - t0
                _record_chunk(chunk_out, t0, results, per_task, tr)
                _absorb_shm(shm_info, dispatch, tr, end_ts)
                nxt = next(it, None)
                if nxt is not None:
                    pending.add(submit(nxt))
    wall = time.perf_counter() - t0
    _finish_dispatch(dispatch, tr, len(results), wall)
    if tr is not None:
        tr.metrics.gauge("pool_wall_time").set(wall)
        tr.metrics.counter("pool_tasks").inc(len(results))
    return PoolResult(
        results, wall, per_task, workers,
        attempts=dict.fromkeys(results, 1), dispatch=dispatch,
    )


def _record_chunk(chunk_out, t0, results, per_task, tr) -> None:
    """Store a completed chunk's ``(task, value, duration, start_stamp)``
    rows and emit task events from the worker-measured start stamps —
    ``perf_counter`` is a shared monotonic clock across dispatcher and
    workers, so stamps translate to run-relative time by subtracting the
    dispatcher's ``t0``."""
    for task_id, out, dt, _start in chunk_out:
        results[task_id] = out
        per_task[task_id] = dt
    if tr is not None:
        for task_id, _out, dt, start in chunk_out:
            start_ts = max(start - t0, 0.0)
            tr.point(EV_TASK_START, ts=start_ts, task=task_id, cost=dt)
            tr.point(EV_TASK_END, ts=start_ts + dt, task=task_id, cost=dt)
            tr.metrics.histogram("task_time").observe(dt)


@dataclass
class _Submission:
    """One in-flight future's bookkeeping."""

    entries: "tuple[tuple[int, int], ...]"  # (task, attempt) pairs
    deadline: "float | None"  # dispatcher-clock expiry, None = never


def _retry_jitter(task: int, attempt: int, seed: int) -> float:
    """Deterministic uniform draw in [0, 1) — a pure function of its args."""
    return float(
        np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(task, attempt))
        ).random()
    )


def _run_resilient(
    fn: Callable[[int], object],
    tasks: "list[int]",
    workers: int,
    backend: str,
    window: int,
    chunksize: int,
    tracer: "Tracer | None",
    failure_policy: str,
    max_retries: int,
    task_timeout: "float | None",
    backoff_base: float,
    backoff_jitter: float,
    fault_injector: "FaultInjector | None",
    retry_seed: int,
    task_weights: "dict[int, float] | None" = None,
    measure_serde: bool = False,
) -> PoolResult:
    """The fault-tolerant dispatcher: timeouts, retries, re-dispatch."""
    tr = active(tracer)
    allowed_retries = max_retries if failure_policy in ("retry", "degrade") else 0
    results: "dict[int, object]" = {}
    per_task: "dict[int, float]" = {}
    attempts: "dict[int, int]" = {}
    abandoned: "list[int]" = []
    unresolved = set(tasks)
    retries = 0
    deaths = 0
    seq = itertools.count()
    # Min-heap of (ready_time, seq, task, attempt) waiting out their backoff.
    retry_heap: "list[tuple[float, int, int, int]]" = []
    # Entries displaced by a worker death, re-dispatched attempt-intact.
    requeue: "list[tuple[int, int]]" = []
    in_flight: "dict[object, _Submission]" = {}

    fresh = iter(resolve_chunks(tasks, chunksize, workers, task_weights))
    dispatch = DispatchStats(chunk_policy=policy_label(chunksize))

    process = backend == "process"
    measure = measure_serde and process
    pool: "ProcessPoolExecutor | ThreadPoolExecutor"

    def make_pool():
        """Fresh executor of the configured backend (also used on respawn)."""
        if process:
            return ProcessPoolExecutor(
                max_workers=workers,
                initializer=_pool_init,
                initargs=(fn, fault_injector),
            )
        return ThreadPoolExecutor(max_workers=workers)

    pool = make_pool()
    if measure:
        dispatch.context_bytes = _weigh((fn, fault_injector), dispatch)
    t0 = time.perf_counter()

    def now() -> float:
        """Wall seconds since the run started."""
        return time.perf_counter() - t0

    def submit(entries: "tuple[tuple[int, int], ...]") -> None:
        """Dispatch (task, attempt) entries to the pool and track them."""
        deadline = None if task_timeout is None else now() + task_timeout * len(entries)
        dispatch.chunks_issued += 1
        if process:
            if measure:
                dispatch.task_bytes += _weigh(entries, dispatch)
            fut = pool.submit(_run_attempts_shipped, entries)
        else:
            fut = pool.submit(_run_attempts, fn, entries, fault_injector, False)
        in_flight[fut] = _Submission(entries, deadline)

    def fail_attempt(tid: int, attempt: int, reason: object) -> None:
        """One attempt of ``tid`` failed; retry, abandon, or raise."""
        nonlocal retries
        if tid not in unresolved:
            return  # already resolved by a competing attempt
        attempts[tid] = attempt + 1
        nxt = attempt + 1
        if nxt <= allowed_retries:
            retries += 1
            delay = backoff_base * (2.0 ** (nxt - 1)) * (
                1.0 + backoff_jitter * _retry_jitter(tid, nxt, retry_seed)
            )
            heapq.heappush(retry_heap, (now() + delay, next(seq), tid, nxt))
            if tr is not None:
                tr.point(
                    EV_TASK_RETRY, ts=now(), task=tid, attempt=nxt, reason=str(reason)[:120]
                )
        elif failure_policy == "degrade":
            unresolved.discard(tid)
            abandoned.append(tid)
            if tr is not None:
                tr.point(
                    EV_TASK_ABANDONED,
                    ts=now(),
                    task=tid,
                    attempts=nxt,
                    reason=str(reason)[:120],
                )
        else:
            raise TaskFailedError(tid, nxt, reason)

    def on_worker_death(first: _Submission, reason: str) -> None:
        """Re-dispatch work lost to a dead worker — ownership transfer.

        When the injector's plan identifies the crash culprits, only they
        consume an attempt and innocent bystanders re-enter dispatch
        attempt-intact.  A real (un-injected) death has no identifiable
        culprit, so every lost task is charged — that bounds repeated
        deaths by the retry budget instead of looping forever.
        """
        nonlocal pool, deaths
        deaths += 1
        if tr is not None:
            tr.point(
                EV_WORKER_DEATH,
                ts=now(),
                backend=backend,
                in_flight=len(in_flight) + 1,
                reason=reason,
            )
        lost = list(first.entries)
        if process:
            # A dead process breaks the whole executor: every other
            # in-flight future is lost too.  Rebuild and re-dispatch.
            for sub in in_flight.values():
                lost.extend(sub.entries)
            in_flight.clear()
            pool.shutdown(wait=False, cancel_futures=True)
            pool = make_pool()
        lost = [(tid, a) for tid, a in lost if tid in unresolved]
        culprits = {
            (tid, a)
            for tid, a in lost
            if fault_injector is not None
            and (f := fault_injector.poll(tid, a)) is not None
            and f.kind == FAULT_CRASH
        }
        for tid, a in lost:
            if (tid, a) in culprits or not culprits:
                fail_attempt(tid, a, "worker_death")
            else:
                requeue.append((tid, a))

    def next_entries() -> "tuple[tuple[int, int], ...] | None":
        """Next submission: displaced work first, then due retries, then
        fresh chunks — the priority order that drains failure fastest."""
        while requeue:
            tid, attempt = requeue.pop(0)
            if tid in unresolved:
                return ((tid, attempt),)
        while retry_heap and retry_heap[0][0] <= now():
            _, _, tid, attempt = heapq.heappop(retry_heap)
            if tid in unresolved:
                return ((tid, attempt),)
        while True:
            chunk = next(fresh, None)
            if chunk is None:
                return None
            live = tuple((tid, 0) for tid in chunk if tid in unresolved)
            if live:
                return live

    def handle(fut, sub: _Submission) -> None:
        """Absorb one finished future: record results, requeue failures."""
        try:
            rows, shm_info = fut.result()
        except BrokenExecutor:
            on_worker_death(sub, "process_died")
            return
        except WorkerCrash as exc:
            on_worker_death(sub, str(exc))
            return
        end_ts = now()
        ok_rows = []
        for tid, attempt, ok, payload, dt, start in rows:
            if tid not in unresolved:
                continue
            if ok:
                unresolved.discard(tid)
                attempts[tid] = attempt + 1
                ok_rows.append((tid, payload, dt, start))
            else:
                fail_attempt(tid, attempt, payload)
        if ok_rows:
            _record_chunk(ok_rows, t0, results, per_task, tr)
        _absorb_shm(shm_info, dispatch, tr, end_ts)

    try:
        while unresolved:
            # Keep the window full.
            while len(in_flight) < window:
                entries = next_entries()
                if entries is None:
                    break
                submit(entries)
            if not in_flight:
                if retry_heap:
                    # Nothing running; sleep until the next retry is due.
                    time.sleep(max(retry_heap[0][0] - now(), 0.0) + 1e-4)
                    continue
                break  # nothing running, nothing scheduled: all failed paths taken
            timeout = None
            if task_timeout is not None:
                deadlines = [s.deadline for s in in_flight.values() if s.deadline is not None]
                if deadlines:
                    timeout = max(min(deadlines) - now(), 0.0)
            if retry_heap:
                until_retry = max(retry_heap[0][0] - now(), 0.0)
                timeout = until_retry if timeout is None else min(timeout, until_retry)
            done, _ = wait(in_flight.keys(), timeout=timeout, return_when=FIRST_COMPLETED)
            for fut in done:
                sub = in_flight.pop(fut, None)
                if sub is not None:
                    handle(fut, sub)
            # Expire overdue submissions: each unfinished task in one
            # counts a failed ("timeout") attempt and re-enters dispatch.
            if task_timeout is not None:
                t = now()
                for fut, sub in list(in_flight.items()):
                    if sub.deadline is not None and t > sub.deadline:
                        del in_flight[fut]
                        fut.cancel()
                        for tid, attempt in sub.entries:
                            fail_attempt(tid, attempt, "timeout")
    finally:
        # Never block on hung workers; cancel whatever never started.
        pool.shutdown(wait=False, cancel_futures=True)

    wall = now()
    _finish_dispatch(dispatch, tr, len(results), wall)
    if tr is not None:
        tr.metrics.gauge("pool_wall_time").set(wall)
        tr.metrics.counter("pool_tasks").inc(len(results))
        if retries:
            tr.metrics.counter("pool_retries").inc(retries)
        if abandoned:
            tr.metrics.counter("pool_abandoned").inc(len(abandoned))
        if deaths:
            tr.metrics.counter("pool_worker_deaths").inc(deaths)
    return PoolResult(
        results,
        wall,
        per_task,
        workers,
        attempts=attempts,
        abandoned=sorted(abandoned),
        retries=retries,
        worker_deaths=deaths,
        dispatch=dispatch,
    )
