"""Integration tests for the load-balanced radial RRT driver."""

import numpy as np
import pytest

from repro.core import build_rrt_workload, simulate_rrt
from repro.cspace import EuclideanCSpace
from repro.geometry import free_env, mixed_30_env


@pytest.fixture(scope="module")
def mixed_workload():
    cs = EuclideanCSpace(mixed_30_env())
    rng = np.random.default_rng(0)
    root = np.zeros(3)
    while not cs.valid_single(root):
        root = rng.uniform(-3, 3, 3)
    return build_rrt_workload(cs, root, num_regions=256, nodes_per_region=6, seed=4)


@pytest.fixture(scope="module")
def free_workload():
    cs = EuclideanCSpace(free_env())
    return build_rrt_workload(cs, np.zeros(3), num_regions=256, nodes_per_region=6, seed=4)


class TestWorkloadConstruction:
    def test_branch_work_complete(self, mixed_workload):
        wl = mixed_workload
        assert set(wl.branch_work) == set(wl.radial.graph.region_ids())
        assert all(w.grow_cost > 0 for w in wl.branch_work.values())

    def test_tree_is_forest_of_branches(self, free_workload):
        wl = free_workload
        # Every vertex has a parent chain ending at a branch root.
        for vid in wl.tree.vertices():
            seen = set()
            v = vid
            while wl.parents[v] != v:
                assert v not in seen
                seen.add(v)
                v = wl.parents[v]

    def test_tree_edge_count(self, free_workload):
        wl = free_workload
        num_roots = sum(1 for v, p in wl.parents.items() if v == p)
        assert wl.tree.num_edges == wl.tree.num_vertices - num_roots

    def test_invalid_root_rejected(self):
        cs = EuclideanCSpace(mixed_30_env())
        blocked = None
        rng = np.random.default_rng(1)
        for _ in range(200):
            p = rng.uniform(-9, 9, 3)
            if not cs.valid_single(p):
                blocked = p
                break
        assert blocked is not None
        with pytest.raises(ValueError):
            build_rrt_workload(cs, blocked, num_regions=16)

    def test_cluttered_side_costs_more(self, mixed_workload):
        """Cones facing the cluttered half burn more iterations."""
        wl = mixed_workload
        toward, away = [], []
        for rid, work in wl.branch_work.items():
            direction = wl.radial.region_of(rid).direction
            (toward if direction[0] > 0.5 else away if direction[0] < -0.5 else []).append(
                work.grow_cost
            )
        assert np.mean(toward) > 1.1 * np.mean(away)

    def test_deterministic(self):
        cs = EuclideanCSpace(free_env())
        a = build_rrt_workload(cs, np.zeros(3), num_regions=64, nodes_per_region=4, seed=9)
        b = build_rrt_workload(
            EuclideanCSpace(free_env()), np.zeros(3), num_regions=64, nodes_per_region=4, seed=9
        )
        assert a.tree.num_vertices == b.tree.num_vertices
        for rid in a.branch_work:
            assert a.branch_work[rid].grow_cost == b.branch_work[rid].grow_cost


class TestSimulation:
    def test_all_strategies_run(self, mixed_workload):
        for strat in ("none", "diffusive", "hybrid", "rand-8", "repartition"):
            r = simulate_rrt(mixed_workload, 8, strat)
            assert r.total_time > 0

    def test_node_conservation(self, mixed_workload):
        total = sum(w.num_nodes for w in mixed_workload.branch_work.values())
        for strat in ("none", "diffusive"):
            r = simulate_rrt(mixed_workload, 8, strat)
            assert r.nodes_per_pe.sum() == pytest.approx(total)

    def test_work_stealing_helps_clutter(self, mixed_workload):
        base = simulate_rrt(mixed_workload, 16, "none").total_time
        ws = simulate_rrt(mixed_workload, 16, "diffusive").total_time
        assert ws < base

    def test_repartition_charges_probe_cost(self, mixed_workload):
        r = simulate_rrt(mixed_workload, 8, "repartition", k_rays=8)
        assert r.phases.lb_overhead > 0
        assert r.repartition_info is not None

    def test_free_env_neutral(self, free_workload):
        base = simulate_rrt(free_workload, 8, "none").total_time
        for strat in ("diffusive", "rand-8"):
            t = simulate_rrt(free_workload, 8, strat).total_time
            assert t < 1.25 * base

    def test_deterministic(self, mixed_workload):
        a = simulate_rrt(mixed_workload, 8, "rand-8")
        b = simulate_rrt(mixed_workload, 8, "rand-8")
        assert a.total_time == b.total_time
