"""Rigid-body transforms for SE(2) and SE(3).

Rotations are parameterised compactly for planning purposes:

* SE(2): ``(x, y, theta)`` with ``theta`` in radians.
* SE(3): ``(x, y, z, rx, ry, rz)`` — intrinsic XYZ Euler angles.

These match the configuration layouts used by
:mod:`repro.cspace.rigid_body`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rot2d",
    "rot3d_euler",
    "transform_points_se2",
    "transform_points_se3",
    "angular_difference",
    "wrap_angle",
]


def wrap_angle(theta: np.ndarray | float) -> np.ndarray | float:
    """Wrap angles into ``(-pi, pi]``."""
    wrapped = np.mod(np.asarray(theta, dtype=float) + np.pi, 2.0 * np.pi) - np.pi
    wrapped = np.where(wrapped == -np.pi, np.pi, wrapped)
    if np.isscalar(theta) or np.asarray(theta).ndim == 0:
        return float(wrapped)
    return wrapped


def angular_difference(a: np.ndarray | float, b: np.ndarray | float) -> np.ndarray | float:
    """Signed shortest angular difference ``b - a``, in ``(-pi, pi]``."""
    return wrap_angle(np.asarray(b, dtype=float) - np.asarray(a, dtype=float))


def rot2d(theta: float) -> np.ndarray:
    """2x2 rotation matrix."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


def rot3d_euler(rx: float, ry: float, rz: float) -> np.ndarray:
    """3x3 rotation matrix from intrinsic XYZ Euler angles."""
    cx, sx = np.cos(rx), np.sin(rx)
    cy, sy = np.cos(ry), np.sin(ry)
    cz, sz = np.cos(rz), np.sin(rz)
    Rx = np.array([[1, 0, 0], [0, cx, -sx], [0, sx, cx]])
    Ry = np.array([[cy, 0, sy], [0, 1, 0], [-sy, 0, cy]])
    Rz = np.array([[cz, -sz, 0], [sz, cz, 0], [0, 0, 1]])
    return Rx @ Ry @ Rz


def transform_points_se2(points: np.ndarray, config: np.ndarray) -> np.ndarray:
    """Apply SE(2) configuration ``(x, y, theta)`` to body-frame points ``(n, 2)``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    x, y, theta = config
    return pts @ rot2d(theta).T + np.array([x, y])


def transform_points_se3(points: np.ndarray, config: np.ndarray) -> np.ndarray:
    """Apply SE(3) configuration ``(x, y, z, rx, ry, rz)`` to points ``(n, 3)``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    x, y, z, rx, ry, rz = config
    return pts @ rot3d_euler(rx, ry, rz).T + np.array([x, y, z])
