"""Path post-processing: shortcut smoothing.

Not part of the paper's evaluation, but any planner a downstream user
adopts needs it; included for completeness of the planning substrate.
"""

from __future__ import annotations

import numpy as np

from ..cspace.local_planner import StraightLinePlanner
from ..cspace.space import ConfigurationSpace

__all__ = ["shortcut_smooth", "path_length"]


def path_length(cspace: ConfigurationSpace, configs: np.ndarray) -> float:
    """Total C-space length of a piecewise-linear path."""
    configs = np.atleast_2d(np.asarray(configs, dtype=float))
    total = 0.0
    for a, b in zip(configs[:-1], configs[1:]):
        total += float(cspace.distance(a, b))
    return total


def shortcut_smooth(
    cspace: ConfigurationSpace,
    configs: np.ndarray,
    rng: np.random.Generator,
    iterations: int = 64,
    local_planner=None,
) -> np.ndarray:
    """Random shortcut smoothing: repeatedly try to replace a sub-path with
    a straight valid segment.  Never increases path length."""
    lp = local_planner if local_planner is not None else StraightLinePlanner(resolution=0.25)
    path = [np.asarray(c, dtype=float) for c in np.atleast_2d(configs)]
    for _ in range(iterations):
        if len(path) < 3:
            break
        i, j = sorted(rng.choice(len(path), size=2, replace=False))
        if j - i < 2:
            continue
        result = lp(cspace, path[i], path[j])
        if result.valid:
            # Only keep the shortcut if it is actually shorter.
            old = path_length(cspace, np.stack(path[i : j + 1]))
            if result.length < old:
                path = path[: i + 1] + path[j:]
    return np.stack(path)
