"""Fault injection, retry/backoff and re-dispatch in the local pool."""

import time

import pytest

from repro.obs import (
    EV_TASK_ABANDONED,
    EV_TASK_RETRY,
    EV_WORKER_DEATH,
    Tracer,
    summarize_events,
)
from repro.runtime import (
    Fault,
    FaultInjector,
    TaskFailedError,
    run_tasks_parallel,
)


def _square(task_id):
    return task_id * task_id


def _none_task(task_id):
    return None


class TestFault:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            Fault("explode")
        with pytest.raises(ValueError):
            Fault("raise", attempt=-1)
        with pytest.raises(ValueError):
            Fault("hang", hang=-1.0)

    def test_matching_is_exact_on_attempt(self):
        f = Fault("raise", task=3, attempt=1)
        assert f.matches(3, 1, None)
        assert not f.matches(3, 0, None)
        assert not f.matches(4, 1, None)

    def test_wildcards(self):
        f = Fault("raise")  # any task, any worker, attempt 0
        assert f.matches(0, 0, None)
        assert f.matches(99, 0, 7)
        assert not f.matches(99, 1, 7)

    def test_worker_keyed_fault_needs_worker(self):
        f = Fault("crash", worker=2)
        assert f.matches(5, 0, 2)
        assert not f.matches(5, 0, None)
        assert not f.matches(5, 0, 3)


class TestFaultInjector:
    def test_explicit_plan(self):
        inj = FaultInjector([Fault("raise", task=1, attempt=0)])
        assert inj.poll(1, 0) is not None
        assert inj.poll(1, 1) is None
        assert inj.poll(2, 0) is None

    def test_rate_is_deterministic(self):
        inj = FaultInjector(rate=0.3, seed=42)
        draws = [inj.poll(t, 0) is not None for t in range(200)]
        again = [inj.poll(t, 0) is not None for t in range(200)]
        assert draws == again
        assert 20 < sum(draws) < 100  # roughly 30%

    def test_rate_spares_retries_by_default(self):
        inj = FaultInjector(rate=0.9, seed=0)
        assert all(inj.poll(t, 1) is None for t in range(50))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.0)
        with pytest.raises(ValueError):
            FaultInjector(rate=-0.1)

    def test_injector_is_picklable(self):
        import pickle

        inj = FaultInjector([Fault("crash", task=1)], rate=0.1, seed=3)
        clone = pickle.loads(pickle.dumps(inj))
        assert clone.poll(1, 0).kind == "crash"


class TestRetryPolicy:
    def test_transient_fault_recovers(self):
        inj = FaultInjector([Fault("raise", task=4, attempt=0)])
        res = run_tasks_parallel(
            _square,
            list(range(10)),
            workers=3,
            failure_policy="retry",
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.results == {i: i * i for i in range(10)}
        assert res.attempts[4] == 2
        assert res.retries == 1
        assert res.complete

    def test_per_task_time_is_successful_attempt_only(self):
        def slow_when_injured(task_id):
            # Attempt 0 of task 2 fails *slowly*; the retry is fast.
            return task_id

        class SlowFirstInjector(FaultInjector):
            def poll(self, task, attempt, worker=None):
                if task == 2 and attempt == 0:
                    time.sleep(0.3)
                    return Fault("raise", task=2, attempt=0)
                return None

        res = run_tasks_parallel(
            slow_when_injured,
            list(range(5)),
            workers=2,
            failure_policy="retry",
            fault_injector=SlowFirstInjector(),
            backoff_base=0.01,
        )
        assert res.attempts[2] == 2
        # The recorded duration is the fast successful retry, not the
        # 0.3 s failed first attempt.
        assert res.per_task_time[2] < 0.2

    def test_retry_exhaustion_raises(self):
        inj = FaultInjector([Fault("raise", task=1, attempt=a) for a in range(5)])
        with pytest.raises(TaskFailedError) as err:
            run_tasks_parallel(
                _square,
                [0, 1, 2],
                workers=2,
                failure_policy="retry",
                max_retries=1,
                fault_injector=inj,
                backoff_base=0.01,
            )
        assert err.value.task == 1
        assert err.value.attempts == 2

    def test_fail_fast_raises_immediately(self):
        inj = FaultInjector([Fault("raise", task=2, attempt=0)])
        with pytest.raises(TaskFailedError) as err:
            run_tasks_parallel(_square, list(range(5)), workers=2, fault_injector=inj)
        assert err.value.attempts == 1

    def test_plain_failure_propagates_on_fast_path(self):
        def boom(task_id):
            if task_id == 3:
                raise RuntimeError("planner exploded")
            return task_id

        with pytest.raises(RuntimeError, match="planner exploded"):
            run_tasks_parallel(boom, list(range(5)), workers=2)

    def test_retry_policy_handles_real_exceptions(self):
        calls = {}

        def flaky(task_id):
            calls[task_id] = calls.get(task_id, 0) + 1
            if task_id == 3 and calls[task_id] == 1:
                raise RuntimeError("transient")
            return task_id

        res = run_tasks_parallel(
            flaky, list(range(5)), workers=1, failure_policy="retry", backoff_base=0.01
        )
        assert res.results == {i: i for i in range(5)}
        assert res.attempts[3] == 2


class TestDegradePolicy:
    def test_persistent_fault_abandons(self):
        inj = FaultInjector([Fault("raise", task=3, attempt=a) for a in range(10)])
        res = run_tasks_parallel(
            _square,
            list(range(6)),
            workers=2,
            failure_policy="degrade",
            max_retries=2,
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.abandoned == [3]
        assert 3 not in res.results
        assert len(res.results) == 5
        assert res.attempts[3] == 3  # initial + 2 retries
        assert not res.complete

    def test_degrade_without_faults_is_complete(self):
        res = run_tasks_parallel(_square, list(range(8)), workers=2, failure_policy="degrade")
        assert res.complete
        assert res.results == {i: i * i for i in range(8)}


class TestWorkerDeath:
    def test_thread_crash_is_modelled(self):
        inj = FaultInjector([Fault("crash", task=5, attempt=0)])
        res = run_tasks_parallel(
            _square,
            list(range(8)),
            workers=2,
            failure_policy="retry",
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.results == {i: i * i for i in range(8)}
        assert res.worker_deaths == 1
        assert res.attempts[5] == 2

    def test_process_crash_rebuilds_pool(self):
        inj = FaultInjector([Fault("crash", task=3, attempt=0)])
        res = run_tasks_parallel(
            _square,
            list(range(8)),
            workers=2,
            backend="process",
            failure_policy="retry",
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.results == {i: i * i for i in range(8)}
        assert res.worker_deaths >= 1
        assert res.attempts[3] >= 2

    def test_crash_under_fail_fast_raises(self):
        inj = FaultInjector([Fault("crash", task=0, attempt=0)])
        with pytest.raises(TaskFailedError):
            run_tasks_parallel(
                _square, list(range(4)), workers=2, fault_injector=inj
            )


class TestTimeouts:
    def test_timeout_shorter_than_task_duration(self):
        def slow(task_id):
            if task_id == 1:
                time.sleep(0.4)
            return task_id

        res = run_tasks_parallel(
            slow,
            [0, 1, 2],
            workers=2,
            failure_policy="degrade",
            max_retries=0,
            task_timeout=0.1,
        )
        assert res.abandoned == [1]
        assert res.results == {0: 0, 2: 2}

    def test_hang_fault_then_recovery(self):
        inj = FaultInjector([Fault("hang", task=2, attempt=0, hang=0.5)])
        res = run_tasks_parallel(
            _square,
            list(range(5)),
            workers=2,
            failure_policy="retry",
            task_timeout=0.1,
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.results == {i: i * i for i in range(5)}
        assert res.attempts[2] >= 2

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=1, task_timeout=0.0)
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=1, failure_policy="panic")
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=1, max_retries=-1)


class TestChaosParity:
    """Retries must not perturb results: a faulty run with retries enabled
    produces the same results dict as the fault-free run."""

    @pytest.mark.parametrize("policy", ["retry", "degrade"])
    def test_attempt0_faults_do_not_perturb_results(self, policy):
        clean = run_tasks_parallel(_square, list(range(12)), workers=3)
        inj = FaultInjector(
            [
                Fault("raise", task=2, attempt=0),
                Fault("raise", task=7, attempt=0),
                Fault("crash", task=10, attempt=0),
            ]
        )
        chaotic = run_tasks_parallel(
            _square,
            list(range(12)),
            workers=3,
            failure_policy=policy,
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert chaotic.results == clean.results
        assert chaotic.abandoned == []

    def test_fail_fast_parity_without_faults(self):
        # fail_fast with an injector that never fires must equal the
        # fault-free fast path.
        clean = run_tasks_parallel(_square, list(range(12)), workers=3)
        armed = run_tasks_parallel(
            _square,
            list(range(12)),
            workers=3,
            failure_policy="fail_fast",
            fault_injector=FaultInjector(),
        )
        assert armed.results == clean.results
        assert armed.attempts == clean.attempts

    def test_bernoulli_chaos_with_fixed_seed_is_deterministic(self):
        inj_args = dict(rate=0.4, seed=11)
        runs = [
            run_tasks_parallel(
                _square,
                list(range(20)),
                workers=4,
                failure_policy="retry",
                fault_injector=FaultInjector(**inj_args),
                backoff_base=0.01,
            )
            for _ in range(2)
        ]
        assert runs[0].results == runs[1].results == {i: i * i for i in range(20)}
        assert runs[0].attempts == runs[1].attempts


class TestEdgeCases:
    def test_empty_task_list_resilient(self):
        res = run_tasks_parallel(
            _square, [], workers=2, failure_policy="retry", fault_injector=FaultInjector()
        )
        assert res.results == {}
        assert res.slowest_task() is None
        assert res.complete

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            run_tasks_parallel(_square, [1], workers=0, failure_policy="retry")

    def test_callable_returning_none_is_not_a_failure(self):
        res = run_tasks_parallel(
            _none_task, list(range(4)), workers=2, failure_policy="retry"
        )
        assert res.results == {i: None for i in range(4)}
        assert res.retries == 0
        assert res.attempts == {i: 1 for i in range(4)}

    def test_chunked_resilient_dispatch(self):
        inj = FaultInjector([Fault("raise", task=5, attempt=0)])
        res = run_tasks_parallel(
            _square,
            list(range(10)),
            workers=2,
            chunksize=3,
            failure_policy="retry",
            fault_injector=inj,
            backoff_base=0.01,
        )
        assert res.results == {i: i * i for i in range(10)}
        # Only the faulty task is retried, not its whole chunk.
        assert res.attempts[5] == 2
        assert all(res.attempts[t] == 1 for t in range(10) if t != 5)


class TestFaultObservability:
    def test_trace_tells_the_failure_story(self):
        tr = Tracer()
        inj = FaultInjector(
            [
                Fault("raise", task=1, attempt=0),
                Fault("crash", task=4, attempt=0),
            ]
        )
        run_tasks_parallel(
            _square,
            list(range(8)),
            workers=2,
            failure_policy="retry",
            fault_injector=inj,
            backoff_base=0.01,
            tracer=tr,
        )
        names = [e.name for e in tr.memory.events]
        assert EV_TASK_RETRY in names
        assert EV_WORKER_DEATH in names
        s = summarize_events(tr.memory.events)
        assert s.tasks_executed == 8
        assert s.task_retries >= 2
        assert s.worker_deaths == 1
        assert tr.metrics.counter("pool_retries").value >= 2
        assert tr.metrics.counter("pool_worker_deaths").value == 1

    def test_abandonment_is_traced(self):
        tr = Tracer()
        inj = FaultInjector([Fault("raise", task=0, attempt=a) for a in range(4)])
        res = run_tasks_parallel(
            _square,
            [0, 1],
            workers=1,
            failure_policy="degrade",
            max_retries=1,
            fault_injector=inj,
            backoff_base=0.01,
            tracer=tr,
        )
        assert res.abandoned == [0]
        names = [e.name for e in tr.memory.events]
        assert EV_TASK_ABANDONED in names
        s = summarize_events(tr.memory.events)
        assert s.tasks_abandoned == 1
        assert s.abandoned_tasks == [0]

    def test_injected_fault_exception_type(self):
        inj = FaultInjector([Fault("raise", task=0, attempt=0)])
        with pytest.raises(TaskFailedError) as err:
            run_tasks_parallel(_square, [0], workers=1, fault_injector=inj)
        assert "InjectedFault" in str(err.value.cause)
