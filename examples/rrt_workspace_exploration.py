#!/usr/bin/env python
"""Radial-subdivision parallel RRT: explore a cluttered factory floor.

Demonstrates the tree-based half of the paper: conical region
decomposition around a root, biased regional RRT growth, branch
connection, and the comparison between work stealing (good) and k-rays
repartitioning (poor — the paper's own conclusion) for this dynamic
workload.

Run:  python examples/rrt_workspace_exploration.py [--quick]

``--quick`` shrinks the problem to CI-smoke scale (seconds, same code
paths).
"""

import sys

import numpy as np

from repro.bench import format_table
from repro.core import build_rrt_workload, simulate_rrt
from repro.cspace import EuclideanCSpace
from repro.geometry import mixed_30_env
from repro.planners import dijkstra


def main(quick: bool = False) -> None:
    num_regions = 64 if quick else 512
    num_pes = 32 if quick else 128
    env = mixed_30_env()
    print(f"Environment: {env}")
    cspace = EuclideanCSpace(env)

    rng = np.random.default_rng(0)
    root = np.zeros(3)
    while not cspace.valid_single(root):
        root = rng.uniform(-3.0, 3.0, 3)

    print(f"Growing {num_regions} conical RRT branches (real planning)...")
    workload = build_rrt_workload(
        cspace, root, num_regions=num_regions, nodes_per_region=8, seed=5
    )
    tree = workload.tree
    print(f"  merged tree: {tree}")
    connected = sum(1 for a in workload.adjacency_work if a.edges_added)
    print(f"  {connected} adjacent branch pairs connected, "
          f"{sum(a.cycles_pruned for a in workload.adjacency_work)} cycles pruned")

    # How far can the tree reach?  Longest root-to-leaf path.
    ids, cfgs = tree.configs_array()
    far_vid = int(ids[np.argmax(np.linalg.norm(cfgs - root, axis=1))])
    roots = [v for v, p in workload.parents.items() if p == v]
    best = None
    for r in roots:
        found = dijkstra(tree, r, far_vid)
        if found and (best is None or found[1] < best):
            best = found[1]
    if best is not None:
        print(f"  deepest explored configuration is {best:.1f} units of path away")

    print(f"\nLoad balancing the branch-growth phase (simulated {num_pes}-core run):")
    rows = []
    base = None
    for strategy in ("none", "diffusive", "hybrid", "rand-8", "repartition"):
        run = simulate_rrt(workload, num_pes, strategy)
        if base is None:
            base = run.total_time
        rows.append(
            [
                strategy,
                f"{run.total_time:.0f}",
                f"{run.phases.branch_growth:.0f}",
                f"{run.phases.lb_overhead:.0f}",
                f"{base / run.total_time:.2f}x",
            ]
        )
    print(format_table(["strategy", "virtual time", "growth", "LB overhead", "speedup"], rows))
    print(
        "\nNote how the k-rays repartition pays a probe cost for a weight "
        "that barely predicts branch work — work stealing is the right tool "
        "for RRT, exactly as the paper concludes."
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
