"""Differential property battery for the BVH and the ``bvh`` backend.

The ``bvh`` backend's contract is **bit-exact** equality with
``reference`` — stronger than the stability-guarded statistical gates
fast32 gets — because the tree only culls and the leaves run the
reference expressions verbatim.  Every test here asserts
``np.testing.assert_array_equal`` on verdicts, never a tolerance.

``hypothesis`` drives the world generators when installed; otherwise a
seeded stdlib-``random`` sweep covers the same shapes (same pattern as
``tests/test_properties.py``).
"""

import random

import numpy as np
import pytest

from repro.geometry import AABB, Environment
from repro.geometry.bvh import BVH
from repro.geometry.scenarios import cluttered_spheres, shelf_warehouse
from repro.kernels import EnvKernelData, available_backends, get_backend
from repro.kernels.bvh_backend import _CACHE_ATTR, BVHKernels
from repro.spec import ExecutionPolicy, WorkloadSpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

FALLBACK_EXAMPLES = 25

REF = get_backend("reference")
BVH_K = get_backend("bvh")


def property_test(strategy_builder, fallback_gen, examples=50):
    """Hypothesis ``@given`` when available, seeded sweep otherwise."""

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return settings(max_examples=examples, deadline=None)(
                given(strategy_builder())(fn)
            )

        def runner():
            for seed in range(min(examples, FALLBACK_EXAMPLES)):
                fn(fallback_gen(random.Random(seed)))

        runner.__name__ = fn.__name__
        runner.__doc__ = fn.__doc__
        return runner

    return deco


# -- world generation -------------------------------------------------------


def _world_from_script(script):
    """Build (EnvKernelData, points, segment endpoints) from a seed script.

    ``script`` is ``(seed, n_boxes, n_spheres, dim)``; all geometry is
    derived from one ``default_rng(seed)`` stream so hypothesis shrinks
    over a tiny tuple instead of raw float arrays.
    """
    seed, n_boxes, n_spheres, dim = script
    rng = np.random.default_rng(seed)
    half = 10.0
    center = rng.uniform(-half, half, size=(n_boxes, dim))
    ext = rng.uniform(0.0, 2.5, size=(n_boxes, dim))  # may be zero-volume
    box_lo = center - 0.5 * ext
    box_hi = center + 0.5 * ext
    sph_center = rng.uniform(-half, half, size=(n_spheres, dim))
    sph_radius = rng.uniform(0.05, 2.0, size=n_spheres)
    data = EnvKernelData(
        bounds_lo=-half * np.ones(dim),
        bounds_hi=half * np.ones(dim),
        box_lo=box_lo,
        box_hi=box_hi,
        sph_center=sph_center,
        sph_radius=sph_radius,
    )
    pts = rng.uniform(-half * 1.05, half * 1.05, size=(64, dim))
    p = rng.uniform(-half, half, size=(48, dim))
    q = rng.uniform(-half, half, size=(48, dim))
    # Mix in degenerate segments: zero-length and axis-parallel.
    q[:8] = p[:8]
    q[8:16, 0] = p[8:16, 0]
    return data, pts, p, q


def _script_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=0, max_value=20),
        st.sampled_from([2, 3, 4]),
    )


def _script_fallback(r: random.Random):
    return (r.randrange(2**31), r.randint(0, 60), r.randint(0, 20), r.choice([2, 3, 4]))


def _assert_world_parity(script):
    data, pts, p, q = _world_from_script(script)
    np.testing.assert_array_equal(
        BVH_K.points_free(data, pts), REF.points_free(data, pts)
    )
    np.testing.assert_array_equal(
        BVH_K.segments_free(data, p, q), REF.segments_free(data, p, q)
    )


# -- the differential battery ----------------------------------------------


@property_test(_script_strategy, _script_fallback, examples=60)
def test_random_worlds_bit_exact(script):
    _assert_world_parity(script)


class TestDifferentialParity:
    @pytest.mark.parametrize("n", [1000, 5000])
    def test_warehouse_scenario_bit_exact(self, n):
        env = shelf_warehouse(n, seed=1)
        data = env.kernel_data()
        rng = np.random.default_rng(2)
        pts = rng.uniform(-10.5, 10.5, size=(300, 3))
        p = rng.uniform(-10, 10, size=(150, 3))
        q = rng.uniform(-10, 10, size=(150, 3))
        np.testing.assert_array_equal(
            BVH_K.points_free(data, pts), REF.points_free(data, pts)
        )
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, q), REF.segments_free(data, p, q)
        )

    def test_sphere_scenario_bit_exact(self):
        data = cluttered_spheres(2000, seed=1)
        rng = np.random.default_rng(3)
        pts = rng.uniform(-10, 10, size=(300, 3))
        p = rng.uniform(-10, 10, size=(150, 3))
        q = rng.uniform(-10, 10, size=(150, 3))
        np.testing.assert_array_equal(
            BVH_K.points_free(data, pts), REF.points_free(data, pts)
        )
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, q), REF.segments_free(data, p, q)
        )

    def test_distance_primitives_delegate_to_reference(self):
        rng = np.random.default_rng(4)
        stored = rng.normal(size=(30, 3))
        queries = rng.normal(size=(10, 3))
        out_b = np.empty((10, 30))
        out_r = np.empty((10, 30))
        BVH_K.pairwise_accumulate(stored, queries, out_b)
        REF.pairwise_accumulate(stored, queries, out_r)
        np.testing.assert_array_equal(out_b, out_r)
        ib, db = BVH_K.knn_block_min(stored, queries, 5)
        ir, dr = REF.knn_block_min(stored, queries, 5)
        np.testing.assert_array_equal(ib, ir)
        np.testing.assert_array_equal(db, dr)


# -- degenerate cases -------------------------------------------------------


def _box_world(box_lo, box_hi, half=10.0):
    lo = np.atleast_2d(np.asarray(box_lo, dtype=float))
    dim = lo.shape[1]
    return EnvKernelData(
        bounds_lo=-half * np.ones(dim),
        bounds_hi=half * np.ones(dim),
        box_lo=lo,
        box_hi=np.atleast_2d(np.asarray(box_hi, dtype=float)),
    )


class TestDegenerateCases:
    def test_zero_obstacles(self):
        data = EnvKernelData(
            bounds_lo=np.zeros(3) - 10, bounds_hi=np.zeros(3) + 10
        )
        pts = np.array([[0.0, 0.0, 0.0], [11.0, 0.0, 0.0]])
        np.testing.assert_array_equal(
            BVH_K.points_free(data, pts), REF.points_free(data, pts)
        )
        assert bool(BVH_K.points_free(data, pts)[0]) is True
        p = np.array([[0.0, 0.0, 0.0]])
        q = np.array([[1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, q), [True]
        )

    def test_fully_overlapping_boxes(self):
        """Identical centroids must not degenerate the tree or the verdicts."""
        n = 100
        lo = np.tile([-1.0, -1.0, -1.0], (n, 1))
        hi = np.tile([1.0, 1.0, 1.0], (n, 1))
        data = _box_world(lo, hi)
        rng = np.random.default_rng(5)
        pts = rng.uniform(-2, 2, size=(100, 3))
        p = rng.uniform(-3, 3, size=(60, 3))
        q = rng.uniform(-3, 3, size=(60, 3))
        np.testing.assert_array_equal(
            BVH_K.points_free(data, pts), REF.points_free(data, pts)
        )
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, q), REF.segments_free(data, p, q)
        )

    def test_zero_volume_boxes(self):
        """Planes/lines/points as obstacles: lo == hi on some axes."""
        lo = np.array([[0.0, -5.0, -5.0], [2.0, 2.0, 2.0], [-5.0, 0.0, -5.0]])
        hi = np.array([[0.0, 5.0, 5.0], [2.0, 2.0, 2.0], [5.0, 0.0, 5.0]])
        data = _box_world(lo, hi)
        pts = np.array(
            [[0.0, 0.0, 0.0], [2.0, 2.0, 2.0], [1.0, 1.0, 1.0], [0.0, 6.0, 0.0]]
        )
        np.testing.assert_array_equal(
            BVH_K.points_free(data, pts), REF.points_free(data, pts)
        )
        # Segments crossing / lying in the zero-thickness plane.
        p = np.array([[-1.0, 0.0, 0.0], [0.0, -1.0, 0.0], [3.0, 3.0, 3.0]])
        q = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [4.0, 4.0, 4.0]])
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, q), REF.segments_free(data, p, q)
        )

    def test_segments_grazing_aabb_faces(self):
        """Segments exactly on faces/edges/corners of the box: the most
        boundary-sensitive inputs there are — still bit-exact."""
        data = _box_world([[-1.0, -1.0, -1.0]], [[1.0, 1.0, 1.0]])
        cases_p = np.array(
            [
                [-2.0, 1.0, 0.0],  # slides along the y=+1 face
                [-2.0, -1.0, -1.0],  # slides along an edge
                [1.0, 1.0, 1.0],  # starts exactly at a corner
                [-2.0, 1.0 + 1e-15, 0.0],  # epsilon above the face
                [-2.0, -2.0, -2.0],  # diagonal through the corner
                [1.0, -2.0, 0.0],  # lies in the x=+1 face plane
            ]
        )
        cases_q = np.array(
            [
                [2.0, 1.0, 0.0],
                [2.0, -1.0, -1.0],
                [2.0, 2.0, 2.0],
                [2.0, 1.0 + 1e-15, 0.0],
                [0.0, 0.0, 0.0],
                [1.0, 2.0, 0.0],
            ]
        )
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, cases_p, cases_q),
            REF.segments_free(data, cases_p, cases_q),
        )

    def test_zero_length_segments(self):
        data = _box_world([[-1.0, -1.0, -1.0]], [[1.0, 1.0, 1.0]])
        p = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(
            BVH_K.segments_free(data, p, p), REF.segments_free(data, p, p)
        )

    def test_single_obstacle(self):
        data = _box_world([[0.0, 0.0]], [[1.0, 1.0]])
        pts = np.array([[0.5, 0.5], [2.0, 2.0]])
        np.testing.assert_array_equal(BVH_K.points_free(data, pts), [False, True])


# -- tree structure ---------------------------------------------------------


def _depth(tree: BVH) -> int:
    depth = {0: 1}
    best = 0
    for ni in range(tree.num_nodes):
        d = depth[ni]
        best = max(best, d)
        left = int(tree.node_left[ni])
        if left >= 0:
            depth[left] = depth[left + 1] = d + 1
    return best


class TestTreeStructure:
    def test_empty_tree(self):
        tree = BVH(np.empty((0, 3)), np.empty((0, 3)))
        assert tree.num_nodes == 0
        assert tree.nbytes == 0
        assert not tree.points_hit(np.zeros((4, 3)), None).any()
        assert not tree.segments_hit(np.zeros((4, 3)), np.ones((4, 3)), None).any()

    def test_prim_index_is_permutation(self):
        rng = np.random.default_rng(6)
        lo = rng.uniform(-5, 5, size=(137, 3))
        hi = lo + rng.uniform(0, 1, size=(137, 3))
        tree = BVH(lo, hi)
        assert sorted(tree.prim_index.tolist()) == list(range(137))

    def test_leaves_partition_primitives(self):
        rng = np.random.default_rng(7)
        lo = rng.uniform(-5, 5, size=(200, 3))
        hi = lo + 0.5
        tree = BVH(lo, hi, leaf_size=4)
        leaves = tree.node_left < 0
        assert tree.node_count[leaves].sum() == 200
        assert np.all(tree.node_count[leaves] <= 4)
        assert np.all(tree.node_count[~leaves] == 0)

    def test_identical_centroids_stay_balanced(self):
        """Median-by-count split: 1024 coincident boxes -> O(log n) depth."""
        n = 1024
        lo = np.zeros((n, 3))
        hi = np.ones((n, 3))
        tree = BVH(lo, hi, leaf_size=8)
        assert _depth(tree) <= 12  # perfectly balanced is ceil(log2(1024/8))+1 = 8

    def test_node_boxes_contain_primitives(self):
        rng = np.random.default_rng(8)
        lo = rng.uniform(-5, 5, size=(64, 2))
        hi = lo + rng.uniform(0, 2, size=(64, 2))
        tree = BVH(lo, hi, leaf_size=2)
        # Root box contains everything (inflated, so strict containment).
        assert np.all(tree.node_lo[0] <= lo.min(axis=0))
        assert np.all(tree.node_hi[0] >= hi.max(axis=0))

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            BVH(np.zeros((3, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError, match="leaf_size"):
            BVH(np.zeros((3, 2)), np.ones((3, 2)), leaf_size=0)


# -- snapshot caching & invalidation ---------------------------------------


class TestInvalidation:
    def test_tree_cached_on_snapshot(self):
        env = Environment(
            AABB(np.zeros(3), 10 * np.ones(3)),
            [AABB(np.ones(3), 2 * np.ones(3))],
            kernel_backend="bvh",
        )
        pts = np.array([[1.5, 1.5, 1.5]])
        env.points_in_collision(pts)
        data = env.kernel_data()
        trees = getattr(data, _CACHE_ATTR)
        first = trees["box"]
        env.points_in_collision(pts)
        assert getattr(env.kernel_data(), _CACHE_ATTR)["box"] is first

    def test_mutation_invalidates_tree(self):
        """add_obstacle after the BVH is cached: verdicts must track the
        mutated obstacle set, and parity with reference must re-hold."""
        env = Environment(
            AABB(np.zeros(3), 10 * np.ones(3)),
            [AABB(np.ones(3), 2 * np.ones(3))],
            kernel_backend="bvh",
        )
        probe = np.array([[5.0, 5.0, 5.0], [1.5, 1.5, 1.5]])
        before = env.points_in_collision(probe)
        np.testing.assert_array_equal(before, [False, True])
        old_data = env.kernel_data()
        assert getattr(old_data, _CACHE_ATTR)["box"] is not None

        env.add_obstacle(AABB(4 * np.ones(3), 6 * np.ones(3)))
        after = env.points_in_collision(probe)
        np.testing.assert_array_equal(after, [True, True])
        # Fresh snapshot, fresh tree — the stale one is unreachable.
        new_data = env.kernel_data()
        assert new_data is not old_data
        assert getattr(new_data, _CACHE_ATTR)["box"] is not getattr(old_data, _CACHE_ATTR)["box"]

    def test_post_mutation_parity_random_worlds(self):
        rng = np.random.default_rng(9)
        env_b = Environment(AABB(np.zeros(3), 10 * np.ones(3)), kernel_backend="bvh")
        env_r = Environment(AABB(np.zeros(3), 10 * np.ones(3)))
        for round_ in range(4):
            lo = rng.uniform(0, 9, size=3)
            box = AABB(lo, lo + rng.uniform(0.1, 2, size=3))
            env_b.add_obstacle(box)
            env_r.add_obstacle(box)
            pts = rng.uniform(-1, 11, size=(80, 3))
            p = rng.uniform(0, 10, size=(40, 3))
            q = rng.uniform(0, 10, size=(40, 3))
            np.testing.assert_array_equal(
                env_b.points_in_collision(pts), env_r.points_in_collision(pts)
            )
            np.testing.assert_array_equal(
                env_b.segments_in_collision(p, q), env_r.segments_in_collision(p, q)
            )


# -- end-to-end wiring ------------------------------------------------------


class TestEndToEnd:
    def test_registered(self):
        assert "bvh" in available_backends()
        assert isinstance(get_backend("bvh"), BVHKernels)

    def test_execution_policy_accepts_bvh(self):
        ExecutionPolicy(kernel_backend="bvh").validate()

    def test_plan_roadmap_identical_to_reference(self):
        from repro import PlanRequest, plan

        wl = WorkloadSpec(num_regions=8, samples_per_region=6, environment="mixed")
        ref = plan(PlanRequest(workload=wl, execution=ExecutionPolicy(num_pes=2)))
        bvh = plan(
            PlanRequest(
                workload=wl,
                execution=ExecutionPolicy(num_pes=2, kernel_backend="bvh"),
            )
        )
        assert bvh.roadmap.num_vertices == ref.roadmap.num_vertices
        assert sorted(bvh.roadmap.edges()) == sorted(ref.roadmap.edges())
        ids_b, cfg_b = bvh.roadmap.configs_array()
        ids_r, cfg_r = ref.roadmap.configs_array()
        np.testing.assert_array_equal(ids_b, ids_r)
        np.testing.assert_array_equal(cfg_b, cfg_r)

    def test_build_engine_frozen_bit_identical(self):
        from repro.service.cache import build_engine

        spec = WorkloadSpec(num_regions=8, samples_per_region=6, environment="mixed")
        ref = build_engine(spec).frozen
        bvh = build_engine(spec, kernels="bvh").frozen
        np.testing.assert_array_equal(bvh.configs, ref.configs)
        np.testing.assert_array_equal(bvh.ids, ref.ids)
        np.testing.assert_array_equal(bvh.indptr, ref.indptr)
        np.testing.assert_array_equal(bvh.indices, ref.indices)
        np.testing.assert_array_equal(bvh.weights, ref.weights)

    def test_cache_key_isolates_bvh(self):
        from repro.service.cache import RoadmapCache

        spec = WorkloadSpec(num_regions=6, samples_per_region=4)
        plain = RoadmapCache()
        bvh = RoadmapCache(kernels="bvh")
        assert plain._key_for(spec) != bvh._key_for(spec)
        assert bvh._key_for(spec).endswith("|kernels=bvh")

    def test_environment_backend_roundtrip(self):
        env = Environment(AABB(np.zeros(2), np.ones(2)))
        env.set_kernel_backend("bvh")
        assert env.kernel_backend.name == "bvh"
