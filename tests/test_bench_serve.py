"""Tests for the PlanService load-generator bench (repro.bench.serve)."""

import json

import pytest

from repro.bench import serve

#: A sub-smoke scale so the whole suite runs in a couple of seconds.
_TINY = {
    "tenants": 2, "num_regions": 8, "samples_per_region": 2,
    "queries_per_tenant": 6, "baseline_requests": 12,
    "closed_clients": 4, "closed_requests": 24,
    "open_requests": 24, "open_rate": 800.0,
    "max_batch": 4, "max_linger": 0.002, "repeats": 1,
}


@pytest.fixture
def tiny_scale(monkeypatch):
    monkeypatch.setitem(serve.SCALES, "tiny", _TINY)
    return "tiny"


@pytest.fixture(scope="module")
def tiny_rows():
    """One shared tiny run (the suite asserts parity internally)."""
    scales = dict(serve.SCALES)
    serve.SCALES["tiny"] = _TINY
    try:
        return serve.run_suite("tiny")
    finally:
        serve.SCALES.clear()
        serve.SCALES.update(scales)


class TestRunSuite:
    def test_rows_present_and_parity_clean(self, tiny_rows):
        tput = tiny_rows["serve_throughput"]
        lat = tiny_rows["serve_latency"]
        assert tput["parity_cached"] is True
        assert tput["parity_uncached"] is True
        assert tput["baseline_qps"] > 0
        assert tput["serve_qps"] > 0
        assert 0.0 <= tput["cache_hit_rate"] <= 1.0
        assert lat["closed_p999_ms"] >= lat["closed_p50_ms"] >= 0
        assert lat["open_p999_ms"] >= lat["open_p50_ms"] >= 0

    def test_required_fields_all_present(self, tiny_rows):
        for name, fields in serve._SERVE_REQUIRED.items():
            for f in fields:
                assert f in tiny_rows[name], (name, f)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            serve.run_suite("galactic")


class TestValidate:
    def _payload(self, tiny_rows):
        return {"suite": "repro-perf", "scale": "tiny", "benchmarks": dict(tiny_rows)}

    def test_valid_payload_passes(self, tiny_rows):
        assert serve.validate(self._payload(tiny_rows)) == []

    def test_parity_false_is_flagged(self, tiny_rows):
        payload = self._payload(tiny_rows)
        payload["benchmarks"]["serve_throughput"] = dict(
            payload["benchmarks"]["serve_throughput"], parity_cached=False
        )
        assert any("parity_cached" in p for p in serve.validate(payload))

    def test_missing_rows_flagged(self):
        payload = {"suite": "repro-perf", "benchmarks": {}}
        problems = serve.validate(payload)
        assert any("serve_throughput" in p for p in problems)
        assert any("serve_latency" in p for p in problems)

    def test_serve_rows_optional_in_perf_validate(self):
        # A perf-only benchmarks dict (no serve rows) is not a problem for
        # the row validator perf --check delegates to.
        assert serve.validate_serve_rows({"knn": {}}) == []

    def test_bad_hit_rate_flagged(self, tiny_rows):
        payload = self._payload(tiny_rows)
        payload["benchmarks"]["serve_throughput"] = dict(
            payload["benchmarks"]["serve_throughput"], cache_hit_rate=1.7
        )
        assert any("cache_hit_rate" in p for p in serve.validate(payload))


class TestCli:
    def test_check_ok_and_merge(self, tiny_rows, tiny_scale, tmp_path, capsys):
        out = tmp_path / "BENCH_perf.json"
        # Pre-existing perf payload: serve must merge, not clobber.
        out.write_text(json.dumps({
            "suite": "repro-perf", "scale": "smoke",
            "benchmarks": {"knn": {"speedup": 2.0}},
        }))
        rc = serve.main(["--scale", tiny_scale, "--output", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "knn" in payload["benchmarks"]
        assert "serve_throughput" in payload["benchmarks"]
        assert "serve_latency" in payload["benchmarks"]
        assert serve.main(["--check", str(out)]) == 0

    def test_check_rejects_malformed(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"suite": "other"}))
        assert serve.main(["--check", str(bad)]) == 1
        assert serve.main(["--check", str(tmp_path / "missing.json")]) == 2

    def test_trace_artifact_written(self, tiny_scale, tmp_path):
        out = tmp_path / "out.json"
        trace = tmp_path / "trace.jsonl"
        rc = serve.main(
            ["--scale", tiny_scale, "--output", str(out), "--trace", str(trace)]
        )
        assert rc == 0
        from repro.obs import read_jsonl

        events = read_jsonl(trace)
        names = {e.name for e in events}
        assert "batch_flush" in names
        assert "cache_hit" in names
