"""Incremental nearest neighbours for growing point sets.

RRT grows its tree one vertex at a time and queries the structure between
every insertion, which rules out both a static kd-tree (stale after one
insert) and a brute-force scan (O(n) per query makes the build O(n²) —
the ``nn_distance_evals`` wall in BENCH_perf.json).  This module is the
classic logarithmic-rebuild answer (Bentley & Saxe's static-to-dynamic
transformation): a *ladder* of frozen kd-trees of geometrically growing
sizes plus a small brute-force buffer.

* **Inserts** append to the buffer (O(1)).  When the buffer reaches
  capacity ``B``, its points merge with every occupied rung below the
  first empty rung ``j`` into one freshly built kd-tree of ``B·2^j``
  points — rung sizes follow the bits of ``n // B``, so each point is
  rebuilt O(log n) times and the amortised insert cost is O(log² n).
* **Queries** probe every occupied rung (a :class:`KDTreeNN` descent
  each) plus the buffer (one vectorised scan of ≤ ``B`` rows) and merge
  the candidates under the canonical ``(distance, insertion order)``
  key.

Because rungs always absorb the buffer together with every rung below
them, each rung covers a *contiguous* range of insertion slots, with
higher rungs holding older points — the merge step is a slice, never a
gather.

Two properties make it a drop-in for :class:`~repro.knn.brute
.BruteForceNN` (the contract every backend in this package shares):

* **Canonical tie-breaking** — candidates merge by ``(distance,
  insertion slot)``.  Rung kd-trees are built with ids equal to global
  insertion slots inserted in ascending order, so their internal
  insertion-sequence tie-break *is* the global insertion order; the
  buffer scan indexes by slot directly.
* **Bit-identical distances** — rung descents accumulate squared
  per-axis differences left to right in Python floats
  (:class:`KDTreeNN`'s arithmetic) and the buffer scan is a row-wise
  ``np.linalg.norm`` over a slice of the stored array, both of which
  match BruteForceNN's full-scan values bit for bit.

The structure's :class:`~repro.knn.base.KnnStats` additionally count
``rebuilds`` (rung merges), ``buffer_hits`` (returned neighbours that
were still sitting in the brute buffer) and ``evals_saved`` (distance
evaluations a brute-force scan would have spent minus what the ladder
actually spent) — surfaced as planner counters and in the bench rows.
"""

from __future__ import annotations

import numpy as np

from .base import NeighborFinder
from .kdtree import KDTreeNN

__all__ = ["IncrementalNN"]

#: Default brute-buffer capacity.  Large enough that rebuilds are rare
#: and the rung count stays small, small enough that the vectorised
#: buffer scan is cheap next to a rung descent (the best measured
#: growing-stream throughput at 10^4-10^5 points; see docs/nn.md).
_DEFAULT_BUFFER = 128

_INITIAL_CAPACITY = 64


class IncrementalNN(NeighborFinder):
    """Logarithmic-rebuild kd-tree forest over ``dim``-dimensional points.

    ``kernels`` is accepted for factory-signature uniformity with the
    other backends; every distance here is exact float64 regardless.
    ``buffer_capacity`` is the brute-buffer size ``B`` (rung ``j`` holds
    ``B·2^j`` points).
    """

    def __init__(self, dim: int, kernels=None, buffer_capacity: int = _DEFAULT_BUFFER):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        self.dim = dim
        self.kernels = kernels
        self.buffer_capacity = buffer_capacity
        # Global insertion-order store (amortised growth, like BruteForceNN):
        # slot index == insertion sequence number, the canonical tie-break.
        self._points = np.empty((_INITIAL_CAPACITY, dim))
        self._ids = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._n = 0
        # Rung ladder: rung j is None or (lo, KDTreeNN over slots [lo, hi)),
        # where hi is the next-lower occupied rung's lo (or the buffer
        # start).  Slots in [self._buf_start, self._n) are the buffer.
        self._rungs: "list[tuple[int, KDTreeNN] | None]" = []
        self._buf_start = 0
        # External-id multiplicities, so `exclude` can over-fetch exactly.
        self._id_count: "dict[int, int]" = {}

    # -- construction -------------------------------------------------------
    def _ensure_capacity(self, extra: int) -> None:
        need = self._n + extra
        cap = self._points.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        points = np.empty((new_cap, self.dim))
        points[: self._n] = self._points[: self._n]
        ids = np.empty(new_cap, dtype=np.int64)
        ids[: self._n] = self._ids[: self._n]
        self._points, self._ids = points, ids

    def _rebuild(self) -> None:
        """Merge the full buffer and every rung below the first empty one
        into a single freshly built kd-tree at that rung."""
        j = 0
        lo = self._buf_start
        while j < len(self._rungs) and self._rungs[j] is not None:
            lo = min(lo, self._rungs[j][0])
            self._rungs[j] = None
            j += 1
        if j == len(self._rungs):
            self._rungs.append(None)
        tree = KDTreeNN(self.dim)
        # Ids are global slots inserted in ascending order: the rung's
        # internal insertion-sequence tie-break equals the global one.
        slots = np.arange(lo, self._n, dtype=np.int64)
        tree.add_batch(slots, self._points[lo : self._n])
        self._rungs[j] = (lo, tree)
        self._buf_start = self._n
        self.stats.rebuilds += 1

    def add(self, point_id: int, point: np.ndarray) -> None:
        pt = np.asarray(point, dtype=float)
        if pt.shape != (self.dim,):
            raise ValueError(f"point must have shape ({self.dim},), got {pt.shape}")
        self._ensure_capacity(1)
        self._points[self._n] = pt
        self._ids[self._n] = int(point_id)
        self._n += 1
        self._id_count[int(point_id)] = self._id_count.get(int(point_id), 0) + 1
        if self._n - self._buf_start >= self.buffer_capacity:
            self._rebuild()

    def add_batch(self, ids: np.ndarray, points: np.ndarray) -> None:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        ids = np.asarray(ids, dtype=np.int64)
        if ids.shape[0] != points.shape[0]:
            raise ValueError("ids and points length mismatch")
        if points.shape[0] and points.shape[1] != self.dim:
            raise ValueError(f"points must have shape (m, {self.dim}), got {points.shape}")
        # One at a time: the rebuild schedule (and therefore the stats)
        # must match the interleaved insert stream the planners perform.
        for pid, row in zip(ids, points):
            self.add(pid, row)

    # -- queries -----------------------------------------------------------
    def _candidates(self, q: np.ndarray, k: int, exclude: "int | None"):
        """``(slot, distance)`` candidates from every rung plus the buffer,
        enough that the best ``k`` non-excluded are certainly among them.
        Also charges ``distance_evals`` (and ``evals_saved``)."""
        n_excl = self._id_count.get(exclude, 0) if exclude is not None else 0
        cands: "list[tuple[float, int]]" = []
        evals = 0
        for rung in self._rungs:
            if rung is None:
                continue
            _lo, tree = rung
            before = tree.stats.distance_evals
            # Rung ids are slots; over-fetch by the exclude multiplicity
            # and filter below, which preserves exactness: at most
            # ``n_excl`` of the rung's best k+n_excl can be excluded.
            for slot, d in tree.knn(q, k + n_excl):
                if exclude is None or self._ids[slot] != exclude:
                    cands.append((d, slot))
            evals += tree.stats.distance_evals - before
        b0, b1 = self._buf_start, self._n
        if b1 > b0:
            # Row-wise norm over the buffer slice: bit-identical to the
            # full-scan distances BruteForceNN computes for these rows.
            d_buf = np.linalg.norm(self._points[b0:b1] - q[None, :], axis=1)
            evals += b1 - b0
            for off, d in enumerate(d_buf.tolist()):
                slot = b0 + off
                if exclude is None or self._ids[slot] != exclude:
                    cands.append((d, slot))
        self.stats.distance_evals += evals
        self.stats.evals_saved += self._n - evals
        return cands

    def _nn1(self, q: np.ndarray) -> "list[tuple[int, float]]":
        """Hot path for ``knn(q, 1)`` without ``exclude`` — the query RRT
        issues once per extension.  The buffer scan runs first so its
        best distance becomes the prune radius for every rung descent
        (:meth:`KDTreeNN.nn1`), and each rung tightens the radius for the
        next; ties survive because pruning is strictly-greater-than and
        later-probed rungs hold strictly older slots."""
        best_d = np.inf
        best_slot = -1
        evals = 0
        b0, b1 = self._buf_start, self._n
        if b1 > b0:
            d_buf = np.linalg.norm(self._points[b0:b1] - q[None, :], axis=1)
            evals += b1 - b0
            # argmin returns the FIRST minimum — the earliest slot.
            off = int(np.argmin(d_buf))
            best_d = float(d_buf[off])
            best_slot = b0 + off
        for rung in self._rungs:
            if rung is None:
                continue
            tree = rung[1]
            before = tree.stats.distance_evals
            slot, d = tree.nn1(q, best_d)
            evals += tree.stats.distance_evals - before
            # Rung slots are strictly older (smaller) than everything
            # probed so far, so an exact tie flips to the rung.
            if d < best_d or d == best_d:
                best_d, best_slot = d, slot
        self.stats.distance_evals += evals
        self.stats.evals_saved += self._n - evals
        if best_slot >= self._buf_start:
            self.stats.buffer_hits += 1
        return [(int(self._ids[best_slot]), best_d)]

    def knn(self, query: np.ndarray, k: int, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0 or k <= 0:
            return []
        q = np.asarray(query, dtype=float)
        self.stats.queries += 1
        if k == 1 and exclude is None:
            return self._nn1(q)
        cands = self._candidates(q, k, exclude)
        # The canonical (distance, insertion order) order: slot == global
        # insertion sequence, so sorting by (d, slot) replays exactly the
        # selection BruteForceNN's stable top-k performs.
        cands.sort()
        out = cands[:k]
        self.stats.buffer_hits += sum(1 for _d, slot in out if slot >= self._buf_start)
        return [(int(self._ids[slot]), d) for d, slot in out]

    def radius(self, query: np.ndarray, r: float, exclude: int | None = None) -> "list[tuple[int, float]]":
        if self._n == 0:
            return []
        q = np.asarray(query, dtype=float)
        self.stats.queries += 1
        found: "list[tuple[float, int]]" = []
        evals = 0
        for rung in self._rungs:
            if rung is None:
                continue
            _lo, tree = rung
            before = tree.stats.distance_evals
            for slot, d in tree.radius(q, r):
                if exclude is None or self._ids[slot] != exclude:
                    found.append((d, slot))
            evals += tree.stats.distance_evals - before
        b0, b1 = self._buf_start, self._n
        if b1 > b0:
            d_buf = np.linalg.norm(self._points[b0:b1] - q[None, :], axis=1)
            evals += b1 - b0
            for off, d in enumerate(d_buf.tolist()):
                slot = b0 + off
                if d <= r and (exclude is None or self._ids[slot] != exclude):
                    found.append((d, slot))
        self.stats.distance_evals += evals
        self.stats.evals_saved += self._n - evals
        found.sort()
        return [(int(self._ids[slot]), d) for d, slot in found]

    def __len__(self) -> int:
        return self._n

    # -- diagnostics --------------------------------------------------------
    def rung_sizes(self) -> "list[int]":
        """Occupied-rung point counts, smallest rung first (0 = empty
        rung), excluding the buffer — for tests and docs."""
        return [0 if rung is None else len(rung[1]) for rung in self._rungs]

    @property
    def buffer_size(self) -> int:
        """Points currently in the brute-force buffer."""
        return self._n - self._buf_start
