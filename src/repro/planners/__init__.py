"""Sequential sampling-based planners: PRM, RRT, queries, smoothing."""

from .engine import BatchQueryResult, QueryEngine, QueryRequest
from .frozen import FrozenRoadmap
from .prm import PRM, PRMResult
from .query import QueryResult, RoadmapQuery, astar, dijkstra
from .roadmap import Roadmap, UnionFind
from .rrt import RRT, RRTResult
from .smoothing import path_length, shortcut_smooth
from .stats import PlannerStats, WorkModel

__all__ = [
    "PRM",
    "PRMResult",
    "QueryResult",
    "QueryEngine",
    "QueryRequest",
    "BatchQueryResult",
    "FrozenRoadmap",
    "RoadmapQuery",
    "astar",
    "dijkstra",
    "Roadmap",
    "UnionFind",
    "RRT",
    "RRTResult",
    "path_length",
    "shortcut_smooth",
    "PlannerStats",
    "WorkModel",
]
