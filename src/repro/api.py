"""repro.api — one entry point over the whole planning pipeline.

The repo's primitives are deliberately separable (build a workload once,
replay it under many strategies), but most callers want the whole chain:
environment → subdivision → regional planning → weights/repartition →
simulated machine or local pool.  :func:`plan` composes it:

    >>> from repro import ExecutionPolicy, PlanRequest, WorkloadSpec, plan
    >>> report = plan(PlanRequest(
    ...     workload=WorkloadSpec(environment="med-cube", planner="prm",
    ...                           num_regions=512, seed=1),
    ...     execution=ExecutionPolicy(strategy="hybrid", num_pes=96),
    ... ))
    >>> report.total_time, report.sim.efficiency()

Every knob rides on the request's four composable specs (see
:mod:`repro.spec`): the :class:`~repro.spec.WorkloadSpec` problem
definition, the :class:`~repro.spec.ExecutionPolicy` (simulated machine
or local pool), the :class:`~repro.spec.FaultPolicy`, and the
:class:`~repro.spec.ObsConfig` tracer hook.  The same spec objects drive
:meth:`PlanReport.solve_queries` batch serving and the persistent
:class:`repro.service.PlanService`; a bare :class:`WorkloadSpec` is also
accepted directly::

    >>> plan(WorkloadSpec(num_regions=64), execution=ExecutionPolicy(num_pes=8))

The legacy flat-kwarg construction (``PlanRequest(num_regions=512,
num_pes=96, ...)``) keeps working through a deprecation shim, and the
legacy entry points (``build_prm_workload`` / ``simulate_prm`` and the
RRT pair) remain the underlying building blocks.

``ExecutionPolicy.mode == "simulate"`` (default) replays the measured
workload on a virtual machine of ``num_pes`` PEs.  ``mode == "local"``
instead runs the regional planners truly in parallel on this machine's
cores via :func:`repro.runtime.run_tasks_parallel` and reports
wall-clock numbers.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from .core.parallel_prm import (
    ID_SHIFT,
    PRMRunResult,
    PRMWorkload,
    _positional_bounds,
    _region_sample_box,
    build_prm_workload,
    simulate_prm,
)
from .core.parallel_rrt import (
    RRTRunResult,
    RRTWorkload,
    _lift_position,
    build_rrt_workload,
    simulate_rrt,
)
from .cspace.space import ConfigurationSpace, EuclideanCSpace
from .geometry.environment import Environment
from .geometry.primitives import AABB
from .knn import get_nn_factory
from .obs.summary import TraceSummary, format_summary, summarize_events
from .obs.tracer import active
from .planners.engine import BatchQueryResult, QueryEngine
from .planners.prm import PRM
from .planners.roadmap import Roadmap
from .planners.rrt import RRT
from .planners.stats import PlannerStats
from .runtime import shm as _shm
from .runtime.local_pool import PoolResult, run_tasks_parallel
from .spec import ExecutionPolicy, FaultPolicy, ObsConfig, PlanRequest, WorkloadSpec
from .subdivision.radial import RadialSubdivision
from .subdivision.uniform import UniformSubdivision

if TYPE_CHECKING:
    from .runtime.stats import SimResult

__all__ = [
    "PlanRequest",
    "PlanReport",
    "plan",
    "WorkloadSpec",
    "ExecutionPolicy",
    "FaultPolicy",
    "ObsConfig",
]


@dataclass
class PlanReport:
    """What came back: the workload, the machine result, and accessors
    that read the same regardless of planner or execution mode."""

    request: PlanRequest
    #: measured workload (simulate mode; None for local execution).
    workload: "PRMWorkload | RRTWorkload | None"
    #: simulated run (None for local execution).
    result: "PRMRunResult | RRTRunResult | None"
    #: local pool accounting (None for simulate mode).
    pool: "PoolResult | None"
    #: merged roadmap / tree across regions.
    roadmap: Roadmap
    #: merged per-region operation counts (local mode; None for simulate,
    #: where the counts live on the workload's region ledger).
    local_stats: "PlannerStats | None" = None
    #: ``(point_checks, segment_checks)`` summed across local tasks.
    local_counters: "tuple[int, int] | None" = None

    @property
    def phases(self):
        """Per-phase breakdown (PhaseBreakdown protocol); simulate only."""
        return self.result.phases if self.result is not None else None

    @property
    def sim(self) -> "SimResult | None":
        """Simulator output of the load-balanced phase; simulate only."""
        return self.result.sim if self.result is not None else None

    @property
    def total_time(self) -> float:
        """Virtual seconds (simulate) or wall seconds (local)."""
        if self.result is not None:
            return self.result.total_time
        return self.pool.wall_time if self.pool is not None else 0.0

    @property
    def retries(self) -> int:
        """Failed attempts that were rescheduled, either execution mode."""
        if self.pool is not None:
            return self.pool.retries
        return self.sim.retries if self.sim is not None else 0

    @property
    def abandoned_regions(self) -> "list[int]":
        """Regions given up on under the ``"degrade"`` policy (sorted)."""
        if self.pool is not None:
            return list(self.pool.abandoned)
        return list(self.sim.abandoned) if self.sim is not None else []

    @property
    def worker_deaths(self) -> int:
        """Workers (local pool) or PEs (simulator) that died during the run."""
        if self.pool is not None:
            return self.pool.worker_deaths
        return self.sim.worker_deaths if self.sim is not None else 0

    @property
    def metrics(self) -> "dict[str, object] | None":
        """Snapshot of the tracer's metric registry, if one was attached."""
        tr = active(self.request.tracer)
        return tr.metrics.as_dict() if tr is not None else None

    def query_engine(
        self, k: int = 8, nn_factory=None, local_planner=None, kernels=None
    ) -> QueryEngine:
        """A query-serving engine over this report's roadmap.

        The engine freezes the roadmap into a CSR snapshot and builds one
        reusable NN index, amortising all per-query setup; see
        :class:`repro.planners.engine.QueryEngine`.  The engine built for
        one argument combination is cached, so repeated calls (and
        :meth:`solve_queries`) reuse the same snapshot and index.
        ``kernels`` defaults to the plan's own
        ``ExecutionPolicy.kernel_backend``, so a fast32 plan serves its
        queries through fast32 kernels too; ``nn_factory`` likewise
        defaults to the plan's ``ExecutionPolicy.nn_backend`` (a
        :mod:`repro.knn` registry name is accepted directly).
        """
        if kernels is None:
            kernels = self.request.execution.kernel_backend
        if nn_factory is None:
            nn_factory = self.request.execution.nn_backend
        key = (k, nn_factory, local_planner, kernels)
        cached = getattr(self, "_engine_cache", None)
        if cached is not None and cached[0] == key:
            return cached[1]
        cspace = self.request.resolve_cspace()
        if kernels is not None:
            cspace.set_kernel_backend(kernels)
        engine = QueryEngine(
            cspace,
            self.roadmap,
            local_planner=local_planner,
            k=k,
            nn_factory=nn_factory,
            kernels=kernels,
        )
        self._engine_cache = (key, engine)
        return engine

    def solve_queries(
        self,
        requests,
        execution: "ExecutionPolicy | None" = None,
        faults: "FaultPolicy | None" = None,
        **kwargs,
    ) -> BatchQueryResult:
        """Solve a batch of ``(start, goal)`` queries against the built
        roadmap via the cached :meth:`query_engine`.

        ``execution`` / ``faults`` specs (the same objects :func:`plan`
        and :class:`repro.service.PlanService` take) configure the pool
        dispatch and retry/degrade policy; loose keyword arguments still
        pass through to
        :meth:`repro.planners.engine.QueryEngine.solve_many` (``workers``,
        ``backend``, ``failure_policy``, ...).  The request's tracer is
        attached by default so query events land in the same trace as the
        build, and retry/abandonment accounting surfaces on the returned
        :class:`~repro.planners.engine.BatchQueryResult` exactly as
        :func:`plan` surfaces it on the report (``retries``,
        ``abandoned``, ``attempts``, ``worker_deaths``).
        """
        kwargs.setdefault("tracer", self.request.tracer)
        return self.query_engine().solve_many(
            requests, execution=execution, faults=faults, **kwargs
        )

    def trace_summary(self) -> "TraceSummary | None":
        """Aggregate the attached tracer's in-memory trace, if any."""
        tr = active(self.request.tracer)
        if tr is None or tr.memory is None:
            return None
        return summarize_events(tr.memory.events)

    @property
    def dispatch(self):
        """Dispatch accounting (chunking, bytes shipped, shm traffic) of
        the local pool run; None in simulate mode."""
        return self.pool.dispatch if self.pool is not None else None

    @property
    def planner_stats(self):
        """Merged per-region operation counts, either execution mode."""
        if self.workload is None:
            return self.local_stats
        work = getattr(self.workload, "region_work", None)
        if work is None:
            work = self.workload.branch_work
        total = PlannerStats()
        for w in work.values():
            total += w.stats
        return total

    def summary(self) -> str:
        """Human-readable report of the run."""
        lines = [
            f"{self.request.planner.upper()} / {self.request.strategy} "
            f"on {self.request.num_pes} PEs ({self.request.execution.mode})",
            f"roadmap: {self.roadmap.num_vertices} vertices, "
            f"{self.roadmap.num_edges} edges",
            f"total time: {self.total_time:.2f}",
        ]
        if self.pool is not None:
            slowest = self.pool.slowest_task()
            if slowest is not None:
                lines.append(
                    f"slowest region: #{slowest[0]} at {slowest[1]:.3f}s "
                    f"across {self.pool.workers} workers"
                )
        if self.retries or self.abandoned_regions or self.worker_deaths:
            lines.append(
                f"failures: {self.retries} retries, "
                f"{len(self.abandoned_regions)} abandoned regions, "
                f"{self.worker_deaths} worker deaths"
            )
        ts = self.trace_summary()
        if ts is not None:
            lines += ["", format_summary(ts, planner_stats=self.planner_stats)]
        return "\n".join(lines)


def plan(
    request: "PlanRequest | WorkloadSpec",
    execution: "ExecutionPolicy | None" = None,
    faults: "FaultPolicy | None" = None,
    obs: "ObsConfig | None" = None,
) -> PlanReport:
    """Run the full pipeline described by ``request``.

    ``request`` is a :class:`~repro.spec.PlanRequest`, or a bare
    :class:`~repro.spec.WorkloadSpec` combined with optional
    ``execution`` / ``faults`` / ``obs`` specs — the same vocabulary
    every other entry point (:meth:`PlanReport.solve_queries`,
    :class:`repro.service.PlanService`) speaks.
    """
    if isinstance(request, WorkloadSpec):
        request = PlanRequest(
            workload=request, execution=execution, faults=faults, obs=obs
        )
    elif execution is not None or faults is not None or obs is not None:
        raise TypeError(
            "execution/faults/obs overrides are only accepted with a bare "
            "WorkloadSpec; a full PlanRequest already carries them"
        )
    request.validate()
    wl, ex, fa, ob = request.workload, request.execution, request.faults, request.obs
    cspace = request.resolve_cspace()
    if ex.kernel_backend is not None:
        # Route every collision/distance hot path of this plan through the
        # requested repro.kernels backend.  Environments resolved by
        # catalog name are fresh objects, so this configures only the
        # plan's own workspace (a caller-supplied Environment instance is
        # configured in place — the caller asked for the backend).
        cspace.set_kernel_backend(ex.kernel_backend)
    if ex.mode == "local":
        return _plan_local(request, cspace)
    # Workload options may already carry an explicit nn_factory; the
    # policy's nn_backend fills it in only when they don't.
    wl_options = dict(wl.options)
    if ex.nn_backend is not None:
        wl_options.setdefault("nn_factory", get_nn_factory(ex.nn_backend))
    if wl.planner == "prm":
        workload = build_prm_workload(
            cspace,
            num_regions=wl.num_regions,
            samples_per_region=wl.samples_per_region,
            seed=wl.seed,
            **wl_options,
        )
        result = simulate_prm(
            workload,
            ex.num_pes,
            ex.strategy,
            topology=ex.topology,
            steal_chunk=ex.steal_chunk,
            tracer=ob.tracer,
            initial_partitioner=ex.partitioner,
            fault_injector=fa.injector,
            max_retries=fa.max_retries,
        )
    else:
        root = _default_root(cspace, wl.seed)
        workload = build_rrt_workload(
            cspace,
            root,
            num_regions=wl.num_regions,
            nodes_per_region=wl.nodes_per_region,
            seed=wl.seed,
            **wl_options,
        )
        result = simulate_rrt(
            workload,
            ex.num_pes,
            ex.strategy,
            topology=ex.topology,
            steal_chunk=ex.steal_chunk,
            tracer=ob.tracer,
            initial_partitioner=ex.partitioner,
            fault_injector=fa.injector,
            max_retries=fa.max_retries,
        )
    return PlanReport(
        request=request,
        workload=workload,
        result=result,
        pool=None,
        roadmap=workload.roadmap,
    )


def _default_root(cspace: ConfigurationSpace, seed: int) -> np.ndarray:
    """A valid RRT root: the bounds centre if free, else a valid sample.

    Sampling starts near the centre and widens to the full bounds — some
    environments (e.g. med-cube) block the entire central region.
    """
    lo, hi = cspace.bounds.lo, cspace.bounds.hi
    mid = (lo + hi) / 2.0
    root = mid.copy()
    rng = np.random.default_rng(seed)
    for attempt in range(10_000):
        if cspace.valid_single(root):
            return root
        scale = 0.3 if attempt < 64 else 1.0
        root = rng.uniform(mid + scale * (lo - mid), mid + scale * (hi - mid))
    raise ValueError("no valid RRT root found; environment looks fully blocked")


# ---------------------------------------------------------------------------
# Local (true-parallel) execution
# ---------------------------------------------------------------------------
# Module-level tasks bound with functools.partial so the "process" backend
# can pickle them; the default "thread" backend works either way.  Each task
# returns ``(roadmap, stats, (point_checks, segment_checks))`` so operation
# counts survive the hop back from worker processes, where the parent's
# environment counters never tick.

def _counters_of(cspace: ConfigurationSpace):
    env = getattr(cspace, "env", None)
    return getattr(env, "counters", None)


def _prm_region_task(
    cspace: ConfigurationSpace,
    subdivision: UniformSubdivision,
    samples_per_region: int,
    seed: int,
    nn_backend: "str | None",
    rid: int,
) -> "tuple[Roadmap, PlannerStats, tuple[int, int]]":
    region = subdivision.region_of(rid)
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
    planner = PRM(
        cspace,
        connect_same_component=False,
        nn_factory=get_nn_factory(nn_backend),
    )
    within = _region_sample_box(cspace, region.sample_bounds)
    counters = _counters_of(cspace)
    before = counters.snapshot() if counters is not None else None
    result = planner.build(
        samples_per_region, rng, within=within, id_base=rid << ID_SHIFT
    )
    delta = counters.delta(before) if counters is not None else None
    checks = (delta.point_checks, delta.segment_checks) if delta is not None else (0, 0)
    return result.roadmap, result.stats, checks


def _rrt_region_task(
    cspace: ConfigurationSpace,
    radial: RadialSubdivision,
    root: np.ndarray,
    nodes_per_region: int,
    seed: int,
    nn_backend: "str | None",
    rid: int,
) -> "tuple[Roadmap, PlannerStats, tuple[int, int]]":
    region = radial.region_of(rid)
    pos_dims = list(cspace.positional_dims)
    rng = np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(rid,)))
    planner = RRT(cspace, nn_factory=get_nn_factory(nn_backend))
    counters = _counters_of(cspace)
    before = counters.snapshot() if counters is not None else None
    result = planner.grow(
        root,
        nodes_per_region,
        rng,
        bias_target=_lift_position(cspace, region.target, root),
        region_predicate=lambda q, region=region, dims=pos_dims: region.contains(
            np.asarray(q)[dims]
        ),
        max_iterations=40 * nodes_per_region,
        id_base=rid << ID_SHIFT,
        region_predicate_batch=lambda qs, region=region, dims=pos_dims: region.contains_many(
            np.atleast_2d(np.asarray(qs))[:, dims]
        ),
    )
    delta = counters.delta(before) if counters is not None else None
    checks = (delta.point_checks, delta.segment_checks) if delta is not None else (0, 0)
    return result.tree, result.stats, checks


def _rrt_decomposition(
    cspace: ConfigurationSpace, seed: int, num_regions: int
) -> "tuple[np.ndarray, RadialSubdivision]":
    """The deterministic (root, radial subdivision) pair for an RRT plan.

    Shared between the dispatching parent and shm-plane workers, which
    rebuild the decomposition locally instead of shipping it.
    """
    root = _default_root(cspace, seed)
    pos_dims = list(cspace.positional_dims)
    root_pos = root[pos_dims]
    radius = float(
        min(
            np.min(root_pos - cspace.bounds.lo[pos_dims]),
            np.min(cspace.bounds.hi[pos_dims] - root_pos),
        )
    )
    radial = RadialSubdivision(
        root_pos,
        radius,
        num_regions,
        rng=np.random.default_rng(seed),
    )
    return root, radial


# --- data planes -----------------------------------------------------------
# Three ways to get the heavy planning context (environment + subdivision)
# to pool workers.  "inline" ships the closure with every chunk (the
# historical behaviour — cheap under fork's copy-on-write, expensive under
# spawn).  "pickle" serialises the closure once and caches the decode per
# worker.  "shm" publishes the environment's obstacle arrays as a shared
# memory segment; workers map it zero-copy and rebuild the (deterministic)
# subdivision locally, so per-chunk traffic is a few hundred bytes however
# large the scene is.  Results are bit-identical across all three.

@dataclass(frozen=True)
class _ShmPlanContext:
    """Everything a worker needs to rebuild the planning closure from shm."""

    manifest: _shm.SharedArrayManifest
    env_name: str
    kernel_backend: str
    robot_radius: float
    planner: str
    num_regions: int
    per_region: int
    seed: int
    nn_backend: "str | None"


#: one rebuilt closure per worker process, keyed by the full context.
_SHM_TASK_CACHE: "dict[_ShmPlanContext, object]" = {}
#: one decoded closure per worker process, keyed by blob digest.
_PICKLE_TASK_CACHE: "dict[str, object]" = {}


def _rebind_task(cspace: ConfigurationSpace, ctx: _ShmPlanContext):
    if ctx.planner == "prm":
        subdivision = UniformSubdivision(
            _positional_bounds(cspace), ctx.num_regions, overlap=0.2
        )
        return partial(
            _prm_region_task, cspace, subdivision, ctx.per_region, ctx.seed,
            ctx.nn_backend,
        )
    root, radial = _rrt_decomposition(cspace, ctx.seed, ctx.num_regions)
    return partial(
        _rrt_region_task, cspace, radial, root, ctx.per_region, ctx.seed,
        ctx.nn_backend,
    )


def _shm_region_task(ctx: _ShmPlanContext, rid: int):
    task = _SHM_TASK_CACHE.get(ctx)
    if task is None:
        arrays = _shm.attach_arrays(ctx.manifest)
        env = Environment.from_arrays(
            AABB(arrays["bounds_lo"], arrays["bounds_hi"]),
            arrays["obs_lo"],
            arrays["obs_hi"],
            name=ctx.env_name,
            kernel_backend=ctx.kernel_backend,
        )
        cs = EuclideanCSpace(env, robot_radius=ctx.robot_radius)
        task = _rebind_task(cs, ctx)
        _SHM_TASK_CACHE.clear()
        _SHM_TASK_CACHE[ctx] = task
    return task(rid)


def _pickled_region_task(digest: str, blob: bytes, rid: int):
    task = _PICKLE_TASK_CACHE.get(digest)
    if task is None:
        task = pickle.loads(blob)
        _PICKLE_TASK_CACHE.clear()
        _PICKLE_TASK_CACHE[digest] = task
    return task(rid)


def _shm_plan_eligible(cspace: ConfigurationSpace) -> bool:
    """Whether this plan's context can round-trip through the shm plane."""
    return (
        type(cspace) is EuclideanCSpace
        and getattr(cspace.env, "_kernel_backend_name", None) is not None
        and _shm.shm_available()
    )


def _resolve_data_plane(ex: ExecutionPolicy, cspace: ConfigurationSpace) -> str:
    plane = ex.data_plane
    if plane == "auto":
        if ex.backend == "process" and _shm_plan_eligible(cspace):
            return "shm"
        return "inline"
    if plane == "shm" and not _shm_plan_eligible(cspace):
        raise ValueError(
            "data_plane='shm' needs a EuclideanCSpace over a registry-named "
            "kernel backend, with POSIX shared memory available"
        )
    return plane


def _region_weights(
    cspace: ConfigurationSpace,
    subdivision: "UniformSubdivision | None",
    region_ids,
) -> "dict[int, float] | None":
    """Predicted relative cost per region for the "weighted" chunk policy:
    1 + the number of obstacles overlapping the region's sample box."""
    env = getattr(cspace, "env", None)
    lo = getattr(env, "_obs_lo", None)
    if subdivision is None or lo is None or lo.shape[0] == 0:
        return None
    hi = env._obs_hi
    weights = {}
    for rid in region_ids:
        box = subdivision.region_of(rid).sample_bounds
        blo, bhi = np.asarray(box.lo), np.asarray(box.hi)
        if blo.shape[0] != lo.shape[1]:
            return None
        overlap = np.all((lo <= bhi) & (hi >= blo), axis=1)
        weights[rid] = 1.0 + float(np.count_nonzero(overlap))
    return weights


def _plan_local(request: PlanRequest, cspace: ConfigurationSpace) -> PlanReport:
    """Run the regional planners for real on the local machine's cores.

    The pool's greedy dynamic dispatch is the shared-memory analogue of
    work stealing, so the ``strategy`` field is irrelevant here; regions
    are the unit of work exactly as on the simulated machine.
    """
    wl, ex, fa, ob = request.workload, request.execution, request.faults, request.obs
    subdivision = None
    if wl.planner == "prm":
        subdivision = UniformSubdivision(
            _positional_bounds(cspace), wl.num_regions, overlap=0.2
        )
        task = partial(
            _prm_region_task, cspace, subdivision, wl.samples_per_region, wl.seed,
            ex.nn_backend,
        )
        region_ids = subdivision.graph.region_ids()
        per_region = wl.samples_per_region
    else:
        root, radial = _rrt_decomposition(cspace, wl.seed, wl.num_regions)
        task = partial(
            _rrt_region_task, cspace, radial, root, wl.nodes_per_region, wl.seed,
            ex.nn_backend,
        )
        region_ids = radial.graph.region_ids()
        per_region = wl.nodes_per_region

    task_weights = None
    if ex.chunksize == "weighted":
        task_weights = _region_weights(cspace, subdivision, region_ids)

    plane = _resolve_data_plane(ex, cspace)
    manifest = None
    parent_counters = _counters_of(cspace)
    counters_before = (
        parent_counters.snapshot() if parent_counters is not None else None
    )
    try:
        if plane == "shm":
            env = cspace.env
            manifest = _shm.publish_arrays(
                {
                    "bounds_lo": env.bounds.lo,
                    "bounds_hi": env.bounds.hi,
                    "obs_lo": env._obs_lo,
                    "obs_hi": env._obs_hi,
                },
                label="environment",
                tracer=ob.tracer,
            )
            ctx = _ShmPlanContext(
                manifest=manifest,
                env_name=env.name,
                kernel_backend=env._kernel_backend_name,
                robot_radius=float(cspace.robot_radius),
                planner=wl.planner,
                num_regions=wl.num_regions,
                per_region=per_region,
                seed=wl.seed,
                nn_backend=ex.nn_backend,
            )
            task = partial(_shm_region_task, ctx)
        elif plane == "pickle":
            blob = pickle.dumps(task)
            task = partial(
                _pickled_region_task, hashlib.sha256(blob).hexdigest(), blob
            )

        pool = run_tasks_parallel(
            task,
            region_ids,
            workers=ex.workers,
            backend=ex.backend,
            chunksize=ex.chunksize,
            tracer=ob.tracer,
            task_weights=task_weights,
            measure_serde=(ex.backend == "process"),
            **fa.pool_kwargs(retry_seed=wl.seed),
        )
    finally:
        if manifest is not None:
            _shm.release(manifest)
    if manifest is not None:
        pool.dispatch.shm_segments += 1 if manifest.segment else 0
        pool.dispatch.shm_bytes += manifest.total_bytes
    # Under "degrade" abandoned regions are simply absent from the merge:
    # regional roadmaps are independent subproblems, so the survivors
    # stitch into a valid (if sparser) roadmap.
    merged = Roadmap(cspace.dim)
    stats = PlannerStats()
    point_checks = segment_checks = 0
    for rid in sorted(pool.results):
        roadmap, task_stats, (pc, sc) = pool.results[rid]
        merged.merge(roadmap)
        stats += task_stats
        point_checks += pc
        segment_checks += sc
    if ex.backend == "thread" and plane == "inline" and parent_counters is not None:
        # Thread workers share the parent environment's counters, so the
        # per-task window deltas double-count concurrent increments; the
        # parent-side delta over the whole pool run is the exact total.
        delta = parent_counters.delta(counters_before)
        point_checks, segment_checks = delta.point_checks, delta.segment_checks
    return PlanReport(
        request=request,
        workload=None,
        result=None,
        pool=pool,
        roadmap=merged,
        local_stats=stats,
        local_counters=(point_checks, segment_checks),
    )
