"""Packed-array AABB bounding-volume hierarchy for collision culling.

The ROADMAP's "hierarchical spatial acceleration" item: brute-force
collision kernels are linear in obstacle count, which caps the paper's
load-imbalance story at toy obstacle densities.  This module provides the
acceleration structure behind the ``bvh`` kernel backend
(:mod:`repro.kernels.bvh_backend`): a binary tree of axis-aligned
bounding boxes over primitive AABBs, stored as contiguous NumPy arrays in
the same structure-of-arrays style as
:class:`~repro.kernels.data.EnvKernelData` so traversal loops touch flat
buffers, never Python node objects.

Design points:

* **Median split.**  Nodes split their primitive range at the median
  centroid along the widest centroid axis.  The split is by *count*, not
  position, so fully-overlapping primitive sets (every centroid
  identical) still produce a balanced, ``O(log n)``-depth tree instead of
  degenerating.
* **Batched node-stack traversal.**  Queries are answered for a whole
  batch at once: an explicit stack of ``(node, active-query-indices)``
  pairs is processed with one vectorised AABB test per node, shrinking
  the active set on the way down and early-outing queries already known
  to hit.  This keeps the per-node Python overhead amortised over many
  queries — the same trick the batched planners use.
* **Conservative culling, exact leaves.**  Node boxes are inflated by a
  relative margin (~1e-9) at build time so float64 rounding in the
  traversal tests can never cull a primitive the exact leaf test would
  report as hit.  Leaf tests are supplied by the caller (the ``bvh``
  backend passes the *reference kernels'* own expressions), so verdicts
  are bit-identical to the brute-force scan — the BVH culls, it never
  approximates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BVH", "DEFAULT_LEAF_SIZE"]

#: Primitives per leaf.  Small enough that leaf brute-force stays cheap,
#: large enough that the tree (and the Python traversal stack) stays
#: shallow: ~2n/8 nodes at 100k primitives.
DEFAULT_LEAF_SIZE = 8

#: Relative inflation applied to every node box at build time.  Traversal
#: tests run in float64 whose rounding is ~1e-16 relative; a 1e-9 margin
#: dwarfs it by seven orders of magnitude while being geometrically
#: invisible, so culling is strictly conservative w.r.t. the exact leaf
#: tests (see the grazing-segment cases in ``tests/test_bvh.py``).
_NODE_MARGIN = 1e-9


class BVH:
    """A packed median-split AABB tree over ``n`` primitive boxes.

    Parameters
    ----------
    prim_lo, prim_hi:
        Primitive bounding boxes, shape ``(n, d)``.  Zero-volume boxes
        (``lo == hi`` on any axis) are fine; so are fully overlapping
        ones.  ``n == 0`` builds an empty tree whose queries return
        all-False.
    leaf_size:
        Maximum primitives per leaf.

    Attributes (all contiguous, read-only by convention)
    ----------------------------------------------------
    node_lo, node_hi:
        ``(num_nodes, d)`` float64 — inflated node boxes.
    node_left:
        ``(num_nodes,)`` int64 — index of the left child for internal
        nodes (the right child is always ``left + 1``), ``-1`` for
        leaves.
    node_start, node_count:
        ``(num_nodes,)`` int64 — leaf range into ``prim_index``
        (``count == 0`` for internal nodes).
    prim_index:
        ``(n,)`` int64 — permutation of primitive ids; a leaf owns
        ``prim_index[start:start+count]``.
    """

    def __init__(self, prim_lo: np.ndarray, prim_hi: np.ndarray, leaf_size: int = DEFAULT_LEAF_SIZE):
        prim_lo = np.ascontiguousarray(np.atleast_2d(np.asarray(prim_lo, dtype=np.float64)))
        prim_hi = np.ascontiguousarray(np.atleast_2d(np.asarray(prim_hi, dtype=np.float64)))
        if prim_lo.shape != prim_hi.shape:
            raise ValueError("prim_lo/prim_hi shape mismatch")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        n, d = (0, prim_lo.shape[1]) if prim_lo.size == 0 else prim_lo.shape
        self.num_prims = n
        self.dim = d
        self.leaf_size = int(leaf_size)

        if n == 0:
            self.node_lo = np.empty((0, d))
            self.node_hi = np.empty((0, d))
            self.node_left = np.empty(0, dtype=np.int64)
            self.node_start = np.empty(0, dtype=np.int64)
            self.node_count = np.empty(0, dtype=np.int64)
            self.prim_index = np.empty(0, dtype=np.int64)
            return

        order = np.arange(n, dtype=np.int64)
        centers = 0.5 * (prim_lo + prim_hi)

        node_lo: "list[np.ndarray]" = []
        node_hi: "list[np.ndarray]" = []
        node_left: "list[int]" = []
        node_start: "list[int]" = []
        node_count: "list[int]" = []

        def new_node() -> int:
            node_lo.append(np.empty(d))
            node_hi.append(np.empty(d))
            node_left.append(-1)
            node_start.append(0)
            node_count.append(0)
            return len(node_left) - 1

        stack: "list[tuple[int, int, int]]" = [(new_node(), 0, n)]
        while stack:
            ni, a, b = stack.pop()
            ids = order[a:b]
            lo = prim_lo[ids].min(axis=0)
            hi = prim_hi[ids].max(axis=0)
            # Inflate so traversal rounding can never out-cull the exact
            # leaf tests (conservative culling only costs a false visit).
            pad_lo = _NODE_MARGIN * (np.abs(lo) + 1.0)
            pad_hi = _NODE_MARGIN * (np.abs(hi) + 1.0)
            node_lo[ni] = lo - pad_lo
            node_hi[ni] = hi + pad_hi
            if b - a <= leaf_size:
                node_start[ni] = a
                node_count[ni] = b - a
                continue
            spread = centers[ids].max(axis=0) - centers[ids].min(axis=0)
            axis = int(np.argmax(spread))
            mid = (a + b) // 2
            part = np.argpartition(centers[ids, axis], mid - a)
            order[a:b] = ids[part]
            li = new_node()
            ri = new_node()
            assert ri == li + 1  # children are allocated contiguously
            node_left[ni] = li
            stack.append((li, a, mid))
            stack.append((ri, mid, b))

        self.node_lo = np.ascontiguousarray(np.stack(node_lo))
        self.node_hi = np.ascontiguousarray(np.stack(node_hi))
        self.node_left = np.asarray(node_left, dtype=np.int64)
        self.node_start = np.asarray(node_start, dtype=np.int64)
        self.node_count = np.asarray(node_count, dtype=np.int64)
        self.prim_index = order

    @property
    def num_nodes(self) -> int:
        return self.node_left.shape[0]

    @property
    def nbytes(self) -> int:
        """Total bytes held by the packed node and index arrays."""
        return sum(
            getattr(self, a).nbytes
            for a in ("node_lo", "node_hi", "node_left", "node_start", "node_count", "prim_index")
        )

    # -- batched traversal -------------------------------------------------
    def points_hit(self, pts: np.ndarray, leaf_test) -> np.ndarray:
        """``(n,)`` bool: point ``i`` hits some primitive per ``leaf_test``.

        ``leaf_test(sub_pts, prim_ids) -> (len(sub_pts),) bool`` decides
        hits exactly for the candidate primitives a leaf holds; the tree
        only narrows which primitives each point can possibly touch.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        n = pts.shape[0]
        hit = np.zeros(n, dtype=bool)
        if self.num_prims == 0 or n == 0:
            return hit
        stack: "list[tuple[int, np.ndarray]]" = [(0, np.arange(n, dtype=np.intp))]
        while stack:
            node, active = stack.pop()
            active = active[~hit[active]]  # early-out: already-hit queries drop out
            if active.size == 0:
                continue
            sub = pts[active]
            inside = np.all(
                (sub >= self.node_lo[node]) & (sub <= self.node_hi[node]), axis=1
            )
            active = active[inside]
            if active.size == 0:
                continue
            left = int(self.node_left[node])
            if left < 0:
                s = int(self.node_start[node])
                c = int(self.node_count[node])
                prims = self.prim_index[s : s + c]
                leaf_hit = leaf_test(pts[active], prims)
                hit[active[leaf_hit]] = True
            else:
                stack.append((left, active))
                stack.append((left + 1, active))
        return hit

    def segments_hit(self, p: np.ndarray, q: np.ndarray, leaf_test) -> np.ndarray:
        """``(n,)`` bool: segment ``p[i] -> q[i]`` hits some primitive.

        Node culling is a conservative slab test (inflated node boxes,
        parallel axes handled exactly like the reference kernel);
        ``leaf_test(sub_p, sub_q, prim_ids)`` decides exactly at leaves.
        """
        p = np.atleast_2d(np.asarray(p, dtype=np.float64))
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        n = p.shape[0]
        hit = np.zeros(n, dtype=bool)
        if self.num_prims == 0 or n == 0:
            return hit
        d = q - p  # (n, dim), shared by every node test
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = np.where(d != 0.0, 1.0 / d, np.inf)
        par = d == 0.0
        any_par = bool(par.any())
        stack: "list[tuple[int, np.ndarray]]" = [(0, np.arange(n, dtype=np.intp))]
        while stack:
            node, active = stack.pop()
            active = active[~hit[active]]
            if active.size == 0:
                continue
            lo = self.node_lo[node]
            hi = self.node_hi[node]
            sp = p[active]
            a = (lo - sp) * inv[active]
            b = (hi - sp) * inv[active]
            t_near = np.minimum(a, b)
            t_far = np.maximum(a, b)
            if any_par:
                pm = par[active]
                inside = (sp >= lo) & (sp <= hi)
                miss = (pm & ~inside).any(axis=1)
                t_near = np.where(pm, -np.inf, t_near)
                t_far = np.where(pm, np.inf, t_far)
            else:
                miss = np.zeros(active.size, dtype=bool)
            t0 = np.maximum(t_near.max(axis=1), 0.0)
            t1 = np.minimum(t_far.min(axis=1), 1.0)
            overlap = (t0 <= t1) & ~miss
            active = active[overlap]
            if active.size == 0:
                continue
            left = int(self.node_left[node])
            if left < 0:
                s = int(self.node_start[node])
                c = int(self.node_count[node])
                prims = self.prim_index[s : s + c]
                leaf_hit = leaf_test(p[active], q[active], prims)
                hit[active[leaf_hit]] = True
            else:
                stack.append((left, active))
                stack.append((left + 1, active))
        return hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BVH(prims={self.num_prims}, nodes={self.num_nodes}, "
            f"dim={self.dim}, leaf_size={self.leaf_size})"
        )
