"""Property-based invariants for the roadmap, PRM and the fault-tolerant pool.

``hypothesis`` drives the generators when installed; otherwise each
property falls back to a seeded stdlib-``random`` sweep so the suite
never gains a hard dependency.  Both paths exercise the same test body
with the same value shapes.
"""

import random

import numpy as np
import pytest

from repro.cspace import EuclideanCSpace
from repro.geometry import AABB, Environment
from repro.planners import PRM, Roadmap
from repro.runtime import FaultInjector, run_tasks_parallel

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - depends on the environment
    HAVE_HYPOTHESIS = False

FALLBACK_EXAMPLES = 25


def property_test(strategy_builder, fallback_gen, examples=50):
    """Run ``fn(value)`` over generated values.

    With hypothesis: ``@given(strategy_builder())``.  Without: call the
    body on ``fallback_gen(random.Random(seed))`` for a fixed sweep of
    seeds — weaker shrinking, same coverage shape.
    """

    def deco(fn):
        if HAVE_HYPOTHESIS:
            return settings(max_examples=examples, deadline=None)(
                given(strategy_builder())(fn)
            )

        def runner():
            for seed in range(min(examples, FALLBACK_EXAMPLES)):
                fn(fallback_gen(random.Random(seed)))

        runner.__name__ = fn.__name__
        runner.__doc__ = fn.__doc__
        return runner

    return deco


# -- union-find vs BFS ------------------------------------------------------


def _edge_script_strategy():
    n = st.integers(min_value=2, max_value=12)
    return n.flatmap(
        lambda k: st.tuples(
            st.just(k),
            st.lists(
                st.tuples(st.integers(0, k - 1), st.integers(0, k - 1)),
                max_size=4 * k,
            ),
        )
    )


def _edge_script_fallback(r: random.Random):
    k = r.randint(2, 12)
    m = r.randint(0, 4 * k)
    return k, [(r.randrange(k), r.randrange(k)) for _ in range(m)]


def _build_from_script(script):
    n, pairs = script
    rmap = Roadmap(dim=2)
    for i in range(n):
        rmap.add_vertex(np.array([float(i), 0.0]), vid=i)
    for u, v in pairs:
        if u != v and not rmap.has_edge(u, v):
            rmap.add_edge(u, v)
    return rmap


@property_test(_edge_script_strategy, _edge_script_fallback)
def test_union_find_matches_bfs_components(script):
    """After any add_edge sequence the union-find answers agree with BFS."""
    rmap = _build_from_script(script)
    comps = rmap.connected_components()
    assert rmap.num_components_fast == len(comps)
    label = {v: i for i, comp in enumerate(comps) for v in comp}
    n = script[0]
    for u in range(n):
        for v in range(u + 1, n):
            assert rmap.same_component(u, v) == (label[u] == label[v])
    # component_id is a consistent labelling: equal iff same BFS component.
    for comp in comps:
        ids = {rmap.component_id(v) for v in comp}
        assert len(ids) == 1


@property_test(_edge_script_strategy, _edge_script_fallback)
def test_component_count_decreases_only_on_cross_component_edges(script):
    n, pairs = script
    rmap = Roadmap(dim=2)
    for i in range(n):
        rmap.add_vertex(np.array([float(i), 1.0]), vid=i)
    count = n
    for u, v in pairs:
        if u == v or rmap.has_edge(u, v):
            continue
        crossing = not rmap.same_component(u, v)
        rmap.add_edge(u, v)
        if crossing:
            count -= 1
        assert rmap.num_components_fast == count


# -- batched vs sequential PRM ----------------------------------------------


def _prm_case_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=10_000),  # rng seed
        st.integers(min_value=10, max_value=40),  # samples
        st.integers(min_value=1, max_value=6),  # k
        st.booleans(),  # connect_same_component
        st.integers(min_value=0, max_value=2),  # obstacle count
    )


def _prm_case_fallback(r: random.Random):
    return (
        r.randint(0, 10_000),
        r.randint(10, 40),
        r.randint(1, 6),
        r.random() < 0.5,
        r.randint(0, 2),
    )


def _case_env(seed: int, n_obstacles: int) -> Environment:
    r = random.Random(seed)
    obstacles = []
    for _ in range(n_obstacles):
        cx, cy = r.uniform(-3, 3), r.uniform(-3, 3)
        hx, hy = r.uniform(0.3, 1.2), r.uniform(0.3, 1.2)
        obstacles.append(AABB([cx - hx, cy - hy], [cx + hx, cy + hy]))
    return Environment(AABB([-5.0, -5.0], [5.0, 5.0]), obstacles, name="gen")


@property_test(_prm_case_strategy, _prm_case_fallback, examples=15)
def test_batched_prm_matches_sequential(case):
    """The vectorised connection path is an optimisation, not a semantic
    change: identical roadmap and identical operation counts."""
    seed, n, k, same_comp, n_obs = case
    cspace = EuclideanCSpace(_case_env(seed, n_obs))

    def run(batched):
        planner = PRM(
            cspace, k=k, connect_same_component=same_comp, batched=batched
        )
        return planner.build(n, np.random.default_rng(seed))

    a, b = run(True), run(False)
    assert set(a.roadmap.vertices()) == set(b.roadmap.vertices())
    edges_a = {(u, v): w for u, v, w in a.roadmap.edges()}
    edges_b = {(u, v): w for u, v, w in b.roadmap.edges()}
    assert edges_a.keys() == edges_b.keys()
    for key, w in edges_a.items():
        assert w == pytest.approx(edges_b[key])
    assert a.stats.lp_calls == b.stats.lp_calls
    assert a.stats.lp_checks == b.stats.lp_checks
    assert a.stats.lp_successes == b.stats.lp_successes
    assert a.stats.edges_added == b.stats.edges_added
    assert a.roadmap.num_components_fast == b.roadmap.num_components_fast


# -- pool determinism under faults ------------------------------------------


def _sq(task_id):
    return task_id * task_id


def _pool_case_strategy():
    return st.tuples(
        st.integers(min_value=0, max_value=1_000),  # fault seed
        st.floats(min_value=0.0, max_value=0.6),  # fault rate
        st.integers(min_value=1, max_value=24),  # task count
        st.integers(min_value=1, max_value=4),  # workers
        st.integers(min_value=1, max_value=3),  # chunksize
    )


def _pool_case_fallback(r: random.Random):
    return (
        r.randint(0, 1_000),
        r.uniform(0.0, 0.6),
        r.randint(1, 24),
        r.randint(1, 4),
        r.randint(1, 3),
    )


@property_test(_pool_case_strategy, _pool_case_fallback, examples=15)
def test_pool_is_deterministic_under_seeded_faults(case):
    """Same fault seed + retry policy → byte-identical results and attempt
    counts, regardless of scheduling nondeterminism in the thread pool."""
    fault_seed, rate, n, workers, chunksize = case

    def run():
        return run_tasks_parallel(
            _sq,
            list(range(n)),
            workers=workers,
            chunksize=chunksize,
            failure_policy="retry",
            max_retries=3,
            fault_injector=FaultInjector(rate=rate, seed=fault_seed),
            backoff_base=0.001,
        )

    a, b = run(), run()
    assert a.results == b.results == {i: i * i for i in range(n)}
    assert a.attempts == b.attempts
    assert a.retries == b.retries
    assert a.complete and b.complete


@property_test(_pool_case_strategy, _pool_case_fallback, examples=10)
def test_pool_faulty_run_matches_clean_run(case):
    """Chaos parity as a property: retried runs return what a fault-free
    run returns, for any seeded fault plan that spares retries."""
    fault_seed, rate, n, workers, chunksize = case
    clean = run_tasks_parallel(_sq, list(range(n)), workers=workers)
    chaotic = run_tasks_parallel(
        _sq,
        list(range(n)),
        workers=workers,
        chunksize=chunksize,
        failure_policy="retry",
        max_retries=3,
        fault_injector=FaultInjector(rate=rate, seed=fault_seed),
        backoff_base=0.001,
    )
    assert chaotic.results == clean.results


def test_fallback_generators_mirror_strategies():
    """The stdlib fallback produces the same value shapes the hypothesis
    strategies do — guards the no-hypothesis path even when hypothesis is
    installed."""
    r = random.Random(0)
    n, pairs = _edge_script_fallback(r)
    assert 2 <= n <= 12
    assert all(0 <= u < n and 0 <= v < n for u, v in pairs)
    case = _prm_case_fallback(r)
    assert len(case) == 5 and 10 <= case[1] <= 40
    pool_case = _pool_case_fallback(r)
    assert len(pool_case) == 5 and 0.0 <= pool_case[1] <= 0.6
