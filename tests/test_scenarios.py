"""Golden-seed tests for the procedural large-obstacle scenarios.

Each generator must be deterministic for a fixed seed — bench rows built
on these worlds are only comparable across machines if the obstacle
arrays are byte-identical.  The goldens pin exact obstacle counts plus a
sha256 of the packed arrays (``repro.geometry.scenarios.fingerprint``),
so any drift in the generation code (RNG call order, layout math,
dtype) fails loudly.
"""

import numpy as np
import pytest

from repro.geometry import Environment
from repro.geometry.scenarios import (
    available_scenarios,
    city_grid,
    cluttered_spheres,
    fingerprint,
    scenario_by_name,
    shelf_warehouse,
)
from repro.kernels import EnvKernelData

# sha256 of the packed obstacle arrays for pinned (n, seed) pairs.
# Regenerate with:
#   PYTHONPATH=src python -c "from repro.geometry.scenarios import *; \
#       print(fingerprint(shelf_warehouse(1000, seed=42)))"
GOLDEN = {
    ("warehouse", 1000, 42): "acf53e585e5d0ac99050468d7e5eddc46c50b270264a01f34af44efa962e6b5f",
    ("city", 1000, 42): "aaa9aca623680bd33bbdb28a96bd647855beafafb21c442cb309933731c0098e",
    ("spheres", 1000, 42): "445276236ec141fd29c081e11c0c85f2792b0253cf4a2944721554a18f64a8d3",
    ("warehouse", 100, 7): "bebbb895cc86c78464e30f88975940b415862b7faa9fb183edbb1d314f7e1c9c",
    ("city", 100, 7): "9db6f29da58b9861b1ac5edaa91a007f4ff7d00f97f465ab3137db9554e31685",
    ("spheres", 100, 7): "89513c13129c627ca464560e44c848c5a15871604c397dd9e74571f3168ae8b5",
}


def _count(obj):
    return obj.num_obstacles if isinstance(obj, Environment) else obj.sph_center.shape[0]


class TestGoldenSeeds:
    @pytest.mark.parametrize("name,n,seed", sorted(GOLDEN))
    def test_fingerprint_matches_golden(self, name, n, seed):
        obj = scenario_by_name(name, n_obstacles=n, seed=seed)
        assert _count(obj) == n
        assert fingerprint(obj) == GOLDEN[(name, n, seed)]

    @pytest.mark.parametrize("name", ["warehouse", "city", "spheres"])
    def test_same_seed_same_world(self, name):
        a = scenario_by_name(name, n_obstacles=250, seed=3)
        b = scenario_by_name(name, n_obstacles=250, seed=3)
        assert fingerprint(a) == fingerprint(b)

    @pytest.mark.parametrize("name", ["warehouse", "city", "spheres"])
    def test_different_seed_different_world(self, name):
        a = scenario_by_name(name, n_obstacles=250, seed=3)
        b = scenario_by_name(name, n_obstacles=250, seed=4)
        assert fingerprint(a) != fingerprint(b)


class TestExactCounts:
    """Generators must produce *exactly* n obstacles, including counts
    that don't divide evenly into racks/blocks."""

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 50, 101, 1000, 1001])
    @pytest.mark.parametrize("name", ["warehouse", "city", "spheres"])
    def test_exact_count(self, name, n):
        assert _count(scenario_by_name(name, n_obstacles=n, seed=0)) == n

    @pytest.mark.parametrize("name", ["warehouse", "city", "spheres"])
    def test_zero_rejected(self, name):
        with pytest.raises(ValueError):
            scenario_by_name(name, n_obstacles=0, seed=0)


class TestGeometry:
    def test_warehouse_is_environment(self):
        env = shelf_warehouse(200, seed=0)
        assert isinstance(env, Environment)
        assert env.dim == 3
        assert env.name == "warehouse-200"

    def test_city_is_environment(self):
        env = city_grid(200, seed=0)
        assert isinstance(env, Environment)
        assert env.name == "city-200"

    def test_spheres_is_kernel_snapshot(self):
        data = cluttered_spheres(200, seed=0)
        assert isinstance(data, EnvKernelData)
        assert data.sph_center.shape == (200, 3)
        assert data.sph_radius.shape == (200,)
        assert np.all(data.sph_radius > 0)

    @pytest.mark.parametrize("name", ["warehouse", "city"])
    def test_boxes_inside_workspace(self, name):
        env = scenario_by_name(name, n_obstacles=300, seed=5)
        data = env.kernel_data()
        assert np.all(data.box_lo <= data.box_hi)
        assert np.all(data.box_lo >= data.bounds_lo - 1e-12)
        assert np.all(data.box_hi <= data.bounds_hi + 1e-12)

    def test_spheres_inside_workspace(self):
        data = cluttered_spheres(300, seed=5)
        assert np.all(np.abs(data.sph_center) <= data.bounds_hi)

    def test_city_buildings_rise_from_floor(self):
        env = city_grid(64, seed=0)
        data = env.kernel_data()
        assert np.all(data.box_lo[:, 2] == data.bounds_lo[2])

    def test_warehouse_has_free_space(self):
        # Aisles exist: sampling must find free points easily.
        env = shelf_warehouse(400, seed=0)
        pts = env.sample_free(np.random.default_rng(0), 50)
        assert pts.shape[0] == 50


class TestRegistry:
    def test_available_scenarios(self):
        assert available_scenarios() == ["city", "spheres", "warehouse"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_by_name("maze")


class TestFingerprint:
    def test_accepts_environment_and_snapshot(self):
        env = shelf_warehouse(50, seed=0)
        fp_env = fingerprint(env)
        fp_data = fingerprint(env.kernel_data())
        assert fp_env == fp_data

    def test_sensitive_to_single_element(self):
        data = cluttered_spheres(50, seed=0)
        before = fingerprint(data)
        centers = data.sph_center.copy()
        centers[0, 0] += 1e-12
        perturbed = EnvKernelData(
            bounds_lo=data.bounds_lo,
            bounds_hi=data.bounds_hi,
            sph_center=centers,
            sph_radius=data.sph_radius,
        )
        assert fingerprint(perturbed) != before
